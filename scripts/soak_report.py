#!/usr/bin/env python3
"""Summarize a dgmc_soak BENCH_soak.json.

Reads the JSON dgmc_soak --bench-json writes and prints a per-trial
digest: invariant outcome, watchdog trips, shed/compaction counters,
and the per-phase RSS trajectory with its growth since the first phase
(the number the rss_mb budget bounds). Exit status: 0 when every trial
passed, 1 when any failed, 2 on usage/parse errors.

Usage:
  soak_report.py BENCH_soak.json
  soak_report.py               # defaults to ./BENCH_soak.json
"""

import json
import sys


def fmt_mb(v):
    return f"{v:.1f}MiB"


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_soak.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"soak_report: cannot read {path}: {e}", file=sys.stderr)
        return 2
    if doc.get("bench") != "soak":
        print(f"soak_report: {path} is not a soak bench document",
              file=sys.stderr)
        return 2

    print(f"soak '{doc.get('spec', '?')}' — seed {doc.get('seed', '?')}, "
          f"{doc.get('duration_s', '?')}s simulated, "
          f"{doc.get('phases', '?')} phases")

    all_ok = True
    for i, trial in enumerate(doc.get("trials", [])):
        phases = trial.get("phases", [])
        ok = trial.get("ok", False)
        all_ok = all_ok and ok
        status = "ok" if ok else (
            "WATCHDOG" if trial.get("watchdog") else "FAIL")
        last = phases[-1] if phases else {}
        print(f"trial {i}: {status}  "
              f"installs={last.get('installs', 0)} "
              f"retx={last.get('retransmissions', 0)} "
              f"giveups={last.get('give_ups', 0)} "
              f"sheds={last.get('sheds', 0)} "
              f"compactions={last.get('dedup_compactions', 0)}")
        if not ok:
            print(f"  failure: {trial.get('failure', '?')}")
        rss = [p.get("rss_mb", 0.0) for p in phases]
        if rss and rss[0] > 0.0:
            trajectory = " -> ".join(fmt_mb(v) for v in rss)
            growth = rss[-1] - rss[0]
            print(f"  rss: {trajectory}  (growth {fmt_mb(growth)})")
        peak_q = max((p.get("queue_peak", 0) for p in phases), default=0)
        peak_d = max((p.get("dedup_backlog", 0) for p in phases), default=0)
        peak_p = max((p.get("pending_retransmits", 0) for p in phases),
                     default=0)
        print(f"  steady-state peaks: queue={peak_q} dedup={peak_d} "
              f"pending_retx={peak_p}")

    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
