#!/usr/bin/env python3
"""Diff two benchmark JSON files and fail on regressions.

Understands both JSON shapes this repo emits:

  * dgmc bench harnesses (BENCH_*.json from bench/bench_json.hpp):
    a top-level object with an "entries" list; each entry is keyed by
    its "scenario" (+ "mode"/"strategy" when present) and carries
    numeric metrics plus optional string verdicts ("determinism").
  * google-benchmark --benchmark_out JSON (micro_kernels): a
    "benchmarks" list keyed by "name" with "real_time",
    "items_per_second", etc.

Metric direction is inferred from the name: *_per_sec / *per_second /
speedup / ops are higher-is-better, *seconds / *time lower-is-better;
anything else is informational only. String verdict fields must match
exactly. Exit status: 0 clean, 1 regression or verdict mismatch,
2 usage/parse error.

Entries marked "clock_wall": 1 (the socket backend's BENCH_net.json)
are measured on the wall clock of whatever machine ran them, so their
directed metrics get the much wider --wall-tolerance instead; verdict
fields like "converged" stay exact regardless of clock.

Usage:
  bench_compare.py baseline.json current.json [--tolerance 0.25]
                   [--wall-tolerance 0.75]
"""

import argparse
import json
import sys

HIGHER_IS_BETTER = ("per_sec", "per_second", "speedup", "ops")
LOWER_IS_BETTER = ("seconds", "_time", "time_")
# Counters that must be bit-identical between runs on the same source
# tree (the determinism contract), not merely within tolerance.
# "converged" joins them: a wall-clock run may be slower, but a run
# that stopped converging is a correctness regression, never noise.
# "syscalls_per_packet" is the bench/net_io batching ratio: the bench
# drives a fixed lockstep datagram schedule, so tx syscalls over tx
# datagrams is pure arithmetic (ceil(burst/64)/burst for the mmsg
# flavor, 1.0 for per-packet) and must reproduce bit-for-bit. Entries
# whose syscall count is load-dependent (dgmc_nethost wall runs, the
# uring flavor's enter count) use different field names and stay
# informational.
EXACT_FIELDS = ("determinism", "states", "transitions", "violations",
                "converged", "syscalls_per_packet")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def rows(doc):
    """Return {key: {field: value}} for either supported JSON shape."""
    if isinstance(doc, dict) and "benchmarks" in doc:  # google-benchmark
        out = {}
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            out[b["name"]] = b
        return out
    if isinstance(doc, dict) and "entries" in doc:  # dgmc bench harness
        out = {}
        for e in doc["entries"]:
            key = str(e.get("scenario", e.get("name", "?")))
            for part in ("mode", "strategy", "jobs"):
                if part in e:
                    key += f"/{e[part]}"
            out[key] = e
        return out
    sys.exit("bench_compare: unrecognized JSON shape "
             "(expected 'entries' or 'benchmarks')")


def direction(field):
    f = field.lower()
    if any(tok in f for tok in HIGHER_IS_BETTER):
        return +1
    if any(tok in f for tok in LOWER_IS_BETTER):
        return -1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative slowdown on directed metrics "
                         "(default 0.25 = 25%%; benchmarks are noisy on "
                         "shared CI runners)")
    ap.add_argument("--wall-tolerance", type=float, default=0.75,
                    help="tolerance for entries with clock_wall set "
                         "(default 0.75: wall-clock loopback numbers vary "
                         "wildly across machines and load; the gate is "
                         "'still converges, same order of magnitude', not "
                         "a perf SLO)")
    ap.add_argument("--verbose", action="store_true",
                    help="print every compared metric, not just failures")
    args = ap.parse_args()

    base = rows(load(args.baseline))
    curr = rows(load(args.current))

    failures = []
    for key in sorted(set(base) - set(curr)):
        print(f"  [gone]    {key} (in baseline only)")
    for key in sorted(set(curr) - set(base)):
        print(f"  [new]     {key} (in current only)")

    for key in sorted(set(base) & set(curr)):
        b, c = base[key], curr[key]
        wall = bool(b.get("clock_wall") or c.get("clock_wall"))
        tolerance = args.wall_tolerance if wall else args.tolerance
        for field in sorted(set(b) & set(c)):
            bv, cv = b[field], c[field]
            if field in EXACT_FIELDS:
                if bv != cv:
                    failures.append(f"{key}: {field} changed {bv!r} -> {cv!r}"
                                    " (must be exact)")
                continue
            if not isinstance(bv, (int, float)) or isinstance(bv, bool):
                continue
            if not isinstance(cv, (int, float)):
                continue
            d = direction(field)
            if d == 0 or bv == 0:
                if args.verbose:
                    print(f"  [info]    {key}: {field} {bv} -> {cv}")
                continue
            # Relative change, signed so that positive = improvement.
            rel = (cv - bv) / abs(bv) * d
            tag = "ok" if rel >= -tolerance else "REGRESS"
            if tag != "ok":
                failures.append(
                    f"{key}: {field} {bv:g} -> {cv:g} "
                    f"({rel * 100:+.1f}% vs tolerance -{tolerance * 100:.0f}%)")
            if args.verbose or tag != "ok":
                print(f"  [{tag:7s}] {key}: {field} {bv:g} -> {cv:g} "
                      f"({rel * 100:+.1f}%)")

    if failures:
        print(f"bench_compare: {len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"bench_compare: OK ({len(set(base) & set(curr))} shared rows, "
          f"tolerance {args.tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
