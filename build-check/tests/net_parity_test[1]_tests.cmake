add_test([=[NetParity.AllLoopFlavorsMatchDesOnSpecChurn]=]  /root/repo/build-check/tests/net_parity_test [==[--gtest_filter=NetParity.AllLoopFlavorsMatchDesOnSpecChurn]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[NetParity.AllLoopFlavorsMatchDesOnSpecChurn]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-check/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] LABELS net RUN_SERIAL TRUE)
set(  net_parity_test_TESTS NetParity.AllLoopFlavorsMatchDesOnSpecChurn)
