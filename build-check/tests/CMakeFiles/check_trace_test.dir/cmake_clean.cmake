file(REMOVE_RECURSE
  "CMakeFiles/check_trace_test.dir/check_trace_test.cpp.o"
  "CMakeFiles/check_trace_test.dir/check_trace_test.cpp.o.d"
  "check_trace_test"
  "check_trace_test.pdb"
  "check_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
