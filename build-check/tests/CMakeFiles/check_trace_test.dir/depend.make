# Empty dependencies file for check_trace_test.
# This may be replaced when dependencies are built.
