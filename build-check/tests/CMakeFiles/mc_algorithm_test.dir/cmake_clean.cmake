file(REMOVE_RECURSE
  "CMakeFiles/mc_algorithm_test.dir/mc_algorithm_test.cpp.o"
  "CMakeFiles/mc_algorithm_test.dir/mc_algorithm_test.cpp.o.d"
  "mc_algorithm_test"
  "mc_algorithm_test.pdb"
  "mc_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
