# Empty dependencies file for mc_algorithm_test.
# This may be replaced when dependencies are built.
