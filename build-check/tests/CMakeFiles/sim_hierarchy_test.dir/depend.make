# Empty dependencies file for sim_hierarchy_test.
# This may be replaced when dependencies are built.
