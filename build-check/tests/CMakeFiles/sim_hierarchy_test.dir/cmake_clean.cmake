file(REMOVE_RECURSE
  "CMakeFiles/sim_hierarchy_test.dir/sim_hierarchy_test.cpp.o"
  "CMakeFiles/sim_hierarchy_test.dir/sim_hierarchy_test.cpp.o.d"
  "sim_hierarchy_test"
  "sim_hierarchy_test.pdb"
  "sim_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
