# Empty dependencies file for lsr_routing_test.
# This may be replaced when dependencies are built.
