file(REMOVE_RECURSE
  "CMakeFiles/lsr_routing_test.dir/lsr_routing_test.cpp.o"
  "CMakeFiles/lsr_routing_test.dir/lsr_routing_test.cpp.o.d"
  "lsr_routing_test"
  "lsr_routing_test.pdb"
  "lsr_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
