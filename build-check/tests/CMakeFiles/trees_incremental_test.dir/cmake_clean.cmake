file(REMOVE_RECURSE
  "CMakeFiles/trees_incremental_test.dir/trees_incremental_test.cpp.o"
  "CMakeFiles/trees_incremental_test.dir/trees_incremental_test.cpp.o.d"
  "trees_incremental_test"
  "trees_incremental_test.pdb"
  "trees_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trees_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
