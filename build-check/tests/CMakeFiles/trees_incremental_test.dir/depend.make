# Empty dependencies file for trees_incremental_test.
# This may be replaced when dependencies are built.
