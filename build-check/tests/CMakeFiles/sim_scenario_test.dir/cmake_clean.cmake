file(REMOVE_RECURSE
  "CMakeFiles/sim_scenario_test.dir/sim_scenario_test.cpp.o"
  "CMakeFiles/sim_scenario_test.dir/sim_scenario_test.cpp.o.d"
  "sim_scenario_test"
  "sim_scenario_test.pdb"
  "sim_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
