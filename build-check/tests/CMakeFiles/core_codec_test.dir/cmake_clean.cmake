file(REMOVE_RECURSE
  "CMakeFiles/core_codec_test.dir/core_codec_test.cpp.o"
  "CMakeFiles/core_codec_test.dir/core_codec_test.cpp.o.d"
  "core_codec_test"
  "core_codec_test.pdb"
  "core_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
