# Empty dependencies file for core_codec_fuzz_test.
# This may be replaced when dependencies are built.
