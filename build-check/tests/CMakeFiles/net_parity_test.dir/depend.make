# Empty dependencies file for net_parity_test.
# This may be replaced when dependencies are built.
