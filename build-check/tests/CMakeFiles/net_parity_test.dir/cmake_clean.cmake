file(REMOVE_RECURSE
  "CMakeFiles/net_parity_test.dir/net_parity_test.cpp.o"
  "CMakeFiles/net_parity_test.dir/net_parity_test.cpp.o.d"
  "net_parity_test"
  "net_parity_test.pdb"
  "net_parity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
