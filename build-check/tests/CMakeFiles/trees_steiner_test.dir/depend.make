# Empty dependencies file for trees_steiner_test.
# This may be replaced when dependencies are built.
