file(REMOVE_RECURSE
  "CMakeFiles/trees_steiner_test.dir/trees_steiner_test.cpp.o"
  "CMakeFiles/trees_steiner_test.dir/trees_steiner_test.cpp.o.d"
  "trees_steiner_test"
  "trees_steiner_test.pdb"
  "trees_steiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trees_steiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
