file(REMOVE_RECURSE
  "CMakeFiles/sim_dataplane_test.dir/sim_dataplane_test.cpp.o"
  "CMakeFiles/sim_dataplane_test.dir/sim_dataplane_test.cpp.o.d"
  "sim_dataplane_test"
  "sim_dataplane_test.pdb"
  "sim_dataplane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dataplane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
