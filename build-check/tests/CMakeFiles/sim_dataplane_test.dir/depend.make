# Empty dependencies file for sim_dataplane_test.
# This may be replaced when dependencies are built.
