file(REMOVE_RECURSE
  "CMakeFiles/core_sync_test.dir/core_sync_test.cpp.o"
  "CMakeFiles/core_sync_test.dir/core_sync_test.cpp.o.d"
  "core_sync_test"
  "core_sync_test.pdb"
  "core_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
