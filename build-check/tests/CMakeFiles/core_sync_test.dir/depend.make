# Empty dependencies file for core_sync_test.
# This may be replaced when dependencies are built.
