file(REMOVE_RECURSE
  "CMakeFiles/sim_partition_test.dir/sim_partition_test.cpp.o"
  "CMakeFiles/sim_partition_test.dir/sim_partition_test.cpp.o.d"
  "sim_partition_test"
  "sim_partition_test.pdb"
  "sim_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
