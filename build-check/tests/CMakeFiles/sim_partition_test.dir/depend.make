# Empty dependencies file for sim_partition_test.
# This may be replaced when dependencies are built.
