# Empty dependencies file for check_regression_test.
# This may be replaced when dependencies are built.
