file(REMOVE_RECURSE
  "CMakeFiles/check_regression_test.dir/check_regression_test.cpp.o"
  "CMakeFiles/check_regression_test.dir/check_regression_test.cpp.o.d"
  "check_regression_test"
  "check_regression_test.pdb"
  "check_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
