file(REMOVE_RECURSE
  "CMakeFiles/des_scheduler_test.dir/des_scheduler_test.cpp.o"
  "CMakeFiles/des_scheduler_test.dir/des_scheduler_test.cpp.o.d"
  "des_scheduler_test"
  "des_scheduler_test.pdb"
  "des_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
