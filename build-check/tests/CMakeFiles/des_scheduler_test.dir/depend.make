# Empty dependencies file for des_scheduler_test.
# This may be replaced when dependencies are built.
