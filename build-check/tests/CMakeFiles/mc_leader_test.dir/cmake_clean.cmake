file(REMOVE_RECURSE
  "CMakeFiles/mc_leader_test.dir/mc_leader_test.cpp.o"
  "CMakeFiles/mc_leader_test.dir/mc_leader_test.cpp.o.d"
  "mc_leader_test"
  "mc_leader_test.pdb"
  "mc_leader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_leader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
