# Empty dependencies file for mc_leader_test.
# This may be replaced when dependencies are built.
