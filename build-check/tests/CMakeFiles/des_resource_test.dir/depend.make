# Empty dependencies file for des_resource_test.
# This may be replaced when dependencies are built.
