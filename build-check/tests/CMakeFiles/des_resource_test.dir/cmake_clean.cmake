file(REMOVE_RECURSE
  "CMakeFiles/des_resource_test.dir/des_resource_test.cpp.o"
  "CMakeFiles/des_resource_test.dir/des_resource_test.cpp.o.d"
  "des_resource_test"
  "des_resource_test.pdb"
  "des_resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
