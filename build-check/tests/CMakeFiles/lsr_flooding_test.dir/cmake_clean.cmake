file(REMOVE_RECURSE
  "CMakeFiles/lsr_flooding_test.dir/lsr_flooding_test.cpp.o"
  "CMakeFiles/lsr_flooding_test.dir/lsr_flooding_test.cpp.o.d"
  "lsr_flooding_test"
  "lsr_flooding_test.pdb"
  "lsr_flooding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_flooding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
