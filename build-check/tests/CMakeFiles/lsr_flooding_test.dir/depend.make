# Empty dependencies file for lsr_flooding_test.
# This may be replaced when dependencies are built.
