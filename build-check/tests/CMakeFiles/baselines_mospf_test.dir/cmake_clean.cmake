file(REMOVE_RECURSE
  "CMakeFiles/baselines_mospf_test.dir/baselines_mospf_test.cpp.o"
  "CMakeFiles/baselines_mospf_test.dir/baselines_mospf_test.cpp.o.d"
  "baselines_mospf_test"
  "baselines_mospf_test.pdb"
  "baselines_mospf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_mospf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
