# Empty dependencies file for baselines_mospf_test.
# This may be replaced when dependencies are built.
