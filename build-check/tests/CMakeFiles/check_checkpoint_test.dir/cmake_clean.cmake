file(REMOVE_RECURSE
  "CMakeFiles/check_checkpoint_test.dir/check_checkpoint_test.cpp.o"
  "CMakeFiles/check_checkpoint_test.dir/check_checkpoint_test.cpp.o.d"
  "check_checkpoint_test"
  "check_checkpoint_test.pdb"
  "check_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
