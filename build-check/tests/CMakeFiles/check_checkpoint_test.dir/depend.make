# Empty dependencies file for check_checkpoint_test.
# This may be replaced when dependencies are built.
