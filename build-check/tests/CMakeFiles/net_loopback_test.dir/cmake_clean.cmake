file(REMOVE_RECURSE
  "CMakeFiles/net_loopback_test.dir/net_loopback_test.cpp.o"
  "CMakeFiles/net_loopback_test.dir/net_loopback_test.cpp.o.d"
  "net_loopback_test"
  "net_loopback_test.pdb"
  "net_loopback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_loopback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
