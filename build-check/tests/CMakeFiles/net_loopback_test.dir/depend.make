# Empty dependencies file for net_loopback_test.
# This may be replaced when dependencies are built.
