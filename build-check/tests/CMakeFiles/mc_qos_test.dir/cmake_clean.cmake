file(REMOVE_RECURSE
  "CMakeFiles/mc_qos_test.dir/mc_qos_test.cpp.o"
  "CMakeFiles/mc_qos_test.dir/mc_qos_test.cpp.o.d"
  "mc_qos_test"
  "mc_qos_test.pdb"
  "mc_qos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_qos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
