# Empty dependencies file for mc_qos_test.
# This may be replaced when dependencies are built.
