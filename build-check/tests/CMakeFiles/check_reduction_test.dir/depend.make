# Empty dependencies file for check_reduction_test.
# This may be replaced when dependencies are built.
