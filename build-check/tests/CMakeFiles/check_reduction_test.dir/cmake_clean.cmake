file(REMOVE_RECURSE
  "CMakeFiles/check_reduction_test.dir/check_reduction_test.cpp.o"
  "CMakeFiles/check_reduction_test.dir/check_reduction_test.cpp.o.d"
  "check_reduction_test"
  "check_reduction_test.pdb"
  "check_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
