file(REMOVE_RECURSE
  "CMakeFiles/check_explorer_test.dir/check_explorer_test.cpp.o"
  "CMakeFiles/check_explorer_test.dir/check_explorer_test.cpp.o.d"
  "check_explorer_test"
  "check_explorer_test.pdb"
  "check_explorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
