# Empty dependencies file for check_explorer_test.
# This may be replaced when dependencies are built.
