# Empty dependencies file for graph_generators_test.
# This may be replaced when dependencies are built.
