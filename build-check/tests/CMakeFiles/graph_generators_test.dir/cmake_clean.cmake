file(REMOVE_RECURSE
  "CMakeFiles/graph_generators_test.dir/graph_generators_test.cpp.o"
  "CMakeFiles/graph_generators_test.dir/graph_generators_test.cpp.o.d"
  "graph_generators_test"
  "graph_generators_test.pdb"
  "graph_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
