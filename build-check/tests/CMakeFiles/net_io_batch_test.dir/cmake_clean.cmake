file(REMOVE_RECURSE
  "CMakeFiles/net_io_batch_test.dir/net_io_batch_test.cpp.o"
  "CMakeFiles/net_io_batch_test.dir/net_io_batch_test.cpp.o.d"
  "net_io_batch_test"
  "net_io_batch_test.pdb"
  "net_io_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_io_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
