# Empty dependencies file for net_io_batch_test.
# This may be replaced when dependencies are built.
