# Empty dependencies file for net_event_loop_test.
# This may be replaced when dependencies are built.
