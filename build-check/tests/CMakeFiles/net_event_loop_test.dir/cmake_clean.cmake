file(REMOVE_RECURSE
  "CMakeFiles/net_event_loop_test.dir/net_event_loop_test.cpp.o"
  "CMakeFiles/net_event_loop_test.dir/net_event_loop_test.cpp.o.d"
  "net_event_loop_test"
  "net_event_loop_test.pdb"
  "net_event_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_event_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
