file(REMOVE_RECURSE
  "CMakeFiles/mc_validation_test.dir/mc_validation_test.cpp.o"
  "CMakeFiles/mc_validation_test.dir/mc_validation_test.cpp.o.d"
  "mc_validation_test"
  "mc_validation_test.pdb"
  "mc_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
