# Empty dependencies file for mc_validation_test.
# This may be replaced when dependencies are built.
