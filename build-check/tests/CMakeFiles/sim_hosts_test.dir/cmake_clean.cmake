file(REMOVE_RECURSE
  "CMakeFiles/sim_hosts_test.dir/sim_hosts_test.cpp.o"
  "CMakeFiles/sim_hosts_test.dir/sim_hosts_test.cpp.o.d"
  "sim_hosts_test"
  "sim_hosts_test.pdb"
  "sim_hosts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_hosts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
