# Empty dependencies file for sim_hosts_test.
# This may be replaced when dependencies are built.
