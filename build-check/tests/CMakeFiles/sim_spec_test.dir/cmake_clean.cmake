file(REMOVE_RECURSE
  "CMakeFiles/sim_spec_test.dir/sim_spec_test.cpp.o"
  "CMakeFiles/sim_spec_test.dir/sim_spec_test.cpp.o.d"
  "sim_spec_test"
  "sim_spec_test.pdb"
  "sim_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
