# Empty dependencies file for sim_spec_test.
# This may be replaced when dependencies are built.
