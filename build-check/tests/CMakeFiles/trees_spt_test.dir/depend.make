# Empty dependencies file for trees_spt_test.
# This may be replaced when dependencies are built.
