file(REMOVE_RECURSE
  "CMakeFiles/trees_spt_test.dir/trees_spt_test.cpp.o"
  "CMakeFiles/trees_spt_test.dir/trees_spt_test.cpp.o.d"
  "trees_spt_test"
  "trees_spt_test.pdb"
  "trees_spt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trees_spt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
