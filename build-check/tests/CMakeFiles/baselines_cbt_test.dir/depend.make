# Empty dependencies file for baselines_cbt_test.
# This may be replaced when dependencies are built.
