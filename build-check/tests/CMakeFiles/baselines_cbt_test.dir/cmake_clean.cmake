file(REMOVE_RECURSE
  "CMakeFiles/baselines_cbt_test.dir/baselines_cbt_test.cpp.o"
  "CMakeFiles/baselines_cbt_test.dir/baselines_cbt_test.cpp.o.d"
  "baselines_cbt_test"
  "baselines_cbt_test.pdb"
  "baselines_cbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_cbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
