# Empty dependencies file for baselines_bruteforce_test.
# This may be replaced when dependencies are built.
