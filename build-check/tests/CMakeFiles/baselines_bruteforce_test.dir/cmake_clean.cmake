file(REMOVE_RECURSE
  "CMakeFiles/baselines_bruteforce_test.dir/baselines_bruteforce_test.cpp.o"
  "CMakeFiles/baselines_bruteforce_test.dir/baselines_bruteforce_test.cpp.o.d"
  "baselines_bruteforce_test"
  "baselines_bruteforce_test.pdb"
  "baselines_bruteforce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_bruteforce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
