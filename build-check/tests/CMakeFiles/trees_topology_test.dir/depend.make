# Empty dependencies file for trees_topology_test.
# This may be replaced when dependencies are built.
