file(REMOVE_RECURSE
  "CMakeFiles/trees_topology_test.dir/trees_topology_test.cpp.o"
  "CMakeFiles/trees_topology_test.dir/trees_topology_test.cpp.o.d"
  "trees_topology_test"
  "trees_topology_test.pdb"
  "trees_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trees_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
