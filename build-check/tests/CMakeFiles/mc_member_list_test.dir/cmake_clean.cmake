file(REMOVE_RECURSE
  "CMakeFiles/mc_member_list_test.dir/mc_member_list_test.cpp.o"
  "CMakeFiles/mc_member_list_test.dir/mc_member_list_test.cpp.o.d"
  "mc_member_list_test"
  "mc_member_list_test.pdb"
  "mc_member_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_member_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
