# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mc_member_list_test.
