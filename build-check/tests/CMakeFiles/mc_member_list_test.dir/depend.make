# Empty dependencies file for mc_member_list_test.
# This may be replaced when dependencies are built.
