# Empty dependencies file for trees_load_test.
# This may be replaced when dependencies are built.
