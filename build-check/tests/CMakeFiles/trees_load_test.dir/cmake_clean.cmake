file(REMOVE_RECURSE
  "CMakeFiles/trees_load_test.dir/trees_load_test.cpp.o"
  "CMakeFiles/trees_load_test.dir/trees_load_test.cpp.o.d"
  "trees_load_test"
  "trees_load_test.pdb"
  "trees_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trees_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
