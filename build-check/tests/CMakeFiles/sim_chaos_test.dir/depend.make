# Empty dependencies file for sim_chaos_test.
# This may be replaced when dependencies are built.
