file(REMOVE_RECURSE
  "CMakeFiles/sim_chaos_test.dir/sim_chaos_test.cpp.o"
  "CMakeFiles/sim_chaos_test.dir/sim_chaos_test.cpp.o.d"
  "sim_chaos_test"
  "sim_chaos_test.pdb"
  "sim_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
