file(REMOVE_RECURSE
  "CMakeFiles/net_neighbor_test.dir/net_neighbor_test.cpp.o"
  "CMakeFiles/net_neighbor_test.dir/net_neighbor_test.cpp.o.d"
  "net_neighbor_test"
  "net_neighbor_test.pdb"
  "net_neighbor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_neighbor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
