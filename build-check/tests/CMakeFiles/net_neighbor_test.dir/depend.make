# Empty dependencies file for net_neighbor_test.
# This may be replaced when dependencies are built.
