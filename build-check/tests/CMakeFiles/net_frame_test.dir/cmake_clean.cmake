file(REMOVE_RECURSE
  "CMakeFiles/net_frame_test.dir/net_frame_test.cpp.o"
  "CMakeFiles/net_frame_test.dir/net_frame_test.cpp.o.d"
  "net_frame_test"
  "net_frame_test.pdb"
  "net_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
