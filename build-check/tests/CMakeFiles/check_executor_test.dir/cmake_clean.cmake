file(REMOVE_RECURSE
  "CMakeFiles/check_executor_test.dir/check_executor_test.cpp.o"
  "CMakeFiles/check_executor_test.dir/check_executor_test.cpp.o.d"
  "check_executor_test"
  "check_executor_test.pdb"
  "check_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
