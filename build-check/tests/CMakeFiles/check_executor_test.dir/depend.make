# Empty dependencies file for check_executor_test.
# This may be replaced when dependencies are built.
