# Empty dependencies file for lsr_integration_test.
# This may be replaced when dependencies are built.
