file(REMOVE_RECURSE
  "CMakeFiles/lsr_integration_test.dir/lsr_integration_test.cpp.o"
  "CMakeFiles/lsr_integration_test.dir/lsr_integration_test.cpp.o.d"
  "lsr_integration_test"
  "lsr_integration_test.pdb"
  "lsr_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
