file(REMOVE_RECURSE
  "CMakeFiles/mc_shard_test.dir/mc_shard_test.cpp.o"
  "CMakeFiles/mc_shard_test.dir/mc_shard_test.cpp.o.d"
  "mc_shard_test"
  "mc_shard_test.pdb"
  "mc_shard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_shard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
