# Empty dependencies file for mc_shard_test.
# This may be replaced when dependencies are built.
