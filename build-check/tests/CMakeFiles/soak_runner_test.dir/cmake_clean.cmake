file(REMOVE_RECURSE
  "CMakeFiles/soak_runner_test.dir/soak_runner_test.cpp.o"
  "CMakeFiles/soak_runner_test.dir/soak_runner_test.cpp.o.d"
  "soak_runner_test"
  "soak_runner_test.pdb"
  "soak_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soak_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
