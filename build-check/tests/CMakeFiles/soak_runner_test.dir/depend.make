# Empty dependencies file for soak_runner_test.
# This may be replaced when dependencies are built.
