# Empty dependencies file for teleconference.
# This may be replaced when dependencies are built.
