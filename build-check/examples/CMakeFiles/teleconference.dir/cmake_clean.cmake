file(REMOVE_RECURSE
  "CMakeFiles/teleconference.dir/teleconference.cpp.o"
  "CMakeFiles/teleconference.dir/teleconference.cpp.o.d"
  "teleconference"
  "teleconference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleconference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
