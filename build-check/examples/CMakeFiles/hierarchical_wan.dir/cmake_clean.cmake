file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_wan.dir/hierarchical_wan.cpp.o"
  "CMakeFiles/hierarchical_wan.dir/hierarchical_wan.cpp.o.d"
  "hierarchical_wan"
  "hierarchical_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
