# Empty dependencies file for hierarchical_wan.
# This may be replaced when dependencies are built.
