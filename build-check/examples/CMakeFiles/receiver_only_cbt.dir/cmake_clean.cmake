file(REMOVE_RECURSE
  "CMakeFiles/receiver_only_cbt.dir/receiver_only_cbt.cpp.o"
  "CMakeFiles/receiver_only_cbt.dir/receiver_only_cbt.cpp.o.d"
  "receiver_only_cbt"
  "receiver_only_cbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receiver_only_cbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
