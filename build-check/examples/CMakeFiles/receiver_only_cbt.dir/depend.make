# Empty dependencies file for receiver_only_cbt.
# This may be replaced when dependencies are built.
