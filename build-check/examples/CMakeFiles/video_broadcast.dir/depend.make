# Empty dependencies file for video_broadcast.
# This may be replaced when dependencies are built.
