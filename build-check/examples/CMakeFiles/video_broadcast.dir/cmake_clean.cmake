file(REMOVE_RECURSE
  "CMakeFiles/video_broadcast.dir/video_broadcast.cpp.o"
  "CMakeFiles/video_broadcast.dir/video_broadcast.cpp.o.d"
  "video_broadcast"
  "video_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
