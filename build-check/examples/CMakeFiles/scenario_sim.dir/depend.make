# Empty dependencies file for scenario_sim.
# This may be replaced when dependencies are built.
