file(REMOVE_RECURSE
  "CMakeFiles/scenario_sim.dir/scenario_sim.cpp.o"
  "CMakeFiles/scenario_sim.dir/scenario_sim.cpp.o.d"
  "scenario_sim"
  "scenario_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
