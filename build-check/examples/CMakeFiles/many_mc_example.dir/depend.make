# Empty dependencies file for many_mc_example.
# This may be replaced when dependencies are built.
