file(REMOVE_RECURSE
  "CMakeFiles/many_mc_example.dir/many_mc.cpp.o"
  "CMakeFiles/many_mc_example.dir/many_mc.cpp.o.d"
  "many_mc"
  "many_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/many_mc_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
