file(REMOVE_RECURSE
  "CMakeFiles/table_wire_overhead.dir/table_wire_overhead.cpp.o"
  "CMakeFiles/table_wire_overhead.dir/table_wire_overhead.cpp.o.d"
  "table_wire_overhead"
  "table_wire_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_wire_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
