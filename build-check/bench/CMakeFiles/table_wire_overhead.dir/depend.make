# Empty dependencies file for table_wire_overhead.
# This may be replaced when dependencies are built.
