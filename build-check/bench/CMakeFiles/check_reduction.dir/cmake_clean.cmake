file(REMOVE_RECURSE
  "CMakeFiles/check_reduction.dir/check_reduction.cpp.o"
  "CMakeFiles/check_reduction.dir/check_reduction.cpp.o.d"
  "check_reduction"
  "check_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
