# Empty dependencies file for check_reduction.
# This may be replaced when dependencies are built.
