# Empty dependencies file for fig6_bursty_computation.
# This may be replaced when dependencies are built.
