file(REMOVE_RECURSE
  "CMakeFiles/fig6_bursty_computation.dir/fig6_bursty_computation.cpp.o"
  "CMakeFiles/fig6_bursty_computation.dir/fig6_bursty_computation.cpp.o.d"
  "fig6_bursty_computation"
  "fig6_bursty_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bursty_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
