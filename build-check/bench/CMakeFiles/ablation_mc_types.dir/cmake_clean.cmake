file(REMOVE_RECURSE
  "CMakeFiles/ablation_mc_types.dir/ablation_mc_types.cpp.o"
  "CMakeFiles/ablation_mc_types.dir/ablation_mc_types.cpp.o.d"
  "ablation_mc_types"
  "ablation_mc_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mc_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
