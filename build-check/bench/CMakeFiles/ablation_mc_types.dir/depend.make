# Empty dependencies file for ablation_mc_types.
# This may be replaced when dependencies are built.
