file(REMOVE_RECURSE
  "CMakeFiles/net_io.dir/net_io.cpp.o"
  "CMakeFiles/net_io.dir/net_io.cpp.o.d"
  "net_io"
  "net_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
