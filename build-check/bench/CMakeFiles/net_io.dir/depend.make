# Empty dependencies file for net_io.
# This may be replaced when dependencies are built.
