
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/many_mc.cpp" "bench/CMakeFiles/many_mc.dir/many_mc.cpp.o" "gcc" "bench/CMakeFiles/many_mc.dir/many_mc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/sim/CMakeFiles/dgmc_sim.dir/DependInfo.cmake"
  "/root/repo/build-check/src/soak/CMakeFiles/dgmc_soak_lib.dir/DependInfo.cmake"
  "/root/repo/build-check/src/core/CMakeFiles/dgmc_core.dir/DependInfo.cmake"
  "/root/repo/build-check/src/fault/CMakeFiles/dgmc_fault.dir/DependInfo.cmake"
  "/root/repo/build-check/src/lsr/CMakeFiles/dgmc_lsr.dir/DependInfo.cmake"
  "/root/repo/build-check/src/mc/CMakeFiles/dgmc_mc.dir/DependInfo.cmake"
  "/root/repo/build-check/src/trees/CMakeFiles/dgmc_trees.dir/DependInfo.cmake"
  "/root/repo/build-check/src/graph/CMakeFiles/dgmc_graph.dir/DependInfo.cmake"
  "/root/repo/build-check/src/des/CMakeFiles/dgmc_des.dir/DependInfo.cmake"
  "/root/repo/build-check/src/exec/CMakeFiles/dgmc_exec.dir/DependInfo.cmake"
  "/root/repo/build-check/src/util/CMakeFiles/dgmc_util.dir/DependInfo.cmake"
  "/root/repo/build-check/src/check/CMakeFiles/dgmc_check.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
