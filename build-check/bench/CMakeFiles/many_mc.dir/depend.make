# Empty dependencies file for many_mc.
# This may be replaced when dependencies are built.
