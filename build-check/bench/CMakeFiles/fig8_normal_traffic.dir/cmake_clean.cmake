file(REMOVE_RECURSE
  "CMakeFiles/fig8_normal_traffic.dir/fig8_normal_traffic.cpp.o"
  "CMakeFiles/fig8_normal_traffic.dir/fig8_normal_traffic.cpp.o.d"
  "fig8_normal_traffic"
  "fig8_normal_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_normal_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
