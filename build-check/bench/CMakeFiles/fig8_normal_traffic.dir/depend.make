# Empty dependencies file for fig8_normal_traffic.
# This may be replaced when dependencies are built.
