# Empty dependencies file for table_hierarchy.
# This may be replaced when dependencies are built.
