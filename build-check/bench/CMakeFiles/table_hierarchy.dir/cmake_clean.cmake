file(REMOVE_RECURSE
  "CMakeFiles/table_hierarchy.dir/table_hierarchy.cpp.o"
  "CMakeFiles/table_hierarchy.dir/table_hierarchy.cpp.o.d"
  "table_hierarchy"
  "table_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
