file(REMOVE_RECURSE
  "CMakeFiles/table_protocol_comparison.dir/table_protocol_comparison.cpp.o"
  "CMakeFiles/table_protocol_comparison.dir/table_protocol_comparison.cpp.o.d"
  "table_protocol_comparison"
  "table_protocol_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_protocol_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
