# Empty dependencies file for table_protocol_comparison.
# This may be replaced when dependencies are built.
