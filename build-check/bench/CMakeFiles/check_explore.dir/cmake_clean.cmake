file(REMOVE_RECURSE
  "CMakeFiles/check_explore.dir/check_explore.cpp.o"
  "CMakeFiles/check_explore.dir/check_explore.cpp.o.d"
  "check_explore"
  "check_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
