# Empty dependencies file for check_explore.
# This may be replaced when dependencies are built.
