# Empty dependencies file for fig6_burst_size_sweep.
# This may be replaced when dependencies are built.
