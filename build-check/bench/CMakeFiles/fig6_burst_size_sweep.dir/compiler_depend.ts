# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_burst_size_sweep.
