file(REMOVE_RECURSE
  "CMakeFiles/fig6_burst_size_sweep.dir/fig6_burst_size_sweep.cpp.o"
  "CMakeFiles/fig6_burst_size_sweep.dir/fig6_burst_size_sweep.cpp.o.d"
  "fig6_burst_size_sweep"
  "fig6_burst_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_burst_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
