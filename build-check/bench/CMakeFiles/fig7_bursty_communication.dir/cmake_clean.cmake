file(REMOVE_RECURSE
  "CMakeFiles/fig7_bursty_communication.dir/fig7_bursty_communication.cpp.o"
  "CMakeFiles/fig7_bursty_communication.dir/fig7_bursty_communication.cpp.o.d"
  "fig7_bursty_communication"
  "fig7_bursty_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bursty_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
