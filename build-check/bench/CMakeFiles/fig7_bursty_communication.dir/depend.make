# Empty dependencies file for fig7_bursty_communication.
# This may be replaced when dependencies are built.
