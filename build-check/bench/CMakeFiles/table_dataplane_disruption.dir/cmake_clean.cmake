file(REMOVE_RECURSE
  "CMakeFiles/table_dataplane_disruption.dir/table_dataplane_disruption.cpp.o"
  "CMakeFiles/table_dataplane_disruption.dir/table_dataplane_disruption.cpp.o.d"
  "table_dataplane_disruption"
  "table_dataplane_disruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_dataplane_disruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
