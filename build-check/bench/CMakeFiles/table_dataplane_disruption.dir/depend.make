# Empty dependencies file for table_dataplane_disruption.
# This may be replaced when dependencies are built.
