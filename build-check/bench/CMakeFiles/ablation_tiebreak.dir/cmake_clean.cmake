file(REMOVE_RECURSE
  "CMakeFiles/ablation_tiebreak.dir/ablation_tiebreak.cpp.o"
  "CMakeFiles/ablation_tiebreak.dir/ablation_tiebreak.cpp.o.d"
  "ablation_tiebreak"
  "ablation_tiebreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiebreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
