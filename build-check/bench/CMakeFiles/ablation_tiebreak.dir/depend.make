# Empty dependencies file for ablation_tiebreak.
# This may be replaced when dependencies are built.
