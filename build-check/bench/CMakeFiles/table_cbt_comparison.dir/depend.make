# Empty dependencies file for table_cbt_comparison.
# This may be replaced when dependencies are built.
