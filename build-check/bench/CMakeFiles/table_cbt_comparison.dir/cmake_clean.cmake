file(REMOVE_RECURSE
  "CMakeFiles/table_cbt_comparison.dir/table_cbt_comparison.cpp.o"
  "CMakeFiles/table_cbt_comparison.dir/table_cbt_comparison.cpp.o.d"
  "table_cbt_comparison"
  "table_cbt_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_cbt_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
