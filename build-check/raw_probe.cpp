#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>
#include <cstring>
#include <cstdio>
#include <cstdint>
#include <cerrno>
int main() {
  io_uring_params p{};
  p.flags = IORING_SETUP_CQSIZE; p.cq_entries = 256;
  int rfd = syscall(__NR_io_uring_setup, 64, &p);
  printf("setup=%d features=%#x\n", rfd, p.features);
  size_t sq_sz = p.sq_off.array + p.sq_entries*4;
  size_t cq_sz = p.cq_off.cqes + p.cq_entries*sizeof(io_uring_cqe);
  size_t ring_sz = sq_sz > cq_sz ? sq_sz : cq_sz;
  auto* base = (uint8_t*)mmap(0, ring_sz, PROT_READ|PROT_WRITE, MAP_SHARED|MAP_POPULATE, rfd, IORING_OFF_SQ_RING);
  auto* sqes = (io_uring_sqe*)mmap(0, p.sq_entries*sizeof(io_uring_sqe), PROT_READ|PROT_WRITE, MAP_SHARED|MAP_POPULATE, rfd, IORING_OFF_SQES);
  auto* sq_tail = (unsigned*)(base + p.sq_off.tail);
  unsigned sq_mask = *(unsigned*)(base + p.sq_off.ring_mask);
  auto* sq_array = (unsigned*)(base + p.sq_off.array);
  auto* cq_head = (unsigned*)(base + p.cq_off.head);
  auto* cq_tail = (unsigned*)(base + p.cq_off.tail);
  unsigned cq_mask = *(unsigned*)(base + p.cq_off.ring_mask);
  auto* cqes = (io_uring_cqe*)(base + p.cq_off.cqes);
  // pbuf ring: 8 bufs of 2048
  size_t brsz = 8*sizeof(io_uring_buf);
  auto* br = (io_uring_buf_ring*)mmap(0, 4096, PROT_READ|PROT_WRITE, MAP_ANONYMOUS|MAP_PRIVATE, -1, 0);
  io_uring_buf_reg reg{};
  reg.ring_addr = (uint64_t)br; reg.ring_entries = 8; reg.bgid = 0;
  long rr = syscall(__NR_io_uring_register, rfd, IORING_REGISTER_PBUF_RING, &reg, 1);
  printf("pbuf_reg=%ld errno=%d (brsz=%zu)\n", rr, errno, brsz);
  static uint8_t bufmem[8*2048];
  uint16_t tail = 0;
  for (uint16_t b = 0; b < 8; ++b) {
    io_uring_buf* e = &br->bufs[tail & 7];
    e->addr = (uint64_t)(bufmem + b*2048); e->len = 2048; e->bid = b;
    tail++;
  }
  __atomic_store_n(&br->tail, tail, __ATOMIC_RELEASE);
  // udp socket pair (blocking)
  int a = socket(AF_INET, SOCK_DGRAM, 0), b2 = socket(AF_INET, SOCK_DGRAM, 0);
  sockaddr_in addr{}; addr.sin_family = AF_INET; addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bind(a,(sockaddr*)&addr,sizeof addr); bind(b2,(sockaddr*)&addr,sizeof addr);
  sockaddr_in ba{}; socklen_t blen = sizeof ba; getsockname(b2,(sockaddr*)&ba,&blen);
  // arm multishot recv on b2
  unsigned t = *sq_tail; unsigned idx = t & sq_mask;
  io_uring_sqe* s = &sqes[idx]; memset(s, 0, sizeof *s);
  s->opcode = IORING_OP_RECV; s->fd = b2; s->flags = IOSQE_BUFFER_SELECT; s->buf_group = 0;
  s->ioprio = IORING_RECV_MULTISHOT; s->user_data = 42;
  sq_array[idx] = idx;
  __atomic_store_n(sq_tail, t+1, __ATOMIC_RELEASE);
  long er = syscall(__NR_io_uring_enter, rfd, 1, 0, 0, nullptr, 0);
  printf("enter(submit recv)=%ld errno=%d\n", er, errno);
  // send two datagrams
  sendto(a, "hello", 5, 0, (sockaddr*)&ba, sizeof ba);
  sendto(a, "world", 5, 0, (sockaddr*)&ba, sizeof ba);
  er = syscall(__NR_io_uring_enter, rfd, 0, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
  printf("enter(wait)=%ld errno=%d\n", er, errno);
  unsigned h = *cq_head; unsigned ct = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
  while (h != ct) {
    io_uring_cqe* c = &cqes[h & cq_mask];
    printf("cqe ud=%llu res=%d flags=%#x%s%s\n", (unsigned long long)c->user_data, c->res, c->flags,
           (c->flags & IORING_CQE_F_BUFFER) ? " BUF" : "", (c->flags & IORING_CQE_F_MORE) ? " MORE" : "");
    if (c->res > 0 && (c->flags & IORING_CQE_F_BUFFER)) {
      int bid = c->flags >> IORING_CQE_BUFFER_SHIFT;
      printf("  data[bid=%d]: %.*s\n", bid, c->res, bufmem + bid*2048);
    }
    h++;
    __atomic_store_n(cq_head, h, __ATOMIC_RELEASE);
    ct = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
  }
  return 0;
}
