#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>
#include <cstring>
#include <cstdio>
#include <cstdint>
#include <cerrno>
int main() {
  io_uring_params p{};
  p.flags = IORING_SETUP_CQSIZE; p.cq_entries = 256;
  int rfd = syscall(__NR_io_uring_setup, 64, &p);
  size_t sq_sz = p.sq_off.array + p.sq_entries*4;
  size_t cq_sz = p.cq_off.cqes + p.cq_entries*sizeof(io_uring_cqe);
  size_t ring_sz = sq_sz > cq_sz ? sq_sz : cq_sz;
  auto* base = (uint8_t*)mmap(0, ring_sz, PROT_READ|PROT_WRITE, MAP_SHARED|MAP_POPULATE, rfd, IORING_OFF_SQ_RING);
  auto* sqes = (io_uring_sqe*)mmap(0, p.sq_entries*sizeof(io_uring_sqe), PROT_READ|PROT_WRITE, MAP_SHARED|MAP_POPULATE, rfd, IORING_OFF_SQES);
  auto* sq_tail = (unsigned*)(base + p.sq_off.tail);
  unsigned sq_mask = *(unsigned*)(base + p.sq_off.ring_mask);
  auto* sq_array = (unsigned*)(base + p.sq_off.array);
  auto* cq_head = (unsigned*)(base + p.cq_off.head);
  auto* cq_tail = (unsigned*)(base + p.cq_off.tail);
  unsigned cq_mask = *(unsigned*)(base + p.cq_off.ring_mask);
  auto* cqes = (io_uring_cqe*)(base + p.cq_off.cqes);
  auto mksqe = [&]() { unsigned t = *sq_tail, idx = t & sq_mask;
    io_uring_sqe* s = &sqes[idx]; memset(s, 0, sizeof *s);
    sq_array[idx] = idx; __atomic_store_n(sq_tail, t+1, __ATOMIC_RELEASE); return s; };
  int a = socket(AF_INET, SOCK_DGRAM, 0), b = socket(AF_INET, SOCK_DGRAM, 0);
  sockaddr_in addr{}; addr.sin_family = AF_INET; addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bind(a,(sockaddr*)&addr,sizeof addr); bind(b,(sockaddr*)&addr,sizeof addr);
  sockaddr_in ba{}; socklen_t blen = sizeof ba; getsockname(b,(sockaddr*)&ba,&blen);
  static uint8_t bufs[4*2048];
  io_uring_sqe* s = mksqe();
  s->opcode = IORING_OP_PROVIDE_BUFFERS; s->fd = 4;
  s->addr = (uint64_t)bufs; s->len = 2048; s->buf_group = 1; s->off = 0; s->user_data = 1;
  s = mksqe();
  s->opcode = IORING_OP_RECV; s->fd = b; s->flags = IOSQE_BUFFER_SELECT;
  s->buf_group = 1; s->ioprio = IORING_RECV_MULTISHOT; s->user_data = 2;
  long er = syscall(__NR_io_uring_enter, rfd, 2, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
  printf("enter=%ld\n", er);
  for (int i = 0; i < 6; ++i) { char m[16]; int n = snprintf(m, 16, "msg%d", i);
    sendto(a, m, n, 0, (sockaddr*)&ba, sizeof ba); }
  usleep(50000);
  er = syscall(__NR_io_uring_enter, rfd, 0, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
  unsigned h = *cq_head, ct = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
  while (h != ct) {
    io_uring_cqe* c = &cqes[h & cq_mask];
    printf("cqe ud=%llu res=%d flags=%#x%s%s", (unsigned long long)c->user_data, c->res, c->flags,
           (c->flags & IORING_CQE_F_BUFFER) ? " BUF" : "", (c->flags & IORING_CQE_F_MORE) ? " MORE" : "");
    if (c->res > 0 && (c->flags & IORING_CQE_F_BUFFER)) {
      int bid = c->flags >> IORING_CQE_BUFFER_SHIFT;
      printf("  data[bid=%d]: %.*s", bid, c->res, bufs + bid*2048);
    }
    printf("\n");
    h++; __atomic_store_n(cq_head, h, __ATOMIC_RELEASE);
    ct = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
  }
  return 0;
}
