#include "net/io_loop.hpp"
#include <arpa/inet.h>
#include <cstdio>
#include <cstring>
#include <unistd.h>
using namespace dgmc::net;
int main() {
  bool fell_back = false;
  auto loop = make_io_loop(LoopFlavor::kUring, &fell_back);
  std::printf("flavor=%s fell_back=%d\n", flavor_name(loop->flavor()), int(fell_back));
  if (fell_back) return 1;
  int a = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  int b = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  sockaddr_in addr{}; addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); addr.sin_port = 0;
  ::bind(a, (sockaddr*)&addr, sizeof addr);
  ::bind(b, (sockaddr*)&addr, sizeof addr);
  sockaddr_in ba{}; socklen_t len = sizeof ba;
  ::getsockname(b, (sockaddr*)&ba, &len);
  int got = 0;
  loop->add_udp(a, [](const std::uint8_t*, std::size_t) {});
  loop->add_udp(b, [&](const std::uint8_t* d, std::size_t n) {
    ++got;
    std::printf("rx %zu bytes: %.*s (got=%d)\n", n, int(n), d, got);
    if (got == 3) loop->stop();
  });
  loop->schedule_after(0.01, [&] {
    const char* m[3] = {"one", "two", "three"};
    for (int i = 0; i < 3; ++i)
      loop->send_udp(a, ba, (const std::uint8_t*)m[i], std::strlen(m[i]));
  });
  loop->schedule_after(2.0, [&] { std::printf("TIMEOUT\n"); loop->stop(); });
  loop->run();
  const auto& st = loop->io_stats();
  std::printf("enters=%llu rx_dg=%llu tx_dg=%llu timers=%llu\n",
              (unsigned long long)st.uring_enters,
              (unsigned long long)st.rx_datagrams,
              (unsigned long long)st.tx_datagrams,
              (unsigned long long)loop->timers_fired());
  return got == 3 ? 0 : 2;
}
