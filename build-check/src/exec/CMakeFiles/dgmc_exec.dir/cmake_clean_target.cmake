file(REMOVE_RECURSE
  "libdgmc_exec.a"
)
