# Empty dependencies file for dgmc_exec.
# This may be replaced when dependencies are built.
