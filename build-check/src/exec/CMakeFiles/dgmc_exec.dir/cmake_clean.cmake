file(REMOVE_RECURSE
  "CMakeFiles/dgmc_exec.dir/pool.cpp.o"
  "CMakeFiles/dgmc_exec.dir/pool.cpp.o.d"
  "libdgmc_exec.a"
  "libdgmc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
