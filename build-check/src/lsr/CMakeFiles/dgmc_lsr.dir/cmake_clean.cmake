file(REMOVE_RECURSE
  "CMakeFiles/dgmc_lsr.dir/routing.cpp.o"
  "CMakeFiles/dgmc_lsr.dir/routing.cpp.o.d"
  "libdgmc_lsr.a"
  "libdgmc_lsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_lsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
