# Empty dependencies file for dgmc_lsr.
# This may be replaced when dependencies are built.
