file(REMOVE_RECURSE
  "libdgmc_lsr.a"
)
