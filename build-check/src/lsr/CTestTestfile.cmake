# CMake generated Testfile for 
# Source directory: /root/repo/src/lsr
# Build directory: /root/repo/build-check/src/lsr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
