# Empty dependencies file for dgmc_graph.
# This may be replaced when dependencies are built.
