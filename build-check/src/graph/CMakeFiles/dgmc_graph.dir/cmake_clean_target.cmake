file(REMOVE_RECURSE
  "libdgmc_graph.a"
)
