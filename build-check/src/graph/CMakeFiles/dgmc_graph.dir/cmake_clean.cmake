file(REMOVE_RECURSE
  "CMakeFiles/dgmc_graph.dir/algorithms.cpp.o"
  "CMakeFiles/dgmc_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/dgmc_graph.dir/generators.cpp.o"
  "CMakeFiles/dgmc_graph.dir/generators.cpp.o.d"
  "CMakeFiles/dgmc_graph.dir/graph.cpp.o"
  "CMakeFiles/dgmc_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dgmc_graph.dir/permutation.cpp.o"
  "CMakeFiles/dgmc_graph.dir/permutation.cpp.o.d"
  "libdgmc_graph.a"
  "libdgmc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
