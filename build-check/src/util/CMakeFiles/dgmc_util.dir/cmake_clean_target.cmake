file(REMOVE_RECURSE
  "libdgmc_util.a"
)
