file(REMOVE_RECURSE
  "CMakeFiles/dgmc_util.dir/log.cpp.o"
  "CMakeFiles/dgmc_util.dir/log.cpp.o.d"
  "CMakeFiles/dgmc_util.dir/rng.cpp.o"
  "CMakeFiles/dgmc_util.dir/rng.cpp.o.d"
  "CMakeFiles/dgmc_util.dir/stats.cpp.o"
  "CMakeFiles/dgmc_util.dir/stats.cpp.o.d"
  "libdgmc_util.a"
  "libdgmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
