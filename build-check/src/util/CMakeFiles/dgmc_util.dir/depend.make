# Empty dependencies file for dgmc_util.
# This may be replaced when dependencies are built.
