# CMake generated Testfile for 
# Source directory: /root/repo/src/soak
# Build directory: /root/repo/build-check/src/soak
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
