file(REMOVE_RECURSE
  "CMakeFiles/dgmc_soak_cli.dir/dgmc_soak_main.cpp.o"
  "CMakeFiles/dgmc_soak_cli.dir/dgmc_soak_main.cpp.o.d"
  "dgmc_soak"
  "dgmc_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_soak_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
