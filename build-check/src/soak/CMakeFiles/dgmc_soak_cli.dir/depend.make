# Empty dependencies file for dgmc_soak_cli.
# This may be replaced when dependencies are built.
