file(REMOVE_RECURSE
  "libdgmc_soak_lib.a"
)
