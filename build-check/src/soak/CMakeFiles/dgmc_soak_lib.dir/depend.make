# Empty dependencies file for dgmc_soak_lib.
# This may be replaced when dependencies are built.
