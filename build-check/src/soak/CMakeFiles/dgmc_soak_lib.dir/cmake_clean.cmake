file(REMOVE_RECURSE
  "CMakeFiles/dgmc_soak_lib.dir/soak.cpp.o"
  "CMakeFiles/dgmc_soak_lib.dir/soak.cpp.o.d"
  "libdgmc_soak_lib.a"
  "libdgmc_soak_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_soak_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
