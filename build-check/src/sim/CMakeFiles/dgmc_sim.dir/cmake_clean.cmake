file(REMOVE_RECURSE
  "CMakeFiles/dgmc_sim.dir/dataplane.cpp.o"
  "CMakeFiles/dgmc_sim.dir/dataplane.cpp.o.d"
  "CMakeFiles/dgmc_sim.dir/experiment.cpp.o"
  "CMakeFiles/dgmc_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/dgmc_sim.dir/hierarchy.cpp.o"
  "CMakeFiles/dgmc_sim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/dgmc_sim.dir/hosts.cpp.o"
  "CMakeFiles/dgmc_sim.dir/hosts.cpp.o.d"
  "CMakeFiles/dgmc_sim.dir/many_mc.cpp.o"
  "CMakeFiles/dgmc_sim.dir/many_mc.cpp.o.d"
  "CMakeFiles/dgmc_sim.dir/network.cpp.o"
  "CMakeFiles/dgmc_sim.dir/network.cpp.o.d"
  "CMakeFiles/dgmc_sim.dir/scenario.cpp.o"
  "CMakeFiles/dgmc_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/dgmc_sim.dir/spec.cpp.o"
  "CMakeFiles/dgmc_sim.dir/spec.cpp.o.d"
  "CMakeFiles/dgmc_sim.dir/workload.cpp.o"
  "CMakeFiles/dgmc_sim.dir/workload.cpp.o.d"
  "libdgmc_sim.a"
  "libdgmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
