# Empty dependencies file for dgmc_sim.
# This may be replaced when dependencies are built.
