
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dataplane.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/dataplane.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/dataplane.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/hierarchy.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/sim/hosts.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/hosts.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/hosts.cpp.o.d"
  "/root/repo/src/sim/many_mc.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/many_mc.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/many_mc.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/spec.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/spec.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/spec.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/dgmc_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/dgmc_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/core/CMakeFiles/dgmc_core.dir/DependInfo.cmake"
  "/root/repo/build-check/src/fault/CMakeFiles/dgmc_fault.dir/DependInfo.cmake"
  "/root/repo/build-check/src/lsr/CMakeFiles/dgmc_lsr.dir/DependInfo.cmake"
  "/root/repo/build-check/src/mc/CMakeFiles/dgmc_mc.dir/DependInfo.cmake"
  "/root/repo/build-check/src/trees/CMakeFiles/dgmc_trees.dir/DependInfo.cmake"
  "/root/repo/build-check/src/graph/CMakeFiles/dgmc_graph.dir/DependInfo.cmake"
  "/root/repo/build-check/src/des/CMakeFiles/dgmc_des.dir/DependInfo.cmake"
  "/root/repo/build-check/src/exec/CMakeFiles/dgmc_exec.dir/DependInfo.cmake"
  "/root/repo/build-check/src/util/CMakeFiles/dgmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
