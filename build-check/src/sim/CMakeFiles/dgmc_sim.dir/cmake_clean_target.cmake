file(REMOVE_RECURSE
  "libdgmc_sim.a"
)
