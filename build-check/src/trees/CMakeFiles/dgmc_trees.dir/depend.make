# Empty dependencies file for dgmc_trees.
# This may be replaced when dependencies are built.
