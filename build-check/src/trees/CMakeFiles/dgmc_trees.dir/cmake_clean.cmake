file(REMOVE_RECURSE
  "CMakeFiles/dgmc_trees.dir/exact.cpp.o"
  "CMakeFiles/dgmc_trees.dir/exact.cpp.o.d"
  "CMakeFiles/dgmc_trees.dir/incremental.cpp.o"
  "CMakeFiles/dgmc_trees.dir/incremental.cpp.o.d"
  "CMakeFiles/dgmc_trees.dir/load.cpp.o"
  "CMakeFiles/dgmc_trees.dir/load.cpp.o.d"
  "CMakeFiles/dgmc_trees.dir/spt.cpp.o"
  "CMakeFiles/dgmc_trees.dir/spt.cpp.o.d"
  "CMakeFiles/dgmc_trees.dir/steiner.cpp.o"
  "CMakeFiles/dgmc_trees.dir/steiner.cpp.o.d"
  "CMakeFiles/dgmc_trees.dir/topology.cpp.o"
  "CMakeFiles/dgmc_trees.dir/topology.cpp.o.d"
  "libdgmc_trees.a"
  "libdgmc_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
