
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trees/exact.cpp" "src/trees/CMakeFiles/dgmc_trees.dir/exact.cpp.o" "gcc" "src/trees/CMakeFiles/dgmc_trees.dir/exact.cpp.o.d"
  "/root/repo/src/trees/incremental.cpp" "src/trees/CMakeFiles/dgmc_trees.dir/incremental.cpp.o" "gcc" "src/trees/CMakeFiles/dgmc_trees.dir/incremental.cpp.o.d"
  "/root/repo/src/trees/load.cpp" "src/trees/CMakeFiles/dgmc_trees.dir/load.cpp.o" "gcc" "src/trees/CMakeFiles/dgmc_trees.dir/load.cpp.o.d"
  "/root/repo/src/trees/spt.cpp" "src/trees/CMakeFiles/dgmc_trees.dir/spt.cpp.o" "gcc" "src/trees/CMakeFiles/dgmc_trees.dir/spt.cpp.o.d"
  "/root/repo/src/trees/steiner.cpp" "src/trees/CMakeFiles/dgmc_trees.dir/steiner.cpp.o" "gcc" "src/trees/CMakeFiles/dgmc_trees.dir/steiner.cpp.o.d"
  "/root/repo/src/trees/topology.cpp" "src/trees/CMakeFiles/dgmc_trees.dir/topology.cpp.o" "gcc" "src/trees/CMakeFiles/dgmc_trees.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/graph/CMakeFiles/dgmc_graph.dir/DependInfo.cmake"
  "/root/repo/build-check/src/util/CMakeFiles/dgmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
