file(REMOVE_RECURSE
  "libdgmc_trees.a"
)
