file(REMOVE_RECURSE
  "CMakeFiles/dgmc_core.dir/codec.cpp.o"
  "CMakeFiles/dgmc_core.dir/codec.cpp.o.d"
  "CMakeFiles/dgmc_core.dir/protocol.cpp.o"
  "CMakeFiles/dgmc_core.dir/protocol.cpp.o.d"
  "CMakeFiles/dgmc_core.dir/timestamp.cpp.o"
  "CMakeFiles/dgmc_core.dir/timestamp.cpp.o.d"
  "libdgmc_core.a"
  "libdgmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
