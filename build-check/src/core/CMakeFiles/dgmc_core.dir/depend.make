# Empty dependencies file for dgmc_core.
# This may be replaced when dependencies are built.
