file(REMOVE_RECURSE
  "libdgmc_core.a"
)
