# Empty dependencies file for dgmc_mc.
# This may be replaced when dependencies are built.
