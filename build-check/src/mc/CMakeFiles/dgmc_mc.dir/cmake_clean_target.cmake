file(REMOVE_RECURSE
  "libdgmc_mc.a"
)
