file(REMOVE_RECURSE
  "CMakeFiles/dgmc_mc.dir/algorithm.cpp.o"
  "CMakeFiles/dgmc_mc.dir/algorithm.cpp.o.d"
  "CMakeFiles/dgmc_mc.dir/member_list.cpp.o"
  "CMakeFiles/dgmc_mc.dir/member_list.cpp.o.d"
  "CMakeFiles/dgmc_mc.dir/qos.cpp.o"
  "CMakeFiles/dgmc_mc.dir/qos.cpp.o.d"
  "CMakeFiles/dgmc_mc.dir/shard_store.cpp.o"
  "CMakeFiles/dgmc_mc.dir/shard_store.cpp.o.d"
  "CMakeFiles/dgmc_mc.dir/validation.cpp.o"
  "CMakeFiles/dgmc_mc.dir/validation.cpp.o.d"
  "libdgmc_mc.a"
  "libdgmc_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
