
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/algorithm.cpp" "src/mc/CMakeFiles/dgmc_mc.dir/algorithm.cpp.o" "gcc" "src/mc/CMakeFiles/dgmc_mc.dir/algorithm.cpp.o.d"
  "/root/repo/src/mc/member_list.cpp" "src/mc/CMakeFiles/dgmc_mc.dir/member_list.cpp.o" "gcc" "src/mc/CMakeFiles/dgmc_mc.dir/member_list.cpp.o.d"
  "/root/repo/src/mc/qos.cpp" "src/mc/CMakeFiles/dgmc_mc.dir/qos.cpp.o" "gcc" "src/mc/CMakeFiles/dgmc_mc.dir/qos.cpp.o.d"
  "/root/repo/src/mc/shard_store.cpp" "src/mc/CMakeFiles/dgmc_mc.dir/shard_store.cpp.o" "gcc" "src/mc/CMakeFiles/dgmc_mc.dir/shard_store.cpp.o.d"
  "/root/repo/src/mc/validation.cpp" "src/mc/CMakeFiles/dgmc_mc.dir/validation.cpp.o" "gcc" "src/mc/CMakeFiles/dgmc_mc.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/trees/CMakeFiles/dgmc_trees.dir/DependInfo.cmake"
  "/root/repo/build-check/src/graph/CMakeFiles/dgmc_graph.dir/DependInfo.cmake"
  "/root/repo/build-check/src/util/CMakeFiles/dgmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
