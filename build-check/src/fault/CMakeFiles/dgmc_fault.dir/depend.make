# Empty dependencies file for dgmc_fault.
# This may be replaced when dependencies are built.
