file(REMOVE_RECURSE
  "libdgmc_fault.a"
)
