file(REMOVE_RECURSE
  "CMakeFiles/dgmc_fault.dir/fault.cpp.o"
  "CMakeFiles/dgmc_fault.dir/fault.cpp.o.d"
  "libdgmc_fault.a"
  "libdgmc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
