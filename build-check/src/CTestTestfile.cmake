# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-check/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("rt")
subdirs("exec")
subdirs("des")
subdirs("graph")
subdirs("fault")
subdirs("trees")
subdirs("lsr")
subdirs("mc")
subdirs("core")
subdirs("baselines")
subdirs("sim")
subdirs("check")
subdirs("soak")
subdirs("net")
