# Empty dependencies file for dgmc_check_cli.
# This may be replaced when dependencies are built.
