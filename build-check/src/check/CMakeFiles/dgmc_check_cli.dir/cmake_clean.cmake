file(REMOVE_RECURSE
  "CMakeFiles/dgmc_check_cli.dir/dgmc_check_main.cpp.o"
  "CMakeFiles/dgmc_check_cli.dir/dgmc_check_main.cpp.o.d"
  "dgmc_check"
  "dgmc_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_check_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
