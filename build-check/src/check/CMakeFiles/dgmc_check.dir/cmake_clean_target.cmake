file(REMOVE_RECURSE
  "libdgmc_check.a"
)
