file(REMOVE_RECURSE
  "CMakeFiles/dgmc_check.dir/backward.cpp.o"
  "CMakeFiles/dgmc_check.dir/backward.cpp.o.d"
  "CMakeFiles/dgmc_check.dir/checkpoint.cpp.o"
  "CMakeFiles/dgmc_check.dir/checkpoint.cpp.o.d"
  "CMakeFiles/dgmc_check.dir/executor.cpp.o"
  "CMakeFiles/dgmc_check.dir/executor.cpp.o.d"
  "CMakeFiles/dgmc_check.dir/explorer.cpp.o"
  "CMakeFiles/dgmc_check.dir/explorer.cpp.o.d"
  "CMakeFiles/dgmc_check.dir/invariants.cpp.o"
  "CMakeFiles/dgmc_check.dir/invariants.cpp.o.d"
  "CMakeFiles/dgmc_check.dir/minimize.cpp.o"
  "CMakeFiles/dgmc_check.dir/minimize.cpp.o.d"
  "CMakeFiles/dgmc_check.dir/reduction.cpp.o"
  "CMakeFiles/dgmc_check.dir/reduction.cpp.o.d"
  "CMakeFiles/dgmc_check.dir/scenario.cpp.o"
  "CMakeFiles/dgmc_check.dir/scenario.cpp.o.d"
  "CMakeFiles/dgmc_check.dir/trace.cpp.o"
  "CMakeFiles/dgmc_check.dir/trace.cpp.o.d"
  "libdgmc_check.a"
  "libdgmc_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
