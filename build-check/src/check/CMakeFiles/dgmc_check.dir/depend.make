# Empty dependencies file for dgmc_check.
# This may be replaced when dependencies are built.
