file(REMOVE_RECURSE
  "libdgmc_des.a"
)
