file(REMOVE_RECURSE
  "CMakeFiles/dgmc_des.dir/scheduler.cpp.o"
  "CMakeFiles/dgmc_des.dir/scheduler.cpp.o.d"
  "libdgmc_des.a"
  "libdgmc_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
