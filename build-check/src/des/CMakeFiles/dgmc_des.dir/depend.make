# Empty dependencies file for dgmc_des.
# This may be replaced when dependencies are built.
