# Empty dependencies file for dgmc_netd_cli.
# This may be replaced when dependencies are built.
