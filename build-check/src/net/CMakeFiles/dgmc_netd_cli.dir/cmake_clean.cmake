file(REMOVE_RECURSE
  "CMakeFiles/dgmc_netd_cli.dir/dgmc_netd_main.cpp.o"
  "CMakeFiles/dgmc_netd_cli.dir/dgmc_netd_main.cpp.o.d"
  "dgmc_netd"
  "dgmc_netd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_netd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
