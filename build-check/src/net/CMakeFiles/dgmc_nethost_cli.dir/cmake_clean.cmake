file(REMOVE_RECURSE
  "CMakeFiles/dgmc_nethost_cli.dir/dgmc_nethost_main.cpp.o"
  "CMakeFiles/dgmc_nethost_cli.dir/dgmc_nethost_main.cpp.o.d"
  "dgmc_nethost"
  "dgmc_nethost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_nethost_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
