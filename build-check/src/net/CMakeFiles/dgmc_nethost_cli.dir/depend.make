# Empty dependencies file for dgmc_nethost_cli.
# This may be replaced when dependencies are built.
