
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/event_loop.cpp" "src/net/CMakeFiles/dgmc_net_core.dir/event_loop.cpp.o" "gcc" "src/net/CMakeFiles/dgmc_net_core.dir/event_loop.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/dgmc_net_core.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/dgmc_net_core.dir/frame.cpp.o.d"
  "/root/repo/src/net/io_loop.cpp" "src/net/CMakeFiles/dgmc_net_core.dir/io_loop.cpp.o" "gcc" "src/net/CMakeFiles/dgmc_net_core.dir/io_loop.cpp.o.d"
  "/root/repo/src/net/neighbor.cpp" "src/net/CMakeFiles/dgmc_net_core.dir/neighbor.cpp.o" "gcc" "src/net/CMakeFiles/dgmc_net_core.dir/neighbor.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/dgmc_net_core.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/dgmc_net_core.dir/switch.cpp.o.d"
  "/root/repo/src/net/uring_loop.cpp" "src/net/CMakeFiles/dgmc_net_core.dir/uring_loop.cpp.o" "gcc" "src/net/CMakeFiles/dgmc_net_core.dir/uring_loop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/core/CMakeFiles/dgmc_core.dir/DependInfo.cmake"
  "/root/repo/build-check/src/lsr/CMakeFiles/dgmc_lsr.dir/DependInfo.cmake"
  "/root/repo/build-check/src/graph/CMakeFiles/dgmc_graph.dir/DependInfo.cmake"
  "/root/repo/build-check/src/util/CMakeFiles/dgmc_util.dir/DependInfo.cmake"
  "/root/repo/build-check/src/mc/CMakeFiles/dgmc_mc.dir/DependInfo.cmake"
  "/root/repo/build-check/src/trees/CMakeFiles/dgmc_trees.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
