# Empty dependencies file for dgmc_net_core.
# This may be replaced when dependencies are built.
