file(REMOVE_RECURSE
  "CMakeFiles/dgmc_net_core.dir/event_loop.cpp.o"
  "CMakeFiles/dgmc_net_core.dir/event_loop.cpp.o.d"
  "CMakeFiles/dgmc_net_core.dir/frame.cpp.o"
  "CMakeFiles/dgmc_net_core.dir/frame.cpp.o.d"
  "CMakeFiles/dgmc_net_core.dir/io_loop.cpp.o"
  "CMakeFiles/dgmc_net_core.dir/io_loop.cpp.o.d"
  "CMakeFiles/dgmc_net_core.dir/neighbor.cpp.o"
  "CMakeFiles/dgmc_net_core.dir/neighbor.cpp.o.d"
  "CMakeFiles/dgmc_net_core.dir/switch.cpp.o"
  "CMakeFiles/dgmc_net_core.dir/switch.cpp.o.d"
  "CMakeFiles/dgmc_net_core.dir/uring_loop.cpp.o"
  "CMakeFiles/dgmc_net_core.dir/uring_loop.cpp.o.d"
  "libdgmc_net_core.a"
  "libdgmc_net_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_net_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
