file(REMOVE_RECURSE
  "libdgmc_net_core.a"
)
