file(REMOVE_RECURSE
  "libdgmc_net_harness.a"
)
