file(REMOVE_RECURSE
  "CMakeFiles/dgmc_net_harness.dir/cluster.cpp.o"
  "CMakeFiles/dgmc_net_harness.dir/cluster.cpp.o.d"
  "libdgmc_net_harness.a"
  "libdgmc_net_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_net_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
