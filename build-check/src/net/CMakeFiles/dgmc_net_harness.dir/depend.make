# Empty dependencies file for dgmc_net_harness.
# This may be replaced when dependencies are built.
