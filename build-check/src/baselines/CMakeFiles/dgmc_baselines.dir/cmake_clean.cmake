file(REMOVE_RECURSE
  "CMakeFiles/dgmc_baselines.dir/bruteforce.cpp.o"
  "CMakeFiles/dgmc_baselines.dir/bruteforce.cpp.o.d"
  "CMakeFiles/dgmc_baselines.dir/cbt.cpp.o"
  "CMakeFiles/dgmc_baselines.dir/cbt.cpp.o.d"
  "CMakeFiles/dgmc_baselines.dir/mospf.cpp.o"
  "CMakeFiles/dgmc_baselines.dir/mospf.cpp.o.d"
  "libdgmc_baselines.a"
  "libdgmc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgmc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
