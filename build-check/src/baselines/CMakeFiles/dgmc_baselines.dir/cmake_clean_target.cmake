file(REMOVE_RECURSE
  "libdgmc_baselines.a"
)
