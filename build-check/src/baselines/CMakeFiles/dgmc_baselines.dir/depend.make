# Empty dependencies file for dgmc_baselines.
# This may be replaced when dependencies are built.
