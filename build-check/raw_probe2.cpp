#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>
#include <cstring>
#include <cstdio>
#include <cstdint>
#include <cerrno>

struct Ring {
  int fd; io_uring_params p;
  uint8_t* base; io_uring_sqe* sqes;
  unsigned *sq_tail, sq_mask, *sq_array, *cq_head, *cq_tail, cq_mask;
  io_uring_cqe* cqes;
};
bool setup(Ring& r) {
  memset(&r.p, 0, sizeof r.p);
  r.p.flags = IORING_SETUP_CQSIZE; r.p.cq_entries = 256;
  r.fd = syscall(__NR_io_uring_setup, 64, &r.p);
  if (r.fd < 0) return false;
  size_t sq_sz = r.p.sq_off.array + r.p.sq_entries*4;
  size_t cq_sz = r.p.cq_off.cqes + r.p.cq_entries*sizeof(io_uring_cqe);
  size_t ring_sz = sq_sz > cq_sz ? sq_sz : cq_sz;
  r.base = (uint8_t*)mmap(0, ring_sz, PROT_READ|PROT_WRITE, MAP_SHARED|MAP_POPULATE, r.fd, IORING_OFF_SQ_RING);
  r.sqes = (io_uring_sqe*)mmap(0, r.p.sq_entries*sizeof(io_uring_sqe), PROT_READ|PROT_WRITE, MAP_SHARED|MAP_POPULATE, r.fd, IORING_OFF_SQES);
  r.sq_tail = (unsigned*)(r.base + r.p.sq_off.tail);
  r.sq_mask = *(unsigned*)(r.base + r.p.sq_off.ring_mask);
  r.sq_array = (unsigned*)(r.base + r.p.sq_off.array);
  r.cq_head = (unsigned*)(r.base + r.p.cq_off.head);
  r.cq_tail = (unsigned*)(r.base + r.p.cq_off.tail);
  r.cq_mask = *(unsigned*)(r.base + r.p.cq_off.ring_mask);
  r.cqes = (io_uring_cqe*)(r.base + r.p.cq_off.cqes);
  return true;
}
io_uring_sqe* sqe(Ring& r) {
  unsigned t = *r.sq_tail, idx = t & r.sq_mask;
  io_uring_sqe* s = &r.sqes[idx]; memset(s, 0, sizeof *s);
  r.sq_array[idx] = idx;
  __atomic_store_n(r.sq_tail, t+1, __ATOMIC_RELEASE);
  return s;
}
void drain(Ring& r, const char* tag, uint8_t* bufmem, size_t bsz) {
  unsigned h = *r.cq_head, ct = __atomic_load_n(r.cq_tail, __ATOMIC_ACQUIRE);
  while (h != ct) {
    io_uring_cqe* c = &r.cqes[h & r.cq_mask];
    printf("[%s] cqe ud=%llu res=%d flags=%#x%s%s\n", tag, (unsigned long long)c->user_data, c->res, c->flags,
           (c->flags & IORING_CQE_F_BUFFER) ? " BUF" : "", (c->flags & IORING_CQE_F_MORE) ? " MORE" : "");
    if (c->res > 0 && (c->flags & IORING_CQE_F_BUFFER) && bufmem) {
      int bid = c->flags >> IORING_CQE_BUFFER_SHIFT;
      printf("  data[bid=%d]: %.*s\n", bid, c->res, bufmem + bid*bsz);
    }
    h++; __atomic_store_n(r.cq_head, h, __ATOMIC_RELEASE);
    ct = __atomic_load_n(r.cq_tail, __ATOMIC_ACQUIRE);
  }
}
int main() {
  // test A: legacy PROVIDE_BUFFERS + single-shot recv, bgid 1
  Ring r{}; setup(r);
  int a = socket(AF_INET, SOCK_DGRAM, 0), b = socket(AF_INET, SOCK_DGRAM, 0);
  sockaddr_in addr{}; addr.sin_family = AF_INET; addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bind(a,(sockaddr*)&addr,sizeof addr); bind(b,(sockaddr*)&addr,sizeof addr);
  sockaddr_in ba{}; socklen_t blen = sizeof ba; getsockname(b,(sockaddr*)&ba,&blen);
  static uint8_t legacy[8*2048];
  io_uring_sqe* s = sqe(r);
  s->opcode = IORING_OP_PROVIDE_BUFFERS; s->fd = 8; // nbufs
  s->addr = (uint64_t)legacy; s->len = 2048; s->buf_group = 1; s->off = 0; s->user_data = 1;
  long er = syscall(__NR_io_uring_enter, r.fd, 1, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
  printf("A provide enter=%ld errno=%d\n", er, errno);
  drain(r, "A", nullptr, 0);
  s = sqe(r);
  s->opcode = IORING_OP_RECV; s->fd = b; s->flags = IOSQE_BUFFER_SELECT; s->buf_group = 1; s->user_data = 2;
  er = syscall(__NR_io_uring_enter, r.fd, 1, 0, 0, nullptr, 0);
  sendto(a, "hello", 5, 0, (sockaddr*)&ba, sizeof ba);
  er = syscall(__NR_io_uring_enter, r.fd, 0, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
  printf("A wait=%ld errno=%d\n", er, errno);
  drain(r, "A-recv", legacy, 2048);

  // test B: pbuf ring, single-shot, bgid 3
  void* brm = mmap(0, 4096, PROT_READ|PROT_WRITE, MAP_ANONYMOUS|MAP_PRIVATE, -1, 0);
  auto* br = (io_uring_buf_ring*)brm;
  io_uring_buf_reg reg{}; reg.ring_addr = (uint64_t)br; reg.ring_entries = 8; reg.bgid = 3;
  long rr = syscall(__NR_io_uring_register, r.fd, IORING_REGISTER_PBUF_RING, &reg, 1);
  printf("B pbuf_reg=%ld errno=%d\n", rr, errno);
  static uint8_t bufmem[8*2048];
  uint16_t tail = 0;
  for (uint16_t i = 0; i < 8; ++i) {
    io_uring_buf* e = &br->bufs[tail & 7];
    e->addr = (uint64_t)(bufmem + i*2048); e->len = 2048; e->bid = i; tail++;
  }
  __atomic_store_n(&br->tail, tail, __ATOMIC_RELEASE);
  printf("B tail published=%u sizeof(io_uring_buf)=%zu offsetof tail=%zu\n", tail,
         sizeof(io_uring_buf), (size_t)((uint8_t*)&br->tail - (uint8_t*)br));
  s = sqe(r);
  s->opcode = IORING_OP_RECV; s->fd = b; s->flags = IOSQE_BUFFER_SELECT; s->buf_group = 3; s->user_data = 3;
  er = syscall(__NR_io_uring_enter, r.fd, 1, 0, 0, nullptr, 0);
  sendto(a, "world", 5, 0, (sockaddr*)&ba, sizeof ba);
  er = syscall(__NR_io_uring_enter, r.fd, 0, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
  printf("B wait=%ld errno=%d\n", er, errno);
  drain(r, "B-recv", bufmem, 2048);
  return 0;
}
