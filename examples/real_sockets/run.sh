#!/usr/bin/env bash
# Minimal real-socket D-GMC deployment: four dgmc_netd processes on
# 127.0.0.1, one per switch of ring4.spec, UDP ports BASE..BASE+3.
#
#   ./run.sh [BUILD_DIR] [BASE_PORT]
#
# The script demonstrates the full loop the paper's protocol is meant
# to survive in a real network:
#   1. boot 4 switch processes; heartbeats bring all adjacencies up;
#   2. the spec's flash crowd joins switches 0..2 to MC 1;
#   3. switch 3 is frozen (SIGSTOP) for longer than the dead interval —
#      its two ring neighbors declare the links down by heartbeat
#      timeout and flood the topology change;
#   4. switch 3 is thawed (SIGCONT); HELLOs revive the links and the
#      partition-resync machinery reconciles state;
#   5. all processes get SIGTERM and dump their final protocol state;
#      the dumps must be identical — that is D-GMC's consensus
#      invariant, now checked across OS processes instead of
#      simulation objects.
#
# Exit status: 0 if every switch dumped identical state, 1 otherwise.
set -u

BUILD_DIR=${1:-$(cd "$(dirname "$0")/../.." && pwd)/build}
BASE_PORT=${2:-47000}
NETD="$BUILD_DIR/src/net/dgmc_netd"
SPEC="$(cd "$(dirname "$0")" && pwd)/ring4.spec"
OUT=$(mktemp -d)
trap 'kill "${PIDS[@]}" 2>/dev/null; rm -rf "$OUT"' EXIT

if [ ! -x "$NETD" ]; then
  echo "run.sh: $NETD not built (cmake --build $BUILD_DIR --target dgmc_netd)" >&2
  exit 1
fi

# Short heartbeat timers so the demo fits in seconds; the defaults
# (50ms/500ms) are tuned for less chatty long-running deployments.
HELLO=0.05
DEAD=0.4

echo "== booting 4 switches (UDP ports $BASE_PORT-$((BASE_PORT + 3)))"
PIDS=()
for node in 0 1 2 3; do
  "$NETD" "$SPEC" --node $node --base-port "$BASE_PORT" \
    --hello $HELLO --dead $DEAD \
    --state-out "$OUT/state.$node" &
  PIDS+=($!)
done

sleep 2  # adjacencies up, flash-crowd joins (0.5s..~1s) done

echo "== freezing switch 3 (SIGSTOP): neighbors must detect link death"
kill -STOP "${PIDS[3]}"
sleep 1.5  # > dead interval: links 2-3 and 3-0 declared down, flooded

echo "== thawing switch 3 (SIGCONT): heartbeats revive the links"
kill -CONT "${PIDS[3]}"
sleep 2  # revival + resync + convergence

echo "== shutting down"
kill -TERM "${PIDS[@]}" 2>/dev/null
FAIL=0
for pid in "${PIDS[@]}"; do
  wait "$pid" || FAIL=1
done

echo "== comparing state dumps"
# The trailing `stats` line is per-process transmit accounting, not
# consensus state — compare only the `mc ` lines.
for node in 0 1 2 3; do
  grep '^mc ' "$OUT/state.$node" > "$OUT/mc.$node" || true
done
for node in 1 2 3; do
  if ! diff -u "$OUT/mc.0" "$OUT/mc.$node" >/dev/null; then
    echo "MISMATCH: switch $node disagrees with switch 0:"
    diff -u "$OUT/mc.0" "$OUT/mc.$node" | sed 's/^/  /'
    FAIL=1
  fi
done

if [ "$FAIL" -eq 0 ]; then
  echo "OK: all 4 switches converged to identical state:"
  sed 's/^/  /' "$OUT/state.0"
else
  echo "FAILED"
fi
exit $FAIL
