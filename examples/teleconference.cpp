// Teleconference: the paper's motivating symmetric-MC application
// (§1: "a typical application that may be supported by a symmetric MC
// is a teleconference, since every member may both speak and listen").
//
// Simulates a conference on a 60-switch Waxman WAN where participants
// dial in over time, a batch of latecomers join at once (the paper's
// "very busy period" at the start of a multi-party conversation), and
// people drop off — then reports what the signaling cost.
#include <cstdio>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/params.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kConference = 0;

void report(const sim::DgmcNetwork& net, const char* phase,
            const sim::DgmcNetwork::Totals& since) {
  const auto now = net.totals();
  std::printf("%-28s computations=%3llu  floodings=%3llu\n", phase,
              static_cast<unsigned long long>(now.computations -
                                              since.computations),
              static_cast<unsigned long long>(now.mc_lsa_floodings -
                                              since.mc_lsa_floodings));
}

}  // namespace

int main() {
  util::RngStream rng(2026);
  graph::Graph g = graph::waxman(60, graph::WaxmanParams{}, rng);
  g.scale_delays(1e-6 / graph::mean_link_delay(g));

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4 * des::kMicrosecond;
  params.dgmc.computation_time = 25 * des::kMillisecond;
  sim::DgmcNetwork net(std::move(g), params,
                       mc::make_incremental_algorithm());

  const double round =
      net.flooding_diameter() + 25 * des::kMillisecond;
  std::printf("Network: 60 switches, flooding diameter %.3f ms, round %.1f ms\n\n",
              net.flooding_diameter() * 1e3, round * 1e3);

  // Phase 1: the organizer and two early participants, well separated.
  auto mark = net.totals();
  for (graph::NodeId who : {5, 23, 48}) {
    net.join(who, kConference, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  report(net, "3 early participants", mark);

  // Phase 2: the meeting starts — six latecomers inside half a round,
  // producing exactly the conflicting-proposal storm §4.1 studies.
  mark = net.totals();
  const des::SimTime t0 = net.scheduler().now();
  int slot = 0;
  for (graph::NodeId who : {2, 11, 30, 37, 44, 59}) {
    net.scheduler().schedule_at(t0 + slot++ * round / 12.0, [&net, who] {
      net.join(who, kConference, mc::McType::kSymmetric);
    });
  }
  net.run_to_quiescence();
  report(net, "6-way join burst", mark);
  std::printf("  burst convergence: %.1f rounds\n",
              (net.last_install_time() - t0) / round);

  // Phase 3: gradual drop-offs.
  mark = net.totals();
  for (graph::NodeId who : {23, 44, 2}) {
    net.leave(who, kConference);
    net.run_to_quiescence();
  }
  report(net, "3 hang-ups", mark);

  const trees::Topology tree = net.agreed_topology(kConference);
  std::printf(
      "\nFinal conference tree: %zu edges, cost %.0f, members:",
      tree.edge_count(),
      trees::topology_cost(net.physical(), tree));
  for (graph::NodeId m : net.switch_at(0).members(kConference)->all()) {
    std::printf(" %d", m);
  }
  std::printf("\nAll switches agree: %s\n",
              net.converged(kConference) ? "yes" : "NO");
  return 0;
}
