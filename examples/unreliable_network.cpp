// Unreliable network: the same membership workload run over a lossy,
// flapping, crashing network — first with the paper's lossless
// assumption left in place (floodings silently vanish), then with the
// per-link ack/retransmit extension that earns the paper's "every LSA
// eventually reaches every switch" premise.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/unreliable_network
#include <cstdio>

#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/params.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kConference = 0;
constexpr std::uint64_t kSeed = 7;

fault::FaultPlan disaster_plan() {
  fault::FaultPlan plan;
  plan.iid_loss = 0.10;               // every transmission: 10% gone
  plan.use_burst = true;              // plus clustered outages
  plan.burst.p_good_to_bad = 0.002;
  plan.burst.p_bad_to_good = 0.2;     // mean burst ~5 transmissions
  plan.burst.loss_bad = 1.0;
  plan.max_extra_delay = 20 * des::kMicrosecond;  // reordering jitter
  plan.flaps.push_back({2, 40 * des::kMillisecond, 90 * des::kMillisecond});
  plan.crashes.push_back({5, 60 * des::kMillisecond, 150 * des::kMillisecond});
  return plan;
}

struct Outcome {
  bool converged = false;
  std::uint64_t dropped = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks = 0;
  std::uint64_t give_ups = 0;
};

Outcome run(bool reliable) {
  graph::Graph g = graph::ring(12);
  g.set_uniform_delay(1 * des::kMicrosecond);

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4 * des::kMicrosecond;
  params.dgmc.computation_time = 1 * des::kMillisecond;
  params.dgmc.partition_resync = true;  // crash recovery needs McSync
  params.dual_link_detection = true;
  params.reliable.enabled = reliable;
  params.reliable.initial_rto = 200 * des::kMicrosecond;
  params.reliable.max_retransmits = 12;
  sim::DgmcNetwork net(std::move(g), params,
                       mc::make_incremental_algorithm());
  net.install_faults(disaster_plan(), kSeed);

  // Membership churn spread across the disaster window, including a
  // join at switch 5 *before* it crashes — its own membership must
  // survive the crash via neighbor resync.
  const struct {
    double at_ms;
    graph::NodeId node;
    bool join;
  } events[] = {{0, 0, true},  {0, 5, true},   {10, 8, true},
                {30, 3, true}, {70, 10, true}, {80, 3, false},
                {110, 6, true}};
  for (const auto& ev : events) {
    net.scheduler().schedule_at(ev.at_ms * des::kMillisecond, [&net, ev] {
      if (!net.switch_alive(ev.node)) return;
      if (ev.join) {
        net.join(ev.node, kConference, mc::McType::kSymmetric);
      } else {
        net.leave(ev.node, kConference);
      }
    });
  }
  net.run_to_quiescence();

  Outcome out;
  out.converged = net.quiescent() && net.converged(kConference);
  out.dropped = net.transport().messages_dropped();
  out.retransmissions = net.transport().retransmissions();
  out.acks = net.transport().acks_sent();
  out.give_ups = net.transport().give_ups();
  return out;
}

void report(const char* label, const Outcome& o) {
  std::printf("%s\n", label);
  std::printf("  messages lost to faults : %llu\n",
              static_cast<unsigned long long>(o.dropped));
  std::printf("  retransmissions         : %llu\n",
              static_cast<unsigned long long>(o.retransmissions));
  std::printf("  acks sent               : %llu\n",
              static_cast<unsigned long long>(o.acks));
  std::printf("  links given up on       : %llu\n",
              static_cast<unsigned long long>(o.give_ups));
  std::printf("  network converged       : %s\n\n",
              o.converged ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf(
      "A 12-switch ring suffers 10%% uniform loss, burst outages,\n"
      "reordering jitter, one link flap, and one switch crash/restart\n"
      "while seven membership events land (seed %llu).\n\n",
      static_cast<unsigned long long>(kSeed));

  report("== Lossless-model flooding (paper assumption, faults real) ==",
         run(/*reliable=*/false));
  report("== Ack/retransmit flooding (reliability extension) ==",
         run(/*reliable=*/true));

  std::printf(
      "The paper's vector-timestamp machinery is only correct on top of\n"
      "reliable flooding; the ack/retransmit layer is what supplies it\n"
      "when the network itself does not.\n");
  return 0;
}
