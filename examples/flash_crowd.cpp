// Flash crowd under backpressure: a heavy-tailed join storm slams one
// multipoint connection while the flooding transport runs with bounded
// per-link queues (DESIGN.md §10).
//
// The same declarative spec text that drives this example drives
// `dgmc_soak` and `dgmc_check --spec` — here we parse it, expand the
// churn programs, run the storm, and show how backpressure turns an
// unbounded memory spike into a bounded queue peak plus shed copies,
// while the protocol still converges to one agreed tree.
#include <cstdio>

#include "sim/spec.hpp"

namespace {

using namespace dgmc;

const char* kSpec = R"(name flash-crowd-demo
network waxman 20 seed=5
delay uniform 1ms
timing tc=10ms perhop=4us
option algorithm=incremental resync=on reliable=on
overload inflight=4 queue=48 dedupcap=256
soak duration=8s phases=1 trials=1 seed=7
churn flashcrowd mc=1 start=0.5s members=14 alpha=1.3 scale=10ms
)";

}  // namespace

int main() {
  const auto parsed = sim::SoakSpec::parse(kSpec);
  if (const auto* err = std::get_if<sim::SpecError>(&parsed)) {
    std::printf("spec error, line %d: %s\n", err->line, err->message.c_str());
    return 1;
  }
  const sim::SoakSpec& spec = std::get<sim::SoakSpec>(parsed);

  graph::Graph g = spec.build_graph();
  sim::DgmcNetwork net(g, spec.network_params(),
                       mc::make_incremental_algorithm());

  // Expand the storm: Pareto interarrivals cluster most joins within a
  // few scale units; the tail straggles far out.
  const auto events =
      sim::ChurnEngine::expand_all(spec, net.physical(), spec.soak_seed);
  std::printf("flash crowd: %zu joins on mc 1\n", events.size());
  for (const sim::SoakEvent& ev : events) {
    net.scheduler().schedule_at(ev.at, [&net, ev] {
      net.join(ev.node, ev.mcid, ev.type, ev.role);
    });
  }
  net.run_to_quiescence();

  const auto& transport = net.transport();
  std::printf("storm absorbed at t=%.3fs\n", net.scheduler().now());
  std::printf("  link transmissions: %llu\n",
              static_cast<unsigned long long>(net.lsa_link_transmissions()));
  std::printf("  queue peak:         %zu copies (bounded by %d/link)\n",
              transport.queue_peak(), spec.overload.max_queue_per_link);
  std::printf("  shed copies:        %llu (reliable mode re-sent them)\n",
              static_cast<unsigned long long>(transport.sheds()));
  std::printf("  retransmissions:    %llu\n",
              static_cast<unsigned long long>(transport.retransmissions()));
  std::printf("  converged:          %s\n",
              net.converged(1) ? "yes — one agreed tree" : "NO");

  const trees::Topology tree = net.agreed_topology(1);
  std::printf("  tree edges:        ");
  for (const graph::Edge& e : tree.edges()) std::printf(" %d-%d", e.a, e.b);
  std::printf("\n");
  return net.converged(1) ? 0 : 1;
}
