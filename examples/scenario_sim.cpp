// scenario_sim: run a D-GMC simulation from a scenario script.
//
//   ./scenario_sim script.dgmc    — run a script file
//   ./scenario_sim                — run the built-in demo script
//
// See src/sim/scenario.hpp for the statement grammar.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/scenario.hpp"

namespace {

constexpr const char* kDemo = R"(# Built-in demo: conference with a
# mid-session link failure on a 5x4 grid.
network grid 5 4
delay uniform 1us
timing tc=10ms perhop=4us
option algorithm=incremental

at 0ms   join 0  mc=0
at 50ms  join 19 mc=0
at 100ms join 7  mc=0
run

# A burst of two more joins inside one computation window.
at 1ms   join 12 mc=0
at 2ms   join 15 mc=0
run

at 0ms   fail 0 1
at 150ms send 19 mc=0
run

at 10ms  leave 7 mc=0
run
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", argv[1]);
      return 2;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  } else {
    std::printf("(no scenario file given; running the built-in demo)\n\n");
    text = kDemo;
  }

  auto parsed = dgmc::sim::Scenario::parse(text);
  if (const auto* err = std::get_if<dgmc::sim::ScenarioError>(&parsed)) {
    std::fprintf(stderr, "scenario error at line %d: %s\n", err->line,
                 err->message.c_str());
    return 2;
  }
  const bool ok = std::get<dgmc::sim::Scenario>(parsed).execute(stdout);
  std::printf("\nscenario %s\n", ok ? "PASSED (all checkpoints converged)"
                                    : "FAILED (unconverged checkpoint)");
  return ok ? 0 : 1;
}
