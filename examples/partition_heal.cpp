// Partition survival and healing (paper §6 names it as open work; this
// repository implements the McSync resolution — see src/core/sync.hpp).
//
// A WAN splits down the middle; both halves keep their conference
// running with the members they can reach; membership changes happen on
// both sides; the links heal; the database exchange merges the two
// histories and the whole network reconverges on one tree.
#include <cstdio>

#include "graph/generators.hpp"
#include "sim/network.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kMc = 0;

void show_members(const sim::DgmcNetwork& net, graph::NodeId at,
                  const char* label) {
  std::printf("%-34s", label);
  if (!net.switch_at(at).has_state(kMc)) {
    std::printf(" (no state)\n");
    return;
  }
  for (graph::NodeId m : net.switch_at(at).members(kMc)->all()) {
    std::printf(" %d", m);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Two rings of 5 bridged by two links: cutting 4-5 and 0-9 splits
  // the network into {0..4} and {5..9}.
  graph::Graph g(10);
  for (int i = 0; i < 5; ++i) g.add_link(i, (i + 1) % 5);
  for (int i = 5; i < 10; ++i) g.add_link(i, i == 9 ? 5 : i + 1);
  g.add_link(4, 5);
  g.add_link(0, 9);
  g.set_uniform_delay(1e-6);

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 10e-3;
  params.dgmc.partition_resync = true;   // the extension under demo
  params.dual_link_detection = true;     // both ends see the cut
  sim::DgmcNetwork net(std::move(g), params,
                       mc::make_incremental_algorithm());

  for (graph::NodeId m : {1, 3, 6, 8}) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  std::printf("Conference up, members 1 3 6 8; all %d switches agree: %s\n",
              net.size(), net.converged(kMc) ? "yes" : "NO");

  std::printf("\n!! both bridge links fail — the WAN splits\n");
  net.fail_link(net.physical().find_link(4, 5));
  net.run_to_quiescence();
  net.fail_link(net.physical().find_link(0, 9));
  net.run_to_quiescence();

  std::printf("\nLife goes on independently on each side:\n");
  net.join(0, kMc, mc::McType::kSymmetric);   // left-side join
  net.run_to_quiescence();
  net.leave(8, kMc);                          // right-side leave
  net.run_to_quiescence();
  net.join(9, kMc, mc::McType::kSymmetric);   // right-side join
  net.run_to_quiescence();
  show_members(net, 2, "left view (switch 2) members:");
  show_members(net, 7, "right view (switch 7) members:");

  std::printf("\n== bridge 4-5 heals: McSync database exchange ==\n");
  const auto before = net.totals();
  net.restore_link(net.physical().find_link(4, 5));
  net.run_to_quiescence();
  const auto after = net.totals();
  std::printf("sync floodings: %llu, reconciliation computations: %llu\n",
              static_cast<unsigned long long>(after.sync_floodings -
                                              before.sync_floodings),
              static_cast<unsigned long long>(after.computations -
                                              before.computations));

  show_members(net, 2, "left view after heal:");
  show_members(net, 7, "right view after heal:");
  std::printf("network converged on one tree: %s (%zu edges)\n",
              net.converged(kMc) ? "yes" : "NO",
              net.agreed_topology(kMc).edge_count());
  return 0;
}
