// Video broadcast: an asymmetric MC (paper §1: "typical applications of
// asymmetric MCs include video broadcasting and remote teaching") — one
// station sends, viewers tune in and out.
//
// Also contrasts D-GMC's event-driven signaling with the MOSPF-style
// data-driven baseline on the same scenario: MOSPF recomputes at every
// on-tree router after each membership change, D-GMC computes once.
#include <cstdio>

#include "baselines/mospf.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kChannel = 0;
constexpr graph::NodeId kStation = 7;

}  // namespace

int main() {
  util::RngStream rng(99);
  graph::Graph g = graph::waxman(40, graph::WaxmanParams{}, rng);
  g.scale_delays(1e-6 / graph::mean_link_delay(g));
  const graph::Graph shared = g;  // same topology for both protocols

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4 * des::kMicrosecond;
  params.dgmc.computation_time = 25 * des::kMillisecond;
  sim::DgmcNetwork net(shared, params, mc::make_incremental_algorithm());

  baselines::MospfNetwork::Params mparams;
  mparams.per_hop_overhead = 4 * des::kMicrosecond;
  mparams.computation_time = 25 * des::kMillisecond;
  baselines::MospfNetwork mospf(shared, mparams);

  // The station goes on air.
  net.join(kStation, kChannel, mc::McType::kAsymmetric,
           mc::MemberRole::kSender);
  net.run_to_quiescence();
  std::printf("Station at switch %d is broadcasting.\n\n", kStation);

  const std::vector<graph::NodeId> viewers = {3, 12, 21, 33, 38};
  std::printf("%-10s %26s %26s\n", "viewer", "D-GMC computations",
              "MOSPF computations");
  for (graph::NodeId v : viewers) {
    const auto before_d = net.totals();
    net.join(v, kChannel, mc::McType::kAsymmetric,
             mc::MemberRole::kReceiver);
    net.run_to_quiescence();

    const auto before_m = mospf.totals();
    mospf.join(v);
    mospf.run_to_quiescence();
    mospf.send_datagram(kStation);  // next video frame
    mospf.run_to_quiescence();

    std::printf("%-10d %26llu %26llu\n", v,
                static_cast<unsigned long long>(net.totals().computations -
                                                before_d.computations),
                static_cast<unsigned long long>(
                    mospf.totals().computations - before_m.computations));
  }

  const trees::Topology tree = net.agreed_topology(kChannel);
  std::printf("\nDelivery tree: %zu edges; every viewer reachable: ",
              tree.edge_count());
  bool all = true;
  for (graph::NodeId v : viewers) {
    all = all && trees::connects(tree, {kStation, v});
  }
  std::printf("%s\n", all ? "yes" : "NO");

  // Two viewers tune out; the branch serving them is released.
  for (graph::NodeId v : {12, 38}) {
    net.leave(v, kChannel);
    net.run_to_quiescence();
  }
  std::printf("After two viewers left: %zu edges (agree: %s)\n",
              net.agreed_topology(kChannel).edge_count(),
              net.converged(kChannel) ? "yes" : "NO");
  return 0;
}
