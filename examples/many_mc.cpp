// many_mc: one spec, many concurrent connections (DESIGN.md §13).
//
//   ./many_mc [SPEC_FILE]          — default specs/many_mc.spec
//
// The spec's `churn manymc` program stands up hundreds of MCs on one
// network. This example drives it through two of the three backends
// that consume the same file:
//
//   1. The aggregated scale model (sim::ManyMcEngine) at the spec's
//      full population — per-MC memory and the batched-vs-unbatched
//      wire cost of the identical workload.
//   2. The full-fidelity DES protocol (sim::DgmcNetwork) on a slice of
//      the population (DGMC_EXAMPLE_MCS, default 12; 0 = all), run once
//      without and once with LSA batching: both runs must converge to
//      identical trees, and the flood-op/byte counters show what
//      batching saved on the real wire.
//
// The third backend is the UDP loopback deployment:
//
//   dgmc_nethost specs/many_mc.spec --time-scale 0.5
//       --rto 0.5 --hello 2 --dead 20
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "mc/algorithm.hpp"
#include "sim/many_mc.hpp"
#include "sim/network.hpp"
#include "sim/spec.hpp"
#include "soak/soak.hpp"

namespace {

using namespace dgmc;

// Fallback copy of specs/many_mc.spec for running outside the repo
// root (the round-trip test pins the grammar, not this text).
constexpr const char* kDefaultSpec = R"(name many_mc
network waxman 64 seed=3
delay uniform 1us
timing tc=10ms perhop=4us
option algorithm=incremental resync=on dualdetect=off reliable=on
soak duration=30s phases=2 trials=1 seed=9
watchdog deadline=20s
churn manymc mc=0 mcs=512 members=4 start=10ms gap=40ms
)";

std::vector<std::pair<int, int>> canonical_edges(const trees::Topology& t) {
  std::vector<std::pair<int, int>> edges;
  for (const graph::Edge& e : t.edges()) {
    edges.emplace_back(std::min(e.a, e.b), std::max(e.a, e.b));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

struct DesRun {
  bool all_converged = true;
  int failed_mcs = 0;  // k: MC LSAs the shared-link failure triggered
  std::uint64_t flood_ops = 0;
  std::uint64_t wire_bytes = 0;
  lsr::LsaBatcher::Counters counters;
  std::vector<std::vector<std::pair<int, int>>> trees;
};

/// Joins the slice's population, then fails the physical link the most
/// agreed trees share — the paper's k-MC link event, where the detector
/// originates all k proposals in one round and batching coalesces them.
DesRun run_des(const sim::SoakSpec& spec, const graph::Graph& graph,
               const std::vector<sim::SoakEvent>& events,
               const std::vector<mc::McId>& mcs, bool batching) {
  sim::DgmcNetwork::Params params = spec.network_params();
  params.lsa_batching = batching;
  sim::DgmcNetwork net(graph, params,
                       spec.incremental ? mc::make_incremental_algorithm()
                                        : mc::make_from_scratch_algorithm());
  for (const sim::SoakEvent& ev : events) {
    if (ev.kind == sim::SoakEvent::Kind::kJoin) {
      net.scheduler().schedule_at(ev.at, [&net, ev] {
        net.join(ev.node, ev.mcid, ev.type, ev.role);
      });
    } else if (ev.kind == sim::SoakEvent::Kind::kLeave) {
      net.scheduler().schedule_at(ev.at,
                                  [&net, ev] { net.leave(ev.node, ev.mcid); });
    }
  }
  net.run_to_quiescence();

  DesRun out;
  std::map<std::pair<int, int>, int> shared;
  for (mc::McId mcid : mcs) {
    if (!net.converged(mcid)) {
      out.all_converged = false;
      out.trees.emplace_back();
      continue;
    }
    out.trees.push_back(canonical_edges(net.agreed_topology(mcid)));
    for (const auto& e : out.trees.back()) ++shared[e];
  }

  // Identical trees across runs make this pick identical too.
  if (out.all_converged) {
    std::pair<int, int> best{-1, -1};
    int best_count = 0;
    for (const auto& [edge, count] : shared) {
      if (count > best_count) {
        best = edge;
        best_count = count;
      }
    }
    if (best_count > 0) {
      out.failed_mcs =
          net.fail_link(graph.find_link(best.first, best.second));
      net.run_to_quiescence();
      for (mc::McId mcid : mcs) {
        if (!net.converged(mcid)) {
          out.all_converged = false;
          out.trees.emplace_back();
          continue;
        }
        out.trees.push_back(canonical_edges(net.agreed_topology(mcid)));
      }
    }
  }

  out.counters = net.batching_counters();
  out.flood_ops = out.counters.singles_flooded + out.counters.batches_flooded;
  out.wire_bytes = net.lsa_wire_bytes();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  const char* path = argc > 1 ? argv[1] : "specs/many_mc.spec";
  std::ifstream file(path);
  if (file) {
    std::ostringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  } else if (argc > 1) {
    std::fprintf(stderr, "cannot open spec file '%s'\n", path);
    return 2;
  } else {
    std::printf("(specs/many_mc.spec not found; using the built-in copy)\n");
    text = kDefaultSpec;
  }

  const auto parsed = sim::SoakSpec::parse(text);
  if (const auto* err = std::get_if<sim::SpecError>(&parsed)) {
    std::fprintf(stderr, "spec error at line %d: %s\n", err->line,
                 err->message.c_str());
    return 2;
  }
  const sim::SoakSpec& spec = std::get<sim::SoakSpec>(parsed);
  const sim::ChurnProgram* many = nullptr;
  for (const sim::ChurnProgram& p : spec.churn) {
    if (p.kind == sim::ChurnProgram::Kind::kManyMc) many = &p;
  }
  if (many == nullptr) {
    std::fprintf(stderr, "spec has no `churn manymc` program\n");
    return 2;
  }
  std::printf("spec '%s': %d switches, %d MCs x %d members\n", spec.name.c_str(),
              spec.network_size, many->mcs, many->members);

  // --- 1. Aggregated scale model at the full population ---
  sim::ManyMcParams mp;
  mp.switches = spec.network_size;
  mp.mcs = many->mcs;
  mp.members_per_mc = many->members;
  mp.shards = 16;
  mp.jobs = 0;
  mp.cores = std::min(64, spec.network_size);
  mp.seed = spec.soak_seed;
  const double rss_before = soak::process_rss_mb();
  sim::ManyMcEngine engine(mp);
  engine.build_population();
  for (int r = 0; r < 4; ++r) engine.churn_round();
  const double rss_after = soak::process_rss_mb();
  const sim::ManyMcStats& s = engine.stats();
  const double op_ratio = s.wire_ops_batched > 0
                              ? static_cast<double>(s.wire_ops_unbatched) /
                                    static_cast<double>(s.wire_ops_batched)
                              : 0.0;
  const double link_op_ratio =
      s.link_wire_ops_batched > 0
          ? static_cast<double>(s.link_wire_ops_unbatched) /
                static_cast<double>(s.link_wire_ops_batched)
          : 0.0;
  std::printf("\n[scale model] %zu MCs, %llu events\n", engine.mc_count(),
              static_cast<unsigned long long>(s.events()));
  std::printf("  memory per MC: %.0f record bytes, %.2f KiB RSS\n",
              static_cast<double>(engine.record_bytes()) /
                  static_cast<double>(engine.mc_count()),
              (rss_after - rss_before) * 1024.0 / static_cast<double>(mp.mcs));
  std::printf("  batching ratio: %.2fx wire ops (%.1fx on link-event "
              "rounds)\n",
              op_ratio, link_op_ratio);

  // --- 2. Full-fidelity DES protocol on a slice, batching off vs on ---
  int cap = 12;
  if (const char* env = std::getenv("DGMC_EXAMPLE_MCS")) cap = std::atoi(env);
  if (cap <= 0 || cap > many->mcs) cap = many->mcs;
  const graph::Graph graph = spec.build_graph();
  std::vector<sim::SoakEvent> events;
  std::vector<mc::McId> mcs;
  for (sim::SoakEvent& ev :
       sim::ChurnEngine::expand_all(spec, graph, spec.soak_seed)) {
    if (ev.mcid >= many->mcid && ev.mcid < many->mcid + cap) {
      events.push_back(ev);
      mcs.push_back(ev.mcid);
    }
  }
  std::sort(mcs.begin(), mcs.end());
  mcs.erase(std::unique(mcs.begin(), mcs.end()), mcs.end());
  std::printf("\n[full protocol] first %d MCs, %zu membership events\n", cap,
              events.size());

  const DesRun plain = run_des(spec, graph, events, mcs, false);
  const DesRun batched = run_des(spec, graph, events, mcs, true);
  if (!plain.all_converged || !batched.all_converged) {
    std::printf("  NOT CONVERGED\n");
    return 1;
  }
  if (plain.trees != batched.trees) {
    std::printf("  batching changed the agreed trees — BUG\n");
    return 1;
  }
  std::printf("  converged on %zu MCs, identical trees with and without "
              "batching\n",
              mcs.size());
  std::printf("  shared-link failure affected %d MCs (the detector's "
              "k-LSA round)\n",
              batched.failed_mcs);
  std::printf("  flood ops:  %llu plain vs %llu batched (%.2fx; %llu LSAs "
              "rode in %llu batches)\n",
              static_cast<unsigned long long>(plain.flood_ops),
              static_cast<unsigned long long>(batched.flood_ops),
              batched.flood_ops > 0 ? static_cast<double>(plain.flood_ops) /
                                          static_cast<double>(batched.flood_ops)
                                    : 0.0,
              static_cast<unsigned long long>(batched.counters.batched_lsas),
              static_cast<unsigned long long>(batched.counters.batches_flooded));
  // The sim charges encoded payload bytes per flood; per-op frame and
  // ack overhead (what batching actually saves besides ops) shows up in
  // bench/many_mc's transport-level model.
  std::printf("  payload bytes: %llu plain vs %llu batched (%.3fx)\n",
              static_cast<unsigned long long>(plain.wire_bytes),
              static_cast<unsigned long long>(batched.wire_bytes),
              batched.wire_bytes > 0 ? static_cast<double>(plain.wire_bytes) /
                                           static_cast<double>(batched.wire_bytes)
                                     : 0.0);

  std::printf(
      "\nsame spec on real UDP loopback (widen the timers — under this\n"
      "load the 10ms-RTO/0.5s-dead defaults storm; see README):\n"
      "  dgmc_nethost specs/many_mc.spec --time-scale 0.5 --max-wall 600 \\\n"
      "      --rto 0.5 --hello 2 --dead 20\n");
  return 0;
}
