// Quickstart: bring up a simulated network running the D-GMC protocol,
// create a symmetric multipoint connection, add and remove members, and
// watch the switches agree on a shared tree.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/params.hpp"

namespace {

using namespace dgmc;

void print_topology(const char* what, const trees::Topology& t) {
  std::printf("%s:", what);
  if (t.empty()) {
    std::printf(" (no edges — zero or one member)\n");
    return;
  }
  for (const graph::Edge& e : t.edges()) std::printf(" %d-%d", e.a, e.b);
  std::printf("\n");
}

}  // namespace

int main() {
  // A 4x4 grid of switches; 1 us propagation per link, 4 us per-hop LSA
  // processing, 25 ms per topology computation (the paper's ATM-testbed
  // regime where computation dominates communication).
  graph::Graph g = graph::grid(4, 4);
  g.set_uniform_delay(1 * des::kMicrosecond);

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4 * des::kMicrosecond;
  params.dgmc.computation_time = 25 * des::kMillisecond;
  sim::DgmcNetwork net(std::move(g), params,
                       mc::make_incremental_algorithm());

  const mc::McId conference = 0;

  std::printf("== Three corners join conference %d ==\n", conference);
  for (graph::NodeId member : {0, 3, 12}) {
    net.join(member, conference, mc::McType::kSymmetric);
    net.run_to_quiescence();  // let LSAs flood and proposals settle
    std::printf("switch %2d joined — ", member);
    print_topology("agreed tree", net.agreed_topology(conference));
  }

  std::printf("\n== A fourth member in the opposite corner ==\n");
  net.join(15, conference, mc::McType::kSymmetric);
  net.run_to_quiescence();
  print_topology("agreed tree", net.agreed_topology(conference));

  std::printf("\n== Member 3 hangs up ==\n");
  net.leave(3, conference);
  net.run_to_quiescence();
  print_topology("agreed tree", net.agreed_topology(conference));

  const auto totals = net.totals();
  std::printf(
      "\nProtocol cost for 5 membership events:\n"
      "  topology computations : %llu\n"
      "  MC LSA floodings      : %llu\n"
      "  proposals accepted    : %llu\n"
      "  all %d switches agree : %s\n",
      static_cast<unsigned long long>(totals.computations),
      static_cast<unsigned long long>(totals.mc_lsa_floodings),
      static_cast<unsigned long long>(totals.proposals_accepted),
      net.size(), net.converged(conference) ? "yes" : "NO");
  return 0;
}
