// Failure recovery: a link on the multicast tree dies mid-session
// (paper §3.1 Figure 2 and §6: "the protocol handles faulty components
// through topology computations triggered by link/nodal events").
//
// Shows the event cascade: one non-MC LSA teaches every switch's local
// image about the failure, k MC LSAs (one per affected connection)
// carry repaired topology proposals, and unaffected connections stay
// silent.
#include <cstdio>

#include "graph/generators.hpp"
#include "sim/network.hpp"

namespace {

using namespace dgmc;

void print_tree(const char* label, const trees::Topology& t) {
  std::printf("%s:", label);
  for (const graph::Edge& e : t.edges()) std::printf(" %d-%d", e.a, e.b);
  std::printf("\n");
}

}  // namespace

int main() {
  // A ring with chords: survives any single link failure.
  graph::Graph g = graph::ring(12);
  g.add_link(0, 6);
  g.add_link(3, 9);
  g.set_uniform_delay(1e-6);

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 25e-3;
  sim::DgmcNetwork net(std::move(g), params,
                       mc::make_incremental_algorithm());

  // Connection A uses the top arc, connection B the bottom arc.
  for (graph::NodeId m : {0, 2, 4}) {
    net.join(m, 0, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  for (graph::NodeId m : {7, 9, 11}) {
    net.join(m, 1, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  print_tree("connection A tree", net.agreed_topology(0));
  print_tree("connection B tree", net.agreed_topology(1));

  // Kill a link on A's tree.
  const graph::Edge victim = net.agreed_topology(0).edges().front();
  const graph::LinkId link = net.physical().find_link(victim.a, victim.b);
  const auto before = net.totals();
  std::printf("\n!! link %d-%d fails (detected by switch %d)\n\n",
              victim.a, victim.b, std::min(victim.a, victim.b));
  const int affected = net.fail_link(link);
  net.run_to_quiescence();
  const auto after = net.totals();

  std::printf("MCs affected (k)          : %d\n", affected);
  std::printf("non-MC LSAs flooded       : %llu\n",
              static_cast<unsigned long long>(after.nonmc_lsa_floodings -
                                              before.nonmc_lsa_floodings));
  std::printf("MC LSAs flooded           : %llu\n",
              static_cast<unsigned long long>(after.mc_lsa_floodings -
                                              before.mc_lsa_floodings));
  std::printf("topology computations     : %llu\n",
              static_cast<unsigned long long>(after.computations -
                                              before.computations));

  print_tree("\nconnection A repaired tree", net.agreed_topology(0));
  print_tree("connection B tree (unchanged)", net.agreed_topology(1));
  std::printf("\nA converged: %s, B converged: %s\n",
              net.converged(0) ? "yes" : "NO",
              net.converged(1) ? "yes" : "NO");

  // The link comes back: images update, trees are left alone.
  net.restore_link(link);
  net.run_to_quiescence();
  std::printf("After restore: images see link up, trees unchanged (%s)\n",
              net.converged(0) && net.converged(1) ? "ok" : "NO");
  return 0;
}
