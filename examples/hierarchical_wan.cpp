// Hierarchical D-GMC on a multi-region WAN (extension; paper §2 points
// to routing hierarchy — ATM PNNI style — as the scalability path).
//
// Four regional networks chained coast-to-coast. A conference spans
// three regions: joins flood only inside the member's region, border
// switches stitch the regions over an aggregated backbone, and the
// glued tree serves everyone. Compare the LSA footprint with flat
// D-GMC on the same WAN.
#include <cstdio>

#include "graph/generators.hpp"
#include "sim/hierarchy.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kMc = 0;

// Four 8-switch regions, chained with two inter-region links per hop.
graph::Graph wan(std::vector<int>* areas) {
  graph::Graph g(32);
  areas->assign(32, 0);
  util::RngStream rng(4242);
  for (int region = 0; region < 4; ++region) {
    const int base = region * 8;
    for (int i = 0; i < 8; ++i) {
      (*areas)[base + i] = region;
      g.add_link(base + i, base + ((i + 1) % 8));  // regional ring
    }
    g.add_link(base, base + 3);  // a chord for redundancy
    if (region > 0) {
      g.add_link(base - 8 + 2, base + 5);
      g.add_link(base - 8 + 6, base + 1);
    }
  }
  g.set_uniform_delay(1e-6);
  return g;
}

}  // namespace

int main() {
  std::vector<int> areas;
  const graph::Graph g = wan(&areas);

  sim::HierarchicalNetwork::Params hp;
  hp.per_hop_overhead = 4e-6;
  hp.dgmc.computation_time = 10e-3;
  sim::HierarchicalNetwork hier(g, areas, hp,
                                mc::make_incremental_algorithm());

  sim::DgmcNetwork::Params fp;
  fp.per_hop_overhead = 4e-6;
  fp.dgmc.computation_time = 10e-3;
  sim::DgmcNetwork flat(g, fp, mc::make_incremental_algorithm());

  std::printf("WAN: 32 switches in 4 regions; borders:");
  for (int a = 0; a < hier.area_count(); ++a) {
    std::printf(" region%d->switch %d", a, hier.border_of(a));
  }
  std::printf("\n\n");

  const std::vector<graph::NodeId> members = {1, 5, 12, 26, 30};
  for (graph::NodeId m : members) {
    hier.join(m, kMc, mc::McType::kSymmetric);
    hier.run_to_quiescence();
    flat.join(m, kMc, mc::McType::kSymmetric);
    flat.run_to_quiescence();
    std::printf("switch %2d (region %d) joined\n", m, hier.area_of(m));
  }

  std::printf("\nconference serves all members: %s\n",
              hier.serves_members(kMc) ? "yes" : "NO");
  const trees::Topology glued = hier.global_topology(kMc);
  std::printf("glued delivery tree: %zu edges across %d regions\n",
              glued.edge_count(), hier.area_count());

  std::printf("\nLSA footprint for the 5 joins:\n");
  std::printf("  flat D-GMC         : %llu link copies\n",
              static_cast<unsigned long long>(
                  flat.lsa_link_transmissions()));
  std::printf("  hierarchical D-GMC : %llu link copies\n",
              static_cast<unsigned long long>(
                  hier.totals().link_transmissions));

  // Regional churn stays regional.
  const auto before = hier.totals();
  hier.join(2, kMc, mc::McType::kSymmetric);  // region 0
  hier.run_to_quiescence();
  std::printf(
      "\none more join in region 0 cost %llu link copies "
      "(region 0 has 9 links)\n",
      static_cast<unsigned long long>(hier.totals().link_transmissions -
                                      before.link_transmissions));
  return 0;
}
