// Receiver-only MCs two ways: D-GMC's Steiner shared tree versus the
// CBT baseline's core-rooted tree (paper §2/§5). Demonstrates the
// two-stage delivery model (Fig 1(b)) — a non-member source unicasts to
// a contact node, which forwards over the tree — and the core-placement
// sensitivity D-GMC avoids.
#include <cstdio>

#include "baselines/cbt.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mc/validation.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kGroup = 0;

}  // namespace

int main() {
  util::RngStream rng(7);
  graph::Graph g = graph::waxman(50, graph::WaxmanParams{}, rng);
  g.scale_delays(1e-6 / graph::mean_link_delay(g));
  const std::vector<graph::NodeId> receivers = {4, 17, 26, 41, 47};

  // --- D-GMC receiver-only MC ---
  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 25e-3;
  sim::DgmcNetwork net(g, params, mc::make_incremental_algorithm());
  for (graph::NodeId r : receivers) {
    net.join(r, kGroup, mc::McType::kReceiverOnly,
             mc::MemberRole::kReceiver);
    net.run_to_quiescence();
  }
  const trees::Topology steiner = net.agreed_topology(kGroup);
  std::printf("D-GMC shared tree: %zu edges, cost %.0f\n",
              steiner.edge_count(), trees::topology_cost(g, steiner));

  // Two-stage delivery from an arbitrary non-member source.
  const graph::NodeId source = 0;
  const graph::NodeId contact = mc::contact_node(
      g, *net.switch_at(0).members(kGroup), steiner, source);
  std::printf(
      "Packet from non-member switch %d enters the tree at contact node "
      "%d, then reaches all %zu receivers.\n\n",
      source, contact, receivers.size());

  // --- CBT with three core choices ---
  std::printf("%-24s %10s  %s\n", "CBT core placement", "tree cost",
              "vs D-GMC");
  for (graph::NodeId core : {contact, receivers.front(),
                             static_cast<graph::NodeId>(49)}) {
    baselines::CbtNetwork cbt(g, core);
    for (graph::NodeId r : receivers) cbt.join(r);
    cbt.run_to_quiescence();
    const double cost = trees::topology_cost(g, cbt.tree());
    std::printf("core = switch %-10d %10.0f  %.2fx\n", core, cost,
                cost / trees::topology_cost(g, steiner));
  }
  std::printf(
      "\nD-GMC needs no core: every switch can compute the Steiner tree "
      "from its own link-state image.\n");
  return 0;
}
