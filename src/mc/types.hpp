// Multipoint-connection (MC) core vocabulary (paper §1).
//
// An MC is a virtual topology over the switches; its *type* determines
// which members may send and receive and therefore which topology shape
// is appropriate:
//  - Symmetric:     every member both sends and receives (teleconference)
//                   -> one shared Steiner tree.
//  - Receiver-only: members are receivers; any node may inject a packet
//                   by unicasting it to a contact node on the tree (the
//                   CBT generalization) -> Steiner tree over receivers.
//  - Asymmetric:    members are explicitly senders and/or receivers
//                   (video broadcast) -> union of source-rooted trees.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace dgmc::mc {

using McId = std::int32_t;
inline constexpr McId kInvalidMc = -1;

enum class McType : std::uint8_t {
  kSymmetric = 0,
  kReceiverOnly = 1,
  kAsymmetric = 2,
};

const char* to_string(McType t);

/// Bitmask of what a member does on the connection.
enum class MemberRole : std::uint8_t {
  kNone = 0,
  kSender = 1,
  kReceiver = 2,
  kBoth = 3,
};

constexpr MemberRole operator|(MemberRole a, MemberRole b) {
  return static_cast<MemberRole>(static_cast<std::uint8_t>(a) |
                                 static_cast<std::uint8_t>(b));
}

constexpr bool has_role(MemberRole r, MemberRole wanted) {
  return (static_cast<std::uint8_t>(r) & static_cast<std::uint8_t>(wanted)) !=
         0;
}

const char* to_string(MemberRole r);

}  // namespace dgmc::mc
