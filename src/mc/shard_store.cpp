#include "mc/shard_store.hpp"

#include <cstdlib>

namespace dgmc::mc {

int resolve_shard_count(int requested) {
  if (requested > 0) return requested;
  return 1;
}

int default_shard_count_from_env() {
  const char* env = std::getenv("DGMC_MC_SHARDS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v > 0 ? v : 1;
}

}  // namespace dgmc::mc
