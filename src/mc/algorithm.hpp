// Pluggable topology computation (paper §3.5).
//
// D-GMC is independent of the algorithm that turns a member list into a
// topology; correctness only requires that the algorithm be a pure,
// deterministic function of its inputs, because any switch may become
// the proposer and all proposals for the same event history must be
// interchangeable. Implementations distinguish *incremental update*
// (extend/prune the previous topology) from *from-scratch* computation,
// exactly as §3.5 prescribes.
#pragma once

#include <memory>
#include <string_view>

#include "mc/member_list.hpp"
#include "trees/topology.hpp"

namespace dgmc::mc {

struct TopologyRequest {
  McType type = McType::kSymmetric;
  const MemberList* members = nullptr;        // required
  const trees::Topology* previous = nullptr;  // proposer's current; optional
};

class TopologyAlgorithm {
 public:
  /// A computed topology plus how it was computed — the §3.5
  /// distinction that drives the simulated computation cost: "whenever
  /// possible, an implementation should invoke an incremental update
  /// algorithm ... brand-new MC topologies are computed only when"
  /// necessary.
  struct Result {
    trees::Topology topology;
    bool from_scratch = true;
  };

  virtual ~TopologyAlgorithm() = default;

  /// Computes a topology for the request on graph `g`. Must be pure and
  /// deterministic. Must return a topology valid for the member list and
  /// MC type whenever the live part of `g` permits one.
  virtual trees::Topology compute(const graph::Graph& g,
                                  const TopologyRequest& req) const {
    return compute_with_info(g, req).topology;
  }

  /// Like compute(), also reporting whether the result came from an
  /// incremental update or a from-scratch computation.
  virtual Result compute_with_info(const graph::Graph& g,
                                   const TopologyRequest& req) const = 0;

  virtual std::string_view name() const = 0;
};

/// From-scratch algorithm: KMB Steiner tree for symmetric and
/// receiver-only MCs, union of source-rooted pruned SPTs for asymmetric
/// MCs. Ignores `previous`.
std::unique_ptr<TopologyAlgorithm> make_from_scratch_algorithm();

/// Incremental algorithm: reconciles `previous` with the member list by
/// greedy attach / leaf pruning; falls back to from-scratch when there
/// is no previous topology, when the previous topology uses dead links,
/// or when its cost drifts beyond `rebuild_factor` times the
/// from-scratch cost estimate (cheap drift guard evaluated per call).
/// Asymmetric MCs always recompute the source-rooted union (per-source
/// SPTs are already incremental in spirit and cheap to rebuild).
std::unique_ptr<TopologyAlgorithm> make_incremental_algorithm(
    double rebuild_factor = 2.0);

}  // namespace dgmc::mc
