// MemberList: the per-MC membership view every switch maintains.
//
// Kept as a sorted vector so that two switches which have processed the
// same set of membership LSAs hold structurally equal lists (operator==
// is part of the protocol's consensus invariant checks).
#pragma once

#include <vector>

#include "mc/types.hpp"

namespace dgmc::mc {

class MemberList {
 public:
  struct Entry {
    graph::NodeId node;
    MemberRole role;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Adds or updates a member. Joining an existing member ORs the roles
  /// (a receiver that starts sending becomes kBoth).
  void join(graph::NodeId node, MemberRole role);

  /// Removes a member entirely; no-op if absent.
  void leave(graph::NodeId node);

  bool contains(graph::NodeId node) const;
  MemberRole role_of(graph::NodeId node) const;  // kNone if absent

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// All member nodes, ascending.
  std::vector<graph::NodeId> all() const;
  /// Members with the sender role, ascending.
  std::vector<graph::NodeId> senders() const;
  /// Members with the receiver role, ascending.
  std::vector<graph::NodeId> receivers() const;

  const std::vector<Entry>& entries() const { return entries_; }

  friend bool operator==(const MemberList&, const MemberList&) = default;

 private:
  std::vector<Entry> entries_;  // sorted by node
};

}  // namespace dgmc::mc
