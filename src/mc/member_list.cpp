#include "mc/member_list.hpp"

#include <algorithm>

namespace dgmc::mc {

const char* to_string(McType t) {
  switch (t) {
    case McType::kSymmetric: return "symmetric";
    case McType::kReceiverOnly: return "receiver-only";
    case McType::kAsymmetric: return "asymmetric";
  }
  return "?";
}

const char* to_string(MemberRole r) {
  switch (r) {
    case MemberRole::kNone: return "none";
    case MemberRole::kSender: return "sender";
    case MemberRole::kReceiver: return "receiver";
    case MemberRole::kBoth: return "sender+receiver";
  }
  return "?";
}

namespace {
auto lower_bound_node(std::vector<MemberList::Entry>& es, graph::NodeId n) {
  return std::lower_bound(
      es.begin(), es.end(), n,
      [](const MemberList::Entry& e, graph::NodeId id) { return e.node < id; });
}
auto lower_bound_node(const std::vector<MemberList::Entry>& es,
                      graph::NodeId n) {
  return std::lower_bound(
      es.begin(), es.end(), n,
      [](const MemberList::Entry& e, graph::NodeId id) { return e.node < id; });
}
}  // namespace

void MemberList::join(graph::NodeId node, MemberRole role) {
  DGMC_ASSERT(node >= 0);
  DGMC_ASSERT(role != MemberRole::kNone);
  auto it = lower_bound_node(entries_, node);
  if (it != entries_.end() && it->node == node) {
    it->role = it->role | role;
  } else {
    entries_.insert(it, Entry{node, role});
  }
}

void MemberList::leave(graph::NodeId node) {
  auto it = lower_bound_node(entries_, node);
  if (it != entries_.end() && it->node == node) entries_.erase(it);
}

bool MemberList::contains(graph::NodeId node) const {
  auto it = lower_bound_node(entries_, node);
  return it != entries_.end() && it->node == node;
}

MemberRole MemberList::role_of(graph::NodeId node) const {
  auto it = lower_bound_node(entries_, node);
  if (it != entries_.end() && it->node == node) return it->role;
  return MemberRole::kNone;
}

std::vector<graph::NodeId> MemberList::all() const {
  std::vector<graph::NodeId> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.node);
  return out;
}

std::vector<graph::NodeId> MemberList::senders() const {
  std::vector<graph::NodeId> out;
  for (const Entry& e : entries_) {
    if (has_role(e.role, MemberRole::kSender)) out.push_back(e.node);
  }
  return out;
}

std::vector<graph::NodeId> MemberList::receivers() const {
  std::vector<graph::NodeId> out;
  for (const Entry& e : entries_) {
    if (has_role(e.role, MemberRole::kReceiver)) out.push_back(e.node);
  }
  return out;
}

}  // namespace dgmc::mc
