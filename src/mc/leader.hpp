// Leader election over a converged MC (the authors' companion
// application: "Group Leader Election under Link-State Routing" builds
// leadership consensus on exactly this property).
//
// Because D-GMC drives every switch to the *same* member list, electing
// a leader needs no extra protocol: any deterministic function of the
// member list yields network-wide agreement for free. The default rule
// is "lowest-id member with the required role"; leadership migrates
// automatically when the leader leaves or its partition splits away
// (each side elects from the members it can reach).
#pragma once

#include "mc/member_list.hpp"

namespace dgmc::mc {

/// The member with the lowest id holding `required_role`;
/// kInvalidNode if no member qualifies.
inline graph::NodeId elect_leader(
    const MemberList& members,
    MemberRole required_role = MemberRole::kNone) {
  for (const MemberList::Entry& e : members.entries()) {
    if (required_role == MemberRole::kNone ||
        has_role(e.role, required_role)) {
      return e.node;  // entries are sorted by node id
    }
  }
  return graph::kInvalidNode;
}

}  // namespace dgmc::mc
