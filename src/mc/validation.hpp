// Topology validity per MC type (paper §1, Figure 1): the predicate an
// installed topology must satisfy for the connection to deliver data.
#pragma once

#include "mc/member_list.hpp"
#include "trees/topology.hpp"

namespace dgmc::mc {

/// True if `t` lets the MC operate:
///  - Symmetric: a Steiner tree over all members (any member reaches
///    all others).
///  - Receiver-only: a Steiner tree over the receivers; sources contact
///    the tree by unicast, so only receiver connectivity matters.
///  - Asymmetric: every sender reaches every receiver within `t`
///    (cycles permitted; union-of-SPTs shape).
/// All edges must exist and be up in `g`. MCs with <= 1 relevant member
/// are valid exactly when the topology is empty.
bool is_valid_topology(const graph::Graph& g, McType type,
                       const MemberList& members, const trees::Topology& t);

/// For receiver-only MCs: the first-stage delivery target (paper Fig
/// 1(b)) — the topology node nearest to `source` by the cost metric, or
/// kInvalidNode if the topology is empty/unreachable. For a single
/// receiver (empty topology) returns that receiver.
graph::NodeId contact_node(const graph::Graph& g, const MemberList& members,
                           const trees::Topology& t, graph::NodeId source);

}  // namespace dgmc::mc
