#include "mc/validation.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace dgmc::mc {

namespace {

bool connects_pairwise(const trees::Topology& t,
                       const std::vector<graph::NodeId>& senders,
                       const std::vector<graph::NodeId>& receivers) {
  for (graph::NodeId s : senders) {
    for (graph::NodeId r : receivers) {
      if (s == r) continue;
      if (!trees::connects(t, {s, r})) return false;
    }
  }
  return true;
}

}  // namespace

bool is_valid_topology(const graph::Graph& g, McType type,
                       const MemberList& members, const trees::Topology& t) {
  if (!trees::uses_only_live_links(g, t)) return false;

  switch (type) {
    case McType::kSymmetric:
    case McType::kReceiverOnly: {
      const auto terminals = members.all();
      if (terminals.size() <= 1) return t.empty();
      return trees::is_steiner_tree(t, terminals);
    }
    case McType::kAsymmetric: {
      const auto senders = members.senders();
      const auto receivers = members.receivers();
      // Count distinct endpoints that must talk; with fewer than two
      // parties there is nothing to connect.
      std::vector<graph::NodeId> parties = senders;
      parties.insert(parties.end(), receivers.begin(), receivers.end());
      std::sort(parties.begin(), parties.end());
      parties.erase(std::unique(parties.begin(), parties.end()),
                    parties.end());
      if (senders.empty() || receivers.empty() || parties.size() <= 1) {
        return t.empty();
      }
      return connects_pairwise(t, senders, receivers);
    }
  }
  return false;
}

graph::NodeId contact_node(const graph::Graph& g, const MemberList& members,
                           const trees::Topology& t, graph::NodeId source) {
  if (t.empty()) {
    // Degenerate single-receiver MC: the receiver is its own contact.
    const auto all = members.all();
    return all.size() == 1 ? all.front() : graph::kInvalidNode;
  }
  const graph::ShortestPaths sp = graph::dijkstra(g, source);
  graph::NodeId best = graph::kInvalidNode;
  for (graph::NodeId n : t.nodes()) {
    if (!sp.reachable(n)) continue;
    if (best == graph::kInvalidNode || sp.dist[n] < sp.dist[best]) best = n;
  }
  return best;
}

}  // namespace dgmc::mc
