// ShardStore: MC-id-sharded storage for per-MC protocol state.
//
// The protocol layer keys everything by mc::McId — member lists,
// vector timestamps, installed topologies — and before this store
// existed each owner kept them in one std::map. That representation
// has two scaling problems the many-MC engine hits head on: every
// insert/erase is a node allocation, and there is no unit of ownership
// a parallel event loop can schedule. ShardStore fixes both:
//
//   * State is split across `shard_count` shards by the stable rule
//     shard = mcid % shard_count. Each shard owns an *arena*: a slot
//     vector holding the records (member lists, timestamps, LSAs —
//     whatever T carries) plus a freelist, so records for thousands of
//     MCs live in a handful of contiguous allocations and an
//     insert/erase after warm-up allocates nothing.
//   * A shard is the unit of parallel scheduling: two events for MCs
//     in different shards touch disjoint arenas and may run on
//     different workers with no synchronization. Events for the same
//     shard must be applied in order by one worker at a time
//     (shard-affine queues; see sim/many_mc.cpp).
//
// Determinism contract (DESIGN.md §8 and §13): every observable order
// this container exposes is independent of shard_count. Iteration
// (for_each / for_each_while / keys) is a k-way merge of the per-shard
// ascending-mcid indexes with min-id-wins, which reproduces exactly
// the global ascending order a single std::map would give. Fingerprints
// and serialized snapshots are therefore bit-identical at any shard
// count — pinned by tests/mc_shard_test.cpp at shards {1,4,16}.
//
// Handles: insert returns (and handle_of looks up) a stable McHandle
// {shard, slot}. Slots are never moved by other inserts/erases — only
// erase of the same MC frees a slot (to the freelist) — so a handle is
// valid for the record's whole lifetime. Handles index, they do not
// pin: the arena may *reallocate* on growth, so hold handles, not
// pointers, across inserts.
//
// The store is deep-copyable (copy ctor/assign copy the arenas
// wholesale), which is what checkpoint snapshot/restore relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "mc/types.hpp"
#include "util/assert.hpp"

namespace dgmc::mc {

/// Stable reference to a record in a ShardStore: which shard arena and
/// which slot within it. Cheap to copy, meaningful only against the
/// store (generation checking is the store's job via the mcid match).
struct McHandle {
  std::int32_t shard = -1;
  std::int32_t slot = -1;
  bool valid() const { return shard >= 0 && slot >= 0; }
  friend bool operator==(const McHandle&, const McHandle&) = default;
};

/// Chooses the shard count: `requested` if positive, else 1 (the
/// single-arena layout every pre-sharding caller gets by default).
int resolve_shard_count(int requested);

/// DGMC_MC_SHARDS from the environment (CLI/bench convenience), else 1.
int default_shard_count_from_env();

template <typename T>
class ShardStore {
 public:
  explicit ShardStore(int shard_count = 1)
      : shards_(static_cast<std::size_t>(resolve_shard_count(shard_count))) {}

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// The owning shard for an MC id (stable: id % shard_count).
  int shard_of(McId mcid) const {
    DGMC_ASSERT(mcid >= 0);
    return static_cast<int>(mcid % static_cast<McId>(shards_.size()));
  }

  /// Total records, summed over the per-shard indexes. O(shard_count),
  /// deliberately: a global counter would be the one piece of state
  /// shared between shards, breaking the rule that same-shard-only
  /// mutations from different workers need no synchronization.
  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& sh : shards_) n += sh.index.size();
    return n;
  }
  bool empty() const { return size() == 0; }

  bool contains(McId mcid) const { return find(mcid) != nullptr; }

  /// Looks up the record for `mcid`; nullptr if absent. The pointer is
  /// invalidated by any later insert into the same shard (arena
  /// growth) — use within one event's processing only.
  T* find(McId mcid) {
    Shard& sh = shards_[static_cast<std::size_t>(shard_of(mcid))];
    const int slot = sh.slot_of(mcid);
    return slot >= 0 ? &sh.slots[static_cast<std::size_t>(slot)].value
                     : nullptr;
  }
  const T* find(McId mcid) const {
    const Shard& sh = shards_[static_cast<std::size_t>(shard_of(mcid))];
    const int slot = sh.slot_of(mcid);
    return slot >= 0 ? &sh.slots[static_cast<std::size_t>(slot)].value
                     : nullptr;
  }

  /// Returns the record for `mcid`, creating a default-constructed one
  /// if absent; `created` (when non-null) reports which happened.
  T& get_or_create(McId mcid, bool* created = nullptr) {
    Shard& sh = shards_[static_cast<std::size_t>(shard_of(mcid))];
    const auto it = sh.lower_bound(mcid);
    if (it != sh.index.end() && it->first == mcid) {
      if (created != nullptr) *created = false;
      return sh.slots[static_cast<std::size_t>(it->second)].value;
    }
    int slot;
    if (!sh.freelist.empty()) {
      slot = sh.freelist.back();
      sh.freelist.pop_back();
      Slot& s = sh.slots[static_cast<std::size_t>(slot)];
      s.mcid = mcid;
      s.value = T{};
    } else {
      slot = static_cast<int>(sh.slots.size());
      sh.slots.push_back(Slot{mcid, T{}});
    }
    sh.index.insert(it, {mcid, slot});
    if (created != nullptr) *created = true;
    return sh.slots[static_cast<std::size_t>(slot)].value;
  }

  /// Removes the record for `mcid`; returns whether one existed. The
  /// freed slot goes to the shard's freelist for reuse.
  bool erase(McId mcid) {
    Shard& sh = shards_[static_cast<std::size_t>(shard_of(mcid))];
    const auto it = sh.lower_bound(mcid);
    if (it == sh.index.end() || it->first != mcid) return false;
    const int slot = it->second;
    sh.index.erase(it);
    Slot& s = sh.slots[static_cast<std::size_t>(slot)];
    s.mcid = kInvalidMc;
    s.value = T{};  // release the record's resources now, not at reuse
    sh.freelist.push_back(slot);
    return true;
  }

  /// Drops every record (arena capacity is retained).
  void clear() {
    for (Shard& sh : shards_) {
      sh.index.clear();
      sh.slots.clear();
      sh.freelist.clear();
    }
  }

  /// Stable handle for an existing record; invalid handle if absent.
  McHandle handle_of(McId mcid) const {
    const int shard = shard_of(mcid);
    const int slot = shards_[static_cast<std::size_t>(shard)].slot_of(mcid);
    return slot >= 0 ? McHandle{shard, slot} : McHandle{};
  }

  /// Dereferences a handle. Asserts the slot is live.
  T& get(McHandle h) {
    DGMC_ASSERT(h.valid() && h.shard < shard_count());
    Shard& sh = shards_[static_cast<std::size_t>(h.shard)];
    DGMC_ASSERT(h.slot < static_cast<int>(sh.slots.size()));
    Slot& s = sh.slots[static_cast<std::size_t>(h.slot)];
    DGMC_ASSERT(s.mcid != kInvalidMc);
    return s.value;
  }
  const T& get(McHandle h) const {
    return const_cast<ShardStore*>(this)->get(h);
  }

  /// The MC id a live handle refers to.
  McId id_of(McHandle h) const {
    DGMC_ASSERT(h.valid() && h.shard < shard_count());
    const Shard& sh = shards_[static_cast<std::size_t>(h.shard)];
    DGMC_ASSERT(h.slot < static_cast<int>(sh.slots.size()));
    return sh.slots[static_cast<std::size_t>(h.slot)].mcid;
  }

  /// Ascending-mcid iteration over every record — the k-way merge that
  /// makes iteration order shard-count-invariant. `f(McId, T&)`.
  template <typename F>
  void for_each(F&& f) {
    merged([&](McId mcid, int shard, int slot) {
      f(mcid, shards_[static_cast<std::size_t>(shard)]
                  .slots[static_cast<std::size_t>(slot)]
                  .value);
      return true;
    });
  }
  template <typename F>
  void for_each(F&& f) const {
    merged([&](McId mcid, int shard, int slot) {
      f(mcid, shards_[static_cast<std::size_t>(shard)]
                  .slots[static_cast<std::size_t>(slot)]
                  .value);
      return true;
    });
  }

  /// Ascending-mcid iteration that stops when `f` returns false.
  template <typename F>
  void for_each_while(F&& f) {
    merged([&](McId mcid, int shard, int slot) {
      return f(mcid, shards_[static_cast<std::size_t>(shard)]
                         .slots[static_cast<std::size_t>(slot)]
                         .value);
    });
  }

  /// Every stored MC id, ascending.
  std::vector<McId> keys() const {
    std::vector<McId> out;
    out.reserve(size());
    merged([&](McId mcid, int, int) {
      out.push_back(mcid);
      return true;
    });
    return out;
  }

  /// Records owned by one shard, ascending mcid within the shard.
  /// This is the parallel loop's unit of work: distinct shards touch
  /// disjoint arenas. `f(McId, T&)`.
  template <typename F>
  void for_each_in_shard(int shard, F&& f) {
    DGMC_ASSERT(shard >= 0 && shard < shard_count());
    Shard& sh = shards_[static_cast<std::size_t>(shard)];
    for (const auto& [mcid, slot] : sh.index) {
      f(mcid, sh.slots[static_cast<std::size_t>(slot)].value);
    }
  }
  template <typename F>
  void for_each_in_shard(int shard, F&& f) const {
    DGMC_ASSERT(shard >= 0 && shard < shard_count());
    const Shard& sh = shards_[static_cast<std::size_t>(shard)];
    for (const auto& [mcid, slot] : sh.index) {
      f(mcid, sh.slots[static_cast<std::size_t>(slot)].value);
    }
  }

  std::size_t shard_size(int shard) const {
    DGMC_ASSERT(shard >= 0 && shard < shard_count());
    return shards_[static_cast<std::size_t>(shard)].index.size();
  }

 private:
  struct Slot {
    McId mcid = kInvalidMc;  // kInvalidMc marks a freelisted slot
    T value{};
  };

  struct Shard {
    /// Sorted (mcid -> slot) lookup index; binary-searched.
    std::vector<std::pair<McId, int>> index;
    /// The arena: records live here, addressed by slot, never moved
    /// relative to each other (growth may reallocate the block).
    std::vector<Slot> slots;
    std::vector<int> freelist;

    std::vector<std::pair<McId, int>>::iterator lower_bound(McId mcid) {
      return std::lower_bound(
          index.begin(), index.end(), mcid,
          [](const std::pair<McId, int>& e, McId m) { return e.first < m; });
    }
    int slot_of(McId mcid) const {
      const auto it = std::lower_bound(
          index.begin(), index.end(), mcid,
          [](const std::pair<McId, int>& e, McId m) { return e.first < m; });
      return (it != index.end() && it->first == mcid) ? it->second : -1;
    }
  };

  /// Min-id-wins merge across the per-shard sorted indexes. `f` gets
  /// (mcid, shard, slot) and returns false to stop early.
  template <typename F>
  void merged(F&& f) const {
    const int k = shard_count();
    // Cursor per shard into its sorted index.
    std::vector<std::size_t> cur(static_cast<std::size_t>(k), 0);
    for (;;) {
      int best = -1;
      McId best_id = 0;
      for (int s = 0; s < k; ++s) {
        const Shard& sh = shards_[static_cast<std::size_t>(s)];
        if (cur[static_cast<std::size_t>(s)] >= sh.index.size()) continue;
        const McId id = sh.index[cur[static_cast<std::size_t>(s)]].first;
        if (best < 0 || id < best_id) {
          best = s;
          best_id = id;
        }
      }
      if (best < 0) return;
      const Shard& sh = shards_[static_cast<std::size_t>(best)];
      const int slot = sh.index[cur[static_cast<std::size_t>(best)]].second;
      ++cur[static_cast<std::size_t>(best)];
      if (!f(best_id, best, slot)) return;
    }
  }

  std::vector<Shard> shards_;
};

}  // namespace dgmc::mc
