#include "mc/qos.hpp"

#include <string>
#include <utility>

#include "util/assert.hpp"

namespace dgmc::mc {

CapacityMap::CapacityMap(int link_count, double default_capacity)
    : available_(link_count, default_capacity) {
  DGMC_ASSERT(link_count >= 0);
  DGMC_ASSERT(default_capacity >= 0.0);
}

double CapacityMap::available(graph::LinkId link) const {
  DGMC_ASSERT(link >= 0 && link < link_count());
  return available_[link];
}

void CapacityMap::set(graph::LinkId link, double capacity) {
  DGMC_ASSERT(link >= 0 && link < link_count());
  DGMC_ASSERT(capacity >= 0.0);
  available_[link] = capacity;
}

void CapacityMap::reserve(graph::LinkId link, double amount) {
  DGMC_ASSERT(link >= 0 && link < link_count());
  DGMC_ASSERT(amount >= 0.0);
  DGMC_ASSERT_MSG(available_[link] >= amount, "over-reservation");
  available_[link] -= amount;
}

void CapacityMap::release(graph::LinkId link, double amount) {
  DGMC_ASSERT(link >= 0 && link < link_count());
  DGMC_ASSERT(amount >= 0.0);
  available_[link] += amount;
}

bool CapacityMap::can_carry(const graph::Graph& g, const trees::Topology& t,
                            double demand) const {
  for (const graph::Edge& e : t.edges()) {
    const graph::LinkId link = g.find_link(e.a, e.b);
    if (link == graph::kInvalidLink || available(link) < demand) {
      return false;
    }
  }
  return true;
}

void CapacityMap::reserve_topology(const graph::Graph& g,
                                   const trees::Topology& t,
                                   double demand) {
  DGMC_ASSERT_MSG(can_carry(g, t, demand), "insufficient capacity");
  for (const graph::Edge& e : t.edges()) {
    reserve(g.find_link(e.a, e.b), demand);
  }
}

void CapacityMap::release_topology(const graph::Graph& g,
                                   const trees::Topology& t,
                                   double demand) {
  for (const graph::Edge& e : t.edges()) {
    release(g.find_link(e.a, e.b), demand);
  }
}

namespace {

class QosAlgorithm final : public TopologyAlgorithm {
 public:
  QosAlgorithm(double demand, std::shared_ptr<const CapacityMap> capacities,
               std::unique_ptr<TopologyAlgorithm> inner)
      : demand_(demand),
        capacities_(std::move(capacities)),
        inner_(std::move(inner)),
        name_(std::string("qos(") + std::string(inner_->name()) + ")") {
    DGMC_ASSERT(demand_ >= 0.0);
    DGMC_ASSERT(capacities_ != nullptr);
    DGMC_ASSERT(inner_ != nullptr);
  }

  Result compute_with_info(const graph::Graph& g,
                           const TopologyRequest& req) const override {
    // Admission filter: links without headroom look down to the inner
    // algorithm. (A per-call graph copy; topology computations are the
    // modeled-expensive operation anyway.)
    graph::Graph filtered = g;
    DGMC_ASSERT(capacities_->link_count() >= g.link_count());
    for (graph::LinkId id = 0; id < g.link_count(); ++id) {
      if (capacities_->available(id) < demand_) {
        filtered.set_link_up(id, false);
      }
    }
    return inner_->compute_with_info(filtered, req);
  }

  std::string_view name() const override { return name_; }

 private:
  double demand_;
  std::shared_ptr<const CapacityMap> capacities_;
  std::unique_ptr<TopologyAlgorithm> inner_;
  std::string name_;
};

}  // namespace

std::unique_ptr<TopologyAlgorithm> make_qos_algorithm(
    double demand, std::shared_ptr<const CapacityMap> capacities,
    std::unique_ptr<TopologyAlgorithm> inner) {
  return std::make_unique<QosAlgorithm>(demand, std::move(capacities),
                                        std::move(inner));
}

}  // namespace dgmc::mc
