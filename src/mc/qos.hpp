// QoS-constrained topology computation (extension).
//
// Paper §2 motivates event-driven computation over MOSPF's data-driven
// scheme with QoS: "an on-demand approach cannot be applied if quality
// of service (QoS) negotiation is needed prior to data transmission."
// D-GMC computes topologies *before* data flows, so the computation can
// honor bandwidth constraints. This module adds exactly that: a
// TopologyAlgorithm decorator that refuses links without enough spare
// capacity for the connection's demand.
//
// Capacity knowledge is modeled as a shared CapacityMap — the stand-in
// for traffic-engineering LSAs (OSPF-TE style) that would flood each
// link's unreserved bandwidth to every switch; since LSR gives every
// switch the same view, a shared map preserves the property proposals
// rely on (all switches would compute from the same inputs).
#pragma once

#include <memory>
#include <vector>

#include "mc/algorithm.hpp"

namespace dgmc::mc {

/// Available bandwidth per link, with reservation bookkeeping.
class CapacityMap {
 public:
  CapacityMap(int link_count, double default_capacity);

  double available(graph::LinkId link) const;
  void set(graph::LinkId link, double capacity);

  /// Reserves bandwidth on a link; asserts it fits.
  void reserve(graph::LinkId link, double amount);
  /// Releases a prior reservation.
  void release(graph::LinkId link, double amount);

  /// True if every edge of `t` has at least `demand` available.
  bool can_carry(const graph::Graph& g, const trees::Topology& t,
                 double demand) const;
  /// Reserves `demand` on every edge of `t` (asserts can_carry).
  void reserve_topology(const graph::Graph& g, const trees::Topology& t,
                        double demand);
  void release_topology(const graph::Graph& g, const trees::Topology& t,
                        double demand);

  int link_count() const { return static_cast<int>(available_.size()); }

 private:
  std::vector<double> available_;
};

/// Wraps `inner` so it only sees links with available capacity >=
/// demand (links below the bar appear down). If the constraint makes
/// members unreachable, the result is the best-effort forest the inner
/// algorithm produces — i.e. admission fails, detectable via
/// mc::is_valid_topology.
std::unique_ptr<TopologyAlgorithm> make_qos_algorithm(
    double demand, std::shared_ptr<const CapacityMap> capacities,
    std::unique_ptr<TopologyAlgorithm> inner);

}  // namespace dgmc::mc
