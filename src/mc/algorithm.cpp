#include "mc/algorithm.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "trees/incremental.hpp"
#include "trees/spt.hpp"
#include "trees/steiner.hpp"
#include "util/assert.hpp"

namespace dgmc::mc {

namespace {

using trees::Topology;

/// The terminal set a shared tree must span for the given MC type.
std::vector<graph::NodeId> shared_tree_terminals(const TopologyRequest& req) {
  // Symmetric: all members. Receiver-only: the receivers (== members).
  return req.members->all();
}

Topology from_scratch(const graph::Graph& g, const TopologyRequest& req) {
  switch (req.type) {
    case McType::kSymmetric:
    case McType::kReceiverOnly:
      return trees::kmb_steiner(g, shared_tree_terminals(req));
    case McType::kAsymmetric:
      return trees::source_rooted_union(g, req.members->senders(),
                                        req.members->receivers());
  }
  DGMC_ASSERT_MSG(false, "unknown MC type");
  return Topology{};
}

class FromScratchAlgorithm final : public TopologyAlgorithm {
 public:
  Result compute_with_info(const graph::Graph& g,
                           const TopologyRequest& req) const override {
    DGMC_ASSERT(req.members != nullptr);
    return Result{from_scratch(g, req), /*from_scratch=*/true};
  }

  std::string_view name() const override { return "from-scratch"; }
};

class IncrementalAlgorithm final : public TopologyAlgorithm {
 public:
  explicit IncrementalAlgorithm(double rebuild_factor)
      : rebuild_factor_(rebuild_factor) {
    DGMC_ASSERT(rebuild_factor >= 1.0);
  }

  Result compute_with_info(const graph::Graph& g,
                           const TopologyRequest& req) const override {
    DGMC_ASSERT(req.members != nullptr);
    if (req.type == McType::kAsymmetric) {
      return Result{from_scratch(g, req), true};
    }

    const std::vector<graph::NodeId> terminals = shared_tree_terminals(req);
    if (terminals.size() <= 1) return Result{Topology{}, false};

    const Topology* prev = req.previous;
    if (prev == nullptr || !trees::uses_only_live_links(g, *prev) ||
        !trees::is_forest(*prev)) {
      return Result{from_scratch(g, req), true};
    }

    // Reconcile: prune branches that served departed members, then
    // attach members the remaining tree does not reach.
    Topology t = trees::prune_after_leave(*prev, terminals);
    const graph::NodeId anchor = terminals.front();
    for (graph::NodeId m : terminals) {
      t = trees::greedy_attach(g, t, m, anchor);
    }
    if (!trees::is_steiner_tree(t, terminals)) {
      // Partition healed elsewhere, or the previous tree was split
      // across components: rebuild.
      return Result{from_scratch(g, req), true};
    }

    // Drift guard (paper §3.5: rebuild "when the present topology
    // deviates significantly from an optimal one"). Evaluating the
    // guard costs a fresh computation in this simulator, but a real
    // implementation would track drift from cheap incremental deltas,
    // so the *protocol-visible* cost of this path stays incremental.
    const Topology fresh = from_scratch(g, req);
    if (!fresh.empty() && trees::topology_cost(g, t) >
                              rebuild_factor_ * trees::topology_cost(g, fresh)) {
      return Result{fresh, true};
    }
    return Result{std::move(t), false};
  }

  std::string_view name() const override { return "incremental"; }

 private:
  double rebuild_factor_;
};

}  // namespace

std::unique_ptr<TopologyAlgorithm> make_from_scratch_algorithm() {
  return std::make_unique<FromScratchAlgorithm>();
}

std::unique_ptr<TopologyAlgorithm> make_incremental_algorithm(
    double rebuild_factor) {
  return std::make_unique<IncrementalAlgorithm>(rebuild_factor);
}

}  // namespace dgmc::mc
