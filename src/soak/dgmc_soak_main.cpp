// dgmc_soak: long-run chaos soak runner (DESIGN.md §10).
//
//   dgmc_soak SPEC_FILE [flags]
//
// Flags:
//   --jobs N        worker threads for the trial fan-out (default 1)
//   --trials N      override the spec's trial count
//   --duration S    override the spec's soak duration (CI capping)
//   --stuck NODE    gray-failure injection: silence NODE's transport
//   --stuck-at T    ...at simulated time T (default 0)
//   --no-rss        skip RSS sampling (determinism comparisons)
//   --summary       print the canonical summary (machine-comparable)
//   --trace FILE    where to write a watchdog trace (default
//                   soak_watchdog.trace in the working directory)
//   --bench-json    write BENCH_soak.json (honors DGMC_BENCH_DIR)
//
// Exit status: 0 = all trials passed every invariant and budget;
// 1 = failure (watchdog trip, invariant violation, budget breach);
// 2 = usage / malformed spec.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <variant>

#include "bench_json.hpp"
#include "soak/soak.hpp"

namespace {

using dgmc::sim::SoakSpec;
using dgmc::sim::SpecError;
using dgmc::soak::SoakOptions;
using dgmc::soak::TrialResult;

int usage() {
  std::fprintf(stderr,
               "usage: dgmc_soak SPEC_FILE [--jobs N] [--trials N] "
               "[--duration S]\n"
               "                 [--stuck NODE] [--stuck-at T] [--no-rss]\n"
               "                 [--summary] [--trace FILE] [--bench-json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return usage();
  const std::string spec_path = argv[1];

  SoakOptions options;
  long trials_override = -1;
  double duration_override = -1.0;
  bool want_summary = false;
  bool want_bench_json = false;
  std::string trace_path = "soak_watchdog.trace";

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dgmc_soak: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--jobs") {
      options.jobs = static_cast<std::size_t>(std::atol(next()));
    } else if (flag == "--trials") {
      trials_override = std::atol(next());
    } else if (flag == "--duration") {
      duration_override = std::atof(next());
    } else if (flag == "--stuck") {
      options.stuck_node = static_cast<dgmc::graph::NodeId>(std::atol(next()));
    } else if (flag == "--stuck-at") {
      options.stuck_at = std::atof(next());
    } else if (flag == "--no-rss") {
      options.track_rss = false;
    } else if (flag == "--summary") {
      want_summary = true;
    } else if (flag == "--trace") {
      trace_path = next();
    } else if (flag == "--bench-json") {
      want_bench_json = true;
    } else {
      std::fprintf(stderr, "dgmc_soak: unknown flag %s\n", flag.c_str());
      return usage();
    }
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "dgmc_soak: cannot open %s\n", spec_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = SoakSpec::parse(buf.str());
  if (const auto* err = std::get_if<SpecError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", spec_path.c_str(), err->line,
                 err->message.c_str());
    return 2;
  }
  SoakSpec spec = std::get<SoakSpec>(parsed);
  if (trials_override > 0) spec.trials = static_cast<int>(trials_override);
  if (duration_override > 0.0) spec.duration = duration_override;

  std::printf("soak '%s': n=%d duration=%gs phases=%d trials=%d seed=%llu\n",
              spec.name.c_str(), spec.network_size, spec.duration, spec.phases,
              spec.trials,
              static_cast<unsigned long long>(spec.soak_seed));

  const std::vector<TrialResult> results = dgmc::soak::run_soak(spec, options);

  bool all_ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialResult& r = results[i];
    if (r.ok) {
      const auto& last = r.phases.back();
      std::printf(
          "trial %zu: ok (%zu phases, %llu installs, %llu retransmissions, "
          "%llu sheds, rss %.1f MiB)\n",
          i, r.phases.size(), static_cast<unsigned long long>(last.installs),
          static_cast<unsigned long long>(last.retransmissions),
          static_cast<unsigned long long>(last.sheds), last.rss_mb);
      continue;
    }
    all_ok = false;
    std::printf("trial %zu: FAIL — %s\n", i, r.failure.c_str());
    if (r.watchdog_tripped && !r.trace_text.empty()) {
      std::ofstream trace(trace_path);
      trace << r.trace_text;
      if (trace) {
        std::printf("  replayable trace written to %s\n", trace_path.c_str());
        std::printf("  replay with: dgmc_check replay %s\n",
                    trace_path.c_str());
      } else {
        std::printf("  (failed to write trace to %s)\n", trace_path.c_str());
      }
    }
  }

  if (want_summary) {
    std::fputs(dgmc::soak::canonical_summary(results).c_str(), stdout);
  }
  if (want_bench_json) {
    dgmc::bench::write_bench_json("soak",
                                  dgmc::soak::bench_json(spec, results));
  }
  return all_ok ? 0 : 1;
}
