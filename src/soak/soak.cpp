#include "soak/soak.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "check/executor.hpp"
#include "check/invariants.hpp"
#include "check/scenario.hpp"
#include "check/trace.hpp"
#include "exec/pool.hpp"
#include "mc/algorithm.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dgmc::soak {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Builds a replayable dgmc_check trace for a tripped soak: the spec
/// is embedded verbatim, and the choices are the natural-order prefix
/// (index 0 every step — "what the native simulation would do next")
/// through the checker's transition system, so `dgmc_check replay`
/// validates the trace end to end with no catalog lookup.
std::string watchdog_trace(const sim::SoakSpec& spec,
                           std::size_t trace_injections,
                           const std::string& reason) {
  check::Trace trace;
  trace.scenario = "soak:" + spec.name;
  trace.spec_text = spec.serialize();
  trace.spec_injections = trace_injections;
  std::vector<std::string> annotations;
  const check::ScenarioSpec scenario =
      check::scenario_from_soak(spec, trace_injections);
  check::Executor executor(scenario);
  // Enough steps to fire every kept injection and drain its traffic,
  // bounded so a storm cannot make the trace unbounded.
  const std::size_t max_steps = 400;
  while (trace.choices.size() < max_steps && !executor.done()) {
    executor.step(0);
    trace.choices.push_back(0);
  }
  annotations.assign(trace.choices.size(), "");
  if (!annotations.empty()) annotations[0] = "watchdog: " + reason;
  return check::trace_to_string(trace, annotations);
}

struct DrainOutcome {
  bool tripped = false;
  std::string reason;
};

/// Runs the calendar dry under the watchdog: any `deadline` window of
/// simulated time with work remaining but no new installation trips.
/// Steps event by event so the clock only advances to times of real
/// work — a drain never jumps simulated time past the next phase.
// True when every switch is alive and every link is up — the state in
// which quiescence implies convergence. A transport-silenced (gray)
// switch still counts as fault-free: its failure is invisible by
// design, and flushing it out is what the watchdog is for.
bool visibly_fault_free(sim::DgmcNetwork& net) {
  const graph::Graph& g = net.physical();
  for (graph::NodeId n = 0; n < g.node_count(); ++n)
    if (!net.switch_alive(n)) return false;
  for (graph::LinkId l = 0; l < g.link_count(); ++l)
    if (!g.link(l).up) return false;
  return true;
}

DrainOutcome drain_with_watchdog(sim::DgmcNetwork& net,
                                 const sim::SoakSpec& spec) {
  DrainOutcome out;
  std::uint64_t installs_seen = net.totals().installs;
  des::SimTime progress_at = net.scheduler().now();
  while (!net.quiescent()) {
    if (!net.scheduler().step()) break;  // defensive: quiescent() re-checks
    const std::uint64_t installs = net.totals().installs;
    if (installs != installs_seen) {
      installs_seen = installs;
      progress_at = net.scheduler().now();
    } else if (net.scheduler().now() - progress_at > spec.watchdog_deadline &&
               !net.quiescent()) {
      out.tripped = true;
      out.reason = "no installation progress in " +
                   fmt(spec.watchdog_deadline) +
                   "s of simulated time with work still pending";
      return out;
    }
  }
  // Quiescent: every MC a membership program touches must have
  // converged — quiescent-but-disagreeing is the stuck-MC signature.
  // A flap or restart window can legitimately straddle a phase
  // boundary (the heal half lands in the next window), so only a
  // visibly fault-free network — every switch alive, every link up —
  // is held to convergence. A gray-failed switch passes the
  // visibility test; catching it is the watchdog's whole point.
  if (!visibly_fault_free(net)) return out;
  for (mc::McId mcid : spec.mcs()) {
    if (!net.converged(mcid)) {
      out.tripped = true;
      out.reason = "network quiescent but mc " + std::to_string(mcid) +
                   " has not converged (stuck MC)";
      return out;
    }
  }
  return out;
}

void schedule_soak_event(sim::DgmcNetwork& net, const sim::SoakEvent& ev) {
  // A drain's cascades (retransmit backoffs, computations) can carry
  // simulated time past the next window's start, so late events are
  // clamped to "now" — they then fire immediately, preserving the
  // window's (time, program) order via the calendar's FIFO tie-break.
  const des::SimTime at = std::max(ev.at, net.scheduler().now());
  // Guards mirror DgmcNetwork::install_faults: a precondition another
  // event invalidated (a crash downing a drifting link, a crashed
  // member asked to leave) degrades to a no-op.
  des::EventTag tag;
  tag.kind = des::EventTag::Kind::kFault;
  tag.node = ev.node;
  tag.link = ev.link;
  switch (ev.kind) {
    case sim::SoakEvent::Kind::kJoin:
      net.scheduler().schedule_at(at, tag, [&net, ev] {
        net.join(ev.node, ev.mcid, ev.type, ev.role);
      });
      break;
    case sim::SoakEvent::Kind::kLeave:
      net.scheduler().schedule_at(
          at, tag, [&net, ev] { net.leave(ev.node, ev.mcid); });
      break;
    case sim::SoakEvent::Kind::kFail:
      net.scheduler().schedule_at(at, tag, [&net, ev] {
        if (net.physical().link(ev.link).up) net.fail_link(ev.link);
      });
      break;
    case sim::SoakEvent::Kind::kRestore:
      net.scheduler().schedule_at(at, tag, [&net, ev] {
        if (!net.physical().link(ev.link).up) net.restore_link(ev.link);
      });
      break;
    case sim::SoakEvent::Kind::kCrash:
      net.scheduler().schedule_at(at, tag, [&net, ev] {
        if (net.switch_alive(ev.node)) net.crash_switch(ev.node);
      });
      break;
    case sim::SoakEvent::Kind::kRestart:
      net.scheduler().schedule_at(at, tag, [&net, ev] {
        if (!net.switch_alive(ev.node)) net.restart_switch(ev.node);
      });
      break;
  }
}

void fill_phase_report(sim::DgmcNetwork& net, bool track_rss,
                       PhaseReport& report) {
  const auto totals = net.totals();
  const auto& transport = net.transport();
  report.drained_at = net.scheduler().now();
  report.installs = totals.installs;
  report.mc_lsa_floodings = totals.mc_lsa_floodings;
  report.retransmissions = transport.retransmissions();
  report.give_ups = transport.give_ups();
  report.sheds = transport.sheds();
  report.dedup_compactions = transport.dedup_compactions();
  report.dedup_backlog = transport.dedup_backlog();
  report.pending_retransmits = transport.retransmit_timers_armed();
  report.queued = transport.queued();
  report.queue_peak = transport.queue_peak();
  report.rss_mb = track_rss ? process_rss_mb() : 0.0;
}

/// First budget breach at this phase's drain, or empty.
std::string budget_violation(const PhaseReport& report,
                             const sim::SoakBudgets& budgets,
                             double rss_baseline_mb, bool track_rss) {
  if (report.dedup_backlog > budgets.dedup_backlog) {
    return "dedup backlog " + std::to_string(report.dedup_backlog) +
           " exceeds budget " + std::to_string(budgets.dedup_backlog);
  }
  if (report.pending_retransmits > budgets.pending_retransmits) {
    return "pending retransmits " +
           std::to_string(report.pending_retransmits) + " exceed budget " +
           std::to_string(budgets.pending_retransmits);
  }
  if (track_rss && rss_baseline_mb > 0.0 &&
      report.rss_mb - rss_baseline_mb > budgets.rss_growth_mb) {
    return "RSS grew " + fmt(report.rss_mb - rss_baseline_mb) +
           " MiB since the first phase, budget " +
           fmt(budgets.rss_growth_mb) + " MiB";
  }
  return "";
}

}  // namespace

double process_rss_mb() {
  // /proc/self/statm field 2 is resident pages; portable fallback is
  // getrusage's peak (coarser: high-water, not current).
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long size = 0;
    long resident = 0;
    const int got = std::fscanf(f, "%ld %ld", &size, &resident);
    std::fclose(f);
    if (got == 2) {
      return static_cast<double>(resident) *
             static_cast<double>(sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
    }
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
  }
  return 0.0;
}

TrialResult run_trial(const sim::SoakSpec& spec, std::size_t trial_index,
                      const SoakOptions& options) {
  DGMC_ASSERT(spec.phases >= 1);
  TrialResult result;
  const std::uint64_t trial_seed =
      util::RngStream::derive(spec.soak_seed, "soak-trial")
          .fork(trial_index)
          .seed();

  const graph::Graph graph = spec.build_graph();
  sim::DgmcNetwork net(graph, spec.network_params(),
                       spec.incremental ? mc::make_incremental_algorithm()
                                        : mc::make_from_scratch_algorithm());
  net.install_faults(spec.faults, trial_seed);
  sim::ChurnEngine engine(spec, net.physical(), trial_seed);

  if (options.stuck_node != graph::kInvalidNode) {
    des::EventTag tag;
    tag.kind = des::EventTag::Kind::kFault;
    tag.node = options.stuck_node;
    const graph::NodeId node = options.stuck_node;
    net.scheduler().schedule_at(
        options.stuck_at, tag, [&net, node] { net.silence_transport(node); });
  }

  const std::vector<mc::McId> mcs = spec.mcs();
  const des::SimTime phase_len = spec.duration / spec.phases;
  double rss_baseline_mb = 0.0;

  for (int phase = 0; phase < spec.phases; ++phase) {
    const des::SimTime from = phase * phase_len;
    const des::SimTime to =
        phase + 1 == spec.phases ? spec.duration : (phase + 1) * phase_len;
    PhaseReport report;
    report.index = phase;
    report.window_begin = from;
    report.window_end = to;

    const std::vector<sim::SoakEvent> events = engine.phase_events(from, to);
    report.events_injected = events.size();
    for (const sim::SoakEvent& ev : events) schedule_soak_event(net, ev);

    net.run_until(std::max(to, net.scheduler().now()));
    const DrainOutcome drain = drain_with_watchdog(net, spec);
    fill_phase_report(net, options.track_rss, report);
    if (phase == 0) rss_baseline_mb = report.rss_mb;

    if (drain.tripped) {
      result.watchdog_tripped = true;
      result.failure = "watchdog (phase " + std::to_string(phase) +
                       "): " + drain.reason;
      result.trace_text =
          watchdog_trace(spec, options.trace_injections, drain.reason);
      result.phases.push_back(report);
      return result;
    }

    // Invariant catalog at the quiescence point.
    if (auto v = check::check_step_invariants(net, mcs)) {
      result.failure = "invariant (phase " + std::to_string(phase) + "): [" +
                       v->oracle + "] " + v->detail;
      result.phases.push_back(report);
      return result;
    }
    // Agreement only holds once visible faults heal; a flap or
    // restart whose heal half lands in the next window exempts this
    // phase (the final phase always drains fully healed).
    if (visibly_fault_free(net)) {
      if (auto v = check::check_agreement_invariants(net, mcs)) {
        result.failure = "invariant (phase " + std::to_string(phase) + "): [" +
                         v->oracle + "] " + v->detail;
        result.phases.push_back(report);
        return result;
      }
    }
    const std::string breach = budget_violation(
        report, spec.budgets, rss_baseline_mb, options.track_rss);
    if (!breach.empty()) {
      result.failure =
          "budget (phase " + std::to_string(phase) + "): " + breach;
      result.phases.push_back(report);
      return result;
    }
    result.phases.push_back(report);
  }

  result.final_fingerprint = net.fingerprint();
  result.ok = true;
  return result;
}

std::vector<TrialResult> run_soak(const sim::SoakSpec& spec,
                                  const SoakOptions& options) {
  std::vector<TrialResult> results(static_cast<std::size_t>(spec.trials));
  exec::parallel_for(
      results.size(),
      [&](std::size_t i) { results[i] = run_trial(spec, i, options); },
      options.jobs);
  return results;
}

std::string canonical_summary(const std::vector<TrialResult>& results) {
  std::ostringstream out;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialResult& r = results[i];
    out << "trial " << i << " ok=" << (r.ok ? 1 : 0)
        << " watchdog=" << (r.watchdog_tripped ? 1 : 0)
        << " fingerprint=" << r.final_fingerprint << "\n";
    if (!r.failure.empty()) out << "  failure: " << r.failure << "\n";
    for (const PhaseReport& p : r.phases) {
      // Everything behavior-derived; RSS deliberately excluded (the
      // one host-dependent reading, see header).
      out << "  phase " << p.index << " events=" << p.events_injected
          << " drained_at=" << fmt(p.drained_at)
          << " installs=" << p.installs << " mclsa=" << p.mc_lsa_floodings
          << " retx=" << p.retransmissions << " giveups=" << p.give_ups
          << " sheds=" << p.sheds << " compactions=" << p.dedup_compactions
          << " dedup=" << p.dedup_backlog
          << " pending=" << p.pending_retransmits << " queued=" << p.queued
          << " qpeak=" << p.queue_peak << "\n";
    }
  }
  return out.str();
}

std::string bench_json(const sim::SoakSpec& spec,
                       const std::vector<TrialResult>& results) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"soak\",\n";
  out << "  \"spec\": \"" << spec.name << "\",\n";
  out << "  \"seed\": " << spec.soak_seed << ",\n";
  out << "  \"duration_s\": " << fmt(spec.duration) << ",\n";
  out << "  \"phases\": " << spec.phases << ",\n";
  out << "  \"trials\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialResult& r = results[i];
    out << "    {\"ok\": " << (r.ok ? "true" : "false")
        << ", \"watchdog\": " << (r.watchdog_tripped ? "true" : "false")
        << ",\n     \"failure\": \"";
    for (char c : r.failure) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\",\n     \"phases\": [\n";
    for (std::size_t p = 0; p < r.phases.size(); ++p) {
      const PhaseReport& ph = r.phases[p];
      out << "       {\"phase\": " << ph.index
          << ", \"events\": " << ph.events_injected
          << ", \"drained_at\": " << fmt(ph.drained_at)
          << ", \"installs\": " << ph.installs
          << ", \"retransmissions\": " << ph.retransmissions
          << ", \"give_ups\": " << ph.give_ups
          << ", \"sheds\": " << ph.sheds
          << ", \"dedup_compactions\": " << ph.dedup_compactions
          << ", \"dedup_backlog\": " << ph.dedup_backlog
          << ", \"pending_retransmits\": " << ph.pending_retransmits
          << ", \"queue_peak\": " << ph.queue_peak
          << ", \"rss_mb\": " << fmt(ph.rss_mb) << "}"
          << (p + 1 < r.phases.size() ? ",\n" : "\n");
    }
    out << "     ]}" << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ]\n}";
  return out.str();
}

}  // namespace dgmc::soak
