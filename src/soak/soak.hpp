// Long-run chaos soak runner (DESIGN.md §10).
//
// A soak executes one SoakSpec (sim/spec.hpp) as a sequence of
// *phases*: each phase schedules its window of churn events (flash
// crowds, Poisson membership churn, cost-drift flaps, rolling
// restarts) onto the DES calendar, runs the window, then drains to
// quiescence under a convergence watchdog. At every drain the runner
// evaluates the check/ invariant catalog (step invariants + agreement)
// and the spec's steady-state budgets — dedup backlog, armed
// retransmit timers, RSS growth — so a leak or an unbounded queue
// fails the soak at the phase where it first crosses its budget, not
// hours later at exit.
//
// The convergence watchdog trips when a drain makes no installation
// progress for `watchdog_deadline` simulated seconds while work
// remains, or when the network quiesces with a multipoint connection
// whose holders disagree (a stuck MC). A trip fails the soak and dumps
// a replayable dgmc_check trace (PR 2 format) with the soak spec
// embedded, so `dgmc_check replay` reproduces the scenario from the
// trace file alone.
//
// Determinism: trial i of a soak derives every random decision from
// RngStream::derive(spec.soak_seed, "soak-trial").fork(i); trials fan
// out over an exec::Pool with index-addressed result slots, so results
// are bit-identical at any --jobs count (DESIGN.md §8). RSS readings
// are the one non-deterministic measurement, and are therefore
// excluded from canonical_summary().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/spec.hpp"

namespace dgmc::soak {

/// Per-phase measurements, taken at the phase's quiescence drain.
struct PhaseReport {
  int index = 0;
  des::SimTime window_begin = 0.0;
  des::SimTime window_end = 0.0;
  std::size_t events_injected = 0;
  des::SimTime drained_at = 0.0;  // simulated time quiescence was reached
  // Cumulative protocol / transport counters at the drain.
  std::uint64_t installs = 0;
  std::uint64_t mc_lsa_floodings = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t sheds = 0;
  std::uint64_t dedup_compactions = 0;
  // Steady-state sizes the budgets bound.
  std::size_t dedup_backlog = 0;
  std::size_t pending_retransmits = 0;
  std::size_t queued = 0;
  std::size_t queue_peak = 0;
  double rss_mb = 0.0;  // process RSS; excluded from canonical output
};

/// The outcome of one seeded trial.
struct TrialResult {
  bool ok = false;
  /// Empty when ok; otherwise the first fatal failure — a watchdog
  /// trip, an invariant violation, or a budget breach.
  std::string failure;
  bool watchdog_tripped = false;
  std::vector<PhaseReport> phases;
  std::uint64_t final_fingerprint = 0;
  /// Replayable dgmc_check trace text (spec embedded); nonempty only
  /// when the watchdog tripped.
  std::string trace_text;
};

struct SoakOptions {
  /// Worker threads for the trial fan-out (0 = DGMC_JOBS env var or
  /// hardware concurrency).
  std::size_t jobs = 1;
  /// Gray-failure injection for watchdog tests: at `stuck_at`, silence
  /// this switch's transport endpoint without crashing it — its stale
  /// MC state then blocks convergence and must trip the watchdog.
  graph::NodeId stuck_node = graph::kInvalidNode;
  des::SimTime stuck_at = 0.0;
  /// Churn script prefix embedded in a watchdog trace (0 = all).
  std::size_t trace_injections = 8;
  /// Capture /proc RSS at phase drains (off in determinism tests).
  bool track_rss = true;
};

/// Runs trial `trial_index` of the spec to completion. Deterministic
/// per (spec, trial_index, options besides jobs/track_rss).
TrialResult run_trial(const sim::SoakSpec& spec, std::size_t trial_index,
                      const SoakOptions& options);

/// Runs all spec.trials trials, fanned out over `options.jobs` workers.
/// Results are index-addressed: bit-identical at any job count.
std::vector<TrialResult> run_soak(const sim::SoakSpec& spec,
                                  const SoakOptions& options);

/// Canonical text rendering of the results for determinism comparison:
/// everything behavior-derived, nothing host-derived (RSS excluded).
std::string canonical_summary(const std::vector<TrialResult>& results);

/// BENCH_soak.json body (bench/bench_json.hpp conventions): invariant
/// outcome, shed counters, and the per-phase RSS trajectory.
std::string bench_json(const sim::SoakSpec& spec,
                       const std::vector<TrialResult>& results);

/// Current process resident set size in MiB (0.0 if unavailable).
double process_rss_mb();

}  // namespace dgmc::soak
