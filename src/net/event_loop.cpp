#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace dgmc::net {

namespace {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EventLoop::EventLoop() : start_ns_(monotonic_ns()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  DGMC_ASSERT_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  DGMC_ASSERT_MSG(wake_fd_ >= 0, "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  DGMC_ASSERT(rc == 0);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

rt::Time EventLoop::now() const {
  return static_cast<rt::Time>(monotonic_ns() - start_ns_) * 1e-9;
}

rt::TimerId EventLoop::schedule_after(rt::Time delay, rt::EventTag /*tag*/,
                                      Callback cb) {
  DGMC_ASSERT_MSG(delay >= 0.0, "negative delay");
  DGMC_ASSERT(cb != nullptr);
  const std::uint64_t id = next_id_++;
  const std::uint64_t seq = next_seq_++;
  heap_.push(TimerNode{now() + delay, seq, id});
  timers_.emplace(id, std::move(cb));
  return rt::TimerId{id};
}

bool EventLoop::cancel(rt::TimerId id) {
  // The heap node is left in place and skipped lazily on pop.
  return timers_.erase(id.value) != 0;
}

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  DGMC_ASSERT(fd >= 0);
  DGMC_ASSERT(on_readable != nullptr);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  DGMC_ASSERT_MSG(rc == 0, "epoll_ctl ADD failed");
  fds_[fd] = std::move(on_readable);
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::stop() {
  post([this] { stop_ = true; });
}

void EventLoop::request_stop_from_signal() {
  signal_stop_ = 1;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::run_due_timers(std::uint64_t* executed) {
  // Bound the sweep to timers due at entry: a callback that re-arms a
  // zero-delay timer must not starve fd readiness.
  const rt::Time deadline = now();
  while (!heap_.empty()) {
    TimerNode n = heap_.top();
    auto it = timers_.find(n.id);
    if (it == timers_.end()) {
      heap_.pop();  // cancelled: drop the stale node
      continue;
    }
    if (n.time > deadline) break;
    heap_.pop();
    Callback cb = std::move(it->second);
    timers_.erase(it);
    ++timers_fired_;
    ++*executed;
    cb();
  }
}

void EventLoop::drain_posted(std::uint64_t* executed) {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) {
    ++*executed;
    fn();
  }
}

int EventLoop::next_timeout_ms() const {
  // Peek past stale (cancelled) heap nodes without mutating the heap;
  // a stale head only costs one early wakeup.
  if (heap_.empty()) return -1;
  const rt::Time dt = heap_.top().time - now();
  if (dt <= 0.0) return 0;
  const double ms = std::ceil(dt * 1e3);
  if (ms > 60'000.0) return 60'000;
  return static_cast<int>(ms);
}

std::uint64_t EventLoop::run() {
  std::uint64_t executed = 0;
  stop_ = false;  // stop() ends one run(); signal_stop_ is terminal
  while (!stop_ && !signal_stop_) {
    drain_posted(&executed);
    if (stop_ || signal_stop_) break;
    run_due_timers(&executed);
    if (stop_ || signal_stop_) break;
    epoll_event events[64];
    const int n =
        ::epoll_wait(epoll_fd_, events, 64, next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      DGMC_ASSERT_MSG(false, "epoll_wait failed");
    }
    for (int i = 0; i < n && !stop_ && !signal_stop_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drain, sizeof drain);
        continue;  // posted work / stop handled at loop top
      }
      auto it = fds_.find(fd);
      if (it != fds_.end()) {
        ++executed;
        it->second();
      }
    }
  }
  return executed;
}

}  // namespace dgmc::net
