#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/frame.hpp"
#include "util/assert.hpp"

namespace dgmc::net {

EventLoop::EventLoop(LoopFlavor flavor) : flavor_(flavor) {
  DGMC_ASSERT_MSG(flavor_ != LoopFlavor::kUring,
                  "EventLoop is the epoll family; use UringLoop/make_io_loop");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  DGMC_ASSERT_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  DGMC_ASSERT(rc == 0);
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  DGMC_ASSERT(fd >= 0);
  DGMC_ASSERT(on_readable != nullptr);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  DGMC_ASSERT_MSG(rc == 0, "epoll_ctl ADD failed");
  fds_[fd] = std::move(on_readable);
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::on_udp_added(int fd) {
  ensure_rx_ring();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  DGMC_ASSERT_MSG(rc == 0, "epoll_ctl ADD (udp) failed");
}

void EventLoop::on_udp_removed(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::set_writable_watch(int fd, Socket& s, bool on) {
  if (s.want_writable == on) return;
  s.want_writable = on;
  epoll_event ev{};
  ev.events = on ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = fd;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  DGMC_ASSERT_MSG(rc == 0, "epoll_ctl MOD failed");
}

void EventLoop::ensure_rx_ring() {
  if (!rx_hot_.empty()) return;
  // Two-tier scatter: each slot is a packed 2 KiB hot buffer plus a
  // spill iovec covering the rest of kMaxDatagram. Protocol datagrams
  // are far below 2 KiB, so the kernel writes (and handlers read) a
  // dense 128 KiB region that stays cache- and prefetcher-friendly;
  // only a jumbo datagram touches its spill area and pays a
  // reassembly copy. The obvious one-64KiB-buffer-per-slot layout
  // measures ~15% slower at small datagrams on loopback: every slot
  // base is 64 KiB aligned, so the hot first lines of all 64 slots
  // contend for the same L1 sets.
  constexpr std::size_t kSpillSlot = kMaxDatagram - kRxHotSlot;
  rx_hot_.resize(static_cast<std::size_t>(kRxBatch) * kRxHotSlot);
  rx_spill_.resize(static_cast<std::size_t>(kRxBatch) * kSpillSlot);
  rx_hdrs_.resize(kRxBatch);
  rx_iovs_.resize(2 * kRxBatch);
  for (int i = 0; i < kRxBatch; ++i) {
    rx_iovs_[2 * i].iov_base = rx_hot_.data() + std::size_t(i) * kRxHotSlot;
    rx_iovs_[2 * i].iov_len = kRxHotSlot;
    rx_iovs_[2 * i + 1].iov_base =
        rx_spill_.data() + std::size_t(i) * kSpillSlot;
    rx_iovs_[2 * i + 1].iov_len = kSpillSlot;
    std::memset(&rx_hdrs_[i], 0, sizeof(mmsghdr));
    rx_hdrs_[i].msg_hdr.msg_iov = &rx_iovs_[2 * i];
    rx_hdrs_[i].msg_hdr.msg_iovlen = 2;
  }
  // The constant msghdr fields are set once; a flush only writes the
  // per-frame destination and iovec (a per-frame memset here is
  // measurable at batch sizes).
  tx_hdrs_.resize(kTxBatch);
  tx_iovs_.resize(kTxBatch);
  for (int i = 0; i < kTxBatch; ++i) {
    std::memset(&tx_hdrs_[i], 0, sizeof(mmsghdr));
    tx_hdrs_[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    tx_hdrs_[i].msg_hdr.msg_iov = &tx_iovs_[i];
    tx_hdrs_[i].msg_hdr.msg_iovlen = 1;
  }
}

void EventLoop::send_udp(int fd, const sockaddr_in& dest,
                         const std::uint8_t* data, std::size_t len) {
  if (flavor_ == LoopFlavor::kEpoll) {
    IoLoop::send_udp(fd, dest, data, len);  // queue; flush at end-of-callback
    return;
  }
  // Per-packet baseline: one sendto per frame, now. If earlier frames
  // are already parked behind EAGAIN, queue behind them — overtaking
  // would break per-destination FIFO.
  auto it = socks_.find(fd);
  DGMC_ASSERT_MSG(it != socks_.end(), "send_udp on an unregistered fd");
  Socket& s = it->second;
  if (!s.txq.empty()) {
    const bool queued = queue_tx(fd, dest, data, len);
    DGMC_ASSERT(queued);
    return;
  }
  int hook = tx_test_hook_ ? tx_test_hook_(1) : 1;
  ssize_t n = -1;
  if (hook == kTxHookFail) {
    errno = EPERM;
  } else if (hook == 0) {
    errno = EAGAIN;
  } else {
    n = ::sendto(fd, data, len, 0,
                 reinterpret_cast<const sockaddr*>(&dest), sizeof dest);
    ++io_.tx_syscalls;
  }
  if (n >= 0) {
    ++s.tx.sent;
    ++io_.tx_datagrams;
    return;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
      errno == ENOBUFS) {
    const bool queued = queue_tx(fd, dest, data, len);
    DGMC_ASSERT(queued);
    ++s.tx.requeued;
    set_writable_watch(fd, s, true);
    return;
  }
  ++s.tx.dropped;  // hard error: counted, never silent
}

void EventLoop::flush_socket(int fd, Socket& s) {
  while (!s.txq.empty()) {
    const int n = static_cast<int>(
        std::min<std::size_t>(s.txq.size(), kTxBatch));
    int offer = n;
    bool inject_hard = false;
    if (tx_test_hook_) {
      const int hook = tx_test_hook_(s.txq.size());
      if (hook == kTxHookFail) {
        inject_hard = true;
      } else {
        offer = std::min(offer, hook);
      }
    }
    int k = -1;
    if (inject_hard) {
      errno = EPERM;
    } else if (offer == 0) {
      errno = EAGAIN;
    } else {
      auto frame = s.txq.begin();
      for (int i = 0; i < offer; ++i, ++frame) {
        tx_iovs_[i].iov_base = frame->buf.data();
        tx_iovs_[i].iov_len = frame->buf.size();
        tx_hdrs_[i].msg_hdr.msg_name = &frame->dest;
      }
      k = ::sendmmsg(fd, tx_hdrs_.data(), static_cast<unsigned>(offer), 0);
      ++io_.tx_syscalls;
    }
    if (k < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ENOBUFS) {
        // Kernel is full: everything still queued counts as one
        // deferral each; EPOLLOUT finishes the flush later.
        s.tx.requeued += s.txq.size();
        set_writable_watch(fd, s, true);
        return;
      }
      // sendmmsg fails outright only on the first datagram: drop that
      // frame (counted), keep going with the rest.
      ++s.tx.dropped;
      pool_.release(std::move(s.txq.front().buf));
      s.txq.pop_front();
      continue;
    }
    s.tx.sent += static_cast<std::uint64_t>(k);
    io_.tx_datagrams += static_cast<std::uint64_t>(k);
    for (int i = 0; i < k; ++i) {
      pool_.release(std::move(s.txq.front().buf));
      s.txq.pop_front();
    }
    if (k < n) {
      // Short batch: the kernel took a prefix; the rest waits for
      // EPOLLOUT rather than being dropped on the floor.
      s.tx.requeued += s.txq.size();
      set_writable_watch(fd, s, true);
      return;
    }
  }
  set_writable_watch(fd, s, false);
}

void EventLoop::drain_udp(int fd, Socket& s, std::uint64_t* executed) {
  if (flavor_ == LoopFlavor::kEpoll) {
    drain_udp_batched(fd, s, executed);
  } else {
    drain_udp_packet(fd, s, executed);
  }
  // End-of-callback for the whole drain batch: acks and floods emitted
  // while handling these datagrams leave as one coalesced flush.
  flush_all_tx();
}

void EventLoop::drain_udp_batched(int fd, Socket& s,
                                  std::uint64_t* executed) {
  for (;;) {
    const int n =
        ::recvmmsg(fd, rx_hdrs_.data(), kRxBatch, MSG_DONTWAIT, nullptr);
    ++io_.rx_syscalls;
    if (n <= 0) return;  // EAGAIN/EINTR/transient: next readiness retries
    io_.rx_datagrams += static_cast<std::uint64_t>(n);
    const std::uint64_t gen = socket_generation();
    for (int i = 0; i < n; ++i) {
      ++*executed;
      const std::size_t len = rx_hdrs_[static_cast<std::size_t>(i)].msg_len;
      const std::uint8_t* data = rx_hot_.data() + std::size_t(i) * kRxHotSlot;
      if (len > kRxHotSlot) {
        // Jumbo datagram: the tail landed in the spill tier —
        // reassemble into contiguous bytes for the handler.
        constexpr std::size_t kSpillSlot = kMaxDatagram - kRxHotSlot;
        if (rx_bounce_.size() < len) rx_bounce_.resize(kMaxDatagram);
        std::memcpy(rx_bounce_.data(), data, kRxHotSlot);
        std::memcpy(rx_bounce_.data() + kRxHotSlot,
                    rx_spill_.data() + std::size_t(i) * kSpillSlot,
                    len - kRxHotSlot);
        data = rx_bounce_.data();
      }
      s.on_datagram(data, len);
      // A handler may deregister sockets (switch stop); our Socket
      // reference is then dangling — abort the drain.
      if (socket_generation() != gen) return;
    }
    // A partial batch means the queue emptied — skip the EAGAIN probe.
    if (n < kRxBatch) return;
  }
}

void EventLoop::drain_udp_packet(int fd, Socket& s, std::uint64_t* executed) {
  std::uint8_t buf[kMaxDatagram];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    ++io_.rx_syscalls;
    if (n < 0) return;  // EAGAIN/EINTR/transient: next readiness retries
    ++io_.rx_datagrams;
    ++*executed;
    const std::uint64_t gen = socket_generation();
    s.on_datagram(buf, static_cast<std::size_t>(n));
    if (socket_generation() != gen) return;
  }
}

std::uint64_t EventLoop::run() {
  std::uint64_t executed = 0;
  begin_run();
  while (!stopping()) {
    drain_posted(&executed);
    if (stopping()) break;
    run_due_timers(&executed);
    if (stopping()) break;
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      DGMC_ASSERT_MSG(false, "epoll_wait failed");
    }
    for (int i = 0; i < n && !stopping(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drain, sizeof drain);
        continue;  // posted work / stop handled at loop top
      }
      auto sit = socks_.find(fd);
      if (sit != socks_.end()) {
        if (events[i].events & EPOLLOUT) {
          flush_socket(fd, sit->second);
          // Flush may deregister nothing, but re-find under the same
          // iteration keeps the reference honest if a future hook does.
          sit = socks_.find(fd);
          if (sit == socks_.end()) continue;
        }
        if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
          drain_udp(fd, sit->second, &executed);
        }
        continue;
      }
      auto it = fds_.find(fd);
      if (it != fds_.end()) {
        ++executed;
        it->second();
        flush_all_tx();
      }
    }
  }
  return executed;
}

}  // namespace dgmc::net
