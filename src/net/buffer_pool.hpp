// BufferPool: recycled datagram buffers for the batched I/O path.
//
// The flush queues and receive rings of the wall-clock loops move one
// buffer per datagram; at 10^5+ packets/s a malloc/free pair per frame
// is measurable. The pool keeps up to `max_pooled` fixed-capacity
// slabs on a freelist. Exhaustion (or an oversized frame) falls back
// to a plain heap allocation — the caller never sees a failure, the
// frame is never dropped for lack of a slab, the pool just stops
// helping (counted in `heap_fallbacks`). release() re-pools only
// buffers with the slab capacity; oversized fallback buffers are
// freed.
//
// The retention bound is adaptive: the freelist may grow past
// `max_pooled` up to the observed high-water mark of concurrently
// outstanding buffers. A callback that queues thousands of frames for
// one coalesced flush (64 switches × 96 MCs) would otherwise thrash
// malloc on every round — and peak-outstanding is memory the workload
// demonstrably needed at once, so retaining that much steady-state
// cannot grow beyond what the process already used.
//
// Single-threaded by design: pools live inside a loop and are only
// touched from the loop thread, like the timer heap.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dgmc::net {

class BufferPool {
 public:
  /// `slab_bytes` should cover the common frame size; datagrams larger
  /// than a slab always come from the heap.
  explicit BufferPool(std::size_t max_pooled = 256,
                      std::size_t slab_bytes = 2048)
      : max_pooled_(max_pooled), slab_bytes_(slab_bytes) {}

  struct Counters {
    std::uint64_t pool_hits = 0;
    std::uint64_t heap_fallbacks = 0;  // empty pool or oversized frame
  };

  /// A buffer sized to exactly `len` (capacity >= len). Never fails.
  std::vector<std::uint8_t> acquire(std::size_t len) {
    ++outstanding_;
    if (outstanding_ > high_water_) high_water_ = outstanding_;
    if (len <= slab_bytes_ && !free_.empty()) {
      std::vector<std::uint8_t> buf = std::move(free_.back());
      free_.pop_back();
      buf.resize(len);
      ++counters_.pool_hits;
      return buf;
    }
    ++counters_.heap_fallbacks;
    std::vector<std::uint8_t> buf;
    buf.reserve(len <= slab_bytes_ ? slab_bytes_ : len);
    buf.resize(len);
    return buf;
  }

  /// Returns a buffer to the freelist. Buffers whose capacity is not
  /// the slab size (oversized fallbacks) and overflow beyond the
  /// retention bound are simply freed.
  void release(std::vector<std::uint8_t>&& buf) {
    if (outstanding_ > 0) --outstanding_;
    if (buf.capacity() == slab_bytes_ &&
        free_.size() < std::max(max_pooled_, high_water_)) {
      free_.push_back(std::move(buf));
    }
    // else: destructor frees it
  }

  std::size_t pooled() const { return free_.size(); }
  std::size_t max_pooled() const { return max_pooled_; }
  std::size_t outstanding() const { return outstanding_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t slab_bytes() const { return slab_bytes_; }
  const Counters& counters() const { return counters_; }

 private:
  std::size_t max_pooled_;
  std::size_t slab_bytes_;
  std::size_t outstanding_ = 0;
  std::size_t high_water_ = 0;
  std::vector<std::vector<std::uint8_t>> free_;
  Counters counters_;
};

}  // namespace dgmc::net
