// Heartbeat-driven neighbor discovery and link liveness/cost sensing,
// in the serval-dna route_link idiom (SNIPPETS.md §1): every node
// sends a HELLO on each incident link every hello_interval; hearing
// one refreshes the link's receive timeout and, via the echoed
// sequence number + hold time, yields an RTT sample folded into an
// EWMA link cost. A link silent for dead_interval is declared down;
// the first HELLO after that brings it back up.
//
// The table is transport-agnostic: it is driven by an rt::Executor
// (the heartbeat tick timer) and emits HELLOs/up-down transitions
// through std::function hooks — so the state machine is unit-testable
// deterministically under des::Scheduler, while the socket backend
// binds the hooks to real UDP sends.
//
// Links start *up* (optimistic), matching the protocol core's initial
// LocalImage in which every configured adjacency is usable; sustained
// silence then demotes what isn't. This avoids a boot-time storm of
// link-down floods while sockets come up.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "rt/executor.hpp"

namespace dgmc::net {

class NeighborTable {
 public:
  struct Config {
    rt::Time hello_interval = 50 * rt::kMillisecond;
    /// Declare a link down after this much silence. Must comfortably
    /// exceed hello_interval (OSPF uses 4x; CI uses ~10x so scheduler
    /// jitter on loaded runners cannot flap links spuriously).
    rt::Time dead_interval = 500 * rt::kMillisecond;
    /// EWMA weight of a new RTT sample (serval-dna uses 1/8).
    double rtt_alpha = 0.125;
  };

  struct Hooks {
    /// Emits one HELLO on a link (required): our sequence number, the
    /// last sequence heard from the peer there, and how long ago we
    /// heard it.
    std::function<void(graph::LinkId link, std::uint32_t hello_seq,
                       std::uint32_t echo_seq, rt::Time echo_hold)>
        send_hello;
    /// A link transitioned down (sustained silence) / back up.
    std::function<void(graph::LinkId)> link_down;
    std::function<void(graph::LinkId)> link_up;
  };

  NeighborTable(rt::Executor& exec, graph::NodeId self,
                std::vector<graph::LinkId> links, Config config, Hooks hooks);

  NeighborTable(const NeighborTable&) = delete;
  NeighborTable& operator=(const NeighborTable&) = delete;

  /// Arms the heartbeat tick (first HELLOs go out after one interval).
  void start();

  /// Cancels the tick timer (shutdown).
  void stop();

  /// A HELLO arrived on `link` carrying the peer's sequence number and
  /// the echo of ours.
  void on_hello(graph::LinkId link, std::uint32_t hello_seq,
                std::uint32_t echo_seq, rt::Time echo_hold);

  bool link_up(graph::LinkId link) const;

  /// RTT-EWMA link cost in seconds; negative until the first sample.
  double rtt(graph::LinkId link) const;

  const std::vector<graph::LinkId>& links() const { return links_; }

  // --- Metrics ---
  std::uint64_t hellos_sent() const { return hellos_sent_; }
  std::uint64_t hellos_received() const { return hellos_received_; }
  std::uint64_t links_declared_down() const { return links_declared_down_; }
  std::uint64_t links_declared_up() const { return links_declared_up_; }

 private:
  struct Peer {
    bool up = true;
    rt::Time last_heard = 0.0;
    std::uint32_t last_heard_seq = 0;  // for echoing back
    rt::Time last_heard_at = 0.0;      // for the hold-time computation
    double rtt_ewma = -1.0;
    /// Send times of our recent HELLOs, keyed by sequence number;
    /// pruned as echoes arrive (entries at or below the echo are dead)
    /// and by age, so it stays O(dead_interval / hello_interval).
    std::map<std::uint32_t, rt::Time> sent_at;
  };

  void tick();
  Peer* find(graph::LinkId link);
  const Peer* find(graph::LinkId link) const;

  rt::Executor& exec_;
  graph::NodeId self_;
  std::vector<graph::LinkId> links_;
  Config config_;
  Hooks hooks_;
  std::map<graph::LinkId, Peer> peers_;
  std::uint32_t next_hello_seq_ = 1;  // 0 on the wire means "none"
  rt::TimerId tick_timer_;
  bool running_ = false;
  std::uint64_t hellos_sent_ = 0;
  std::uint64_t hellos_received_ = 0;
  std::uint64_t links_declared_down_ = 0;
  std::uint64_t links_declared_up_ = 0;
};

}  // namespace dgmc::net
