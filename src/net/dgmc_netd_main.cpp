// dgmc_netd: one D-GMC switch as a standalone OS process.
//
//   dgmc_netd SPEC_FILE --node N --base-port P [flags]
//
// Flags:
//   --node N        which switch of the spec's topology this process is
//   --base-port P   UDP port plan: switch i listens on 127.0.0.1:(P+i)
//   --time-scale S  wall seconds per spec second for churn replay
//                   (default 1.0)
//   --run-for T     exit after T wall seconds (default: run until
//                   SIGTERM/SIGINT)
//   --hello T       heartbeat interval in seconds (default 0.05)
//   --dead T        dead interval in seconds (default 0.5)
//   --state-out F   write the final state dump to F (default stdout)
//   --loop L        event loop flavor: epoll (batched recvmmsg/sendmmsg,
//                   the default), epoll-packet (one syscall per
//                   datagram), uring (io_uring; falls back to epoll if
//                   the kernel lacks support)
//
// Every process parses the same spec and deterministically expands the
// same churn event list (ChurnEngine is seeded by the spec), then
// executes only the join/leave events addressed to its own node — so a
// fleet of netd processes needs no coordinator beyond a shared spec
// file and port plan.
//
// On exit (signal or --run-for) the process dumps its protocol state —
// one line per known MC: sorted members, installed tree edges, and the
// C timestamp — in a canonical text form, so an external harness can
// diff the dumps of all N processes to check agreement, plus one
// per-process `stats` line with the transmit-loss accounting (diffing
// harnesses must compare only the `mc ` lines).
//
// Exit status: 0 = clean shutdown; 2 = usage / malformed spec.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <variant>

#include "core/protocol.hpp"
#include "mc/algorithm.hpp"
#include "net/io_loop.hpp"
#include "net/state_dump.hpp"
#include "net/switch.hpp"
#include "sim/spec.hpp"

namespace {

dgmc::net::IoLoop* g_loop = nullptr;

void on_signal(int) {
  if (g_loop != nullptr) g_loop->request_stop_from_signal();
}

int usage() {
  std::fprintf(stderr,
               "usage: dgmc_netd SPEC_FILE --node N --base-port P\n"
               "                 [--time-scale S] [--run-for T] [--hello T]\n"
               "                 [--dead T] [--state-out FILE]\n"
               "                 [--loop epoll|epoll-packet|uring]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return usage();
  const std::string spec_path = argv[1];

  long node = -1;
  long base_port = -1;
  double time_scale = 1.0;
  double run_for = -1.0;
  double hello = 0.05;
  double dead = 0.5;
  std::string state_out;
  dgmc::net::LoopFlavor flavor = dgmc::net::LoopFlavor::kEpoll;

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dgmc_netd: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--node") {
      node = std::atol(next());
    } else if (flag == "--base-port") {
      base_port = std::atol(next());
    } else if (flag == "--time-scale") {
      time_scale = std::atof(next());
    } else if (flag == "--run-for") {
      run_for = std::atof(next());
    } else if (flag == "--hello") {
      hello = std::atof(next());
    } else if (flag == "--dead") {
      dead = std::atof(next());
    } else if (flag == "--state-out") {
      state_out = next();
    } else if (flag == "--loop") {
      const auto parsed_flavor = dgmc::net::parse_flavor(next());
      if (!parsed_flavor.has_value()) return usage();
      flavor = *parsed_flavor;
    } else {
      std::fprintf(stderr, "dgmc_netd: unknown flag %s\n", flag.c_str());
      return usage();
    }
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "dgmc_netd: cannot open %s\n", spec_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = dgmc::sim::SoakSpec::parse(buf.str());
  if (const auto* err = std::get_if<dgmc::sim::SpecError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", spec_path.c_str(), err->line,
                 err->message.c_str());
    return 2;
  }
  const dgmc::sim::SoakSpec& spec = std::get<dgmc::sim::SoakSpec>(parsed);
  const dgmc::graph::Graph graph = spec.build_graph();
  if (node < 0 || node >= graph.node_count() || base_port <= 0 ||
      base_port + graph.node_count() > 65536) {
    return usage();
  }
  const auto self = static_cast<dgmc::graph::NodeId>(node);

  const std::unique_ptr<dgmc::mc::TopologyAlgorithm> algorithm =
      spec.incremental ? dgmc::mc::make_incremental_algorithm()
                       : dgmc::mc::make_from_scratch_algorithm();

  dgmc::net::NetSwitch::Config config;
  config.dgmc = spec.network_params().dgmc;
  config.heartbeat.hello_interval = hello;
  config.heartbeat.dead_interval = dead;

  bool fell_back = false;
  const std::unique_ptr<dgmc::net::IoLoop> loop_ptr =
      dgmc::net::make_io_loop(flavor, &fell_back);
  dgmc::net::IoLoop& loop = *loop_ptr;
  dgmc::net::NetSwitch sw(loop, graph, self, *algorithm, config);
  sw.bind_local(static_cast<std::uint16_t>(base_port + node));
  for (dgmc::graph::LinkId id : graph.links_of(self)) {
    const dgmc::graph::NodeId peer = graph.other_end(id, self);
    sw.set_peer(id, static_cast<std::uint16_t>(base_port + peer));
  }
  sw.start();

  // Deterministic shared schedule: every process expands the same list
  // and takes only its own membership events.
  const std::vector<dgmc::sim::SoakEvent> events =
      dgmc::sim::ChurnEngine::expand_all(spec, graph, spec.soak_seed);
  std::size_t mine = 0;
  for (const dgmc::sim::SoakEvent& ev : events) {
    if (ev.node != self) continue;
    if (ev.kind == dgmc::sim::SoakEvent::Kind::kJoin) {
      ++mine;
      loop.schedule_after(ev.at * time_scale,
                          [&sw, ev] { sw.join(ev.mcid, ev.type, ev.role); });
    } else if (ev.kind == dgmc::sim::SoakEvent::Kind::kLeave) {
      ++mine;
      loop.schedule_after(ev.at * time_scale, [&sw, ev] { sw.leave(ev.mcid); });
    }
  }
  std::printf(
      "dgmc_netd: node %ld on port %ld (%d switches, %zu own events, "
      "loop %s%s)\n",
      node, base_port + node, graph.node_count(), mine,
      dgmc::net::flavor_name(loop.flavor()),
      fell_back ? " [uring unavailable, fell back]" : "");
  std::fflush(stdout);

  g_loop = &loop;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  if (run_for > 0.0) {
    loop.schedule_after(run_for, [&loop] { loop.stop(); });
  }
  loop.run();
  // Read the socket's transmit accounting before stop() deregisters it.
  const dgmc::net::TxCounters tx = sw.tx_counters();
  sw.stop();

  const std::string dump =
      dgmc::net::dump_state(sw.dgmc()) + dgmc::net::dump_tx_stats(tx);
  if (state_out.empty()) {
    std::fputs(dump.c_str(), stdout);
  } else {
    std::ofstream out(state_out);
    out << dump;
  }
  std::printf(
      "dgmc_netd: node %ld done (tx %llu rx %llu retransmissions %llu "
      "link downs %llu ups %llu tx_requeued %llu tx_dropped %llu)\n",
      node,
      static_cast<unsigned long long>(sw.stats().datagrams_sent),
      static_cast<unsigned long long>(sw.stats().datagrams_received),
      static_cast<unsigned long long>(sw.retransmissions()),
      static_cast<unsigned long long>(sw.stats().link_downs),
      static_cast<unsigned long long>(sw.stats().link_ups),
      static_cast<unsigned long long>(tx.requeued),
      static_cast<unsigned long long>(tx.dropped));
  return 0;
}
