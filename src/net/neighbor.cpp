#include "net/neighbor.hpp"

#include <utility>

#include "util/assert.hpp"

namespace dgmc::net {

NeighborTable::NeighborTable(rt::Executor& exec, graph::NodeId self,
                             std::vector<graph::LinkId> links, Config config,
                             Hooks hooks)
    : exec_(exec),
      self_(self),
      links_(std::move(links)),
      config_(config),
      hooks_(std::move(hooks)) {
  DGMC_ASSERT(hooks_.send_hello != nullptr);
  DGMC_ASSERT(config_.hello_interval > 0.0);
  DGMC_ASSERT(config_.dead_interval > config_.hello_interval);
  for (const graph::LinkId link : links_) {
    peers_.emplace(link, Peer{});
  }
}

void NeighborTable::start() {
  if (running_) return;
  running_ = true;
  // Optimistic-up grace: links were "heard" at start, so the first
  // dead-interval sweep that can demote them is a full dead_interval
  // after boot — enough time for peers to come up and start talking.
  const rt::Time t0 = exec_.now();
  for (auto& [link, peer] : peers_) {
    peer.last_heard = t0;
  }
  rt::EventTag tag;
  tag.kind = rt::EventTag::Kind::kHeartbeat;
  tag.node = self_;
  tick_timer_ = exec_.schedule_after(config_.hello_interval, tag,
                                     [this] { tick(); });
}

void NeighborTable::stop() {
  if (!running_) return;
  running_ = false;
  exec_.cancel(tick_timer_);
  tick_timer_ = rt::TimerId{};
}

void NeighborTable::tick() {
  if (!running_) return;
  const rt::Time now = exec_.now();

  // 1. Dead-interval sweep: demote links silent for too long.
  for (auto& [link, peer] : peers_) {
    if (peer.up && now - peer.last_heard > config_.dead_interval) {
      peer.up = false;
      peer.rtt_ewma = -1.0;  // stale samples don't survive an outage
      ++links_declared_down_;
      if (hooks_.link_down) hooks_.link_down(link);
    }
  }

  // 2. Send one HELLO per link — including down links, so a healed
  //    link revives as soon as datagrams flow again.
  for (auto& [link, peer] : peers_) {
    const std::uint32_t seq = next_hello_seq_++;
    peer.sent_at.emplace(seq, now);
    // Prune send-time records older than the dead interval: their
    // echoes can no longer produce a meaningful sample.
    while (!peer.sent_at.empty() &&
           now - peer.sent_at.begin()->second > config_.dead_interval) {
      peer.sent_at.erase(peer.sent_at.begin());
    }
    const rt::Time hold =
        peer.last_heard_seq == 0 ? 0.0 : now - peer.last_heard_at;
    ++hellos_sent_;
    hooks_.send_hello(link, seq, peer.last_heard_seq, hold);
  }

  rt::EventTag tag;
  tag.kind = rt::EventTag::Kind::kHeartbeat;
  tag.node = self_;
  tick_timer_ = exec_.schedule_after(config_.hello_interval, tag,
                                     [this] { tick(); });
}

void NeighborTable::on_hello(graph::LinkId link, std::uint32_t hello_seq,
                             std::uint32_t echo_seq, rt::Time echo_hold) {
  Peer* peer = find(link);
  if (peer == nullptr) return;  // not an incident link: ignore
  const rt::Time now = exec_.now();
  ++hellos_received_;
  peer->last_heard = now;
  peer->last_heard_seq = hello_seq;
  peer->last_heard_at = now;
  if (!peer->up) {
    peer->up = true;
    ++links_declared_up_;
    if (hooks_.link_up) hooks_.link_up(link);
  }
  if (echo_seq != 0) {
    auto it = peer->sent_at.find(echo_seq);
    if (it != peer->sent_at.end()) {
      const rt::Time sample = now - it->second - echo_hold;
      // An echo also retires every older outstanding probe: their
      // echoes, if they ever come, would be out of order.
      peer->sent_at.erase(peer->sent_at.begin(), std::next(it));
      if (sample >= 0.0) {
        peer->rtt_ewma =
            peer->rtt_ewma < 0.0
                ? sample
                : (1.0 - config_.rtt_alpha) * peer->rtt_ewma +
                      config_.rtt_alpha * sample;
      }
    }
  }
}

bool NeighborTable::link_up(graph::LinkId link) const {
  const Peer* peer = find(link);
  return peer != nullptr && peer->up;
}

double NeighborTable::rtt(graph::LinkId link) const {
  const Peer* peer = find(link);
  return peer == nullptr ? -1.0 : peer->rtt_ewma;
}

NeighborTable::Peer* NeighborTable::find(graph::LinkId link) {
  auto it = peers_.find(link);
  return it == peers_.end() ? nullptr : &it->second;
}

const NeighborTable::Peer* NeighborTable::find(graph::LinkId link) const {
  auto it = peers_.find(link);
  return it == peers_.end() ? nullptr : &it->second;
}

}  // namespace dgmc::net
