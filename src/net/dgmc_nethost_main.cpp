// dgmc_nethost: in-process loopback deployment harness.
//
//   dgmc_nethost SPEC_FILE [flags]
//
// Runs the spec's topology as N NetSwitches on one event loop, real UDP
// datagrams through 127.0.0.1, replays the spec's membership churn
// (join/leave; fault kinds are skipped — loopback links don't fail),
// and reports wall-clock convergence plus traffic metrics.
//
// Flags:
//   --time-scale S   wall seconds per spec second (default 0.1: a 30 s
//                    scenario replays in 3 s)
//   --max-wall T     hard wall-clock cap in seconds (default 60)
//   --hello T        heartbeat interval (default 0.05)
//   --dead T         dead interval (default 0.5)
//   --des-compare    run the same membership sequence through the DES
//                    backend (sim::DgmcNetwork) and require identical
//                    agreed trees and member lists per MC
//   --bench-json     write BENCH_net.json (honors DGMC_BENCH_DIR)
//   --loop L         event loop flavor: epoll (batched recvmmsg/sendmmsg,
//                    the default), epoll-packet (one syscall per
//                    datagram), uring (io_uring; falls back to epoll if
//                    the kernel lacks support)
//
// Exit status: 0 = converged (and, with --des-compare, matched the DES
// run); 1 = no convergence inside max-wall or a backend mismatch;
// 2 = usage / malformed spec.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bench_json.hpp"
#include "mc/algorithm.hpp"
#include "net/cluster.hpp"
#include "net/io_loop.hpp"
#include "sim/network.hpp"
#include "sim/spec.hpp"

namespace {

using dgmc::sim::SoakEvent;
using dgmc::sim::SoakSpec;
using dgmc::sim::SpecError;

int usage() {
  std::fprintf(stderr,
               "usage: dgmc_nethost SPEC_FILE [--time-scale S] [--max-wall T]\n"
               "                    [--hello T] [--dead T] [--rto T]\n"
               "                    [--des-compare] [--bench-json]\n"
               "                    [--loop epoll|epoll-packet|uring]\n");
  return 2;
}

/// Canonical edge set of a topology, for cross-backend comparison.
std::vector<std::pair<int, int>> canonical_edges(
    const dgmc::trees::Topology& t) {
  std::vector<std::pair<int, int>> edges;
  for (const dgmc::graph::Edge& e : t.edges()) {
    edges.emplace_back(std::min(e.a, e.b), std::max(e.a, e.b));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return usage();
  const std::string spec_path = argv[1];

  double time_scale = 0.1;
  double max_wall = 60.0;
  double hello = 0.05;
  double dead = 0.5;
  double rto = 0.0;  // 0 = the FloodNode default (10ms)
  bool des_compare = false;
  bool want_bench_json = false;
  dgmc::net::LoopFlavor flavor = dgmc::net::LoopFlavor::kEpoll;

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dgmc_nethost: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--time-scale") {
      time_scale = std::atof(next());
    } else if (flag == "--max-wall") {
      max_wall = std::atof(next());
    } else if (flag == "--hello") {
      hello = std::atof(next());
    } else if (flag == "--dead") {
      dead = std::atof(next());
    } else if (flag == "--rto") {
      rto = std::atof(next());
    } else if (flag == "--des-compare") {
      des_compare = true;
    } else if (flag == "--bench-json") {
      want_bench_json = true;
    } else if (flag == "--loop") {
      const auto parsed_flavor = dgmc::net::parse_flavor(next());
      if (!parsed_flavor.has_value()) return usage();
      flavor = *parsed_flavor;
    } else {
      std::fprintf(stderr, "dgmc_nethost: unknown flag %s\n", flag.c_str());
      return usage();
    }
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "dgmc_nethost: cannot open %s\n", spec_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = SoakSpec::parse(buf.str());
  if (const auto* err = std::get_if<SpecError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", spec_path.c_str(), err->line,
                 err->message.c_str());
    return 2;
  }
  const SoakSpec& spec = std::get<SoakSpec>(parsed);
  const dgmc::graph::Graph graph = spec.build_graph();
  const std::vector<dgmc::mc::McId> mcs = spec.mcs();

  // Membership-only slice of the churn: the loopback wire cannot fail.
  std::vector<SoakEvent> events;
  std::size_t skipped = 0;
  for (SoakEvent& ev :
       dgmc::sim::ChurnEngine::expand_all(spec, graph, spec.soak_seed)) {
    if (ev.kind == SoakEvent::Kind::kJoin ||
        ev.kind == SoakEvent::Kind::kLeave) {
      events.push_back(ev);
    } else {
      ++skipped;
    }
  }

  const std::unique_ptr<dgmc::mc::TopologyAlgorithm> algorithm =
      spec.incremental ? dgmc::mc::make_incremental_algorithm()
                       : dgmc::mc::make_from_scratch_algorithm();

  const dgmc::sim::DgmcNetwork::Params spec_params = spec.network_params();
  dgmc::net::NetCluster::Config config;
  config.sw.dgmc = spec_params.dgmc;
  // One spec drives every backend: the batching and overload knobs the
  // sim honors apply to the UDP switches too (DESIGN.md §13).
  config.sw.lsa_batching = spec_params.lsa_batching;
  config.sw.overload = spec_params.overload;
  // Event times are compressed by time_scale, so the protocol's own
  // time constants must compress identically or computations that were
  // sequential in spec time overlap in wall time (and vice versa),
  // changing which proposals race — and therefore the installed trees.
  config.sw.dgmc.computation_time *= time_scale;
  if (config.sw.dgmc.incremental_computation_time > 0.0) {
    config.sw.dgmc.incremental_computation_time *= time_scale;
  }
  config.sw.heartbeat.hello_interval = hello;
  config.sw.heartbeat.dead_interval = dead;
  // Big populations saturate loopback; the 10ms default RTO then sits
  // far below the real ack latency and every copy retransmits over and
  // over (congestion collapse). Widen it for many-MC runs.
  if (rto > 0.0) config.sw.reliable.initial_rto = rto;
  config.time_scale = time_scale;
  config.max_wall = max_wall;
  config.loop = flavor;

  dgmc::net::NetCluster cluster(graph, *algorithm, config);
  // The cluster resolves the flavor (uring may fall back): report what
  // actually ran, not what was asked for.
  const dgmc::net::LoopFlavor actual = cluster.loop().flavor();
  std::printf(
      "nethost '%s': %d switches on loopback, %zu membership events "
      "(%zu fault events skipped), time-scale %g, loop %s%s\n",
      spec.name.c_str(), graph.node_count(), events.size(), skipped,
      time_scale, dgmc::net::flavor_name(actual),
      actual != flavor ? " [uring unavailable, fell back]" : "");

  const dgmc::net::NetCluster::RunResult r = cluster.run(events, mcs);
  const dgmc::net::IoStats& io = cluster.loop().io_stats();
  // Datagram syscalls per datagram moved: recv/recvmmsg + sendto/
  // sendmmsg (epoll flavors) or io_uring_enter (uring) over rx+tx
  // datagrams. Wall-clock runs interleave timers and convergence polls
  // with I/O, so this is load-dependent: the JSON field is named
  // io_syscalls_per_packet to stay informational in bench_compare; the
  // exact syscalls_per_packet measurement lives in bench/net_io.
  const std::uint64_t io_calls =
      io.rx_syscalls + io.tx_syscalls + io.uring_enters;
  const std::uint64_t io_datagrams = io.rx_datagrams + io.tx_datagrams;
  const double syscalls_per_packet =
      io_datagrams > 0
          ? static_cast<double>(io_calls) / static_cast<double>(io_datagrams)
          : 0.0;

  const double pps =
      r.wall_seconds > 0.0
          ? static_cast<double>(r.datagrams_sent) / r.wall_seconds
          : 0.0;
  const double retx_overhead =
      r.datagrams_sent > 0
          ? static_cast<double>(r.retransmissions) /
                static_cast<double>(r.datagrams_sent)
          : 0.0;
  std::printf(
      "%s: wall %.3fs, convergence %.3fs after last event\n"
      "  %llu datagrams sent (%.0f pkts/s), %llu retransmissions "
      "(%.4f overhead), %llu installs, %llu/%llu events applied\n"
      "  %.3f syscalls/packet, tx_requeued %llu, tx_dropped %llu\n",
      r.converged ? "converged" : "NOT CONVERGED", r.wall_seconds,
      r.convergence_seconds,
      static_cast<unsigned long long>(r.datagrams_sent), pps,
      static_cast<unsigned long long>(r.retransmissions), retx_overhead,
      static_cast<unsigned long long>(r.installs),
      static_cast<unsigned long long>(r.events_applied),
      static_cast<unsigned long long>(r.events_applied + r.events_skipped),
      syscalls_per_packet,
      static_cast<unsigned long long>(r.tx_requeued),
      static_cast<unsigned long long>(r.tx_dropped));

  bool parity_ok = true;
  if (des_compare && r.converged) {
    // Same membership sequence through the DES backend: the protocol
    // objects are the same code, so at quiescence both backends must
    // install the same trees for the same member lists.
    dgmc::sim::DgmcNetwork des(graph, spec.network_params(),
                               spec.incremental
                                   ? dgmc::mc::make_incremental_algorithm()
                                   : dgmc::mc::make_from_scratch_algorithm());
    for (const SoakEvent& ev : events) {
      if (ev.kind == SoakEvent::Kind::kJoin) {
        des.scheduler().schedule_at(ev.at, [&des, ev] {
          des.join(ev.node, ev.mcid, ev.type, ev.role);
        });
      } else {
        des.scheduler().schedule_at(
            ev.at, [&des, ev] { des.leave(ev.node, ev.mcid); });
      }
    }
    des.run_to_quiescence();
    for (dgmc::mc::McId mcid : mcs) {
      if (!des.converged(mcid)) {
        std::printf("parity: DES backend did not converge for mc %d\n", mcid);
        parity_ok = false;
        continue;
      }
      const auto des_edges = canonical_edges(des.agreed_topology(mcid));
      const auto net_edges = canonical_edges(cluster.agreed_topology(mcid));
      if (des_edges != net_edges) {
        std::printf("parity: mc %d trees differ (DES %zu edges, net %zu)\n",
                    mcid, des_edges.size(), net_edges.size());
        parity_ok = false;
      }
      // Member lists must match too (empty = destroyed on both sides).
      std::vector<dgmc::graph::NodeId> des_members, net_members;
      for (int n = 0; n < des.size(); ++n) {
        if (des.switch_at(n).has_state(mcid)) {
          des_members = des.switch_at(n).members(mcid)->all();
          break;
        }
      }
      for (int n = 0; n < cluster.size(); ++n) {
        if (cluster.at(n).dgmc().has_state(mcid)) {
          net_members = cluster.at(n).dgmc().members(mcid)->all();
          break;
        }
      }
      if (des_members != net_members) {
        std::printf(
            "parity: mc %d member lists differ (DES %zu, net %zu)\n", mcid,
            des_members.size(), net_members.size());
        parity_ok = false;
      }
    }
    if (parity_ok) {
      std::printf("parity: net backend matches DES on %zu MCs\n", mcs.size());
    }
  }

  if (want_bench_json) {
    using dgmc::bench::json_num;
    using dgmc::bench::json_str;
    std::string body = "{\n  \"bench\": \"net\",\n";
    body += "  \"spec\": " + json_str(spec.name) + ",\n";
    body += "  \"clock\": \"wall\",\n";
    body += "  \"switches\": " + json_num(graph.node_count()) + ",\n";
    body += "  \"time_scale\": " + json_num(time_scale) + ",\n";
    body += "  \"entries\": [\n    {\n";
    body += "      \"name\": " + json_str("loopback_" + spec.name) + ",\n";
    body += "      \"mode\": " +
            json_str(dgmc::net::flavor_name(actual)) + ",\n";
    body += "      \"clock_wall\": 1,\n";
    body += "      \"converged\": " + json_num(r.converged ? 1 : 0) + ",\n";
    body += "      \"wall_seconds\": " + json_num(r.wall_seconds) + ",\n";
    body += "      \"convergence_seconds\": " +
            json_num(r.convergence_seconds) + ",\n";
    body += "      \"datagrams\": " +
            json_num(static_cast<double>(r.datagrams_sent)) + ",\n";
    body += "      \"packets_per_sec\": " + json_num(pps) + ",\n";
    body += "      \"io_syscalls_per_packet\": " +
            json_num(syscalls_per_packet) + ",\n";
    body += "      \"tx_requeued\": " +
            json_num(static_cast<double>(r.tx_requeued)) + ",\n";
    body += "      \"tx_dropped\": " +
            json_num(static_cast<double>(r.tx_dropped)) + ",\n";
    body += "      \"retransmit_overhead\": " + json_num(retx_overhead) +
            ",\n";
    body += "      \"installs\": " +
            json_num(static_cast<double>(r.installs)) + ",\n";
    body += "      \"events\": " +
            json_num(static_cast<double>(r.events_applied)) + "\n";
    body += "    }\n  ]\n}";
    dgmc::bench::write_bench_json("net", body);
  }

  return r.converged && parity_ok ? 0 : 1;
}
