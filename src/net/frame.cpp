#include "net/frame.hpp"

#include <cstring>

namespace dgmc::net {

namespace {

constexpr std::size_t kHeaderSize = 16;
/// Sanity bound on node/link ids carried in frames. Real deployments
/// are far smaller; a garbage id above this is rejected instead of
/// indexing some table with it.
constexpr std::uint32_t kMaxId = 1u << 20;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Bounds-checked little-endian reader over the datagram.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

  std::uint8_t u8() {
    if (pos_ + 1 > len_) {
      ok_ = false;
      return 0;
    }
    return data_[pos_++];
  }

  std::uint16_t u16() {
    if (pos_ + 2 > len_) {
      ok_ = false;
      return 0;
    }
    std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    if (pos_ + 4 > len_) {
      ok_ = false;
      return 0;
    }
    std::uint32_t v = data_[pos_] |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  void bytes(std::vector<std::uint8_t>& out, std::size_t n) {
    if (pos_ + n > len_) {
      ok_ = false;
      return;
    }
    out.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
  }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool valid_id(std::uint32_t v) { return v < kMaxId; }

}  // namespace

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  out.clear();
  put_u32(out, kFrameMagic);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(f.kind));
  out.push_back(0);  // reserved
  out.push_back(0);
  put_u32(out, static_cast<std::uint32_t>(f.sender));
  put_u32(out, static_cast<std::uint32_t>(f.link));
  switch (f.kind) {
    case FrameKind::kData:
      put_u32(out, static_cast<std::uint32_t>(f.origin));
      put_u32(out, f.seq);
      put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
      out.insert(out.end(), f.payload.begin(), f.payload.end());
      break;
    case FrameKind::kAck:
      put_u32(out, static_cast<std::uint32_t>(f.origin));
      put_u32(out, f.seq);
      break;
    case FrameKind::kHello: {
      put_u32(out, f.hello_seq);
      put_u32(out, f.echo_seq);
      const double micros = f.echo_hold * 1e6;
      const std::uint32_t held =
          micros <= 0.0 ? 0
          : micros >= 4e9 ? 0xFFFFFFFFu
                          : static_cast<std::uint32_t>(micros);
      put_u32(out, held);
      break;
    }
  }
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  encode_frame(f, out);
  return out;
}

std::optional<Frame> decode_frame(const std::uint8_t* data, std::size_t len) {
  if (data == nullptr || len < kHeaderSize || len > kMaxDatagram) {
    return std::nullopt;
  }
  Reader r(data, len);
  if (r.u32() != kFrameMagic) return std::nullopt;
  if (r.u8() != kFrameVersion) return std::nullopt;
  const std::uint8_t kind = r.u8();
  if (r.u16() != 0) return std::nullopt;  // reserved must be zero
  Frame f;
  const std::uint32_t sender = r.u32();
  const std::uint32_t link = r.u32();
  if (!r.ok() || !valid_id(sender) || !valid_id(link)) return std::nullopt;
  f.sender = static_cast<graph::NodeId>(sender);
  f.link = static_cast<graph::LinkId>(link);
  switch (kind) {
    case static_cast<std::uint8_t>(FrameKind::kData): {
      f.kind = FrameKind::kData;
      const std::uint32_t origin = r.u32();
      f.seq = r.u32();
      const std::uint32_t payload_len = r.u32();
      if (!r.ok() || !valid_id(origin)) return std::nullopt;
      // The length field must account for exactly the bytes present —
      // a short body truncates, a long one smuggles trailing garbage.
      if (payload_len != r.remaining()) return std::nullopt;
      f.origin = static_cast<graph::NodeId>(origin);
      r.bytes(f.payload, payload_len);
      break;
    }
    case static_cast<std::uint8_t>(FrameKind::kAck): {
      f.kind = FrameKind::kAck;
      const std::uint32_t origin = r.u32();
      f.seq = r.u32();
      if (!r.ok() || !valid_id(origin)) return std::nullopt;
      if (r.remaining() != 0) return std::nullopt;
      f.origin = static_cast<graph::NodeId>(origin);
      break;
    }
    case static_cast<std::uint8_t>(FrameKind::kHello): {
      f.kind = FrameKind::kHello;
      f.hello_seq = r.u32();
      f.echo_seq = r.u32();
      const std::uint32_t held = r.u32();
      if (!r.ok()) return std::nullopt;
      if (r.remaining() != 0) return std::nullopt;
      f.echo_hold = static_cast<rt::Time>(held) * 1e-6;
      break;
    }
    default:
      return std::nullopt;
  }
  return f;
}

std::optional<Frame> decode_frame(const std::vector<std::uint8_t>& bytes) {
  return decode_frame(bytes.data(), bytes.size());
}

}  // namespace dgmc::net
