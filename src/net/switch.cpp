#include "net/switch.hpp"

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/codec.hpp"
#include "util/assert.hpp"

namespace dgmc::net {

NetSwitch::NetSwitch(IoLoop& loop, const graph::Graph& topo,
                     graph::NodeId self,
                     const mc::TopologyAlgorithm& algorithm, Config config)
    : loop_(loop),
      topo_(topo),
      self_(self),
      config_(config),
      image_(topo_) {
  DGMC_ASSERT(topo_.valid_node(self_));

  wire_ = std::make_unique<UdpWire>(*this);
  node_ = std::make_unique<lsr::FloodNode<Payload>>(
      self_, topo_.node_count(), loop_, *wire_);
  if (config_.reliable.enabled) node_->set_reliable(config_.reliable);
  if (config_.overload.max_dedup_ahead > 0) {
    node_->set_max_dedup_ahead(config_.overload.max_dedup_ahead);
  }
  node_->set_receiver([this](const lsr::FloodNode<Payload>::Delivery& d) {
    deliver(d);
  });

  NeighborTable::Hooks nb_hooks;
  nb_hooks.send_hello = [this](graph::LinkId link, std::uint32_t hello_seq,
                               std::uint32_t echo_seq, rt::Time echo_hold) {
    send_hello_frame(link, hello_seq, echo_seq, echo_hold);
  };
  nb_hooks.link_down = [this](graph::LinkId link) {
    on_heartbeat_link_down(link);
  };
  nb_hooks.link_up = [this](graph::LinkId link) {
    on_heartbeat_link_up(link);
  };
  neighbors_ = std::make_unique<NeighborTable>(
      loop_, self_, topo_.links_of(self_), config_.heartbeat,
      std::move(nb_hooks));

  lsr::LsaBatcher::Hooks bhooks;
  bhooks.flood_single = [this](core::McLsa lsa) {
    flood(Payload{std::move(lsa)});
  };
  bhooks.flood_batch = [this](core::McLsaBatch batch) {
    flood(Payload{std::move(batch)});
  };
  batcher_ =
      std::make_unique<lsr::LsaBatcher>(loop_, self_, std::move(bhooks));
  batcher_->set_enabled(config_.lsa_batching);
  // A flushed batch must still fit one datagram after framing.
  batcher_->set_max_batch_bytes(kMaxDatagram - 256);

  core::DgmcSwitch::Hooks hooks;
  hooks.flood = [this](core::McLsa lsa) { batcher_->submit(std::move(lsa)); };
  hooks.local_image = [this]() -> const graph::Graph& {
    return image_.graph();
  };
  hooks.on_install = [this](mc::McId, const trees::Topology&) {
    ++stats_.installs;
  };
  dgmc_ = std::make_unique<core::DgmcSwitch>(self_, topo_.node_count(), loop_,
                                             algorithm, config_.dgmc,
                                             std::move(hooks));

  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  DGMC_ASSERT_MSG(fd_ >= 0, "socket() failed");
}

NetSwitch::~NetSwitch() {
  stop();
  if (fd_ >= 0) ::close(fd_);
}

void NetSwitch::bind_local(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int rc =
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  DGMC_ASSERT_MSG(rc == 0, "bind() failed");
  socklen_t len = sizeof addr;
  const int grc = ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  DGMC_ASSERT(grc == 0);
  local_port_ = ntohs(addr.sin_port);
}

void NetSwitch::set_peer(graph::LinkId link, std::uint16_t port) {
  DGMC_ASSERT(link >= 0 && link < topo_.link_count());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  peers_[link] = addr;
}

void NetSwitch::start() {
  DGMC_ASSERT_MSG(local_port_ != 0, "bind_local before start");
  for (const graph::LinkId link : topo_.links_of(self_)) {
    DGMC_ASSERT_MSG(peers_.count(link) != 0, "peer port missing for a link");
  }
  if (started_) return;
  started_ = true;
  loop_.add_udp(fd_, [this](const std::uint8_t* data, std::size_t len) {
    on_datagram(data, len);
  });
  neighbors_->start();
}

void NetSwitch::stop() {
  if (!started_) return;
  started_ = false;
  neighbors_->stop();
  node_->abandon_all_pending();
  loop_.remove_udp(fd_);
}

void NetSwitch::on_datagram(const std::uint8_t* data, std::size_t len) {
  // The loop owns the batched drain (recvmmsg ring / uring multishot);
  // this runs once per datagram in kernel receive order.
  ++stats_.datagrams_received;
  if (rx_drop_ && rx_drop_()) {
    ++stats_.rx_dropped;
    return;
  }
  handle_datagram(data, len);
}

void NetSwitch::handle_datagram(const std::uint8_t* data, std::size_t len) {
  std::optional<Frame> f = decode_frame(data, len);
  if (!f.has_value()) {
    ++stats_.decode_errors;
    return;
  }
  // The link must be a real adjacency of ours and the claimed sender
  // must be its far end — anything else is misdelivery (or forgery) and
  // must not reach protocol state.
  if (f->link < 0 || f->link >= topo_.link_count()) {
    ++stats_.misaddressed;
    return;
  }
  const graph::Link& l = topo_.link(f->link);
  if ((l.u != self_ && l.v != self_) ||
      f->sender != topo_.other_end(f->link, self_)) {
    ++stats_.misaddressed;
    return;
  }
  switch (f->kind) {
    case FrameKind::kHello:
      neighbors_->on_hello(f->link, f->hello_seq, f->echo_seq, f->echo_hold);
      return;
    case FrameKind::kAck:
      node_->on_ack(f->link, f->origin, f->seq);
      return;
    case FrameKind::kData: {
      if (f->origin < 0 || f->origin >= topo_.node_count()) {
        ++stats_.misaddressed;
        return;
      }
      const std::optional<core::WireType> type = core::peek_type(f->payload);
      Payload payload;
      if (type == core::WireType::kLinkEvent) {
        auto ad = core::decode_link_event(f->payload);
        if (!ad.has_value()) {
          ++stats_.decode_errors;
          return;
        }
        payload = *ad;
      } else if (type == core::WireType::kMcLsa) {
        auto lsa = core::decode_mc_lsa(f->payload);
        if (!lsa.has_value()) {
          ++stats_.decode_errors;
          return;
        }
        payload = std::move(*lsa);
      } else if (type == core::WireType::kMcSync) {
        auto sync = core::decode_mc_sync(f->payload);
        if (!sync.has_value()) {
          ++stats_.decode_errors;
          return;
        }
        payload = std::move(*sync);
      } else if (type == core::WireType::kMcLsaBatch) {
        auto batch = core::decode_mc_lsa_batch(f->payload);
        if (!batch.has_value()) {
          ++stats_.decode_errors;
          return;
        }
        payload = std::move(*batch);
      } else {
        ++stats_.decode_errors;
        return;
      }
      auto msg = std::make_shared<const lsr::FloodMessage<Payload>>(
          lsr::FloodMessage<Payload>{f->origin, f->seq, 0,
                                     std::move(payload)});
      node_->on_data(f->link, msg);
      return;
    }
  }
}

void NetSwitch::deliver(const lsr::FloodNode<Payload>::Delivery& d) {
  // Same dispatch as sim::DgmcNetwork::deliver.
  if (const auto* link_ad = std::get_if<lsr::LinkEventAd>(&d.payload)) {
    image_.apply(*link_ad);
    return;
  }
  if (const auto* sync = std::get_if<core::McSync>(&d.payload)) {
    dgmc_->apply_sync(*sync);
    return;
  }
  if (const auto* batch = std::get_if<core::McLsaBatch>(&d.payload)) {
    for (const core::McLsa& lsa : batch->lsas) dgmc_->receive(lsa);
    return;
  }
  dgmc_->receive(std::get<core::McLsa>(d.payload));
}

void NetSwitch::flood(Payload payload) { node_->flood(std::move(payload)); }

void NetSwitch::on_heartbeat_link_down(graph::LinkId link) {
  // This switch is the detector for its half of the adjacency — the
  // far end's own heartbeat times out independently, so a real network
  // always runs in the simulation's dual-detection regime.
  ++stats_.link_downs;
  image_.apply(lsr::LinkEventAd{link, false});
  ++stats_.nonmc_floodings;
  flood(Payload{lsr::LinkEventAd{link, false}});
  dgmc_->local_link_event(link);
}

void NetSwitch::on_heartbeat_link_up(graph::LinkId link) {
  ++stats_.link_ups;
  image_.apply(lsr::LinkEventAd{link, true});
  ++stats_.nonmc_floodings;
  flood(Payload{lsr::LinkEventAd{link, true}});
  dgmc_->local_link_event(link);
  if (config_.dgmc.partition_resync) {
    // Database exchange over the healed adjacency (the sim's
    // restore_link path): summarize every known connection and flood.
    for (mc::McId mcid : dgmc_->known_mcs()) {
      ++stats_.sync_floodings;
      flood(Payload{dgmc_->export_sync(mcid)});
    }
  }
}

void NetSwitch::send_data_frame(graph::LinkId link,
                                const lsr::FloodMessage<Payload>& m) {
  Frame f;
  f.kind = FrameKind::kData;
  f.sender = self_;
  f.link = link;
  f.origin = m.origin;
  f.seq = m.seq;
  std::visit([this](const auto& p) { core::encode_into(p, payload_buf_); },
             m.payload);
  f.payload = payload_buf_;
  encode_frame(f, tx_buf_);
  send_to_link(link);
}

void NetSwitch::send_ack_frame(graph::LinkId link, graph::NodeId origin,
                               std::uint32_t seq) {
  Frame f;
  f.kind = FrameKind::kAck;
  f.sender = self_;
  f.link = link;
  f.origin = origin;
  f.seq = seq;
  encode_frame(f, tx_buf_);
  send_to_link(link);
}

void NetSwitch::send_hello_frame(graph::LinkId link, std::uint32_t hello_seq,
                                 std::uint32_t echo_seq, rt::Time echo_hold) {
  Frame f;
  f.kind = FrameKind::kHello;
  f.sender = self_;
  f.link = link;
  f.hello_seq = hello_seq;
  f.echo_seq = echo_seq;
  f.echo_hold = echo_hold;
  encode_frame(f, tx_buf_);
  send_to_link(link);
}

void NetSwitch::send_to_link(graph::LinkId link) {
  auto it = peers_.find(link);
  DGMC_ASSERT_MSG(it != peers_.end(), "send on a link with no peer");
  ++stats_.datagrams_sent;
  // The loop queues the frame and flushes at end-of-callback; frames
  // the kernel defers or refuses are counted in tx_counters() instead
  // of vanishing (a dropped frame is still indistinguishable from wire
  // loss to the protocol — the ack + retransmit machinery and
  // heartbeats absorb it — but now it is *visible* in the state dump).
  loop_.send_udp(fd_, it->second, tx_buf_.data(), tx_buf_.size());
}

}  // namespace dgmc::net
