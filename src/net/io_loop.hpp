// IoLoop: the wall-clock rt::Executor family — shared machinery for
// every loop flavor the socket backend can run on.
//
// PR 6 introduced one wall-clock loop (epoll). The batched-I/O fast
// path adds flavors — epoll draining per packet, epoll draining with
// recvmmsg/sendmmsg, io_uring — and everything that is *not* the
// poller must behave identically across them or the protocol would
// observe the flavor: the monotonic clock, the lazy-deletion timer
// heap, the eventfd cross-thread post, the terminal signal-stop, and
// the per-socket transmit queues with their loss accounting. All of
// that lives here, once; a concrete loop only implements how fds are
// watched, how datagrams are drained, and how a queue of frames is
// handed to the kernel.
//
// Transmit model (shared by every flavor): send_udp() never hands a
// frame straight to sendto(). Frames queue per socket in FIFO order
// and the loop flushes a socket's queue at end-of-callback — after
// the timer/posted/receive callback that emitted them returns. One
// callback's worth of frames becomes one syscall (sendmmsg) or one
// submission chain (io_uring). Because no receive or timer callback
// can run between emission and flush, protocol-visible ordering is
// exactly what per-frame sendto() gave: frames to the same
// destination leave in emission order, and every frame emitted by
// callback N is on the wire before callback N+1 runs (DESIGN.md §14).
// Frames the kernel will not take (EAGAIN, short sendmmsg) stay
// queued and the loop re-arms writability instead of dropping them —
// counted per socket in TxCounters::requeued; frames lost to hard
// send errors are counted in TxCounters::dropped, never silently.
//
// Threading model is unchanged from PR 6: everything runs on the
// single thread inside run(); post() and stop() are the only
// thread-safe entry points.
#pragma once

#include <netinet/in.h>

#include <csignal>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/buffer_pool.hpp"
#include "rt/executor.hpp"

namespace dgmc::net {

/// Which wall-clock loop implementation drives the sockets.
///   kEpollPacket — epoll, one recv/sendto syscall per datagram (the
///                  PR 6 baseline, kept as the bench reference).
///   kEpoll       — epoll with recvmmsg/sendmmsg batching (default).
///   kUring       — io_uring submission/completion rings (needs
///                  kernel support; callers use make_io_loop for the
///                  auto-fallback to kEpoll).
enum class LoopFlavor { kEpollPacket, kEpoll, kUring };

const char* flavor_name(LoopFlavor f);

/// Parses "epoll-packet" | "epoll" | "uring" (the --loop flag).
std::optional<LoopFlavor> parse_flavor(std::string_view s);

/// Per-socket transmit accounting (one socket = one NetSwitch, so
/// these are the per-switch tx_* counters the state dump surfaces).
struct TxCounters {
  std::uint64_t sent = 0;      // datagrams the kernel accepted
  std::uint64_t requeued = 0;  // frames deferred by EAGAIN/short batch
  std::uint64_t dropped = 0;   // frames lost to hard send errors
};

/// Loop-wide datagram syscall accounting, for syscalls-per-packet.
struct IoStats {
  std::uint64_t rx_syscalls = 0;   // recv/recvmmsg calls
  std::uint64_t tx_syscalls = 0;   // sendto/sendmmsg calls
  std::uint64_t uring_enters = 0;  // io_uring_enter calls (uring only)
  std::uint64_t rx_datagrams = 0;
  std::uint64_t tx_datagrams = 0;
};

class IoLoop : public rt::Executor {
 public:
  /// Receive callback: one decoded-length datagram. The buffer is
  /// loop-owned and only valid for the duration of the call.
  using DatagramHandler =
      std::function<void(const std::uint8_t* data, std::size_t len)>;

  IoLoop(const IoLoop&) = delete;
  IoLoop& operator=(const IoLoop&) = delete;
  ~IoLoop() override;

  // --- rt::Executor (shared across flavors) ---
  rt::Time now() const override;
  rt::TimerId schedule_after(rt::Time delay, rt::EventTag tag,
                             Callback cb) override;
  using rt::Executor::schedule_after;
  bool cancel(rt::TimerId id) override;

  virtual LoopFlavor flavor() const = 0;

  // --- datagram sockets ---

  /// Registers a (bound, non-blocking) UDP socket. Incoming datagrams
  /// are drained in batches and handed to `on_datagram` one by one, in
  /// kernel receive order. The fd is not owned; remove it before
  /// closing.
  void add_udp(int fd, DatagramHandler on_datagram);
  void remove_udp(int fd);

  /// Queues one datagram for `fd` toward `dest`; the queue flushes at
  /// end-of-callback (see file header). The bytes are copied into a
  /// pooled buffer, so the caller's storage may be reused immediately.
  virtual void send_udp(int fd, const sockaddr_in& dest,
                        const std::uint8_t* data, std::size_t len);

  // --- loop control (shared) ---

  /// Runs until stop(). Returns the number of callbacks executed.
  virtual std::uint64_t run() = 0;

  /// Thread-safe: enqueues `fn` to run on the loop thread, waking it.
  void post(std::function<void()> fn);

  /// Thread-safe; ends the current run() (a later run() is allowed).
  void stop();

  /// Async-signal-safe terminal stop (see EventLoop's PR 6 contract:
  /// sticks even if it lands before run() starts).
  void request_stop_from_signal();

  // --- introspection ---
  std::uint64_t timers_fired() const { return timers_fired_; }
  const IoStats& io_stats() const { return io_; }
  /// Zeroed counters for an unknown fd (e.g. a never-started switch).
  TxCounters tx_counters(int fd) const;
  BufferPool& buffer_pool() { return pool_; }

 protected:
  IoLoop();

  struct PendingTx {
    std::vector<std::uint8_t> buf;
    sockaddr_in dest;
  };
  struct Socket {
    DatagramHandler on_datagram;
    std::deque<PendingTx> txq;
    TxCounters tx;
    bool want_writable = false;  // waiting for the kernel to drain
  };

  // Poller hooks implemented per flavor.
  virtual void on_udp_added(int fd) = 0;
  virtual void on_udp_removed(int fd) = 0;
  /// Move as much of `s.txq` into the kernel as it will take, updating
  /// `s.tx` and the loop IoStats; arrange for a later retry (writable
  /// watch, poll op) when frames remain.
  virtual void flush_socket(int fd, Socket& s) = 0;

  /// Copies the frame into a pooled buffer and appends to the socket's
  /// queue. Returns false if the fd is not registered.
  bool queue_tx(int fd, const sockaddr_in& dest, const std::uint8_t* data,
                std::size_t len);

  /// Flushes every socket with queued frames (end-of-callback point).
  void flush_all_tx();

  /// Runs timers due at entry (bounded sweep — a callback re-arming a
  /// zero-delay timer must not starve I/O), flushing tx after each.
  void run_due_timers(std::uint64_t* executed);
  void drain_posted(std::uint64_t* executed);
  int next_timeout_ms() const;
  bool stopping() const { return stop_ || signal_stop_ != 0; }
  void begin_run() { stop_ = false; }  // signal_stop_ stays terminal

  /// Generation counter bumped by remove_udp: a drain loop snapshots
  /// it before invoking a handler and aborts if the handler removed
  /// sockets (its Socket reference may be gone).
  std::uint64_t socket_generation() const { return socks_gen_; }

  std::unordered_map<int, Socket> socks_;
  std::uint64_t socks_gen_ = 0;
  BufferPool pool_;
  IoStats io_;
  int wake_fd_ = -1;  // eventfd: post()/signal-stop wakeups
  std::uint64_t timers_fired_ = 0;

 private:
  struct TimerNode {
    rt::Time time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const TimerNode& a, const TimerNode& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::int64_t start_ns_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<TimerNode, std::vector<TimerNode>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> timers_;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  volatile bool stop_ = false;
  volatile sig_atomic_t signal_stop_ = 0;
};

/// Builds a loop of the requested flavor. kUring falls back to the
/// batched epoll loop when the kernel (or the build) lacks io_uring;
/// `*fell_back` reports that so daemons can say which loop actually
/// ran. Never returns null.
std::unique_ptr<IoLoop> make_io_loop(LoopFlavor flavor,
                                     bool* fell_back = nullptr);

}  // namespace dgmc::net
