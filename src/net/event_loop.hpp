// net::EventLoop: the wall-clock rt::Executor — an epoll loop over
// real file descriptors plus a timer heap.
//
// This is the deployment-side counterpart of des::Scheduler: protocol
// code written against rt::Executor runs unchanged on either. now() is
// monotonic wall-clock seconds since the loop was constructed; timers
// fire when the hardware clock says so (EventTags are accepted for
// interface parity and ignored — a wall-clock run cannot be interposed
// on the way the model checker interposes on the calendar).
//
// Threading model: everything — timer callbacks, fd readiness
// callbacks, posted functions — runs on the single thread inside
// run(). schedule_after()/cancel()/add_fd() must be called from that
// thread (or before run() starts); post() and stop() are the only
// thread-safe entry points, waking the loop through an eventfd.
//
// The timer heap copies des::Scheduler's lazy-deletion scheme: heap
// nodes carry only (time, seq, id) ordering data, callbacks live in a
// side map, and cancellation just erases the map entry — a stale heap
// node is skipped on pop.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "rt/executor.hpp"

namespace dgmc::net {

class EventLoop final : public rt::Executor {
 public:
  EventLoop();
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Monotonic wall-clock seconds since construction.
  rt::Time now() const override;

  rt::TimerId schedule_after(rt::Time delay, rt::EventTag tag,
                             Callback cb) override;
  using rt::Executor::schedule_after;

  bool cancel(rt::TimerId id) override;

  /// Registers `on_readable` to run whenever `fd` has data. The fd is
  /// not owned; remove it before closing.
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  /// Thread-safe: enqueues `fn` to run on the loop thread, waking it.
  void post(std::function<void()> fn);

  /// Runs until stop(). Returns the number of callbacks executed.
  std::uint64_t run();

  /// Thread-safe and async-signal-safe via the wake eventfd when
  /// called from a signal handler through request_stop_from_signal().
  void stop();

  /// Async-signal-safe stop request: writes the wake eventfd. Safe to
  /// call from a POSIX signal handler. Unlike stop() (which only ends
  /// the current run() and allows a later re-run), a signal stop is
  /// terminal: it sticks even if it lands before run() starts, so a
  /// SIGTERM during daemon setup can never be lost to the race with
  /// entering the loop.
  void request_stop_from_signal();

  std::uint64_t timers_fired() const { return timers_fired_; }

 private:
  struct TimerNode {
    rt::Time time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const TimerNode& a, const TimerNode& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void run_due_timers(std::uint64_t* executed);
  void drain_posted(std::uint64_t* executed);
  int next_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::int64_t start_ns_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t timers_fired_ = 0;
  std::priority_queue<TimerNode, std::vector<TimerNode>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> timers_;
  std::unordered_map<int, std::function<void()>> fds_;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  volatile bool stop_ = false;
  // Set only by request_stop_from_signal and never cleared: run()
  // resets stop_ on entry (so the loop is re-runnable after stop()),
  // which would silently swallow a signal that fired before run().
  volatile sig_atomic_t signal_stop_ = 0;
};

}  // namespace dgmc::net
