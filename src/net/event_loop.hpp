// net::EventLoop: the epoll flavors of the wall-clock IoLoop.
//
// Two flavors share this class (DESIGN.md §14):
//
//   * LoopFlavor::kEpoll (default) — the batched fast path. Readiness
//     drains up to kRxBatch datagrams per recvmmsg() into a loop-owned
//     receive ring; sends queue per socket and flush at
//     end-of-callback as one sendmmsg() (per-destination addresses in
//     the msghdrs, so one syscall covers every peer a switch emitted
//     to in that callback). Frames the kernel refuses (EAGAIN, short
//     batch) stay queued and EPOLLOUT is armed to finish the flush —
//     no silent drops.
//   * LoopFlavor::kEpollPacket — the PR 6 per-packet baseline: one
//     recv() per datagram, one immediate sendto() per frame. Kept as
//     the measured reference for bench/net_io and as a parity foil;
//     even here, EAGAIN queues the frame and arms EPOLLOUT instead of
//     losing it, and hard errors are counted per socket.
//
// Timers, cross-thread post, stop and signal-stop semantics live in
// IoLoop and are identical across flavors; see io_loop.hpp. add_fd()
// remains for generic non-datagram fds (readable callback, no
// batching) — the wake eventfd and tests use it.
#pragma once

#include <sys/socket.h>  // mmsghdr (glibc exposes it under _GNU_SOURCE)
#include <sys/uio.h>     // iovec

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/io_loop.hpp"

namespace dgmc::net {

class EventLoop final : public IoLoop {
 public:
  /// How many datagrams one recvmmsg()/sendmmsg() moves at most.
  static constexpr int kRxBatch = 64;
  static constexpr int kTxBatch = 64;
  /// Packed receive tier: datagrams up to this size land in a dense
  /// 2 KiB-per-slot region (see ensure_rx_ring for why packing
  /// matters); larger ones spill and are reassembled before delivery.
  static constexpr std::size_t kRxHotSlot = 2048;

  explicit EventLoop(LoopFlavor flavor = LoopFlavor::kEpoll);
  ~EventLoop() override;

  LoopFlavor flavor() const override { return flavor_; }

  /// Registers `on_readable` to run whenever `fd` has data (generic,
  /// non-batched path). The fd is not owned; remove it before closing.
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  void send_udp(int fd, const sockaddr_in& dest, const std::uint8_t* data,
                std::size_t len) override;

  std::uint64_t run() override;

  /// TEST-ONLY: interposes on every transmit syscall the flush makes.
  /// Called with the number of frames about to be offered; the return
  /// value simulates kernel behavior:
  ///   >= 0        — accept at most that many frames (0 simulates
  ///                 EAGAIN: nothing taken, EPOLLOUT re-arm path runs)
  ///   kTxHookFail — simulate a hard per-frame error on the head frame
  /// Real syscalls still happen for accepted frames. Reset with
  /// nullptr.
  static constexpr int kTxHookFail = -1;
  void set_tx_test_hook(std::function<int(std::size_t queued)> hook) {
    tx_test_hook_ = std::move(hook);
  }

 private:
  void on_udp_added(int fd) override;
  void on_udp_removed(int fd) override;
  void flush_socket(int fd, Socket& s) override;

  void set_writable_watch(int fd, Socket& s, bool on);
  void drain_udp(int fd, Socket& s, std::uint64_t* executed);
  void drain_udp_batched(int fd, Socket& s, std::uint64_t* executed);
  void drain_udp_packet(int fd, Socket& s, std::uint64_t* executed);
  void ensure_rx_ring();

  LoopFlavor flavor_;
  int epoll_fd_ = -1;
  std::unordered_map<int, std::function<void()>> fds_;  // generic fds

  // Receive ring: kRxBatch two-tier buffers (packed hot slots + jumbo
  // spill) and the iovec/mmsghdr arrays recvmmsg scatters into,
  // allocated once on first add_udp. rx_bounce_ reassembles the rare
  // datagram that overflows its hot slot into contiguous bytes.
  std::vector<std::uint8_t> rx_hot_;
  std::vector<std::uint8_t> rx_spill_;
  std::vector<std::uint8_t> rx_bounce_;
  std::vector<mmsghdr> rx_hdrs_;
  std::vector<iovec> rx_iovs_;

  // Transmit scatter arrays reused by every flush.
  std::vector<mmsghdr> tx_hdrs_;
  std::vector<iovec> tx_iovs_;

  std::function<int(std::size_t)> tx_test_hook_;
};

}  // namespace dgmc::net
