// NetSwitch: one D-GMC switch on a real UDP socket.
//
// This is the deployment assembly of the same protocol objects the
// simulation runs — core::DgmcSwitch (paper §3.3), lsr::FloodNode (the
// per-switch flooding engine), lsr::LocalImage — driven by a
// wall-clock net::IoLoop (any flavor — epoll or io_uring, see
// DESIGN.md §14) instead of des::Scheduler and wired to the network
// through datagrams instead of calendar insertions:
//
//   * UdpWire implements lsr::FloodWire by framing each flooding copy /
//     ack (net/frame.hpp) around the core/codec payload encoding and
//     handing it to the loop's per-socket transmit queue, which
//     coalesces everything one callback emits into a single batched
//     send (IoLoop's end-of-callback flush keeps sendto() ordering);
//   * a NeighborTable senses link liveness from HELLO heartbeats and
//     stands in for the simulation's omniscient link-status oracle:
//     its down/up transitions drive the same image-update → non-MC-LSA
//     flood → local_link_event sequence sim::DgmcNetwork::fail_link /
//     restore_link performs, with this switch as the detector (in a
//     real network BOTH ends time out — the dual-detection model);
//   * incoming datagrams are decoded defensively (decode_frame +
//     codec decode both reject malformed bytes) and dispatched exactly
//     like sim::DgmcNetwork::deliver.
//
// One switch = one socket; frames carry the link id so a single socket
// serves all adjacencies. Peer addresses per link are configured before
// start() (from a port plan — see NetCluster and dgmc_netd).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include <netinet/in.h>

#include "core/protocol.hpp"
#include "core/sync.hpp"
#include "graph/graph.hpp"
#include "lsr/batcher.hpp"
#include "lsr/flood_node.hpp"
#include "lsr/link_lsa.hpp"
#include "lsr/local_image.hpp"
#include "mc/algorithm.hpp"
#include "net/io_loop.hpp"
#include "net/frame.hpp"
#include "net/neighbor.hpp"

namespace dgmc::net {

class NetSwitch {
 public:
  /// Same payload universe as the simulation's transport.
  using Payload = std::variant<lsr::LinkEventAd, core::McLsa, core::McSync,
                               core::McLsaBatch>;

  struct Config {
    core::DgmcConfig dgmc;
    NeighborTable::Config heartbeat;
    /// Per-link ack + retransmit. UDP loses datagrams, so real
    /// deployments want this on (the default here, unlike the sim).
    lsr::ReliableFloodingConfig reliable{/*enabled=*/true};
    /// Overload bounds. Only max_dedup_ahead applies here: the
    /// inflight/queue fields are enforced by the sim's wire model, and
    /// UDP has no admission control to hand them to. Bounding the
    /// dedup buffer still caps per-origin memory during join storms.
    lsr::OverloadConfig overload;
    /// Coalesce same-round MC LSA originations into one batch frame
    /// (one datagram per link, one ack, one retransmit timer —
    /// lsr::LsaBatcher, DESIGN.md §13). Off by default; peers must run
    /// a batch-aware codec to decode the 0xD9 frame.
    bool lsa_batching = false;
  };

  struct Stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t decode_errors = 0;   // malformed frame or payload
    std::uint64_t misaddressed = 0;    // valid frame, wrong link/sender
    std::uint64_t rx_dropped = 0;      // test-hook seeded loss
    std::uint64_t link_downs = 0;      // heartbeat-declared
    std::uint64_t link_ups = 0;
    std::uint64_t nonmc_floodings = 0;
    std::uint64_t sync_floodings = 0;
    std::uint64_t installs = 0;
  };

  NetSwitch(IoLoop& loop, const graph::Graph& topo, graph::NodeId self,
            const mc::TopologyAlgorithm& algorithm, Config config);
  ~NetSwitch();

  NetSwitch(const NetSwitch&) = delete;
  NetSwitch& operator=(const NetSwitch&) = delete;

  /// Binds the socket to 127.0.0.1:port (0 = ephemeral).
  void bind_local(std::uint16_t port);

  /// The bound port (after bind_local).
  std::uint16_t local_port() const { return local_port_; }

  /// Where the far end of `link` listens. Every incident link needs a
  /// peer before start().
  void set_peer(graph::LinkId link, std::uint16_t port);

  /// Registers the socket with the loop and arms the heartbeat.
  void start();

  /// Deregisters and stops heartbeats (the socket stays bound).
  void stop();

  // --- Local protocol events ---

  void join(mc::McId mcid, mc::McType type,
            mc::MemberRole role = mc::MemberRole::kBoth) {
    dgmc_->local_join(mcid, type, role);
  }
  void leave(mc::McId mcid) { dgmc_->local_leave(mcid); }

  // --- Introspection ---

  graph::NodeId self() const { return self_; }
  core::DgmcSwitch& dgmc() { return *dgmc_; }
  const core::DgmcSwitch& dgmc() const { return *dgmc_; }
  const lsr::LocalImage& image() const { return image_; }
  const NeighborTable& neighbors() const { return *neighbors_; }
  const lsr::LsaBatcher::Counters& batching_counters() const {
    return batcher_->counters();
  }
  const Stats& stats() const { return stats_; }
  /// Kernel-facing transmit accounting for this switch's socket: sent /
  /// requeued-on-EAGAIN / dropped-on-hard-error (live from the loop).
  TxCounters tx_counters() const { return loop_.tx_counters(fd_); }
  std::uint64_t retransmissions() const { return node_->retransmissions(); }
  std::size_t retransmit_timers_armed() const {
    return node_->retransmit_timers_armed();
  }

  /// TEST-ONLY: when set and returning true, an incoming datagram is
  /// dropped before decoding — seeded receive-side loss for exercising
  /// the ack/retransmit and heartbeat machinery on a lossless loopback.
  void set_rx_drop(std::function<bool()> fn) { rx_drop_ = std::move(fn); }

 private:
  class UdpWire final : public lsr::FloodWire<Payload> {
   public:
    explicit UdpWire(NetSwitch& owner) : owner_(owner) {}
    const std::vector<graph::LinkId>& incident_links() const override {
      return owner_.topo_.links_of(owner_.self_);
    }
    bool link_up(graph::LinkId id) const override {
      return owner_.neighbors_->link_up(id);
    }
    bool self_up() const override { return true; }
    void send_data(graph::LinkId id, const MessagePtr& msg) override {
      owner_.send_data_frame(id, *msg);
    }
    void send_ack(graph::LinkId id, graph::NodeId origin,
                  std::uint32_t seq) override {
      owner_.send_ack_frame(id, origin, seq);
    }

   private:
    NetSwitch& owner_;
  };

  void on_datagram(const std::uint8_t* data, std::size_t len);
  void handle_datagram(const std::uint8_t* data, std::size_t len);
  void deliver(const lsr::FloodNode<Payload>::Delivery& d);
  void flood(Payload payload);
  void on_heartbeat_link_down(graph::LinkId link);
  void on_heartbeat_link_up(graph::LinkId link);
  void send_data_frame(graph::LinkId link, const lsr::FloodMessage<Payload>& m);
  void send_ack_frame(graph::LinkId link, graph::NodeId origin,
                      std::uint32_t seq);
  void send_hello_frame(graph::LinkId link, std::uint32_t hello_seq,
                        std::uint32_t echo_seq, rt::Time echo_hold);
  void send_to_link(graph::LinkId link);

  IoLoop& loop_;
  graph::Graph topo_;  // static wiring plan: who is on the far end of what
  graph::NodeId self_;
  Config config_;
  lsr::LocalImage image_;
  Stats stats_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  bool started_ = false;
  std::map<graph::LinkId, sockaddr_in> peers_;
  std::function<bool()> rx_drop_;
  std::vector<std::uint8_t> tx_buf_;       // reused frame encode buffer
  std::vector<std::uint8_t> payload_buf_;  // reused codec encode buffer
  std::unique_ptr<UdpWire> wire_;
  std::unique_ptr<lsr::FloodNode<Payload>> node_;
  std::unique_ptr<NeighborTable> neighbors_;
  std::unique_ptr<lsr::LsaBatcher> batcher_;
  std::unique_ptr<core::DgmcSwitch> dgmc_;
};

}  // namespace dgmc::net
