#include "net/cluster.hpp"

#include <algorithm>
#include <functional>

#include "mc/validation.hpp"
#include "util/assert.hpp"

namespace dgmc::net {

NetCluster::NetCluster(const graph::Graph& topo,
                       const mc::TopologyAlgorithm& algorithm, Config config)
    : topo_(topo), config_(config), loop_(make_io_loop(config.loop)) {
  const int n = topo_.node_count();
  for (graph::LinkId id = 0; id < topo_.link_count(); ++id) {
    DGMC_ASSERT_MSG(topo_.link(id).up, "cluster graphs start fully up");
  }
  switches_.reserve(n);
  for (graph::NodeId id = 0; id < n; ++id) {
    switches_.push_back(
        std::make_unique<NetSwitch>(*loop_, topo_, id, algorithm, config_.sw));
    switches_.back()->bind_local(0);
  }
  // Cross-wire: each endpoint of a link sends to the other end's port.
  for (graph::LinkId id = 0; id < topo_.link_count(); ++id) {
    const graph::Link& l = topo_.link(id);
    switches_[l.u]->set_peer(id, switches_[l.v]->local_port());
    switches_[l.v]->set_peer(id, switches_[l.u]->local_port());
  }
  for (auto& sw : switches_) sw->start();
}

NetCluster::~NetCluster() {
  for (auto& sw : switches_) sw->stop();
}

void NetCluster::apply_event(const sim::SoakEvent& ev, RunResult& result) {
  switch (ev.kind) {
    case sim::SoakEvent::Kind::kJoin:
      switches_[ev.node]->join(ev.mcid, ev.type, ev.role);
      ++result.events_applied;
      return;
    case sim::SoakEvent::Kind::kLeave:
      switches_[ev.node]->leave(ev.mcid);
      ++result.events_applied;
      return;
    default:
      // Link faults / crashes need an interposable wire or a process to
      // kill — out of scope for the in-process loopback harness.
      ++result.events_skipped;
      return;
  }
}

NetCluster::RunResult NetCluster::run(
    const std::vector<sim::SoakEvent>& events,
    const std::vector<mc::McId>& mcs) {
  RunResult result;
  const rt::Time t0 = loop_->now();
  rt::Time last_event = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const rt::Time at = events[i].at * config_.time_scale;
    last_event = std::max(last_event, at);
    loop_->schedule_after(
        at, [this, &events, &result, i] { apply_event(events[i], result); });
  }
  const rt::Time events_done = t0 + last_event;

  int stable = 0;
  rt::Time first_stable_at = 0.0;
  std::function<void()> poll = [&] {
    bool agreed = false;
    if (loop_->now() >= events_done && quiescent()) {
      agreed = true;
      for (mc::McId mcid : mcs) agreed = agreed && converged(mcid);
    }
    if (!agreed) {
      stable = 0;
    } else {
      if (stable == 0) first_stable_at = loop_->now();
      ++stable;
    }
    if (stable >= config_.stable_polls) {
      result.converged = true;
      // Convergence is dated to the first poll of the stable streak —
      // the confirmation polls are measurement overhead, not protocol.
      result.wall_seconds = first_stable_at - t0;
      result.convergence_seconds = std::max(0.0, first_stable_at - events_done);
      loop_->stop();
      return;
    }
    loop_->schedule_after(config_.poll_interval, [&poll] { poll(); });
  };
  loop_->schedule_after(config_.poll_interval, [&poll] { poll(); });
  const rt::TimerId cap =
      loop_->schedule_after(config_.max_wall, [this] { loop_->stop(); });

  loop_->run();
  loop_->cancel(cap);

  if (!result.converged) result.wall_seconds = loop_->now() - t0;
  for (const auto& sw : switches_) {
    result.datagrams_sent += sw->stats().datagrams_sent;
    result.datagrams_received += sw->stats().datagrams_received;
    result.retransmissions += sw->retransmissions();
    result.installs += sw->stats().installs;
    result.tx_requeued += sw->tx_counters().requeued;
    result.tx_dropped += sw->tx_counters().dropped;
  }
  return result;
}

bool NetCluster::quiescent() const {
  for (const auto& sw : switches_) {
    if (sw->retransmit_timers_armed() != 0) return false;
    if (sw->dgmc().computing()) return false;
  }
  return true;
}

bool NetCluster::converged(mc::McId mcid) const {
  // Mirrors sim::DgmcNetwork::converged (see its comments).
  const core::DgmcSwitch* reference = nullptr;
  for (const auto& sw : switches_) {
    const core::DgmcSwitch& d = sw->dgmc();
    if (!d.has_state(mcid)) continue;
    if (reference == nullptr) {
      reference = &d;
      continue;
    }
    if (!(*d.installed(mcid) == *reference->installed(mcid))) return false;
    if (!(*d.members(mcid) == *reference->members(mcid))) return false;
    if (!(*d.stamp_c(mcid) == *reference->stamp_c(mcid))) return false;
  }
  if (reference == nullptr) return true;  // destroyed everywhere
  for (graph::NodeId n : reference->installed(mcid)->nodes()) {
    if (!switches_[n]->dgmc().has_state(mcid)) return false;
  }
  for (graph::NodeId n : reference->members(mcid)->all()) {
    if (!switches_[n]->dgmc().has_state(mcid)) return false;
  }
  return mc::is_valid_topology(topo_, reference->mc_type(mcid),
                               *reference->members(mcid),
                               *reference->installed(mcid));
}

trees::Topology NetCluster::agreed_topology(mc::McId mcid) const {
  DGMC_ASSERT(converged(mcid));
  for (const auto& sw : switches_) {
    if (sw->dgmc().has_state(mcid)) return *sw->dgmc().installed(mcid);
  }
  return trees::Topology{};
}

}  // namespace dgmc::net
