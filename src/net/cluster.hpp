// NetCluster: N NetSwitches on one wall-clock IoLoop (any flavor),
// cross-wired over 127.0.0.1 UDP — the in-process loopback deployment.
//
// This is the socket backend's counterpart of sim::DgmcNetwork: the
// same topology, the same protocol objects, but real datagrams through
// the kernel and real wall-clock timers. Everything runs on the single
// loop thread, so convergence checks may inspect switch state directly
// between callbacks.
//
// The harness is spec-driven: it takes the membership events a
// sim::ChurnEngine expanded (join/leave only — link faults need an
// interposable wire, which is the DES backend's job; on loopback links
// only fail if a process dies) and replays them at `at * time_scale`
// wall seconds. Convergence is detected by polling: all switches
// quiescent (no retransmission timers, no running computation) and
// agreeing per MC — stable across `stable_polls` consecutive polls —
// mirroring DgmcNetwork::converged().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "mc/algorithm.hpp"
#include "net/io_loop.hpp"
#include "net/switch.hpp"
#include "sim/spec.hpp"
#include "trees/topology.hpp"

namespace dgmc::net {

class NetCluster {
 public:
  struct Config {
    NetSwitch::Config sw;
    /// Which loop drives the sockets. kUring silently falls back to
    /// the batched epoll loop when the kernel lacks io_uring (query
    /// loop().flavor() for what actually ran).
    LoopFlavor loop = LoopFlavor::kEpoll;
    /// Wall seconds per spec second when replaying event times. Spec
    /// scenarios are written for simulated seconds; loopback runs
    /// compress them (e.g. 0.1 replays a 30 s scenario in 3 s).
    double time_scale = 1.0;
    rt::Time poll_interval = 20 * rt::kMillisecond;
    /// Consecutive converged polls required before declaring success
    /// (one poll can race a datagram still in the kernel's queue).
    int stable_polls = 3;
    /// Hard wall-clock cap on a run; exceeding it fails the run.
    rt::Time max_wall = 60.0;
  };

  /// Builds, binds (ephemeral ports), cross-wires, and starts all
  /// switches. The graph must have every link up.
  NetCluster(const graph::Graph& topo,
             const mc::TopologyAlgorithm& algorithm, Config config);
  ~NetCluster();

  NetCluster(const NetCluster&) = delete;
  NetCluster& operator=(const NetCluster&) = delete;

  struct RunResult {
    bool converged = false;
    /// Wall seconds from run() entry to the converged verdict.
    double wall_seconds = 0.0;
    /// Wall seconds from the last scheduled event to convergence — the
    /// paper's convergence-time metric, measured on a hardware clock.
    double convergence_seconds = 0.0;
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t installs = 0;
    /// Summed kernel-facing transmit accounting across all switches.
    std::uint64_t tx_requeued = 0;
    std::uint64_t tx_dropped = 0;
    std::uint64_t events_applied = 0;
    std::uint64_t events_skipped = 0;  // non-membership kinds
  };

  /// Replays the membership events and runs the loop until every MC in
  /// `mcs` converges (or max_wall). Join/leave only; other event kinds
  /// are counted as skipped.
  RunResult run(const std::vector<sim::SoakEvent>& events,
                const std::vector<mc::McId>& mcs);

  int size() const { return static_cast<int>(switches_.size()); }
  NetSwitch& at(graph::NodeId n) { return *switches_[n]; }
  const NetSwitch& at(graph::NodeId n) const { return *switches_[n]; }
  IoLoop& loop() { return *loop_; }

  /// Same agreement test as sim::DgmcNetwork::converged, over the
  /// socket switches' protocol state.
  bool converged(mc::McId mcid) const;

  /// The agreed topology (asserts converged); empty if destroyed.
  trees::Topology agreed_topology(mc::McId mcid) const;

  /// No retransmission timers armed and no computation running
  /// anywhere.
  bool quiescent() const;

 private:
  void apply_event(const sim::SoakEvent& ev, RunResult& result);

  graph::Graph topo_;
  Config config_;
  std::unique_ptr<IoLoop> loop_;
  std::vector<std::unique_ptr<NetSwitch>> switches_;
};

}  // namespace dgmc::net
