// Canonical protocol-state dump, shared by dgmc_netd and the
// loop-flavor parity tests: one line per known MC with sorted members,
// installed tree edges, and the C timestamp. Two switches (or two
// whole runs under different loop flavors) agree exactly when their
// `mc` lines match byte-for-byte.
//
// The optional trailing `stats` line carries per-process transmit
// accounting (frames deferred by EAGAIN, frames lost to hard send
// errors). It is per-process — NOT consensus state — so harnesses that
// diff dumps across processes must restrict the comparison to the
// `mc ` lines (examples/real_sockets/run.sh does).
#pragma once

#include <sstream>
#include <string>

#include "core/protocol.hpp"
#include "net/io_loop.hpp"

namespace dgmc::net {

inline std::string dump_state(const core::DgmcSwitch& sw) {
  std::ostringstream out;
  for (mc::McId mcid : sw.known_mcs()) {
    out << "mc " << mcid << " members";
    for (graph::NodeId n : sw.members(mcid)->all()) out << ' ' << n;
    out << " tree";
    for (const graph::Edge& e : sw.installed(mcid)->edges()) {
      out << ' ' << e.a << '-' << e.b;
    }
    out << " stamp";
    const core::VectorTimestamp& c = *sw.stamp_c(mcid);
    for (graph::NodeId i = 0; i < c.size(); ++i) out << ' ' << c[i];
    out << '\n';
  }
  return out.str();
}

inline std::string dump_tx_stats(const TxCounters& tx) {
  std::ostringstream out;
  out << "stats tx_dropped " << tx.dropped << " tx_requeued " << tx.requeued
      << '\n';
  return out.str();
}

}  // namespace dgmc::net
