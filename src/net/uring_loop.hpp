// net::UringLoop: the io_uring flavor of the wall-clock IoLoop.
//
// Speaks raw io_uring syscalls (io_uring_setup/enter/register) against
// the kernel uapi header — no liburing in the build. The receive path
// uses a provided-buffer pool (IORING_OP_PROVIDE_BUFFERS) plus
// multishot IORING_OP_RECV: one armed SQE per socket yields a CQE per
// datagram with a buffer the kernel picked from the pool, so
// steady-state receive costs zero syscalls — only io_uring_enter
// wakeups (counted in IoStats::uring_enters). Consumed buffers are
// re-provided by an SQE that rides the next enter batch. (The newer
// IORING_REGISTER_PBUF_RING mapping is deliberately not used: kernels
// vary on it, and the classic op reaches back to 5.7.) Kernels that
// reject multishot recv (-EINVAL) are downgraded to single-shot re-arm
// automatically; a burst that outruns the pool terminates the
// multishot with -ENOBUFS and the arm is simply reposted.
//
// The transmit path keeps the IoLoop end-of-callback flush contract
// with a per-socket chain: flush_socket turns the queued frames into
// IOSQE_IO_LINK-ed IORING_OP_SENDMSG SQEs (link = in-order completion)
// and at most ONE chain per socket is in flight — both are required
// for per-destination FIFO, since unlinked SQEs may complete out of
// order when one punts to async. Frames a chain could not deliver
// (-EAGAIN, or -ECANCELED from a broken link) resurrect at the front
// of the queue in order and IORING_OP_POLL_ADD(POLLOUT) schedules the
// retry — same no-silent-drop accounting as the epoll flavors.
//
// Construction can fail (old kernel, seccomp): use make(), which
// returns null when io_uring is unusable so make_io_loop can fall back
// to the batched epoll loop.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/io_loop.hpp"

struct io_uring_sqe;
struct io_uring_cqe;

namespace dgmc::net {

class UringLoop final : public IoLoop {
 public:
  static constexpr unsigned kSqEntries = 256;
  static constexpr unsigned kCqEntries = 4096;
  static constexpr unsigned kBufCount = 128;  // provided-buffer pool slots
  static constexpr int kTxChain = 64;         // max frames per send chain

  /// Null if the kernel cannot run this loop (setup failure, missing
  /// EXT_ARG support, provided-buffer registration failure). Never
  /// throws.
  static std::unique_ptr<UringLoop> make();

  ~UringLoop() override;

  LoopFlavor flavor() const override { return LoopFlavor::kUring; }
  std::uint64_t run() override;

  /// True if multishot recv survived first contact with the kernel.
  bool multishot_active() const { return multishot_ok_; }

 private:
  UringLoop() = default;
  bool init();  // called by make(); false = unusable, destroy me

  // Per-registration socket state. Keyed by (fd, generation) so CQEs
  // from a removed registration can never touch a re-added fd's state;
  // entries with in-flight kernel ops outlive remove_udp as zombies
  // (dead=true) until their last CQE lands, because the send msghdrs
  // and frames below are what the kernel is still reading.
  struct USock {
    std::uint16_t gen = 0;
    bool dead = false;
    bool recv_armed = false;
    bool multishot = false;
    bool chain_active = false;
    bool pollout_active = false;
    int outstanding = 0;  // CQEs still owed to this registration
    int chain_left = 0;   // send CQEs still owed to the active chain
    std::vector<PendingTx> inflight;  // frames of the active chain
    std::vector<msghdr> hdrs;         // stable storage the SQEs point at
    std::vector<iovec> iovs;
    std::vector<PendingTx> resurrect;  // chain failures, in CQE order
  };

  void on_udp_added(int fd) override;
  void on_udp_removed(int fd) override;
  void flush_socket(int fd, Socket& s) override;

  io_uring_sqe* get_sqe();
  void enter(unsigned min_complete, unsigned flags, void* arg,
             std::size_t arg_sz);
  void wait_for_events(int timeout_ms);
  void process_cqes(std::uint64_t* executed);
  void handle_cqe(const io_uring_cqe& cqe, std::uint64_t* executed);
  void handle_recv_cqe(const io_uring_cqe& cqe, std::uint64_t key,
                       std::uint64_t* executed);
  void handle_send_cqe(const io_uring_cqe& cqe, std::uint64_t key,
                       std::uint16_t slot);
  void finish_chain(std::uint64_t key);
  void arm_recv(int fd, USock& u);
  void arm_pollout(int fd, USock& u);
  void arm_wake_read();
  void readd_buffer(std::uint16_t bid);
  void reap_if_done(std::uint64_t key);
  USock* find_live(std::uint64_t key);

  int ring_fd_ = -1;
  // SQ/CQ ring mappings (IORING_FEAT_SINGLE_MMAP: one region).
  void* ring_mem_ = nullptr;
  std::size_t ring_sz_ = 0;
  void* sqe_mem_ = nullptr;
  std::size_t sqe_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  // Provided-buffer pool: kBufCount × kMaxDatagram datagram slabs the
  // kernel picks receive buffers from (buffer group 0).
  std::uint8_t* buf_mem_ = nullptr;
  std::size_t buf_mem_sz_ = 0;

  bool multishot_ok_ = true;
  bool wake_armed_ = false;
  std::uint64_t wake_buf_ = 0;

  std::unordered_map<std::uint64_t, USock> usocks_;  // key = fd<<16 | gen
  std::unordered_map<int, std::uint16_t> cur_gen_;
};

}  // namespace dgmc::net
