// Datagram framing for the socket backend.
//
// Every UDP datagram a dgmc_netd switch sends is one frame: a fixed
// 16-byte header (magic, version, kind, sender node, link id) followed
// by a kind-specific body. DATA frames carry a core/codec-encoded LSA
// payload — the same wire format the simulation's codec tests and
// fuzzers cover — so the socket backend introduces no second payload
// encoding.
//
//   DATA  — one flooding copy: (origin, seq) + codec payload bytes.
//   ACK   — per-link flooding acknowledgment for (origin, seq).
//   HELLO — heartbeat: our hello sequence number, the last sequence we
//           heard from the peer on this link (echo), and how long ago
//           we heard it (hold time, microseconds) — the serval-dna
//           style RTT probe (SNIPPETS §1): the peer computes
//           rtt = now - sent_at(echo_seq) - hold.
//
// decode() is written for attacker-shaped bytes: every length is
// checked before use, unknown magic/version/kind and ill-sized bodies
// return nullopt, and datagrams above kMaxDatagram are rejected
// outright. It never asserts and never reads out of bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "rt/time.hpp"

namespace dgmc::net {

inline constexpr std::uint32_t kFrameMagic = 0x44474D43u;  // "DGMC"
inline constexpr std::uint8_t kFrameVersion = 1;

/// Hard cap on a frame (header + body). Larger datagrams are invalid
/// on the wire and rejected before any body parsing.
inline constexpr std::size_t kMaxDatagram = 64 * 1024;

enum class FrameKind : std::uint8_t {
  kData = 1,
  kAck = 2,
  kHello = 3,
};

struct Frame {
  FrameKind kind = FrameKind::kData;
  graph::NodeId sender = graph::kInvalidNode;
  graph::LinkId link = graph::kInvalidLink;

  // DATA / ACK
  graph::NodeId origin = graph::kInvalidNode;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;  // DATA only: codec-encoded LSA

  // HELLO
  std::uint32_t hello_seq = 0;
  std::uint32_t echo_seq = 0;   // 0 = nothing heard yet
  rt::Time echo_hold = 0.0;     // seconds (micros on the wire)
};

/// Appends the encoding of `f` to `out` (clearing it first; the buffer
/// keeps its capacity across calls).
void encode_frame(const Frame& f, std::vector<std::uint8_t>& out);

std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Checked decode of one datagram. Returns nullopt on any malformed
/// input: short/oversized buffers, bad magic/version/kind, negative
/// ids, or a DATA length field disagreeing with the actual bytes.
std::optional<Frame> decode_frame(const std::uint8_t* data, std::size_t len);

std::optional<Frame> decode_frame(const std::vector<std::uint8_t>& bytes);

}  // namespace dgmc::net
