#include "net/uring_loop.hpp"

#include <fcntl.h>
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/frame.hpp"
#include "util/assert.hpp"

namespace dgmc::net {

namespace {

// user_data layout: tag(4) | gen(16) | fd(28) | slot(16). The gen ties
// every CQE to one add_udp registration; see USock.
enum class OpTag : std::uint64_t {
  kWake = 1,
  kRecv = 2,
  kSend = 3,
  kPollOut = 4,
  kCancel = 5,
  kProvide = 6,
};

std::uint64_t mk_data(OpTag tag, std::uint16_t gen, int fd,
                      std::uint16_t slot) {
  return (static_cast<std::uint64_t>(tag) << 60) |
         (static_cast<std::uint64_t>(gen) << 44) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd) &
                                     0xfffffffu)
          << 16) |
         slot;
}

OpTag data_tag(std::uint64_t d) { return static_cast<OpTag>(d >> 60); }
std::uint16_t data_gen(std::uint64_t d) {
  return static_cast<std::uint16_t>((d >> 44) & 0xffff);
}
int data_fd(std::uint64_t d) {
  return static_cast<int>((d >> 16) & 0xfffffffu);
}
std::uint16_t data_slot(std::uint64_t d) {
  return static_cast<std::uint16_t>(d & 0xffff);
}
std::uint64_t data_key(std::uint64_t d) {
  return (static_cast<std::uint64_t>(data_fd(d)) << 16) | data_gen(d);
}
std::uint64_t sock_key(int fd, std::uint16_t gen) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)) << 16) |
         gen;
}

int sys_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}
long sys_enter(int fd, unsigned to_submit, unsigned min_complete,
               unsigned flags, const void* arg, std::size_t arg_sz) {
  return ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                   arg, arg_sz);
}
// io_uring honors O_NONBLOCK: a READ/RECV on a nonblocking fd
// completes immediately with -EAGAIN instead of arming poll, which
// would turn every armed op into a hot spin. Ring ops are async at the
// ring level regardless, so fds handed to this loop run in blocking
// mode.
void clear_nonblock(int fd) {
  const int fl = ::fcntl(fd, F_GETFL);
  if (fl >= 0 && (fl & O_NONBLOCK) != 0) {
    ::fcntl(fd, F_SETFL, fl & ~O_NONBLOCK);
  }
}

}  // namespace

std::unique_ptr<UringLoop> UringLoop::make() {
  std::unique_ptr<UringLoop> loop(new UringLoop());
  if (!loop->init()) return nullptr;
  return loop;
}

bool UringLoop::init() {
  io_uring_params p{};
  p.flags = IORING_SETUP_CQSIZE;
  p.cq_entries = kCqEntries;
  ring_fd_ = sys_setup(kSqEntries, &p);
  if (ring_fd_ < 0) return false;  // old kernel or seccomp: fall back
  const unsigned need =
      IORING_FEAT_SINGLE_MMAP | IORING_FEAT_EXT_ARG | IORING_FEAT_NODROP;
  if ((p.features & need) != need) return false;

  const std::size_t sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  const std::size_t cq_sz =
      p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  ring_sz_ = sq_sz > cq_sz ? sq_sz : cq_sz;
  ring_mem_ = ::mmap(nullptr, ring_sz_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (ring_mem_ == MAP_FAILED) {
    ring_mem_ = nullptr;
    return false;
  }
  sqe_sz_ = p.sq_entries * sizeof(io_uring_sqe);
  sqe_mem_ = ::mmap(nullptr, sqe_sz_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqe_mem_ == MAP_FAILED) {
    sqe_mem_ = nullptr;
    return false;
  }
  auto* base = static_cast<std::uint8_t*>(ring_mem_);
  sq_head_ = reinterpret_cast<unsigned*>(base + p.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(base + p.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(base + p.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(base + p.sq_off.array);
  sqes_ = static_cast<io_uring_sqe*>(sqe_mem_);
  cq_head_ = reinterpret_cast<unsigned*>(base + p.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(base + p.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(base + p.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(base + p.cq_off.cqes);

  // Provided-buffer pool: hand the kernel all kBufCount slabs in one
  // op and wait for its CQE — this doubles as the runtime probe that
  // buffer-select receives will work at all; any failure falls back.
  buf_mem_sz_ = static_cast<std::size_t>(kBufCount) * kMaxDatagram;
  void* bm = ::mmap(nullptr, buf_mem_sz_, PROT_READ | PROT_WRITE,
                    MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (bm == MAP_FAILED) return false;
  buf_mem_ = static_cast<std::uint8_t*>(bm);
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
  sqe->fd = static_cast<int>(kBufCount);  // nbufs rides the fd field
  sqe->addr = reinterpret_cast<std::uint64_t>(buf_mem_);
  sqe->len = kMaxDatagram;
  sqe->buf_group = 0;
  sqe->off = 0;  // starting buffer id
  sqe->user_data = mk_data(OpTag::kProvide, 0, 0, 0);
  if (sys_enter(ring_fd_, 1, 1, IORING_ENTER_GETEVENTS, nullptr, 0) < 0) {
    return false;
  }
  const unsigned head = *cq_head_;
  if (head == __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE)) return false;
  const io_uring_cqe& cqe = cqes_[head & cq_mask_];
  const bool ok = cqe.res >= 0;
  __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
  if (!ok) return false;
  clear_nonblock(wake_fd_);
  return true;
}

UringLoop::~UringLoop() {
  // Closing the ring fd cancels every outstanding op; the kernel keeps
  // its own references to the mappings until then.
  if (ring_fd_ >= 0) ::close(ring_fd_);
  if (sqe_mem_ != nullptr) ::munmap(sqe_mem_, sqe_sz_);
  if (ring_mem_ != nullptr) ::munmap(ring_mem_, ring_sz_);
  if (buf_mem_ != nullptr) ::munmap(buf_mem_, buf_mem_sz_);
}

void UringLoop::readd_buffer(std::uint16_t bid) {
  // Returns one consumed slab to group 0. The op's CQE is ignored
  // (kProvide); it rides the next enter, costing no syscall of its own.
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
  sqe->fd = 1;  // nbufs
  sqe->addr = reinterpret_cast<std::uint64_t>(buf_mem_ +
                                              std::size_t(bid) * kMaxDatagram);
  sqe->len = kMaxDatagram;
  sqe->buf_group = 0;
  sqe->off = bid;
  sqe->user_data = mk_data(OpTag::kProvide, 0, 0, bid);
}

io_uring_sqe* UringLoop::get_sqe() {
  unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (*sq_tail_ - head == kSqEntries) {
    // SQ full: hand the backlog to the kernel and retry.
    enter(0, 0, nullptr, 0);
    head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    DGMC_ASSERT(*sq_tail_ - head < kSqEntries);
  }
  const unsigned tail = *sq_tail_;
  const unsigned idx = tail & sq_mask_;
  io_uring_sqe* sqe = &sqes_[idx];
  std::memset(sqe, 0, sizeof *sqe);
  sq_array_[idx] = idx;
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  return sqe;
}

void UringLoop::enter(unsigned min_complete, unsigned flags, void* arg,
                      std::size_t arg_sz) {
  for (;;) {
    const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    const unsigned to_submit = *sq_tail_ - head;
    const long r = sys_enter(ring_fd_, to_submit, min_complete, flags, arg,
                             arg_sz);
    ++io_.uring_enters;
    if (r >= 0) return;
    if (errno == EINTR) {
      if (stopping()) return;
      continue;  // to_submit recomputed: partial submission is visible
    }
    if (errno == ETIME) return;  // EXT_ARG timeout expired, no events
    if (errno == EBUSY) return;  // CQ saturated: drain, then resubmit
    DGMC_ASSERT_MSG(false, "io_uring_enter failed");
  }
}

void UringLoop::wait_for_events(int timeout_ms) {
  if (timeout_ms == 0) {
    enter(0, IORING_ENTER_GETEVENTS, nullptr, 0);
    return;
  }
  if (timeout_ms < 0) {
    enter(1, IORING_ENTER_GETEVENTS, nullptr, 0);
    return;
  }
  __kernel_timespec ts{};
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1'000'000;
  io_uring_getevents_arg arg{};
  arg.ts = reinterpret_cast<std::uint64_t>(&ts);
  enter(1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg, sizeof arg);
}

UringLoop::USock* UringLoop::find_live(std::uint64_t key) {
  auto it = usocks_.find(key);
  if (it == usocks_.end() || it->second.dead) return nullptr;
  return &it->second;
}

void UringLoop::reap_if_done(std::uint64_t key) {
  auto it = usocks_.find(key);
  if (it != usocks_.end() && it->second.dead && it->second.outstanding == 0) {
    for (PendingTx& p : it->second.inflight) pool_.release(std::move(p.buf));
    for (PendingTx& p : it->second.resurrect) pool_.release(std::move(p.buf));
    usocks_.erase(it);
  }
}

void UringLoop::arm_recv(int fd, USock& u) {
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = 0;
  u.multishot = multishot_ok_;
  if (u.multishot) sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->user_data = mk_data(OpTag::kRecv, u.gen, fd, 0);
  u.recv_armed = true;
  ++u.outstanding;
}

void UringLoop::arm_pollout(int fd, USock& u) {
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll32_events = POLLOUT;
  sqe->user_data = mk_data(OpTag::kPollOut, u.gen, fd, 0);
  u.pollout_active = true;
  ++u.outstanding;
}

void UringLoop::arm_wake_read() {
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_READ;
  sqe->fd = wake_fd_;
  sqe->addr = reinterpret_cast<std::uint64_t>(&wake_buf_);
  sqe->len = sizeof wake_buf_;
  sqe->user_data = mk_data(OpTag::kWake, 0, wake_fd_, 0);
  wake_armed_ = true;
}

void UringLoop::on_udp_added(int fd) {
  clear_nonblock(fd);
  const std::uint16_t gen = ++cur_gen_[fd];
  USock& u = usocks_[sock_key(fd, gen)];
  u.gen = gen;
  arm_recv(fd, u);
}

void UringLoop::on_udp_removed(int fd) {
  auto git = cur_gen_.find(fd);
  if (git == cur_gen_.end()) return;
  const std::uint64_t key = sock_key(fd, git->second);
  auto it = usocks_.find(key);
  if (it == usocks_.end()) return;
  USock& u = it->second;
  u.dead = true;
  // Cancel the armed ops; in-flight sends run out naturally and the
  // zombie entry keeps their msghdrs/frames alive until the CQEs land.
  if (u.recv_armed) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->addr = mk_data(OpTag::kRecv, u.gen, fd, 0);
    sqe->user_data = mk_data(OpTag::kCancel, u.gen, fd, 0);
  }
  if (u.pollout_active) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->addr = mk_data(OpTag::kPollOut, u.gen, fd, 0);
    sqe->user_data = mk_data(OpTag::kCancel, u.gen, fd, 1);
  }
  reap_if_done(key);
}

void UringLoop::flush_socket(int fd, Socket& s) {
  auto git = cur_gen_.find(fd);
  DGMC_ASSERT_MSG(git != cur_gen_.end(), "flush on an unregistered fd");
  USock* u = find_live(sock_key(fd, git->second));
  DGMC_ASSERT(u != nullptr);
  if (u->chain_active || u->pollout_active) {
    // One chain in flight per socket: linked SQEs complete in order
    // only relative to each other, so a second concurrent chain could
    // overtake the first. want_writable gates flush_all_tx meanwhile.
    s.want_writable = true;
    return;
  }
  const int n = static_cast<int>(
      std::min<std::size_t>(s.txq.size(), kTxChain));
  if (n == 0) return;
  u->inflight.clear();
  u->inflight.reserve(static_cast<std::size_t>(n));
  u->hdrs.assign(static_cast<std::size_t>(n), msghdr{});
  u->iovs.assign(static_cast<std::size_t>(n), iovec{});
  for (int i = 0; i < n; ++i) {
    u->inflight.push_back(std::move(s.txq.front()));
    s.txq.pop_front();
  }
  for (int i = 0; i < n; ++i) {
    PendingTx& p = u->inflight[static_cast<std::size_t>(i)];
    u->iovs[i].iov_base = p.buf.data();
    u->iovs[i].iov_len = p.buf.size();
    u->hdrs[i].msg_name = &p.dest;
    u->hdrs[i].msg_namelen = sizeof p.dest;
    u->hdrs[i].msg_iov = &u->iovs[i];
    u->hdrs[i].msg_iovlen = 1;
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(&u->hdrs[i]);
    if (i + 1 < n) sqe->flags = IOSQE_IO_LINK;
    sqe->user_data =
        mk_data(OpTag::kSend, u->gen, fd, static_cast<std::uint16_t>(i));
  }
  u->chain_active = true;
  u->chain_left = n;
  u->outstanding += n;
  u->resurrect.clear();
  s.want_writable = true;
}

void UringLoop::handle_send_cqe(const io_uring_cqe& cqe, std::uint64_t key,
                                std::uint16_t slot) {
  auto it = usocks_.find(key);
  if (it == usocks_.end()) return;  // reaped: nothing left to account
  USock& u = it->second;
  --u.outstanding;
  --u.chain_left;
  PendingTx& frame = u.inflight[slot];
  auto sit = socks_.find(data_fd(cqe.user_data));
  Socket* s = (!u.dead && sit != socks_.end()) ? &sit->second : nullptr;
  if (cqe.res >= 0) {
    ++io_.tx_datagrams;
    if (s != nullptr) ++s->tx.sent;
    pool_.release(std::move(frame.buf));
  } else if (cqe.res == -EAGAIN || cqe.res == -ECANCELED) {
    // -ECANCELED: a link upstream failed, this frame never ran. CQEs
    // of a chain arrive in order, so resurrect keeps emission order.
    u.resurrect.push_back(std::move(frame));
  } else {
    if (s != nullptr) ++s->tx.dropped;
    pool_.release(std::move(frame.buf));
  }
  if (u.chain_left == 0) finish_chain(key);
}

void UringLoop::finish_chain(std::uint64_t key) {
  auto it = usocks_.find(key);
  if (it == usocks_.end()) return;
  USock& u = it->second;
  u.chain_active = false;
  u.inflight.clear();
  if (u.dead) {
    for (PendingTx& p : u.resurrect) pool_.release(std::move(p.buf));
    u.resurrect.clear();
    reap_if_done(key);
    return;
  }
  const int fd = static_cast<int>(key >> 16);
  auto sit = socks_.find(fd);
  if (sit == socks_.end()) return;
  Socket& s = sit->second;
  if (!u.resurrect.empty()) {
    s.tx.requeued += u.resurrect.size();
    s.txq.insert(s.txq.begin(),
                 std::make_move_iterator(u.resurrect.begin()),
                 std::make_move_iterator(u.resurrect.end()));
    u.resurrect.clear();
    arm_pollout(fd, u);  // want_writable stays set until the retry
    return;
  }
  s.want_writable = false;
  if (!s.txq.empty()) flush_socket(fd, s);  // frames queued mid-flight
}

void UringLoop::handle_recv_cqe(const io_uring_cqe& cqe, std::uint64_t key,
                                std::uint64_t* executed) {
  const int fd = data_fd(cqe.user_data);
  auto it = usocks_.find(key);
  USock* u = it == usocks_.end() ? nullptr : &it->second;

  std::uint16_t bid = 0;
  const bool has_buf = (cqe.flags & IORING_CQE_F_BUFFER) != 0;
  if (has_buf) {
    bid = static_cast<std::uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
  }
  if (cqe.res >= 0 && has_buf) {
    ++io_.rx_datagrams;
    auto sit = socks_.find(fd);
    if (u != nullptr && !u->dead && sit != socks_.end()) {
      ++*executed;
      sit->second.on_datagram(buf_mem_ + std::size_t(bid) * kMaxDatagram,
                              static_cast<std::size_t>(cqe.res));
      // The handler may have removed/re-added sockets; the map can
      // rehash and our pointer with it.
      it = usocks_.find(key);
      u = it == usocks_.end() ? nullptr : &it->second;
    }
  }
  if (has_buf) readd_buffer(bid);  // always recycle, even stale CQEs

  if ((cqe.flags & IORING_CQE_F_MORE) != 0) return;  // multishot lives on
  if (u == nullptr) return;
  u->recv_armed = false;
  --u->outstanding;
  if (u->dead) {
    reap_if_done(key);
    return;
  }
  if (cqe.res == -EINVAL && u->multishot) {
    // Kernel predates multishot recv: downgrade globally and re-arm
    // this socket single-shot (others downgrade as their arms cycle).
    multishot_ok_ = false;
  }
  // Single-shot completion, multishot termination (-ENOBUFS after a
  // burst outran the ring, or any transient error): re-arm.
  arm_recv(fd, *u);
}

void UringLoop::handle_cqe(const io_uring_cqe& cqe, std::uint64_t* executed) {
  const std::uint64_t d = cqe.user_data;
  switch (data_tag(d)) {
    case OpTag::kWake: {
      wake_armed_ = false;
      if (!stopping()) arm_wake_read();
      return;  // posted work / stop handled at loop top
    }
    case OpTag::kRecv:
      handle_recv_cqe(cqe, data_key(d), executed);
      return;
    case OpTag::kSend:
      handle_send_cqe(cqe, data_key(d), data_slot(d));
      return;
    case OpTag::kPollOut: {
      auto it = usocks_.find(data_key(d));
      if (it == usocks_.end()) return;
      USock& u = it->second;
      u.pollout_active = false;
      --u.outstanding;
      if (u.dead) {
        reap_if_done(data_key(d));
        return;
      }
      const int fd = data_fd(d);
      auto sit = socks_.find(fd);
      if (sit == socks_.end()) return;
      sit->second.want_writable = false;
      if (!sit->second.txq.empty()) flush_socket(fd, sit->second);
      return;
    }
    case OpTag::kCancel:
      return;  // the cancelled op's own CQE does the accounting
    case OpTag::kProvide:
      DGMC_ASSERT_MSG(cqe.res >= 0, "PROVIDE_BUFFERS refill failed");
      return;
  }
}

void UringLoop::process_cqes(std::uint64_t* executed) {
  unsigned head = *cq_head_;
  for (;;) {
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    if (head == tail) break;
    while (head != tail && !stopping()) {
      const io_uring_cqe cqe = cqes_[head & cq_mask_];
      ++head;
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      handle_cqe(cqe, executed);
    }
    if (stopping()) break;
  }
  // End-of-callback for this completion batch, mirroring the epoll
  // drain: everything the handlers emitted leaves as chained sends.
  flush_all_tx();
}

std::uint64_t UringLoop::run() {
  std::uint64_t executed = 0;
  begin_run();
  if (!wake_armed_) arm_wake_read();
  while (!stopping()) {
    drain_posted(&executed);
    if (stopping()) break;
    run_due_timers(&executed);
    if (stopping()) break;
    flush_all_tx();
    wait_for_events(next_timeout_ms());
    process_cqes(&executed);
  }
  return executed;
}

}  // namespace dgmc::net
