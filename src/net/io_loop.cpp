#include "net/io_loop.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "net/event_loop.hpp"
#include "util/assert.hpp"
#if DGMC_WITH_URING
#include "net/uring_loop.hpp"
#endif

namespace dgmc::net {

namespace {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* flavor_name(LoopFlavor f) {
  switch (f) {
    case LoopFlavor::kEpollPacket:
      return "epoll-packet";
    case LoopFlavor::kEpoll:
      return "epoll";
    case LoopFlavor::kUring:
      return "uring";
  }
  return "?";
}

std::optional<LoopFlavor> parse_flavor(std::string_view s) {
  if (s == "epoll-packet" || s == "packet") return LoopFlavor::kEpollPacket;
  if (s == "epoll" || s == "mmsg") return LoopFlavor::kEpoll;
  if (s == "uring" || s == "io_uring") return LoopFlavor::kUring;
  return std::nullopt;
}

IoLoop::IoLoop() : start_ns_(monotonic_ns()) {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  DGMC_ASSERT_MSG(wake_fd_ >= 0, "eventfd failed");
}

IoLoop::~IoLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

rt::Time IoLoop::now() const {
  return static_cast<rt::Time>(monotonic_ns() - start_ns_) * 1e-9;
}

rt::TimerId IoLoop::schedule_after(rt::Time delay, rt::EventTag /*tag*/,
                                   Callback cb) {
  DGMC_ASSERT_MSG(delay >= 0.0, "negative delay");
  DGMC_ASSERT(cb != nullptr);
  const std::uint64_t id = next_id_++;
  const std::uint64_t seq = next_seq_++;
  heap_.push(TimerNode{now() + delay, seq, id});
  timers_.emplace(id, std::move(cb));
  return rt::TimerId{id};
}

bool IoLoop::cancel(rt::TimerId id) {
  // The heap node is left in place and skipped lazily on pop.
  return timers_.erase(id.value) != 0;
}

void IoLoop::add_udp(int fd, DatagramHandler on_datagram) {
  DGMC_ASSERT(fd >= 0);
  DGMC_ASSERT(on_datagram != nullptr);
  Socket& s = socks_[fd];
  s.on_datagram = std::move(on_datagram);
  on_udp_added(fd);
}

void IoLoop::remove_udp(int fd) {
  auto it = socks_.find(fd);
  if (it == socks_.end()) return;
  // Undelivered frames die with the registration; that is explicit
  // caller intent (stop()), not a silent send failure.
  for (PendingTx& p : it->second.txq) pool_.release(std::move(p.buf));
  socks_.erase(it);
  ++socks_gen_;
  on_udp_removed(fd);
}

void IoLoop::send_udp(int fd, const sockaddr_in& dest,
                      const std::uint8_t* data, std::size_t len) {
  const bool queued = queue_tx(fd, dest, data, len);
  DGMC_ASSERT_MSG(queued, "send_udp on an unregistered fd");
}

bool IoLoop::queue_tx(int fd, const sockaddr_in& dest,
                      const std::uint8_t* data, std::size_t len) {
  auto it = socks_.find(fd);
  if (it == socks_.end()) return false;
  PendingTx p;
  p.buf = pool_.acquire(len);
  std::memcpy(p.buf.data(), data, len);
  p.dest = dest;
  it->second.txq.push_back(std::move(p));
  return true;
}

void IoLoop::flush_all_tx() {
  // Socket count is small (one per switch in-process); walking the map
  // beats maintaining a dirty list that remove_udp would have to scrub.
  for (auto& [fd, s] : socks_) {
    if (!s.txq.empty() && !s.want_writable) flush_socket(fd, s);
  }
}

void IoLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void IoLoop::stop() {
  post([this] { stop_ = true; });
}

void IoLoop::request_stop_from_signal() {
  signal_stop_ = 1;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void IoLoop::run_due_timers(std::uint64_t* executed) {
  // Bound the sweep to timers due at entry: a callback that re-arms a
  // zero-delay timer must not starve fd readiness.
  const rt::Time deadline = now();
  while (!heap_.empty()) {
    TimerNode n = heap_.top();
    auto it = timers_.find(n.id);
    if (it == timers_.end()) {
      heap_.pop();  // cancelled: drop the stale node
      continue;
    }
    if (n.time > deadline) break;
    heap_.pop();
    Callback cb = std::move(it->second);
    timers_.erase(it);
    ++timers_fired_;
    ++*executed;
    cb();
    // End-of-callback: everything this timer emitted goes out as one
    // batch before the next callback observes the world.
    flush_all_tx();
  }
}

void IoLoop::drain_posted(std::uint64_t* executed) {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) {
    ++*executed;
    fn();
    flush_all_tx();
  }
}

int IoLoop::next_timeout_ms() const {
  // Peek past stale (cancelled) heap nodes without mutating the heap;
  // a stale head only costs one early wakeup.
  if (heap_.empty()) return -1;
  const rt::Time dt = heap_.top().time - now();
  if (dt <= 0.0) return 0;
  const double ms = std::ceil(dt * 1e3);
  if (ms > 60'000.0) return 60'000;
  return static_cast<int>(ms);
}

TxCounters IoLoop::tx_counters(int fd) const {
  auto it = socks_.find(fd);
  return it == socks_.end() ? TxCounters{} : it->second.tx;
}

std::unique_ptr<IoLoop> make_io_loop(LoopFlavor flavor, bool* fell_back) {
  if (fell_back != nullptr) *fell_back = false;
  switch (flavor) {
    case LoopFlavor::kEpollPacket:
      return std::make_unique<EventLoop>(LoopFlavor::kEpollPacket);
    case LoopFlavor::kEpoll:
      return std::make_unique<EventLoop>(LoopFlavor::kEpoll);
    case LoopFlavor::kUring: {
#if DGMC_WITH_URING
      std::unique_ptr<UringLoop> ul = UringLoop::make();
      if (ul != nullptr) return ul;
#endif
      if (fell_back != nullptr) *fell_back = true;
      return std::make_unique<EventLoop>(LoopFlavor::kEpoll);
    }
  }
  return std::make_unique<EventLoop>(LoopFlavor::kEpoll);
}

}  // namespace dgmc::net
