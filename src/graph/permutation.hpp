// Graph relabelings and automorphism enumeration, the foundation of the
// check subsystem's symmetry reduction (DESIGN.md §12).
//
// A Permutation is a node relabeling π together with the link
// relabeling it induces (link (u,v) maps to the link joining (π(u),
// π(v))). An automorphism is a permutation that preserves the weighted
// structure exactly: adjacency, link cost and link delay. Two protocol
// states that differ only by an automorphism of the underlying graph
// are behaviorally identical up to renaming, so a state explorer may
// canonicalize fingerprints over the automorphism group and explore one
// representative per orbit.
//
// Enumeration is plain backtracking over node images with degree and
// adjacency pruning — exponential in the worst case, but the check
// scenarios this serves are <= 8 switches, where it is microseconds.
// `max_count` caps the group (the identity is always first); callers
// treating the result as "the" group should pick graphs well under the
// cap.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace dgmc::graph {

struct Permutation {
  /// node[i] = image of node i; node_inv[node[i]] = i.
  std::vector<NodeId> node;
  std::vector<NodeId> node_inv;
  /// link[l] = image of link l (the link joining the mapped endpoints);
  /// link_inv is its inverse.
  std::vector<LinkId> link;
  std::vector<LinkId> link_inv;

  /// Identity permutation over n nodes / m links.
  static Permutation identity(int nodes, int links);

  /// Maps a node id; negative ids (kInvalidNode sentinels) pass through.
  NodeId map_node(NodeId n) const {
    return n < 0 ? n : node[static_cast<std::size_t>(n)];
  }

  /// Maps a link id; negative ids (kInvalidLink sentinels) pass through.
  LinkId map_link(LinkId l) const {
    return l < 0 ? l : link[static_cast<std::size_t>(l)];
  }

  bool is_identity() const;
};

/// Enumerates the automorphism group of `g` (relabelings preserving
/// adjacency, cost, delay), identity first, then lexicographic by node
/// image. Stops after `max_count` elements. The initial up/down flags
/// are ignored — links flap at runtime; callers that relabel state
/// must permute the flags along with it.
std::vector<Permutation> graph_automorphisms(const Graph& g,
                                             std::size_t max_count = 1024);

}  // namespace dgmc::graph
