#include "graph/permutation.hpp"

#include <algorithm>

namespace dgmc::graph {

Permutation Permutation::identity(int nodes, int links) {
  Permutation p;
  p.node.resize(static_cast<std::size_t>(nodes));
  p.node_inv.resize(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    p.node[static_cast<std::size_t>(i)] = i;
    p.node_inv[static_cast<std::size_t>(i)] = i;
  }
  p.link.resize(static_cast<std::size_t>(links));
  p.link_inv.resize(static_cast<std::size_t>(links));
  for (int i = 0; i < links; ++i) {
    p.link[static_cast<std::size_t>(i)] = i;
    p.link_inv[static_cast<std::size_t>(i)] = i;
  }
  return p;
}

bool Permutation::is_identity() const {
  for (std::size_t i = 0; i < node.size(); ++i) {
    if (node[i] != static_cast<NodeId>(i)) return false;
  }
  return true;
}

namespace {

/// Extends the partial node map image[0..fixed) one node at a time.
/// Consistency check: every link between already-mapped nodes must map
/// to a link with identical cost and delay.
void extend(const Graph& g, std::vector<NodeId>& image,
            std::vector<bool>& used, std::size_t fixed,
            std::size_t max_count, std::vector<Permutation>& out) {
  const int n = g.node_count();
  if (out.size() >= max_count) return;
  if (fixed == static_cast<std::size_t>(n)) {
    Permutation p;
    p.node = image;
    p.node_inv.resize(image.size());
    for (std::size_t i = 0; i < image.size(); ++i) {
      p.node_inv[static_cast<std::size_t>(image[i])] =
          static_cast<NodeId>(i);
    }
    p.link.resize(static_cast<std::size_t>(g.link_count()));
    p.link_inv.resize(static_cast<std::size_t>(g.link_count()));
    for (LinkId l = 0; l < g.link_count(); ++l) {
      const Link& e = g.link(l);
      const LinkId m = g.find_link(p.map_node(e.u), p.map_node(e.v));
      DGMC_ASSERT(m != kInvalidLink);  // adjacency was verified below
      p.link[static_cast<std::size_t>(l)] = m;
      p.link_inv[static_cast<std::size_t>(m)] = l;
    }
    out.push_back(std::move(p));
    return;
  }
  const NodeId v = static_cast<NodeId>(fixed);
  for (NodeId cand = 0; cand < n; ++cand) {
    if (used[static_cast<std::size_t>(cand)]) continue;
    bool ok = true;
    for (LinkId l : g.links_of(v)) {
      const Link& e = g.link(l);
      const NodeId other = g.other_end(l, v);
      if (other >= v) continue;  // unmapped neighbor: checked later
      const LinkId m =
          g.find_link(cand, image[static_cast<std::size_t>(other)]);
      if (m == kInvalidLink || g.link(m).cost != e.cost ||
          g.link(m).delay != e.delay) {
        ok = false;
        break;
      }
    }
    // Degree must match (cheap reject; also covers the reverse
    // direction — a candidate with extra links to mapped nodes has a
    // higher degree and fails here or when those nodes check back).
    if (ok && g.links_of(cand).size() != g.links_of(v).size()) ok = false;
    if (!ok) continue;
    image[static_cast<std::size_t>(v)] = cand;
    used[static_cast<std::size_t>(cand)] = true;
    extend(g, image, used, fixed + 1, max_count, out);
    used[static_cast<std::size_t>(cand)] = false;
    if (out.size() >= max_count) return;
  }
}

}  // namespace

std::vector<Permutation> graph_automorphisms(const Graph& g,
                                             std::size_t max_count) {
  std::vector<Permutation> out;
  if (max_count == 0) return out;
  std::vector<NodeId> image(static_cast<std::size_t>(g.node_count()),
                            kInvalidNode);
  std::vector<bool> used(static_cast<std::size_t>(g.node_count()), false);
  extend(g, image, used, 0, max_count, out);
  // Backtracking in candidate order emits the identity first only for
  // graphs where the identity is lexicographically minimal — which it
  // is, since image[i] = i is always consistent. Assert and normalize
  // anyway so callers can rely on out[0].
  if (!out.empty() && !out[0].is_identity()) {
    for (std::size_t i = 1; i < out.size(); ++i) {
      if (out[i].is_identity()) {
        std::swap(out[0], out[i]);
        break;
      }
    }
  }
  return out;
}

}  // namespace dgmc::graph
