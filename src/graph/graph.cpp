#include "graph/graph.hpp"

namespace dgmc::graph {

LinkId Graph::add_link(NodeId u, NodeId v, double cost, double delay) {
  DGMC_ASSERT(valid_node(u) && valid_node(v));
  DGMC_ASSERT_MSG(u != v, "self-loop");
  DGMC_ASSERT_MSG(!has_link(u, v), "parallel link");
  DGMC_ASSERT(cost > 0.0 && delay >= 0.0);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{u, v, cost, delay, true});
  adjacency_[u].push_back(id);
  adjacency_[v].push_back(id);
  return id;
}

LinkId Graph::find_link(NodeId u, NodeId v) const {
  if (!valid_node(u) || !valid_node(v)) return kInvalidLink;
  for (LinkId id : adjacency_[u]) {
    if (other_end(id, u) == v) return id;
  }
  return kInvalidLink;
}

void Graph::scale_delays(double factor) {
  DGMC_ASSERT(factor > 0.0);
  for (Link& l : links_) l.delay *= factor;
}

void Graph::set_uniform_delay(double delay) {
  DGMC_ASSERT(delay >= 0.0);
  for (Link& l : links_) l.delay = delay;
}

}  // namespace dgmc::graph
