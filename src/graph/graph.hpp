// Undirected network graph: switches (nodes) joined by point-to-point
// links. Each link carries a routing cost (used by topology algorithms)
// and a propagation delay (used by the discrete-event simulator), plus
// an up/down flag so link failures can be injected at runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/assert.hpp"

namespace dgmc::graph {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

struct Link {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double cost = 1.0;    // routing metric
  double delay = 1.0;   // propagation delay (simulated seconds)
  bool up = true;
};

/// An undirected edge with normalized endpoints (a <= b); the unit in
/// which multipoint-connection topologies are described.
struct Edge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;

  Edge() = default;
  Edge(NodeId x, NodeId y) : a(x < y ? x : y), b(x < y ? y : x) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

struct EdgeHash {
  std::size_t operator()(const Edge& e) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.a)) << 32) |
        static_cast<std::uint32_t>(e.b));
  }
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int node_count) : adjacency_(node_count) {
    DGMC_ASSERT(node_count >= 0);
  }

  int node_count() const { return static_cast<int>(adjacency_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }

  /// Adds an undirected link; parallel links and self-loops are rejected.
  LinkId add_link(NodeId u, NodeId v, double cost = 1.0, double delay = 1.0);

  const Link& link(LinkId id) const {
    DGMC_ASSERT(id >= 0 && id < link_count());
    return links_[id];
  }

  /// Incident link ids of a node (up and down links alike).
  const std::vector<LinkId>& links_of(NodeId n) const {
    DGMC_ASSERT(valid_node(n));
    return adjacency_[n];
  }

  /// The endpoint of `id` that is not `from`.
  NodeId other_end(LinkId id, NodeId from) const {
    const Link& l = link(id);
    DGMC_ASSERT(l.u == from || l.v == from);
    return l.u == from ? l.v : l.u;
  }

  /// Finds the link joining u and v, or kInvalidLink.
  LinkId find_link(NodeId u, NodeId v) const;

  bool has_link(NodeId u, NodeId v) const {
    return find_link(u, v) != kInvalidLink;
  }

  void set_link_up(LinkId id, bool up) {
    DGMC_ASSERT(id >= 0 && id < link_count());
    links_[id].up = up;
  }

  void set_link_cost(LinkId id, double cost) {
    DGMC_ASSERT(id >= 0 && id < link_count());
    links_[id].cost = cost;
  }

  void set_link_delay(LinkId id, double delay) {
    DGMC_ASSERT(id >= 0 && id < link_count());
    links_[id].delay = delay;
  }

  /// Multiplies every link delay by `factor` (used by experiment presets
  /// to realize a target per-hop LSA transmission time).
  void scale_delays(double factor);

  /// Sets every link delay to `delay`.
  void set_uniform_delay(double delay);

  bool valid_node(NodeId n) const { return n >= 0 && n < node_count(); }

  const std::vector<Link>& links() const { return links_; }

 private:
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace dgmc::graph
