// Graph algorithms shared by the routing substrate and the tree
// algorithms: Dijkstra single-source shortest paths (with pluggable
// link weight), connectivity, and delay-based diameters. Down links are
// invisible to every algorithm here.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace dgmc::graph {

inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path computation. Unreachable
/// nodes have dist == kInfiniteDistance and parent == kInvalidNode.
struct ShortestPaths {
  NodeId source = kInvalidNode;
  std::vector<double> dist;
  std::vector<NodeId> parent;       // predecessor on the shortest path
  std::vector<LinkId> parent_link;  // link to the predecessor

  bool reachable(NodeId n) const { return dist[n] < kInfiniteDistance; }

  /// Nodes from source to `dest` inclusive; empty if unreachable.
  std::vector<NodeId> path_to(NodeId dest) const;
};

/// Link weight functor; must return a positive weight for an up link.
using LinkWeight = std::function<double(const Link&)>;

/// Default routing weight: the link's cost metric.
double cost_weight(const Link& l);

/// Simulation weight: propagation delay (+ fixed per-hop overhead via
/// delay_weight_with_overhead).
double delay_weight(const Link& l);

/// Dijkstra from `source` using `weight` (defaults to cost_weight);
/// ties between equal-cost paths break toward the lower node id, so all
/// switches computing the same tree agree on it.
ShortestPaths dijkstra(const Graph& g, NodeId source,
                       const LinkWeight& weight = cost_weight);

/// True if all nodes are mutually reachable over up links.
bool is_connected(const Graph& g);

/// Component label per node (labels are 0-based, assigned in node order).
std::vector<int> components(const Graph& g);

/// Worst-case cost-metric eccentricity over all sources.
double diameter_cost(const Graph& g);

/// Flooding diameter Tf: the worst-case time for a flooded message to
/// reach every node, where each hop costs link delay + per_hop_overhead
/// (paper §4.1: Tf is "the time to complete a flooding operation in the
/// worst case").
double flooding_diameter(const Graph& g, double per_hop_overhead = 0.0);

/// Mean propagation delay over all links (0 for an edgeless graph).
double mean_link_delay(const Graph& g);

}  // namespace dgmc::graph
