#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace dgmc::graph {

std::vector<NodeId> ShortestPaths::path_to(NodeId dest) const {
  if (!reachable(dest)) return {};
  std::vector<NodeId> path;
  for (NodeId n = dest; n != kInvalidNode; n = parent[n]) path.push_back(n);
  std::reverse(path.begin(), path.end());
  return path;
}

double cost_weight(const Link& l) { return l.cost; }

double delay_weight(const Link& l) { return l.delay; }

ShortestPaths dijkstra(const Graph& g, NodeId source,
                       const LinkWeight& weight) {
  DGMC_ASSERT(g.valid_node(source));
  const int n = g.node_count();
  ShortestPaths sp;
  sp.source = source;
  sp.dist.assign(n, kInfiniteDistance);
  sp.parent.assign(n, kInvalidNode);
  sp.parent_link.assign(n, kInvalidLink);
  sp.dist[source] = 0.0;

  // (dist, node); deterministic tie-break on node id via the pair order.
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0.0, source});
  std::vector<bool> done(n, false);

  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = true;
    for (LinkId id : g.links_of(u)) {
      const Link& l = g.link(id);
      if (!l.up) continue;
      const double w = weight(l);
      DGMC_ASSERT_MSG(w >= 0.0, "negative link weight");
      const NodeId v = g.other_end(id, u);
      const double nd = d + w;
      // Strict improvement, or an equal-cost path through a lower-id
      // predecessor: keeps tree computations identical across switches.
      if (nd < sp.dist[v] ||
          (nd == sp.dist[v] && !done[v] && u < sp.parent[v])) {
        sp.dist[v] = nd;
        sp.parent[v] = u;
        sp.parent_link[v] = id;
        pq.push({nd, v});
      }
    }
  }
  return sp;
}

std::vector<int> components(const Graph& g) {
  const int n = g.node_count();
  std::vector<int> comp(n, -1);
  int next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != -1) continue;
    const int label = next++;
    comp[s] = label;
    stack.push_back(s);
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (LinkId id : g.links_of(u)) {
        if (!g.link(id).up) continue;
        NodeId v = g.other_end(id, u);
        if (comp[v] == -1) {
          comp[v] = label;
          stack.push_back(v);
        }
      }
    }
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto comp = components(g);
  return std::all_of(comp.begin(), comp.end(),
                     [](int c) { return c == 0; });
}

namespace {

double eccentricity_max(const Graph& g, const LinkWeight& weight) {
  double worst = 0.0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const ShortestPaths sp = dijkstra(g, s, weight);
    for (double d : sp.dist) {
      if (d < kInfiniteDistance) worst = std::max(worst, d);
    }
  }
  return worst;
}

}  // namespace

double diameter_cost(const Graph& g) {
  return eccentricity_max(g, cost_weight);
}

double flooding_diameter(const Graph& g, double per_hop_overhead) {
  return eccentricity_max(g, [per_hop_overhead](const Link& l) {
    return l.delay + per_hop_overhead;
  });
}

double mean_link_delay(const Graph& g) {
  if (g.link_count() == 0) return 0.0;
  double sum = 0.0;
  for (const Link& l : g.links()) sum += l.delay;
  return sum / g.link_count();
}

}  // namespace dgmc::graph
