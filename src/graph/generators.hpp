// Random and regular topology generators.
//
// The paper evaluates on randomly generated graphs ("20 graphs were
// generated randomly for each network size"); the exact generator is
// unspecified, so we provide the Waxman model — the standard topology
// model in 1990s multicast routing studies — plus a degree-targeted
// flat random model and small regular topologies for tests. All
// generators return connected graphs.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dgmc::graph {

struct WaxmanParams {
  double alpha = 0.25;  // link density knob
  double beta = 0.4;    // long-link likelihood knob
  // Side length of the square in which nodes are placed; link delays are
  // proportional to euclidean distance / side (so <= 1.0 * delay_scale).
  double delay_scale = 1.0;
  bool euclidean_costs = false;  // cost = distance instead of hop count
};

/// Waxman random graph: nodes uniform in a unit square; link (u,v) with
/// probability alpha * exp(-d(u,v) / (beta * L)). Connectivity is
/// guaranteed by joining components with their closest node pairs.
Graph waxman(int node_count, const WaxmanParams& params,
             util::RngStream& rng);

/// Random connected graph with approximately `avg_degree` mean degree:
/// a uniform random spanning tree plus random extra links.
Graph random_connected(int node_count, double avg_degree,
                       util::RngStream& rng);

/// Simple regular topologies (unit cost and delay), mainly for tests.
Graph line(int node_count);
Graph ring(int node_count);
Graph star(int node_count);  // node 0 is the hub
Graph grid(int rows, int cols);
Graph complete(int node_count);

}  // namespace dgmc::graph
