#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/algorithms.hpp"

namespace dgmc::graph {

namespace {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

// Joins graph components by linking the closest pair of nodes across
// component boundaries until the graph is connected.
void connect_components(Graph& g, const std::vector<Point>& pts,
                        const WaxmanParams& params) {
  while (true) {
    const std::vector<int> comp = components(g);
    const int ncomp = 1 + *std::max_element(comp.begin(), comp.end());
    if (ncomp <= 1) return;
    // Closest cross-component pair, merging component 0 with any other.
    NodeId best_u = kInvalidNode;
    NodeId best_v = kInvalidNode;
    double best_d = kInfiniteDistance;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (comp[u] != 0) continue;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (comp[v] == 0) continue;
        const double d = distance(pts[u], pts[v]);
        if (d < best_d) {
          best_d = d;
          best_u = u;
          best_v = v;
        }
      }
    }
    DGMC_ASSERT(best_u != kInvalidNode);
    const double cost = params.euclidean_costs ? std::max(best_d, 1e-6) : 1.0;
    g.add_link(best_u, best_v, cost,
               std::max(best_d, 1e-3) * params.delay_scale);
  }
}

}  // namespace

Graph waxman(int node_count, const WaxmanParams& params,
             util::RngStream& rng) {
  DGMC_ASSERT(node_count >= 2);
  Graph g(node_count);
  std::vector<Point> pts(node_count);
  for (Point& p : pts) {
    p.x = rng.uniform01();
    p.y = rng.uniform01();
  }
  const double scale_l = std::sqrt(2.0);  // max distance in unit square
  for (NodeId u = 0; u < node_count; ++u) {
    for (NodeId v = u + 1; v < node_count; ++v) {
      const double d = distance(pts[u], pts[v]);
      const double p =
          params.alpha * std::exp(-d / (params.beta * scale_l));
      if (rng.bernoulli(std::min(p, 1.0))) {
        const double cost = params.euclidean_costs ? std::max(d, 1e-6) : 1.0;
        g.add_link(u, v, cost, std::max(d, 1e-3) * params.delay_scale);
      }
    }
  }
  connect_components(g, pts, params);
  return g;
}

Graph random_connected(int node_count, double avg_degree,
                       util::RngStream& rng) {
  DGMC_ASSERT(node_count >= 2);
  DGMC_ASSERT(avg_degree >= 2.0);
  Graph g(node_count);
  // Random spanning tree: attach each node to a uniformly random
  // already-attached node (random recursive tree).
  std::vector<NodeId> order(node_count);
  for (NodeId i = 0; i < node_count; ++i) order[i] = i;
  rng.shuffle(order);
  for (int i = 1; i < node_count; ++i) {
    const NodeId u = order[i];
    const NodeId v = order[rng.index(static_cast<std::size_t>(i))];
    g.add_link(u, v);
  }
  // Extra links to reach the target mean degree (tree gives ~2 - 2/n).
  const int target_links =
      static_cast<int>(avg_degree * node_count / 2.0 + 0.5);
  int attempts = 0;
  const int max_attempts = 50 * target_links + 100;
  while (g.link_count() < target_links && attempts++ < max_attempts) {
    const NodeId u = static_cast<NodeId>(rng.index(node_count));
    const NodeId v = static_cast<NodeId>(rng.index(node_count));
    if (u == v || g.has_link(u, v)) continue;
    g.add_link(u, v);
  }
  DGMC_ASSERT(is_connected(g));
  return g;
}

Graph line(int node_count) {
  DGMC_ASSERT(node_count >= 1);
  Graph g(node_count);
  for (NodeId i = 0; i + 1 < node_count; ++i) g.add_link(i, i + 1);
  return g;
}

Graph ring(int node_count) {
  DGMC_ASSERT(node_count >= 3);
  Graph g = line(node_count);
  g.add_link(node_count - 1, 0);
  return g;
}

Graph star(int node_count) {
  DGMC_ASSERT(node_count >= 2);
  Graph g(node_count);
  for (NodeId i = 1; i < node_count; ++i) g.add_link(0, i);
  return g;
}

Graph grid(int rows, int cols) {
  DGMC_ASSERT(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_link(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_link(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph complete(int node_count) {
  DGMC_ASSERT(node_count >= 2);
  Graph g(node_count);
  for (NodeId u = 0; u < node_count; ++u) {
    for (NodeId v = u + 1; v < node_count; ++v) g.add_link(u, v);
  }
  return g;
}

}  // namespace dgmc::graph
