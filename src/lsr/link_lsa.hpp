// Non-MC LSA payload (paper §3.1): "a non-MC LSA is a tuple (S, F, D)
// where ... D encodes a description of the event. The exact format of
// link/nodal event descriptions is defined by the underlying unicast
// LSR protocol." Ours describes one link's status change. A nodal
// failure is advertised as the set of its incident links going down.
#pragma once

#include "graph/graph.hpp"

namespace dgmc::lsr {

struct LinkEventAd {
  graph::LinkId link = graph::kInvalidLink;
  bool up = false;

  friend bool operator==(const LinkEventAd&, const LinkEventAd&) = default;
};

}  // namespace dgmc::lsr
