#include "lsr/routing.hpp"

#include "graph/algorithms.hpp"

namespace dgmc::lsr {

RoutingTable RoutingTable::compute(const graph::Graph& g,
                                   graph::NodeId self) {
  DGMC_ASSERT(g.valid_node(self));
  const graph::ShortestPaths sp = graph::dijkstra(g, self);
  RoutingTable rt;
  rt.self_ = self;
  rt.dist_ = sp.dist;
  rt.next_hop_.assign(g.node_count(), graph::kInvalidNode);
  for (graph::NodeId dest = 0; dest < g.node_count(); ++dest) {
    if (dest == self || !sp.reachable(dest)) continue;
    // Climb the shortest-path tree from dest until the parent is self.
    graph::NodeId hop = dest;
    while (sp.parent[hop] != self) hop = sp.parent[hop];
    rt.next_hop_[dest] = hop;
  }
  return rt;
}

graph::NodeId RoutingTable::next_hop(graph::NodeId dest) const {
  DGMC_ASSERT(dest >= 0 &&
              dest < static_cast<graph::NodeId>(next_hop_.size()));
  return next_hop_[dest];
}

double RoutingTable::distance(graph::NodeId dest) const {
  DGMC_ASSERT(dest >= 0 && dest < static_cast<graph::NodeId>(dist_.size()));
  return dist_[dest];
}

bool RoutingTable::reachable(graph::NodeId dest) const {
  return distance(dest) < graph::kInfiniteDistance;
}

}  // namespace dgmc::lsr
