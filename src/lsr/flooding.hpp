// Simulated wire for LSA flooding: the DES-backed transport container.
//
// The flooding *protocol* — dedup, forwarding, per-link ack/retransmit
// reliability — lives in lsr::FloodNode (flood_node.hpp), one engine
// per switch, driven through the abstract FloodWire interface. This
// file is the simulation-side implementation of that wire: a
// FloodingNetwork owns one FloodNode per simulated switch and realizes
// their sends as calendar insertions with per-hop latency = link
// propagation delay + a fixed per-hop processing overhead (the knob
// that realizes the paper's Tf regimes).
//
// The paper assumes the flooding layer is lossless. Two optional
// extensions make it survive an unreliable network (see DESIGN.md
// "Reliability model"):
//   * Fault hooks — per-transmission loss and extra-delay decisions
//     injected by the fault module (std::function, so lsr does not
//     depend on fault). A lost copy is simply never scheduled.
//   * Reliable mode — enables the FloodNodes' OSPF-style per-link
//     acknowledgment machinery (rt::Executor::cancel reclaims timers
//     when acks arrive).
// Both are strictly opt-in: with no hooks and reliable mode off the
// event sequence is identical to the lossless transport.
//
// Crashed switches are modeled with a per-node up flag: a down node
// neither receives (in-flight copies addressed to it evaporate) nor
// acks, and its pending retransmissions are abandoned.
//
// The engine is templated on the payload type so the same transport
// carries non-MC link LSAs and D-GMC MC LSAs (the sim layer instantiates
// it with a variant of both).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "lsr/flood_node.hpp"
#include "rt/executor.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace dgmc::lsr {

/// Loss/jitter decision sources, typically bound to a
/// fault::FaultInjector. Both are consulted once per transmission
/// (data and ack copies alike); either may be null.
struct FaultHooks {
  std::function<bool(graph::LinkId)> drop;
  std::function<rt::Time(graph::LinkId)> extra_delay;
};

template <typename Payload>
class FloodingNetwork {
 public:
  struct Delivery {
    graph::NodeId at;      // switch receiving the LSA
    graph::NodeId origin;  // switch that originated the flooding
    std::uint32_t seq;     // per-origin sequence number
    const Payload& payload;
  };

  /// Invoked once per (switch, LSA) on first receipt; never at the
  /// originator.
  using Receiver = std::function<void(const Delivery&)>;

  FloodingNetwork(rt::Executor& exec, const graph::Graph& physical,
                  double per_hop_overhead)
      : exec_(exec),
        physical_(physical),
        per_hop_overhead_(per_hop_overhead),
        node_up_(physical.node_count(), 1),
        inflight_on_link_(physical.link_count(), 0),
        link_queue_(physical.link_count()) {
    DGMC_ASSERT(per_hop_overhead >= 0.0);
    const int n = physical.node_count();
    wires_.reserve(n);
    nodes_.reserve(n);
    for (graph::NodeId id = 0; id < n; ++id) {
      wires_.push_back(std::make_unique<NodeWire>(this, id));
      nodes_.push_back(
          std::make_unique<FloodNode<Payload>>(id, n, exec_, *wires_.back()));
      nodes_.back()->set_receiver(
          [this, id](const typename FloodNode<Payload>::Delivery& d) {
            if (receiver_) {
              receiver_(Delivery{id, d.origin, d.seq, d.payload});
            }
          });
    }
  }

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  void set_reliable(const ReliableFloodingConfig& cfg) {
    for (auto& node : nodes_) node->set_reliable(cfg);
  }

  void set_fault_hooks(FaultHooks hooks) { faults_ = std::move(hooks); }

  void set_overload(const OverloadConfig& cfg) {
    DGMC_ASSERT(cfg.max_inflight_per_link >= 0);
    DGMC_ASSERT(cfg.max_queue_per_link >= 0);
    overload_ = cfg;
    for (auto& node : nodes_) node->set_max_dedup_ahead(cfg.max_dedup_ahead);
  }

  /// Content hash of a payload, stamped into the rt::EventTag of every
  /// copy of the message (and into fingerprint()). The explorer uses it
  /// to tell in-flight messages apart; without one, two different LSAs
  /// with the same (origin, seq) reached over different search paths
  /// would alias. Optional — null leaves the digest at 0.
  void set_payload_digest(std::function<std::uint64_t(const Payload&)> fn) {
    for (auto& node : nodes_) node->set_payload_digest(fn);
  }

  /// Wire size in bytes of a payload, charged per data copy put on a
  /// link (wire_bytes() accumulates it). Lets drivers compare batched
  /// vs unbatched flooding by bytes actually on the wire, not just op
  /// counts. Optional — null leaves wire_bytes() at 0.
  void set_payload_size(std::function<std::size_t(const Payload&)> fn) {
    payload_size_ = std::move(fn);
  }

  /// Marks a switch's interface up or down. While down, copies
  /// addressed to the node are discarded on arrival, no acks are
  /// produced, and the node's own pending retransmissions are
  /// abandoned. Flooding state (dedup history, sequence counters)
  /// survives, standing in for OSPF's recovery of self-originated
  /// sequence numbers.
  void set_node_up(graph::NodeId n, bool up) {
    DGMC_ASSERT(physical_.valid_node(n));
    node_up_[n] = up ? 1 : 0;
    if (!up) {
      nodes_[n]->abandon_all_pending();
      purge_queued_from(n);
    }
  }

  bool node_up(graph::NodeId n) const {
    DGMC_ASSERT(physical_.valid_node(n));
    return node_up_[n] != 0;
  }

  /// Tells the transport a link failed: waiting copies can never be
  /// delivered, so they are shed (reliable mode's RTO re-attempts once
  /// the link returns; unreliable copies are simply lost, as they would
  /// be on the wire).
  void on_link_down(graph::LinkId id) {
    DGMC_ASSERT(id >= 0 && id < physical_.link_count());
    auto& q = link_queue_[static_cast<std::size_t>(id)];
    sheds_ += q.size();
    queued_total_ -= q.size();
    q.clear();
  }

  /// Tells the transport a link recovered, re-servicing its wait queue
  /// (relevant only when copies queued in the down window).
  void on_link_up(graph::LinkId id) {
    DGMC_ASSERT(id >= 0 && id < physical_.link_count());
    service_queue(id);
  }

  /// Originates one flooding operation. Counted once regardless of the
  /// number of per-link copies (the paper's "floodings per event" unit).
  void flood(graph::NodeId origin, Payload payload) {
    DGMC_ASSERT(physical_.valid_node(origin));
    DGMC_ASSERT_MSG(node_up_[origin] != 0, "crashed switch cannot flood");
    nodes_[origin]->flood(std::move(payload));
  }

  std::uint64_t floodings_originated() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) total += node->floodings_originated();
    return total;
  }
  std::uint64_t link_transmissions() const { return link_transmissions_; }
  /// Payload bytes put on links (per data copy; needs set_payload_size).
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  std::uint64_t duplicates_dropped() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) total += node->duplicates_dropped();
    return total;
  }
  std::uint64_t in_flight() const { return in_flight_; }

  // --- Reliability / fault metrics ---

  /// Data copies retransmitted after an RTO expiry.
  std::uint64_t retransmissions() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) total += node->retransmissions();
    return total;
  }
  /// Per-link acknowledgments transmitted (reliable mode).
  std::uint64_t acks_sent() const { return acks_sent_; }
  /// Copies (data or ack) destroyed by fault injection or by arriving
  /// at a crashed switch.
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  /// Transmissions abandoned after max_retransmits expiries.
  std::uint64_t give_ups() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) total += node->give_ups();
    return total;
  }

  // --- Overload / backpressure metrics ---

  /// Copies shed by backpressure: the per-link wait queue was full, the
  /// link went down with copies waiting, or the queued sender crashed.
  std::uint64_t sheds() const { return sheds_; }
  /// Data copies currently waiting in per-link queues. Nonzero at
  /// quiescence means backpressure is still holding copies back.
  std::size_t queued() const { return queued_total_; }
  /// High-water mark of `queued()` over the run.
  std::size_t queue_peak() const { return queue_peak_; }
  /// Times a dedup `ahead` buffer hit max_dedup_ahead and the gap below
  /// it was abandoned (see OverloadConfig).
  std::uint64_t dedup_compactions() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) total += node->dedup_compactions();
    return total;
  }
  /// Armed retransmission timers — nonzero means the transport still
  /// owes deliveries, so quiescence checks must include it.
  std::size_t retransmit_timers_armed() const {
    std::size_t total = 0;
    for (const auto& node : nodes_) total += node->retransmit_timers_armed();
    return total;
  }
  /// Out-of-order dedup entries currently buffered across all switches
  /// (bounded by the reordering window; the per-origin high-water marks
  /// absorb everything delivered in order).
  std::size_t dedup_backlog() const {
    std::size_t total = 0;
    for (const auto& node : nodes_) total += node->dedup_backlog();
    return total;
  }

  /// Folds the transport's behavior-relevant state — dedup history,
  /// per-origin sequence counters, interface flags, unacked
  /// transmissions — into `h`. In-flight copies are NOT included; the
  /// explorer hashes those from the scheduler's tagged pending events.
  /// Metrics counters are excluded (they never influence behavior).
  std::uint64_t fingerprint(std::uint64_t h) const {
    for (const auto& node : nodes_) h = node->fingerprint_dedup(h);
    for (std::uint8_t up : node_up_) h = util::hash_mix(h, up);
    for (const auto& node : nodes_) h = util::hash_mix(h, node->origin_seq());
    for (const auto& node : nodes_) h = node->fingerprint_pending(h);
    // Backpressure state gates future admissions, so it is
    // behavior-relevant (all empty/zero when overload is off).
    for (int n : inflight_on_link_) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(n));
    }
    for (const auto& q : link_queue_) {
      for (const QueuedTx& entry : q) {
        h = util::hash_mix(h, static_cast<std::uint64_t>(entry.from));
        h = util::hash_mix(h, static_cast<std::uint64_t>(entry.msg->origin));
        h = util::hash_mix(h, entry.msg->seq);
        h = util::hash_mix(h, entry.msg->digest);
      }
    }
    return h;
  }

  /// Relabeled fingerprint (symmetry reduction): hashes the transport
  /// state as if switch/link ids had been renamed through `relabel` —
  /// node-indexed sequences iterate in relabeled order, id-valued
  /// fields map, per-link state permutes with the induced link map, and
  /// content digests are dropped (see FloodNode::fingerprint_pending).
  std::uint64_t fingerprint(std::uint64_t h,
                            const graph::Permutation& relabel) const {
    const auto node_at = [&](std::size_t m) -> const FloodNode<Payload>& {
      return *nodes_[static_cast<std::size_t>(relabel.node_inv[m])];
    };
    for (std::size_t m = 0; m < nodes_.size(); ++m) {
      h = node_at(m).fingerprint_dedup(h, &relabel);
    }
    for (std::size_t m = 0; m < node_up_.size(); ++m) {
      h = util::hash_mix(h, node_up_[static_cast<std::size_t>(
                                relabel.node_inv[m])]);
    }
    for (std::size_t m = 0; m < nodes_.size(); ++m) {
      h = util::hash_mix(h, node_at(m).origin_seq());
    }
    for (std::size_t m = 0; m < nodes_.size(); ++m) {
      h = node_at(m).fingerprint_pending(h, &relabel);
    }
    for (std::size_t m = 0; m < inflight_on_link_.size(); ++m) {
      h = util::hash_mix(
          h, static_cast<std::uint64_t>(inflight_on_link_[static_cast<
                 std::size_t>(relabel.link_inv[m])]));
    }
    for (std::size_t m = 0; m < link_queue_.size(); ++m) {
      // Queue order per link is FIFO admission order — behaviorally
      // relevant, and preserved by relabeling.
      const auto& q =
          link_queue_[static_cast<std::size_t>(relabel.link_inv[m])];
      for (const QueuedTx& entry : q) {
        h = util::hash_mix(
            h, static_cast<std::uint64_t>(relabel.map_node(entry.from)));
        h = util::hash_mix(h, static_cast<std::uint64_t>(
                                  relabel.map_node(entry.msg->origin)));
        h = util::hash_mix(h, entry.msg->seq);
      }
    }
    return h;
  }

 private:
  using MessagePtr = typename FloodNode<Payload>::MessagePtr;

  /// The per-node FloodWire implementation: sends become calendar
  /// insertions on the owning FloodingNetwork. Nested, so it reaches
  /// the container's private admission/transmission machinery.
  class NodeWire final : public FloodWire<Payload> {
   public:
    NodeWire(FloodingNetwork* net, graph::NodeId self)
        : net_(net), self_(self) {}
    const std::vector<graph::LinkId>& incident_links() const override {
      return net_->physical_.links_of(self_);
    }
    bool link_up(graph::LinkId id) const override {
      return net_->physical_.link(id).up;
    }
    bool self_up() const override { return net_->node_up_[self_] != 0; }
    void send_data(graph::LinkId id, const MessagePtr& msg) override {
      net_->transmit(id, self_, msg);
    }
    void send_ack(graph::LinkId id, graph::NodeId origin,
                  std::uint32_t seq) override {
      net_->send_ack(id, self_, origin, seq);
    }

   private:
    FloodingNetwork* net_;
    graph::NodeId self_;
  };

  /// One data copy waiting for inflight budget on its link.
  struct QueuedTx {
    graph::NodeId from;
    MessagePtr msg;
  };

  bool fault_drop(graph::LinkId link) {
    return faults_.drop != nullptr && faults_.drop(link);
  }

  rt::Time fault_delay(graph::LinkId link) {
    if (faults_.extra_delay == nullptr) return 0.0;
    const rt::Time extra = faults_.extra_delay(link);
    DGMC_ASSERT(extra >= 0.0);
    return extra;
  }

  /// Admission control for one data copy (both modes): transmit now if
  /// the link has inflight budget, otherwise wait in the link's bounded
  /// FIFO — or shed when even the queue is full.
  void transmit(graph::LinkId id, graph::NodeId from, const MessagePtr& msg) {
    if (overload_.max_inflight_per_link > 0 &&
        inflight_on_link_[static_cast<std::size_t>(id)] >=
            overload_.max_inflight_per_link) {
      auto& q = link_queue_[static_cast<std::size_t>(id)];
      if (static_cast<int>(q.size()) >= overload_.max_queue_per_link) {
        ++sheds_;
        return;
      }
      q.push_back(QueuedTx{from, msg});
      ++queued_total_;
      if (queued_total_ > queue_peak_) queue_peak_ = queued_total_;
      return;
    }
    transmit_now(id, from, msg);
  }

  /// One data-copy attempt over a link.
  void transmit_now(graph::LinkId id, graph::NodeId from,
                    const MessagePtr& msg) {
    const graph::Link& l = physical_.link(id);
    const graph::NodeId to = physical_.other_end(id, from);
    ++link_transmissions_;
    if (payload_size_) wire_bytes_ += payload_size_(msg->payload);
    if (fault_drop(id)) {
      ++messages_dropped_;
      return;
    }
    ++in_flight_;
    ++inflight_on_link_[static_cast<std::size_t>(id)];
    rt::EventTag tag;
    tag.kind = rt::EventTag::Kind::kDelivery;
    tag.node = to;
    tag.peer = msg->origin;
    tag.seq = msg->seq;
    tag.link = id;
    tag.digest = msg->digest;
    exec_.schedule_after(l.delay + per_hop_overhead_ + fault_delay(id), tag,
                         [this, id, to, msg] { arrive(id, to, msg); });
  }

  /// Moves waiting copies onto the link while inflight budget lasts.
  void service_queue(graph::LinkId id) {
    auto& q = link_queue_[static_cast<std::size_t>(id)];
    while (!q.empty() &&
           (overload_.max_inflight_per_link == 0 ||
            inflight_on_link_[static_cast<std::size_t>(id)] <
                overload_.max_inflight_per_link)) {
      QueuedTx entry = std::move(q.front());
      q.pop_front();
      --queued_total_;
      if (!physical_.link(id).up) {
        // Went down while the copy waited; it is lost as it would be
        // on the wire (reliable mode re-attempts at the next RTO).
        ++sheds_;
        continue;
      }
      transmit_now(id, entry.from, entry.msg);
    }
  }

  void purge_queued_from(graph::NodeId n) {
    for (auto& q : link_queue_) {
      for (auto it = q.begin(); it != q.end();) {
        if (it->from == n) {
          ++sheds_;
          --queued_total_;
          it = q.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  void arrive(graph::LinkId link, graph::NodeId at, const MessagePtr& msg) {
    --in_flight_;
    --inflight_on_link_[static_cast<std::size_t>(link)];
    service_queue(link);
    if (node_up_[at] == 0) {
      // The interface died while the copy was in flight.
      ++messages_dropped_;
      return;
    }
    nodes_[at]->on_data(link, msg);
  }

  void send_ack(graph::LinkId link, graph::NodeId from, graph::NodeId origin,
                std::uint32_t seq) {
    const graph::Link& l = physical_.link(link);
    // A link that went down after the data copy left cannot carry the
    // ack back; the sender keeps retransmitting into the down link.
    if (!l.up) return;
    ++acks_sent_;
    if (fault_drop(link)) {
      ++messages_dropped_;
      return;
    }
    const graph::NodeId to = physical_.other_end(link, from);
    rt::EventTag tag;
    tag.kind = rt::EventTag::Kind::kAck;
    tag.node = to;
    tag.peer = origin;
    tag.seq = seq;
    tag.link = link;
    exec_.schedule_after(
        l.delay + per_hop_overhead_ + fault_delay(link), tag,
        [this, link, to, origin, seq] { ack_arrive(link, to, origin, seq); });
  }

  void ack_arrive(graph::LinkId link, graph::NodeId at, graph::NodeId origin,
                  std::uint32_t seq) {
    if (node_up_[at] == 0) {
      ++messages_dropped_;
      return;
    }
    nodes_[at]->on_ack(link, origin, seq);
  }

  rt::Executor& exec_;
  const graph::Graph& physical_;
  double per_hop_overhead_;
  Receiver receiver_;
  OverloadConfig overload_;
  FaultHooks faults_;
  std::vector<std::unique_ptr<NodeWire>> wires_;          // [switch]
  std::vector<std::unique_ptr<FloodNode<Payload>>> nodes_;  // [switch]
  std::vector<std::uint8_t> node_up_;
  std::vector<int> inflight_on_link_;           // [link] scheduled data copies
  std::vector<std::deque<QueuedTx>> link_queue_;  // [link] waiting copies
  std::size_t queued_total_ = 0;
  std::size_t queue_peak_ = 0;
  std::uint64_t sheds_ = 0;
  std::uint64_t link_transmissions_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::function<std::size_t(const Payload&)> payload_size_;

 public:
  // --- Checkpoint interface ---

  /// Deep copy of the transport's mutable state: every node engine's
  /// snapshot plus the wire-level interface flags, inflight accounting
  /// and backpressure queues. Counters are included so that metrics
  /// after a restore match a replayed run exactly. Opaque to callers.
  struct Snapshot {
    std::vector<typename FloodNode<Payload>::Snapshot> nodes;
    std::vector<std::uint8_t> node_up;
    std::vector<int> inflight_on_link;
    std::vector<std::deque<QueuedTx>> link_queue;
    std::size_t queued_total = 0;
    std::size_t queue_peak = 0;
    std::uint64_t sheds = 0;
    std::uint64_t link_transmissions = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t messages_dropped = 0;
  };

  void save(Snapshot& out) const {
    out.nodes.resize(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i]->save(out.nodes[i]);
    }
    out.node_up = node_up_;
    out.inflight_on_link = inflight_on_link_;
    out.link_queue = link_queue_;
    out.queued_total = queued_total_;
    out.queue_peak = queue_peak_;
    out.sheds = sheds_;
    out.link_transmissions = link_transmissions_;
    out.wire_bytes = wire_bytes_;
    out.in_flight = in_flight_;
    out.acks_sent = acks_sent_;
    out.messages_dropped = messages_dropped_;
  }

  void restore(const Snapshot& snap) {
    DGMC_ASSERT(snap.nodes.size() == nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i]->restore(snap.nodes[i]);
    }
    node_up_ = snap.node_up;
    inflight_on_link_ = snap.inflight_on_link;
    link_queue_ = snap.link_queue;
    queued_total_ = snap.queued_total;
    queue_peak_ = snap.queue_peak;
    sheds_ = snap.sheds;
    link_transmissions_ = snap.link_transmissions;
    wire_bytes_ = snap.wire_bytes;
    in_flight_ = snap.in_flight;
    acks_sent_ = snap.acks_sent;
    messages_dropped_ = snap.messages_dropped;
  }
};

}  // namespace dgmc::lsr
