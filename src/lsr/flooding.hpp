// Reliable LSA flooding over the event calendar (paper §1: "the local
// status of each switch is learned by the network via the flooding of
// link-state advertisements").
//
// Classic LSR flooding: the originator sends on all up incident links;
// each switch, on first receipt of an (origin, seq) pair, delivers the
// payload to its protocol layer and forwards on every other up link;
// duplicates are dropped. Per-hop latency = link propagation delay +
// a fixed per-hop processing overhead (the knob that realizes the
// paper's Tf regimes).
//
// The engine is templated on the payload type so the same transport
// carries non-MC link LSAs and D-GMC MC LSAs (the sim layer instantiates
// it with a variant of both).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "des/scheduler.hpp"
#include "graph/graph.hpp"
#include "util/assert.hpp"

namespace dgmc::lsr {

template <typename Payload>
class FloodingNetwork {
 public:
  struct Delivery {
    graph::NodeId at;      // switch receiving the LSA
    graph::NodeId origin;  // switch that originated the flooding
    std::uint32_t seq;     // per-origin sequence number
    const Payload& payload;
  };

  /// Invoked once per (switch, LSA) on first receipt; never at the
  /// originator.
  using Receiver = std::function<void(const Delivery&)>;

  FloodingNetwork(des::Scheduler& sched, const graph::Graph& physical,
                  double per_hop_overhead)
      : sched_(sched),
        physical_(physical),
        per_hop_overhead_(per_hop_overhead),
        seen_(physical.node_count()),
        next_seq_(physical.node_count(), 0) {
    DGMC_ASSERT(per_hop_overhead >= 0.0);
  }

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  /// Originates one flooding operation. Counted once regardless of the
  /// number of per-link copies (the paper's "floodings per event" unit).
  void flood(graph::NodeId origin, Payload payload) {
    DGMC_ASSERT(physical_.valid_node(origin));
    auto msg = std::make_shared<const Message>(
        Message{origin, next_seq_[origin]++, std::move(payload)});
    ++floodings_originated_;
    mark_seen(origin, msg->origin, msg->seq);
    forward(origin, msg);
  }

  std::uint64_t floodings_originated() const { return floodings_originated_; }
  std::uint64_t link_transmissions() const { return link_transmissions_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t in_flight() const { return in_flight_; }

 private:
  struct Message {
    graph::NodeId origin;
    std::uint32_t seq;
    Payload payload;
  };
  using MessagePtr = std::shared_ptr<const Message>;

  static std::uint64_t key(graph::NodeId origin, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin))
            << 32) |
           seq;
  }

  bool mark_seen(graph::NodeId at, graph::NodeId origin, std::uint32_t seq) {
    return seen_[at].insert(key(origin, seq)).second;
  }

  void forward(graph::NodeId from, const MessagePtr& msg) {
    for (graph::LinkId id : physical_.links_of(from)) {
      const graph::Link& l = physical_.link(id);
      if (!l.up) continue;
      const graph::NodeId to = physical_.other_end(id, from);
      ++link_transmissions_;
      ++in_flight_;
      sched_.schedule_after(l.delay + per_hop_overhead_,
                            [this, to, msg] { arrive(to, msg); });
    }
  }

  void arrive(graph::NodeId at, const MessagePtr& msg) {
    --in_flight_;
    if (!mark_seen(at, msg->origin, msg->seq)) {
      ++duplicates_dropped_;
      return;
    }
    if (receiver_) {
      receiver_(Delivery{at, msg->origin, msg->seq, msg->payload});
    }
    forward(at, msg);
  }

  des::Scheduler& sched_;
  const graph::Graph& physical_;
  double per_hop_overhead_;
  Receiver receiver_;
  std::vector<std::unordered_set<std::uint64_t>> seen_;
  std::vector<std::uint32_t> next_seq_;
  std::uint64_t floodings_originated_ = 0;
  std::uint64_t link_transmissions_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t in_flight_ = 0;
};

}  // namespace dgmc::lsr
