// Reliable LSA flooding over the event calendar (paper §1: "the local
// status of each switch is learned by the network via the flooding of
// link-state advertisements").
//
// Classic LSR flooding: the originator sends on all up incident links;
// each switch, on first receipt of an (origin, seq) pair, delivers the
// payload to its protocol layer and forwards on every other up link;
// duplicates are dropped. Per-hop latency = link propagation delay +
// a fixed per-hop processing overhead (the knob that realizes the
// paper's Tf regimes).
//
// The paper assumes this layer is lossless. Two optional extensions
// make it survive an unreliable network (see DESIGN.md "Reliability
// model"):
//   * Fault hooks — per-transmission loss and extra-delay decisions
//     injected by the fault module (std::function, so lsr does not
//     depend on fault). A lost copy is simply never scheduled.
//   * Reliable mode — OSPF-style per-link acknowledgment: every data
//     copy expects an ack from the far end; the sender arms a
//     retransmission timer with exponential backoff and retransmits
//     until acked, the link reports down, or a retry cap is reached
//     (Scheduler::cancel reclaims timers when acks arrive). Receivers
//     ack duplicates too, since a duplicate usually means our previous
//     ack was lost.
// Both are strictly opt-in: with no hooks and reliable mode off the
// event sequence is identical to the lossless transport.
//
// Crashed switches are modeled with a per-node up flag: a down node
// neither receives (in-flight copies addressed to it evaporate) nor
// acks, and its pending retransmissions are abandoned.
//
// The engine is templated on the payload type so the same transport
// carries non-MC link LSAs and D-GMC MC LSAs (the sim layer instantiates
// it with a variant of both).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "des/scheduler.hpp"
#include "graph/graph.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace dgmc::lsr {

/// Per-link ack + retransmission parameters (reliable mode).
struct ReliableFloodingConfig {
  bool enabled = false;
  /// First retransmission fires this long after a transmission; must
  /// exceed the round-trip (2 * (link delay + per-hop overhead) + max
  /// jitter) or every copy is retransmitted at least once.
  des::SimTime initial_rto = 10 * des::kMillisecond;
  /// RTO multiplier per retry (exponential backoff).
  double backoff = 2.0;
  /// Retransmissions per (link, LSA) before the sender gives up. A
  /// give-up breaks the delivery guarantee; the protocol layer's
  /// resync-on-restore machinery is the backstop.
  int max_retransmits = 10;
};

/// Graceful-degradation bounds for overload (join storms, §DESIGN 10).
/// All limits are 0 = unlimited (the default), which preserves the
/// historical event sequence bit-for-bit. With limits set, a link
/// admits at most `max_inflight_per_link` concurrent data copies;
/// excess copies wait in a bounded FIFO and are *shed* (counted, not
/// scheduled) once the queue is full — so a storm degrades latency,
/// never memory. Acks always bypass the queue: they release inflight
/// budget on the far side, so queueing them could deadlock the link.
struct OverloadConfig {
  int max_inflight_per_link = 0;   // concurrent data copies per link
  int max_queue_per_link = 0;      // waiting copies per link beyond that
  /// Cap on a switch's out-of-order dedup buffer per origin. When the
  /// `ahead` set outgrows this, the gap below it is declared abandoned
  /// and compacted into the high-water mark (late gap-fillers are then
  /// dropped as duplicates — the resync machinery is the backstop).
  std::size_t max_dedup_ahead = 0;
};

/// Loss/jitter decision sources, typically bound to a
/// fault::FaultInjector. Both are consulted once per transmission
/// (data and ack copies alike); either may be null.
struct FaultHooks {
  std::function<bool(graph::LinkId)> drop;
  std::function<des::SimTime(graph::LinkId)> extra_delay;
};

template <typename Payload>
class FloodingNetwork {
 public:
  struct Delivery {
    graph::NodeId at;      // switch receiving the LSA
    graph::NodeId origin;  // switch that originated the flooding
    std::uint32_t seq;     // per-origin sequence number
    const Payload& payload;
  };

  /// Invoked once per (switch, LSA) on first receipt; never at the
  /// originator.
  using Receiver = std::function<void(const Delivery&)>;

  FloodingNetwork(des::Scheduler& sched, const graph::Graph& physical,
                  double per_hop_overhead)
      : sched_(sched),
        physical_(physical),
        per_hop_overhead_(per_hop_overhead),
        seen_(physical.node_count(),
              std::vector<OriginDedup>(physical.node_count())),
        node_up_(physical.node_count(), 1),
        next_seq_(physical.node_count(), 0),
        inflight_on_link_(physical.link_count(), 0),
        link_queue_(physical.link_count()) {
    DGMC_ASSERT(per_hop_overhead >= 0.0);
  }

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  void set_reliable(const ReliableFloodingConfig& cfg) {
    DGMC_ASSERT(cfg.initial_rto > 0.0);
    DGMC_ASSERT(cfg.backoff >= 1.0);
    DGMC_ASSERT(cfg.max_retransmits >= 0);
    reliable_ = cfg;
  }

  void set_fault_hooks(FaultHooks hooks) { faults_ = std::move(hooks); }

  void set_overload(const OverloadConfig& cfg) {
    DGMC_ASSERT(cfg.max_inflight_per_link >= 0);
    DGMC_ASSERT(cfg.max_queue_per_link >= 0);
    overload_ = cfg;
  }

  /// Content hash of a payload, stamped into the des::EventTag of every
  /// copy of the message (and into fingerprint()). The explorer uses it
  /// to tell in-flight messages apart; without one, two different LSAs
  /// with the same (origin, seq) reached over different search paths
  /// would alias. Optional — null leaves the digest at 0.
  void set_payload_digest(std::function<std::uint64_t(const Payload&)> fn) {
    payload_digest_ = std::move(fn);
  }

  /// Marks a switch's interface up or down. While down, copies
  /// addressed to the node are discarded on arrival, no acks are
  /// produced, and the node's own pending retransmissions are
  /// abandoned. Flooding state (dedup history, sequence counters)
  /// survives, standing in for OSPF's recovery of self-originated
  /// sequence numbers.
  void set_node_up(graph::NodeId n, bool up) {
    DGMC_ASSERT(physical_.valid_node(n));
    node_up_[n] = up ? 1 : 0;
    if (!up) {
      abandon_pending_from(n);
      purge_queued_from(n);
    }
  }

  bool node_up(graph::NodeId n) const {
    DGMC_ASSERT(physical_.valid_node(n));
    return node_up_[n] != 0;
  }

  /// Tells the transport a link failed: waiting copies can never be
  /// delivered, so they are shed (reliable mode's RTO re-attempts once
  /// the link returns; unreliable copies are simply lost, as they would
  /// be on the wire).
  void on_link_down(graph::LinkId id) {
    DGMC_ASSERT(id >= 0 && id < physical_.link_count());
    auto& q = link_queue_[static_cast<std::size_t>(id)];
    sheds_ += q.size();
    queued_total_ -= q.size();
    q.clear();
  }

  /// Tells the transport a link recovered, re-servicing its wait queue
  /// (relevant only when copies queued in the down window).
  void on_link_up(graph::LinkId id) {
    DGMC_ASSERT(id >= 0 && id < physical_.link_count());
    service_queue(id);
  }

  /// Originates one flooding operation. Counted once regardless of the
  /// number of per-link copies (the paper's "floodings per event" unit).
  void flood(graph::NodeId origin, Payload payload) {
    DGMC_ASSERT(physical_.valid_node(origin));
    DGMC_ASSERT_MSG(node_up_[origin] != 0, "crashed switch cannot flood");
    const std::uint64_t digest =
        payload_digest_ ? payload_digest_(payload) : 0;
    auto msg = std::make_shared<const Message>(
        Message{origin, next_seq_[origin]++, digest, std::move(payload)});
    ++floodings_originated_;
    mark_seen(origin, msg->origin, msg->seq);
    forward(origin, msg);
  }

  std::uint64_t floodings_originated() const { return floodings_originated_; }
  std::uint64_t link_transmissions() const { return link_transmissions_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t in_flight() const { return in_flight_; }

  // --- Reliability / fault metrics ---

  /// Data copies retransmitted after an RTO expiry.
  std::uint64_t retransmissions() const { return retransmissions_; }
  /// Per-link acknowledgments transmitted (reliable mode).
  std::uint64_t acks_sent() const { return acks_sent_; }
  /// Copies (data or ack) destroyed by fault injection or by arriving
  /// at a crashed switch.
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  /// Transmissions abandoned after max_retransmits expiries.
  std::uint64_t give_ups() const { return give_ups_; }

  // --- Overload / backpressure metrics ---

  /// Copies shed by backpressure: the per-link wait queue was full, the
  /// link went down with copies waiting, or the queued sender crashed.
  std::uint64_t sheds() const { return sheds_; }
  /// Data copies currently waiting in per-link queues. Nonzero at
  /// quiescence means backpressure is still holding copies back.
  std::size_t queued() const { return queued_total_; }
  /// High-water mark of `queued()` over the run.
  std::size_t queue_peak() const { return queue_peak_; }
  /// Times a dedup `ahead` buffer hit max_dedup_ahead and the gap below
  /// it was abandoned (see OverloadConfig).
  std::uint64_t dedup_compactions() const { return dedup_compactions_; }
  /// Armed retransmission timers — nonzero means the transport still
  /// owes deliveries, so quiescence checks must include it.
  std::size_t retransmit_timers_armed() const { return pending_.size(); }
  /// Out-of-order dedup entries currently buffered across all switches
  /// (bounded by the reordering window; the per-origin high-water marks
  /// absorb everything delivered in order).
  std::size_t dedup_backlog() const {
    std::size_t total = 0;
    for (const auto& per_switch : seen_) {
      for (const OriginDedup& d : per_switch) total += d.ahead.size();
    }
    return total;
  }

  /// Folds the transport's behavior-relevant state — dedup history,
  /// per-origin sequence counters, interface flags, unacked
  /// transmissions — into `h`. In-flight copies are NOT included; the
  /// explorer hashes those from the scheduler's tagged pending events.
  /// Metrics counters are excluded (they never influence behavior).
  std::uint64_t fingerprint(std::uint64_t h) const {
    for (const auto& per_switch : seen_) {
      for (const OriginDedup& d : per_switch) {
        h = util::hash_mix(h, d.next_expected);
        // Hash the `ahead` set order-independently (it is unordered).
        std::uint64_t ahead = 0;
        for (std::uint32_t s : d.ahead) ahead ^= util::hash_mix(0x5eed, s);
        h = util::hash_mix(h, ahead);
      }
    }
    for (std::uint8_t up : node_up_) h = util::hash_mix(h, up);
    for (std::uint32_t s : next_seq_) h = util::hash_mix(h, s);
    for (const auto& [key, tx] : pending_) {  // std::map: stable order
      h = util::hash_mix(h, static_cast<std::uint64_t>(std::get<0>(key)));
      h = util::hash_mix(h, static_cast<std::uint64_t>(std::get<1>(key)));
      h = util::hash_mix(h, static_cast<std::uint64_t>(std::get<2>(key)));
      h = util::hash_mix(h, std::get<3>(key));
      h = util::hash_mix(h, static_cast<std::uint64_t>(tx.retransmits));
      h = util::hash_mix(h, tx.msg->digest);
    }
    // Backpressure state gates future admissions, so it is
    // behavior-relevant (all empty/zero when overload is off).
    for (int n : inflight_on_link_) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(n));
    }
    for (const auto& q : link_queue_) {
      for (const QueuedTx& entry : q) {
        h = util::hash_mix(h, static_cast<std::uint64_t>(entry.from));
        h = util::hash_mix(h, static_cast<std::uint64_t>(entry.msg->origin));
        h = util::hash_mix(h, entry.msg->seq);
        h = util::hash_mix(h, entry.msg->digest);
      }
    }
    return h;
  }

 private:
  struct Message {
    graph::NodeId origin;
    std::uint32_t seq;
    std::uint64_t digest;
    Payload payload;
  };
  using MessagePtr = std::shared_ptr<const Message>;

  // Dedup: sequence numbers are per-origin monotone, so almost all
  // history compresses into a high-water mark ("every seq below
  // next_expected is seen"); only copies that overtake earlier ones —
  // possible under jitter-induced reordering — park in `ahead` until
  // the gap closes. Replaces an ever-growing per-switch set of
  // (origin, seq) keys that made long runs leak memory.
  struct OriginDedup {
    std::uint32_t next_expected = 0;
    std::unordered_set<std::uint32_t> ahead;
  };

  /// One unacked data copy: (link, sender) + the message, its armed
  /// timer, and the backoff state.
  struct PendingTx {
    MessagePtr msg;
    des::Scheduler::EventId timer;
    int retransmits = 0;
    des::SimTime rto = 0.0;
  };
  // Keyed by (link, sender, origin, seq); std::map keeps the crash
  // sweep deterministic.
  using PendingKey =
      std::tuple<graph::LinkId, graph::NodeId, graph::NodeId, std::uint32_t>;

  /// One data copy waiting for inflight budget on its link.
  struct QueuedTx {
    graph::NodeId from;
    MessagePtr msg;
  };

  bool mark_seen(graph::NodeId at, graph::NodeId origin, std::uint32_t seq) {
    OriginDedup& d = seen_[at][origin];
    if (seq < d.next_expected) return false;
    if (seq == d.next_expected) {
      ++d.next_expected;
      while (d.ahead.erase(d.next_expected) != 0) ++d.next_expected;
      return true;
    }
    if (!d.ahead.insert(seq).second) return false;
    if (overload_.max_dedup_ahead > 0 &&
        d.ahead.size() > overload_.max_dedup_ahead) {
      compact_dedup(d);
    }
    return true;
  }

  /// Declares the gap [next_expected, min(ahead)) abandoned — the seqs
  /// in it were given up on (loss + give-up) and will never arrive in
  /// steady state — and folds the run above it into the high-water
  /// mark. A late gap-filler is thereafter dropped as a duplicate
  /// without delivery; the protocol resync machinery is the backstop.
  void compact_dedup(OriginDedup& d) {
    std::uint32_t lo = 0;
    bool first = true;
    for (std::uint32_t s : d.ahead) {
      if (first || s < lo) lo = s;
      first = false;
    }
    DGMC_ASSERT(!first);
    d.next_expected = lo + 1;
    d.ahead.erase(lo);
    while (d.ahead.erase(d.next_expected) != 0) ++d.next_expected;
    ++dedup_compactions_;
  }

  bool fault_drop(graph::LinkId link) {
    return faults_.drop != nullptr && faults_.drop(link);
  }

  des::SimTime fault_delay(graph::LinkId link) {
    if (faults_.extra_delay == nullptr) return 0.0;
    const des::SimTime extra = faults_.extra_delay(link);
    DGMC_ASSERT(extra >= 0.0);
    return extra;
  }

  void forward(graph::NodeId from, const MessagePtr& msg) {
    for (graph::LinkId id : physical_.links_of(from)) {
      const graph::Link& l = physical_.link(id);
      if (!l.up) continue;
      if (reliable_.enabled) {
        start_reliable_tx(id, from, msg);
      } else {
        transmit(id, from, msg);
      }
    }
  }

  /// Admission control for one data copy (both modes): transmit now if
  /// the link has inflight budget, otherwise wait in the link's bounded
  /// FIFO — or shed when even the queue is full.
  void transmit(graph::LinkId id, graph::NodeId from, const MessagePtr& msg) {
    if (overload_.max_inflight_per_link > 0 &&
        inflight_on_link_[static_cast<std::size_t>(id)] >=
            overload_.max_inflight_per_link) {
      auto& q = link_queue_[static_cast<std::size_t>(id)];
      if (static_cast<int>(q.size()) >= overload_.max_queue_per_link) {
        ++sheds_;
        return;
      }
      q.push_back(QueuedTx{from, msg});
      ++queued_total_;
      if (queued_total_ > queue_peak_) queue_peak_ = queued_total_;
      return;
    }
    transmit_now(id, from, msg);
  }

  /// One data-copy attempt over a link.
  void transmit_now(graph::LinkId id, graph::NodeId from,
                    const MessagePtr& msg) {
    const graph::Link& l = physical_.link(id);
    const graph::NodeId to = physical_.other_end(id, from);
    ++link_transmissions_;
    if (fault_drop(id)) {
      ++messages_dropped_;
      return;
    }
    ++in_flight_;
    ++inflight_on_link_[static_cast<std::size_t>(id)];
    des::EventTag tag;
    tag.kind = des::EventTag::Kind::kDelivery;
    tag.node = to;
    tag.peer = msg->origin;
    tag.seq = msg->seq;
    tag.link = id;
    tag.digest = msg->digest;
    sched_.schedule_after(l.delay + per_hop_overhead_ + fault_delay(id), tag,
                          [this, id, to, msg] { arrive(id, to, msg); });
  }

  /// Moves waiting copies onto the link while inflight budget lasts.
  void service_queue(graph::LinkId id) {
    auto& q = link_queue_[static_cast<std::size_t>(id)];
    while (!q.empty() &&
           (overload_.max_inflight_per_link == 0 ||
            inflight_on_link_[static_cast<std::size_t>(id)] <
                overload_.max_inflight_per_link)) {
      QueuedTx entry = std::move(q.front());
      q.pop_front();
      --queued_total_;
      if (!physical_.link(id).up) {
        // Went down while the copy waited; it is lost as it would be
        // on the wire (reliable mode re-attempts at the next RTO).
        ++sheds_;
        continue;
      }
      transmit_now(id, entry.from, entry.msg);
    }
  }

  void purge_queued_from(graph::NodeId n) {
    for (auto& q : link_queue_) {
      for (auto it = q.begin(); it != q.end();) {
        if (it->from == n) {
          ++sheds_;
          --queued_total_;
          it = q.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  void arrive(graph::LinkId link, graph::NodeId at, const MessagePtr& msg) {
    --in_flight_;
    --inflight_on_link_[static_cast<std::size_t>(link)];
    service_queue(link);
    if (node_up_[at] == 0) {
      // The interface died while the copy was in flight.
      ++messages_dropped_;
      return;
    }
    if (reliable_.enabled) send_ack(link, at, msg->origin, msg->seq);
    if (!mark_seen(at, msg->origin, msg->seq)) {
      ++duplicates_dropped_;
      return;
    }
    if (receiver_) {
      receiver_(Delivery{at, msg->origin, msg->seq, msg->payload});
    }
    forward(at, msg);
  }

  // --- Reliable mode ---

  void start_reliable_tx(graph::LinkId id, graph::NodeId from,
                         const MessagePtr& msg) {
    const PendingKey key{id, from, msg->origin, msg->seq};
    DGMC_ASSERT_MSG(pending_.find(key) == pending_.end(),
                    "duplicate reliable transmission");
    PendingTx tx;
    tx.msg = msg;
    tx.rto = reliable_.initial_rto;
    auto [it, inserted] = pending_.emplace(key, std::move(tx));
    DGMC_ASSERT(inserted);
    attempt(it);
  }

  void attempt(typename std::map<PendingKey, PendingTx>::iterator it) {
    const graph::LinkId link = std::get<0>(it->first);
    const graph::NodeId from = std::get<1>(it->first);
    // A flapped-down link swallows the attempt but keeps the timer
    // running: the link may come back before the retry cap.
    if (physical_.link(link).up) transmit(link, from, it->second.msg);
    const PendingKey key = it->first;
    des::EventTag tag;
    tag.kind = des::EventTag::Kind::kRetransmit;
    tag.node = from;
    tag.peer = it->second.msg->origin;
    tag.seq = it->second.msg->seq;
    tag.link = link;
    tag.digest = it->second.msg->digest;
    it->second.timer =
        sched_.schedule_after(it->second.rto, tag, [this, key] { on_rto(key); });
  }

  void on_rto(const PendingKey& key) {
    auto it = pending_.find(key);
    DGMC_ASSERT(it != pending_.end());
    const graph::NodeId from = std::get<1>(key);
    if (node_up_[from] == 0) {
      // Sender crashed between arming the timer and expiry.
      pending_.erase(it);
      return;
    }
    PendingTx& tx = it->second;
    if (tx.retransmits >= reliable_.max_retransmits) {
      ++give_ups_;
      pending_.erase(it);
      return;
    }
    ++tx.retransmits;
    ++retransmissions_;
    tx.rto *= reliable_.backoff;
    attempt(it);
  }

  void send_ack(graph::LinkId link, graph::NodeId from, graph::NodeId origin,
                std::uint32_t seq) {
    const graph::Link& l = physical_.link(link);
    // A link that went down after the data copy left cannot carry the
    // ack back; the sender keeps retransmitting into the down link.
    if (!l.up) return;
    ++acks_sent_;
    if (fault_drop(link)) {
      ++messages_dropped_;
      return;
    }
    const graph::NodeId to = physical_.other_end(link, from);
    des::EventTag tag;
    tag.kind = des::EventTag::Kind::kAck;
    tag.node = to;
    tag.peer = origin;
    tag.seq = seq;
    tag.link = link;
    sched_.schedule_after(
        l.delay + per_hop_overhead_ + fault_delay(link), tag,
        [this, link, to, origin, seq] { ack_arrive(link, to, origin, seq); });
  }

  void ack_arrive(graph::LinkId link, graph::NodeId at, graph::NodeId origin,
                  std::uint32_t seq) {
    if (node_up_[at] == 0) {
      ++messages_dropped_;
      return;
    }
    auto it = pending_.find(PendingKey{link, at, origin, seq});
    if (it == pending_.end()) return;  // late ack after give-up/duplicate
    sched_.cancel(it->second.timer);
    pending_.erase(it);
  }

  void abandon_pending_from(graph::NodeId n) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (std::get<1>(it->first) == n) {
        sched_.cancel(it->second.timer);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }

  des::Scheduler& sched_;
  const graph::Graph& physical_;
  double per_hop_overhead_;
  Receiver receiver_;
  ReliableFloodingConfig reliable_;
  OverloadConfig overload_;
  FaultHooks faults_;
  std::function<std::uint64_t(const Payload&)> payload_digest_;
  std::vector<std::vector<OriginDedup>> seen_;  // [switch][origin]
  std::vector<std::uint8_t> node_up_;
  std::vector<std::uint32_t> next_seq_;
  std::map<PendingKey, PendingTx> pending_;
  std::vector<int> inflight_on_link_;           // [link] scheduled data copies
  std::vector<std::deque<QueuedTx>> link_queue_;  // [link] waiting copies
  std::size_t queued_total_ = 0;
  std::size_t queue_peak_ = 0;
  std::uint64_t sheds_ = 0;
  std::uint64_t dedup_compactions_ = 0;
  std::uint64_t floodings_originated_ = 0;
  std::uint64_t link_transmissions_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t give_ups_ = 0;

 public:
  // --- Checkpoint interface ---

  /// Deep copy of the transport's mutable state. Pending-transmission
  /// records keep their armed-timer EventIds and shared_ptrs to the
  /// (immutable) in-flight messages — both stay meaningful because a
  /// transport snapshot is only ever restored together with the owning
  /// scheduler's calendar snapshot, and restoring never rebinds the
  /// message objects the calendar's delivery closures captured.
  /// Counters are included so that metrics after a restore match a
  /// replayed run exactly. Opaque to callers.
  struct Snapshot {
    std::vector<std::vector<OriginDedup>> seen;
    std::vector<std::uint8_t> node_up;
    std::vector<std::uint32_t> next_seq;
    std::map<PendingKey, PendingTx> pending;
    std::vector<int> inflight_on_link;
    std::vector<std::deque<QueuedTx>> link_queue;
    std::size_t queued_total = 0;
    std::size_t queue_peak = 0;
    std::uint64_t sheds = 0;
    std::uint64_t dedup_compactions = 0;
    std::uint64_t floodings_originated = 0;
    std::uint64_t link_transmissions = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t messages_dropped = 0;
    std::uint64_t give_ups = 0;
  };

  void save(Snapshot& out) const {
    out.seen = seen_;
    out.node_up = node_up_;
    out.next_seq = next_seq_;
    out.pending = pending_;
    out.inflight_on_link = inflight_on_link_;
    out.link_queue = link_queue_;
    out.queued_total = queued_total_;
    out.queue_peak = queue_peak_;
    out.sheds = sheds_;
    out.dedup_compactions = dedup_compactions_;
    out.floodings_originated = floodings_originated_;
    out.link_transmissions = link_transmissions_;
    out.duplicates_dropped = duplicates_dropped_;
    out.in_flight = in_flight_;
    out.retransmissions = retransmissions_;
    out.acks_sent = acks_sent_;
    out.messages_dropped = messages_dropped_;
    out.give_ups = give_ups_;
  }

  void restore(const Snapshot& snap) {
    seen_ = snap.seen;
    node_up_ = snap.node_up;
    next_seq_ = snap.next_seq;
    pending_ = snap.pending;
    inflight_on_link_ = snap.inflight_on_link;
    link_queue_ = snap.link_queue;
    queued_total_ = snap.queued_total;
    queue_peak_ = snap.queue_peak;
    sheds_ = snap.sheds;
    dedup_compactions_ = snap.dedup_compactions;
    floodings_originated_ = snap.floodings_originated;
    link_transmissions_ = snap.link_transmissions;
    duplicates_dropped_ = snap.duplicates_dropped;
    in_flight_ = snap.in_flight;
    retransmissions_ = snap.retransmissions;
    acks_sent_ = snap.acks_sent;
    messages_dropped_ = snap.messages_dropped;
    give_ups_ = snap.give_ups;
  }
};

}  // namespace dgmc::lsr
