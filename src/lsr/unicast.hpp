// Hop-by-hop unicast message delivery over the runtime executor, used by
// the CBT baseline (join/leave requests travel toward the core along
// unicast paths) and the MOSPF baseline (datagram forwarding).
//
// Each hop consults the *current switch's* routing table, so routing
// follows each switch's possibly stale local image — as in a real LSR
// network.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "rt/executor.hpp"
#include "graph/graph.hpp"
#include "lsr/routing.hpp"
#include "util/assert.hpp"

namespace dgmc::lsr {

template <typename Message>
class UnicastNetwork {
 public:
  /// Supplies the routing table a given switch currently uses.
  using TableProvider = std::function<const RoutingTable&(graph::NodeId)>;
  /// Invoked when a message reaches its destination.
  using Receiver = std::function<void(graph::NodeId at, graph::NodeId from,
                                      const Message&)>;
  /// Invoked at every switch a message transits (including the
  /// destination), before forwarding; optional.
  using TransitHook = std::function<void(graph::NodeId at, const Message&)>;

  UnicastNetwork(rt::Executor& exec, const graph::Graph& physical,
                 double per_hop_overhead, TableProvider tables)
      : exec_(exec),
        physical_(physical),
        per_hop_overhead_(per_hop_overhead),
        tables_(std::move(tables)) {}

  void set_receiver(Receiver r) { receiver_ = std::move(r); }
  void set_transit_hook(TransitHook h) { transit_ = std::move(h); }

  /// Sends a message; it is delivered after traversing each hop's link
  /// delay + per-hop overhead, or silently dropped (and counted) if some
  /// switch on the way has no route.
  void send(graph::NodeId from, graph::NodeId to, Message msg) {
    DGMC_ASSERT(physical_.valid_node(from) && physical_.valid_node(to));
    auto env = std::make_shared<Envelope>(Envelope{from, to, std::move(msg)});
    ++messages_sent_;
    step(from, env);
  }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  std::uint64_t hops_traversed() const { return hops_traversed_; }

 private:
  struct Envelope {
    graph::NodeId src;
    graph::NodeId dst;
    Message msg;
  };
  using EnvelopePtr = std::shared_ptr<Envelope>;

  void step(graph::NodeId at, const EnvelopePtr& env) {
    if (transit_) transit_(at, env->msg);
    if (at == env->dst) {
      ++messages_delivered_;
      if (receiver_) receiver_(at, env->src, env->msg);
      return;
    }
    const graph::NodeId hop = tables_(at).next_hop(env->dst);
    if (hop == graph::kInvalidNode) {
      ++messages_dropped_;
      return;
    }
    const graph::LinkId id = physical_.find_link(at, hop);
    if (id == graph::kInvalidLink || !physical_.link(id).up) {
      // Stale table points across a dead link.
      ++messages_dropped_;
      return;
    }
    ++hops_traversed_;
    exec_.schedule_after(physical_.link(id).delay + per_hop_overhead_,
                          [this, hop, env] { step(hop, env); });
  }

  rt::Executor& exec_;
  const graph::Graph& physical_;
  double per_hop_overhead_;
  TableProvider tables_;
  Receiver receiver_;
  TransitHook transit_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t hops_traversed_ = 0;
};

}  // namespace dgmc::lsr
