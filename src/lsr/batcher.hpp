// LsaBatcher: coalesces the MC LSAs one switch originates in one
// round into a single flooded wire operation (DESIGN.md §13).
//
// The paper's cost model charges "k MC LSAs, where k is the number of
// MCs whose topologies are affected by the event" for every link
// event — and at many-MC scale k is the problem: one link failure on a
// tree shared by hundreds of MCs makes the detecting switch originate
// hundreds of floods, each a separate copy per link, ack per link, and
// retransmit timer. All of those LSAs leave the same origin in the
// same round and travel the same flooding paths, so they can share a
// frame: the batcher buffers LSAs submitted during one executor round
// and floods them as one core::McLsaBatch when the round's end-of-
// round flush (scheduled at now()+0 with tag kBatchFlush) fires.
//
// One batch = one flooding sequence number = one reliability unit: the
// FloodNode ack/retransmit machinery needs no changes, it simply sees
// one payload. A batch of one degenerates to the plain single-LSA
// frame (bit-identical bytes — see core/codec), so enabling batching
// on a workload with no same-round coalescing changes nothing on the
// wire.
//
// Disabled (the default), submit() floods immediately and the object
// is a transparent pass-through — behavior, wire bytes and event
// interleavings stay bit-for-bit what they were before batching
// existed.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/codec.hpp"
#include "core/mc_lsa.hpp"
#include "graph/graph.hpp"
#include "rt/executor.hpp"
#include "util/assert.hpp"

namespace dgmc::lsr {

class LsaBatcher {
 public:
  struct Hooks {
    /// Floods one LSA as its own wire op (required; the pass-through
    /// and flush-of-one path).
    std::function<void(core::McLsa)> flood_single;
    /// Floods a coalesced batch as one wire op (required).
    std::function<void(core::McLsaBatch)> flood_batch;
  };

  struct Counters {
    std::uint64_t lsas_submitted = 0;
    std::uint64_t singles_flooded = 0;  // pass-through + flush-of-one
    std::uint64_t batches_flooded = 0;  // flushes that coalesced >= 2
    std::uint64_t batched_lsas = 0;     // LSAs carried inside batches
  };

  LsaBatcher(rt::Executor& exec, graph::NodeId origin, Hooks hooks)
      : exec_(exec), origin_(origin), hooks_(std::move(hooks)) {
    DGMC_ASSERT(hooks_.flood_single != nullptr);
    DGMC_ASSERT(hooks_.flood_batch != nullptr);
  }

  LsaBatcher(const LsaBatcher&) = delete;
  LsaBatcher& operator=(const LsaBatcher&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Wire-size ceiling per flushed batch frame (0 = unbounded, the
  /// simulation default). A datagram transport sets this below its MTU
  /// so a flush that coalesced more than one frame's worth splits into
  /// several maximal batches instead of emitting an unsendable one.
  void set_max_batch_bytes(std::size_t cap) { max_batch_bytes_ = cap; }

  /// Accepts an LSA the protocol wants flooded. Disabled: floods it
  /// immediately. Enabled: buffers it and arms the end-of-round flush
  /// (one timer per round, shared by every LSA buffered in it).
  void submit(core::McLsa lsa) {
    ++counters_.lsas_submitted;
    if (!enabled_) {
      ++counters_.singles_flooded;
      hooks_.flood_single(std::move(lsa));
      return;
    }
    pending_.push_back(std::move(lsa));
    if (!flush_armed_) {
      flush_armed_ = true;
      rt::EventTag tag;
      tag.kind = rt::EventTag::Kind::kBatchFlush;
      tag.node = origin_;
      flush_timer_ = exec_.schedule_after(0.0, tag, [this] {
        flush_armed_ = false;
        flush();
      });
    }
  }

  /// Floods everything buffered: one LSA goes out as the degenerate
  /// single frame, two or more as one batch — split into several
  /// maximal batches when the buffer exceeds the per-frame ceilings
  /// (core::kMaxBatchLsas always; max_batch_bytes when set). Safe to
  /// call with nothing pending (the armed timer then fires as a no-op).
  void flush() {
    if (pending_.empty()) return;
    std::vector<core::McLsa> chunk;
    std::size_t chunk_bytes = 6;  // batch frame header
    auto emit = [&] {
      if (chunk.size() == 1) {
        ++counters_.singles_flooded;
        hooks_.flood_single(std::move(chunk.front()));
      } else {
        core::McLsaBatch batch;
        batch.lsas = std::move(chunk);
        ++counters_.batches_flooded;
        counters_.batched_lsas += batch.lsas.size();
        hooks_.flood_batch(std::move(batch));
      }
      chunk.clear();
      chunk_bytes = 6;
    };
    for (core::McLsa& lsa : pending_) {
      const std::size_t sz = 4 + core::encoded_size(lsa);
      if (!chunk.empty() &&
          (chunk.size() >= core::kMaxBatchLsas ||
           (max_batch_bytes_ != 0 && chunk_bytes + sz > max_batch_bytes_))) {
        emit();
      }
      chunk.push_back(std::move(lsa));
      chunk_bytes += sz;
    }
    emit();
    pending_.clear();
  }

  std::size_t pending() const { return pending_.size(); }
  const std::vector<core::McLsa>& pending_lsas() const { return pending_; }
  const Counters& counters() const { return counters_; }

  /// Checkpoint interface: the pending buffer and the armed flag are
  /// restored together with the owning scheduler's calendar (which
  /// holds the matching flush event), same contract as every other
  /// snapshotted timer in the system.
  struct Snapshot {
    bool enabled = false;
    std::vector<core::McLsa> pending;
    bool flush_armed = false;
    rt::TimerId flush_timer;
    Counters counters;
  };

  void save(Snapshot& out) const {
    out.enabled = enabled_;
    out.pending = pending_;
    out.flush_armed = flush_armed_;
    out.flush_timer = flush_timer_;
    out.counters = counters_;
  }

  void restore(const Snapshot& snap) {
    enabled_ = snap.enabled;
    pending_ = snap.pending;
    flush_armed_ = snap.flush_armed;
    flush_timer_ = snap.flush_timer;
    counters_ = snap.counters;
  }

 private:
  rt::Executor& exec_;
  graph::NodeId origin_;
  Hooks hooks_;
  bool enabled_ = false;
  std::size_t max_batch_bytes_ = 0;
  std::vector<core::McLsa> pending_;
  bool flush_armed_ = false;
  rt::TimerId flush_timer_;
  Counters counters_;
};

}  // namespace dgmc::lsr
