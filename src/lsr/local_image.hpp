// LocalImage: a switch's private copy of the network map (paper §1:
// "each switch maintains a complete local image of the network").
//
// Seeded from the physical graph at startup (standing in for the
// initial LSR database synchronization) and updated by applying non-MC
// link LSAs as they arrive, so a switch's view can lag reality by the
// flooding latency — exactly the inconsistency window the D-GMC
// timestamps must tolerate.
#pragma once

#include "graph/graph.hpp"
#include "lsr/link_lsa.hpp"

namespace dgmc::lsr {

class LocalImage {
 public:
  explicit LocalImage(const graph::Graph& physical) : image_(physical) {}

  const graph::Graph& graph() const { return image_; }

  /// Applies a link-status advertisement to the image.
  void apply(const LinkEventAd& ad) {
    image_.set_link_up(ad.link, ad.up);
  }

  /// True if the image already reflects the advertisement (duplicate or
  /// locally detected event).
  bool reflects(const LinkEventAd& ad) const {
    return image_.link(ad.link).up == ad.up;
  }

 private:
  graph::Graph image_;
};

}  // namespace dgmc::lsr
