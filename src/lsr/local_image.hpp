// LocalImage: a switch's private copy of the network map (paper §1:
// "each switch maintains a complete local image of the network").
//
// Seeded from the physical graph at startup (standing in for the
// initial LSR database synchronization) and updated by applying non-MC
// link LSAs as they arrive, so a switch's view can lag reality by the
// flooding latency — exactly the inconsistency window the D-GMC
// timestamps must tolerate.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "lsr/link_lsa.hpp"

namespace dgmc::lsr {

class LocalImage {
 public:
  explicit LocalImage(const graph::Graph& physical) : image_(physical) {}

  const graph::Graph& graph() const { return image_; }

  /// Applies a link-status advertisement to the image.
  void apply(const LinkEventAd& ad) {
    image_.set_link_up(ad.link, ad.up);
  }

  /// True if the image already reflects the advertisement (duplicate or
  /// locally detected event).
  bool reflects(const LinkEventAd& ad) const {
    return image_.link(ad.link).up == ad.up;
  }

  // --- Checkpoint interface ---

  /// Copies the image's only mutable dimension — per-link up/down flags
  /// (nodes, edges, costs and delays never change after seeding) — into
  /// `out`, reusing its capacity.
  void save_link_flags(std::vector<std::uint8_t>& out) const {
    const int n = image_.link_count();
    out.resize(static_cast<std::size_t>(n));
    for (graph::LinkId id = 0; id < n; ++id) {
      out[static_cast<std::size_t>(id)] = image_.link(id).up ? 1 : 0;
    }
  }

  void restore_link_flags(const std::vector<std::uint8_t>& flags) {
    DGMC_ASSERT(static_cast<int>(flags.size()) == image_.link_count());
    for (graph::LinkId id = 0; id < image_.link_count(); ++id) {
      image_.set_link_up(id, flags[static_cast<std::size_t>(id)] != 0);
    }
  }

 private:
  graph::Graph image_;
};

}  // namespace dgmc::lsr
