// Per-switch reliable-flooding engine (paper §1: "the local status of
// each switch is learned by the network via the flooding of link-state
// advertisements").
//
// FloodNode is the *protocol* half of classic LSR flooding: per-origin
// sequence assignment, duplicate suppression, forwarding decisions, and
// the OSPF-style per-link ack/retransmit machinery. It owns no sockets
// and no event calendar — it drives an abstract FloodWire (who are my
// links, are they up, put this copy / this ack on that link) and an
// rt::Executor (retransmission timers). That makes the same object code
// run under both execution backends:
//
//   * simulation / model checking — lsr::FloodingNetwork (flooding.hpp)
//     implements the wire as calendar insertions with link delays,
//     fault hooks and overload queues, one FloodNode per simulated
//     switch;
//   * deployment — net::NetSwitch implements the wire as UDP datagram
//     sends, one FloodNode per OS process (or in-process loopback
//     switch).
//
// The reliability model (see DESIGN.md "Reliability model"): every data
// copy expects an ack from the far end; the sender arms a
// retransmission timer with exponential backoff and retransmits until
// acked, the link reports down, or a retry cap is reached. Receivers
// ack duplicates too, since a duplicate usually means our previous ack
// was lost.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "graph/permutation.hpp"
#include "rt/executor.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace dgmc::lsr {

/// Per-link ack + retransmission parameters (reliable mode).
struct ReliableFloodingConfig {
  bool enabled = false;
  /// First retransmission fires this long after a transmission; must
  /// exceed the round-trip (2 * (link delay + per-hop overhead) + max
  /// jitter) or every copy is retransmitted at least once.
  rt::Time initial_rto = 10 * rt::kMillisecond;
  /// RTO multiplier per retry (exponential backoff).
  double backoff = 2.0;
  /// Retransmissions per (link, LSA) before the sender gives up. A
  /// give-up breaks the delivery guarantee; the protocol layer's
  /// resync-on-restore machinery is the backstop.
  int max_retransmits = 10;
};

/// Graceful-degradation bounds for overload (join storms, §DESIGN 10).
/// All limits are 0 = unlimited (the default), which preserves the
/// historical event sequence bit-for-bit. With limits set, a link
/// admits at most `max_inflight_per_link` concurrent data copies;
/// excess copies wait in a bounded FIFO and are *shed* (counted, not
/// scheduled) once the queue is full — so a storm degrades latency,
/// never memory. Acks always bypass the queue: they release inflight
/// budget on the far side, so queueing them could deadlock the link.
/// The inflight/queue fields are wire-level (enforced by the sim
/// transport); max_dedup_ahead bounds the per-node dedup buffer and is
/// enforced by FloodNode itself.
struct OverloadConfig {
  int max_inflight_per_link = 0;   // concurrent data copies per link
  int max_queue_per_link = 0;      // waiting copies per link beyond that
  /// Cap on a switch's out-of-order dedup buffer per origin. When the
  /// `ahead` set outgrows this, the gap below it is declared abandoned
  /// and compacted into the high-water mark (late gap-fillers are then
  /// dropped as duplicates — the resync machinery is the backstop).
  std::size_t max_dedup_ahead = 0;
};

/// One flooded LSA: who originated it, its per-origin sequence number,
/// a content digest (exploration bookkeeping, 0 when unused) and the
/// payload. Shared immutably between every in-flight copy.
template <typename Payload>
struct FloodMessage {
  graph::NodeId origin;
  std::uint32_t seq;
  std::uint64_t digest;
  Payload payload;
};

/// What a FloodNode asks of its transport. Implementations: the DES
/// FloodingNetwork's per-node adapter (calendar insertions) and the
/// socket backend's UDP sender. All calls are synchronous; a send may
/// complete (or be dropped, queued, or lost) entirely inside the call.
template <typename Payload>
class FloodWire {
 public:
  using MessagePtr = std::shared_ptr<const FloodMessage<Payload>>;

  virtual ~FloodWire() = default;

  /// The node's incident links (stable ids; iteration order fixes the
  /// transmission order, so it must be deterministic).
  virtual const std::vector<graph::LinkId>& incident_links() const = 0;

  /// Whether a link is currently usable, as far as this node knows.
  virtual bool link_up(graph::LinkId id) const = 0;

  /// Whether this node's own interface is up. The sim transport flips
  /// this on crash; a real process is always up while it runs.
  virtual bool self_up() const = 0;

  /// Puts one data copy on a link (far end inferred from the link).
  virtual void send_data(graph::LinkId id, const MessagePtr& msg) = 0;

  /// Puts one ack for (origin, seq) on a link.
  virtual void send_ack(graph::LinkId id, graph::NodeId origin,
                        std::uint32_t seq) = 0;
};

template <typename Payload>
class FloodNode {
 public:
  using Message = FloodMessage<Payload>;
  using MessagePtr = std::shared_ptr<const Message>;

  struct Delivery {
    graph::NodeId origin;  // switch that originated the flooding
    std::uint32_t seq;     // per-origin sequence number
    const Payload& payload;
  };

  /// Invoked once per LSA on first receipt; never for self-originated
  /// floodings.
  using Receiver = std::function<void(const Delivery&)>;

  FloodNode(graph::NodeId self, int network_size, rt::Executor& exec,
            FloodWire<Payload>& wire)
      : self_(self), exec_(exec), wire_(wire), seen_(network_size) {
    DGMC_ASSERT(self >= 0 && self < network_size);
  }

  FloodNode(const FloodNode&) = delete;
  FloodNode& operator=(const FloodNode&) = delete;

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  void set_reliable(const ReliableFloodingConfig& cfg) {
    DGMC_ASSERT(cfg.initial_rto > 0.0);
    DGMC_ASSERT(cfg.backoff >= 1.0);
    DGMC_ASSERT(cfg.max_retransmits >= 0);
    reliable_ = cfg;
  }

  void set_max_dedup_ahead(std::size_t cap) { max_dedup_ahead_ = cap; }

  /// Content hash of a payload, stamped into every copy's rt::EventTag
  /// (and into fingerprints). The explorer uses it to tell in-flight
  /// messages apart. Optional — null leaves the digest at 0.
  void set_payload_digest(std::function<std::uint64_t(const Payload&)> fn) {
    payload_digest_ = std::move(fn);
  }

  /// Originates one flooding operation. Counted once regardless of the
  /// number of per-link copies (the paper's "floodings per event" unit).
  void flood(Payload payload) {
    const std::uint64_t digest =
        payload_digest_ ? payload_digest_(payload) : 0;
    auto msg = std::make_shared<const Message>(
        Message{self_, next_seq_++, digest, std::move(payload)});
    ++floodings_originated_;
    mark_seen(msg->origin, msg->seq);
    forward(msg);
  }

  /// A data copy reached this node over `link`. The transport has
  /// already established that the node's interface is up.
  void on_data(graph::LinkId link, const MessagePtr& msg) {
    if (reliable_.enabled) wire_.send_ack(link, msg->origin, msg->seq);
    if (!mark_seen(msg->origin, msg->seq)) {
      ++duplicates_dropped_;
      return;
    }
    if (receiver_) {
      receiver_(Delivery{msg->origin, msg->seq, msg->payload});
    }
    forward(msg);
  }

  /// An ack for (origin, seq) sent over `link` reached this node.
  void on_ack(graph::LinkId link, graph::NodeId origin, std::uint32_t seq) {
    auto it = pending_.find(PendingKey{link, origin, seq});
    if (it == pending_.end()) return;  // late ack after give-up/duplicate
    exec_.cancel(it->second.timer);
    pending_.erase(it);
  }

  /// Abandons every unacked transmission (interface went down). Dedup
  /// history and the origin sequence counter survive, standing in for
  /// OSPF's recovery of self-originated sequence numbers.
  void abandon_all_pending() {
    for (auto it = pending_.begin(); it != pending_.end();) {
      exec_.cancel(it->second.timer);
      it = pending_.erase(it);
    }
  }

  graph::NodeId self() const { return self_; }
  std::uint32_t origin_seq() const { return next_seq_; }

  // --- Metrics ---

  std::uint64_t floodings_originated() const { return floodings_originated_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  /// Data copies retransmitted after an RTO expiry.
  std::uint64_t retransmissions() const { return retransmissions_; }
  /// Transmissions abandoned after max_retransmits expiries.
  std::uint64_t give_ups() const { return give_ups_; }
  /// Times a dedup `ahead` buffer hit max_dedup_ahead and the gap below
  /// it was abandoned (see OverloadConfig).
  std::uint64_t dedup_compactions() const { return dedup_compactions_; }
  /// Armed retransmission timers — nonzero means the node still owes
  /// deliveries, so quiescence checks must include it.
  std::size_t retransmit_timers_armed() const { return pending_.size(); }
  /// Out-of-order dedup entries currently buffered (bounded by the
  /// reordering window; the per-origin high-water marks absorb
  /// everything delivered in order).
  std::size_t dedup_backlog() const {
    std::size_t total = 0;
    for (const OriginDedup& d : seen_) total += d.ahead.size();
    return total;
  }

  // --- Fingerprint pieces (composed by the owning container) ---

  /// Folds the dedup history — per-origin high-water marks plus the
  /// order-independent hash of each `ahead` set — into `h`. `relabel`
  /// (symmetry reduction) permutes the origin index; the owning
  /// container is responsible for iterating nodes in relabeled order.
  std::uint64_t fingerprint_dedup(
      std::uint64_t h, const graph::Permutation* relabel = nullptr) const {
    for (std::size_t i = 0; i < seen_.size(); ++i) {
      const OriginDedup& d =
          seen_[relabel == nullptr
                    ? i
                    : static_cast<std::size_t>(relabel->node_inv[i])];
      h = util::hash_mix(h, d.next_expected);
      std::uint64_t ahead = 0;
      for (std::uint32_t s : d.ahead) ahead ^= util::hash_mix(0x5eed, s);
      h = util::hash_mix(h, ahead);
    }
    return h;
  }

  /// Folds the unacked-transmission set (std::map: stable order).
  /// Relabeled mode maps link/node ids, re-sorts under the new ids, and
  /// drops content digests: (origin, seq) already identifies an LSA's
  /// payload within a run — per-origin sequence numbers are monotone
  /// and survive crashes — and digests hash embedded switch ids, which
  /// would break relabeling equivalence.
  std::uint64_t fingerprint_pending(
      std::uint64_t h, const graph::Permutation* relabel = nullptr) const {
    if (relabel == nullptr) {
      for (const auto& [key, tx] : pending_) {
        h = util::hash_mix(h, static_cast<std::uint64_t>(std::get<0>(key)));
        h = util::hash_mix(h, static_cast<std::uint64_t>(self_));
        h = util::hash_mix(h, static_cast<std::uint64_t>(std::get<1>(key)));
        h = util::hash_mix(h, std::get<2>(key));
        h = util::hash_mix(h, static_cast<std::uint64_t>(tx.retransmits));
        h = util::hash_mix(h, tx.msg->digest);
      }
      return h;
    }
    std::vector<std::tuple<graph::LinkId, graph::NodeId, std::uint32_t, int>>
        mapped;
    mapped.reserve(pending_.size());
    for (const auto& [key, tx] : pending_) {
      mapped.emplace_back(relabel->map_link(std::get<0>(key)),
                          relabel->map_node(std::get<1>(key)),
                          std::get<2>(key), tx.retransmits);
    }
    std::sort(mapped.begin(), mapped.end());
    for (const auto& [link, origin, seq, retransmits] : mapped) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(link));
      h = util::hash_mix(h, static_cast<std::uint64_t>(relabel->map_node(self_)));
      h = util::hash_mix(h, static_cast<std::uint64_t>(origin));
      h = util::hash_mix(h, seq);
      h = util::hash_mix(h, static_cast<std::uint64_t>(retransmits));
    }
    return h;
  }

 private:
  // Dedup: sequence numbers are per-origin monotone, so almost all
  // history compresses into a high-water mark ("every seq below
  // next_expected is seen"); only copies that overtake earlier ones —
  // possible under jitter-induced reordering — park in `ahead` until
  // the gap closes. Replaces an ever-growing set of (origin, seq) keys
  // that made long runs leak memory.
  struct OriginDedup {
    std::uint32_t next_expected = 0;
    std::unordered_set<std::uint32_t> ahead;
  };

  /// One unacked data copy: the message, its armed timer, and the
  /// backoff state.
  struct PendingTx {
    MessagePtr msg;
    rt::TimerId timer;
    int retransmits = 0;
    rt::Time rto = 0.0;
  };
  // Keyed by (link, origin, seq) — the sender is this node; std::map
  // keeps the abandon sweep deterministic.
  using PendingKey = std::tuple<graph::LinkId, graph::NodeId, std::uint32_t>;

  bool mark_seen(graph::NodeId origin, std::uint32_t seq) {
    OriginDedup& d = seen_[origin];
    if (seq < d.next_expected) return false;
    if (seq == d.next_expected) {
      ++d.next_expected;
      while (d.ahead.erase(d.next_expected) != 0) ++d.next_expected;
      return true;
    }
    if (!d.ahead.insert(seq).second) return false;
    if (max_dedup_ahead_ > 0 && d.ahead.size() > max_dedup_ahead_) {
      compact_dedup(d);
    }
    return true;
  }

  /// Declares the gap [next_expected, min(ahead)) abandoned — the seqs
  /// in it were given up on (loss + give-up) and will never arrive in
  /// steady state — and folds the run above it into the high-water
  /// mark. A late gap-filler is thereafter dropped as a duplicate
  /// without delivery; the protocol resync machinery is the backstop.
  void compact_dedup(OriginDedup& d) {
    std::uint32_t lo = 0;
    bool first = true;
    for (std::uint32_t s : d.ahead) {
      if (first || s < lo) lo = s;
      first = false;
    }
    DGMC_ASSERT(!first);
    d.next_expected = lo + 1;
    d.ahead.erase(lo);
    while (d.ahead.erase(d.next_expected) != 0) ++d.next_expected;
    ++dedup_compactions_;
  }

  void forward(const MessagePtr& msg) {
    for (graph::LinkId id : wire_.incident_links()) {
      if (!wire_.link_up(id)) continue;
      if (reliable_.enabled) {
        start_reliable_tx(id, msg);
      } else {
        wire_.send_data(id, msg);
      }
    }
  }

  void start_reliable_tx(graph::LinkId id, const MessagePtr& msg) {
    const PendingKey key{id, msg->origin, msg->seq};
    DGMC_ASSERT_MSG(pending_.find(key) == pending_.end(),
                    "duplicate reliable transmission");
    PendingTx tx;
    tx.msg = msg;
    tx.rto = reliable_.initial_rto;
    auto [it, inserted] = pending_.emplace(key, std::move(tx));
    DGMC_ASSERT(inserted);
    attempt(it);
  }

  void attempt(typename std::map<PendingKey, PendingTx>::iterator it) {
    const graph::LinkId link = std::get<0>(it->first);
    // A flapped-down link swallows the attempt but keeps the timer
    // running: the link may come back before the retry cap.
    if (wire_.link_up(link)) wire_.send_data(link, it->second.msg);
    const PendingKey key = it->first;
    rt::EventTag tag;
    tag.kind = rt::EventTag::Kind::kRetransmit;
    tag.node = self_;
    tag.peer = it->second.msg->origin;
    tag.seq = it->second.msg->seq;
    tag.link = link;
    tag.digest = it->second.msg->digest;
    it->second.timer =
        exec_.schedule_after(it->second.rto, tag, [this, key] { on_rto(key); });
  }

  void on_rto(const PendingKey& key) {
    auto it = pending_.find(key);
    DGMC_ASSERT(it != pending_.end());
    if (!wire_.self_up()) {
      // Our interface died between arming the timer and expiry.
      pending_.erase(it);
      return;
    }
    PendingTx& tx = it->second;
    if (tx.retransmits >= reliable_.max_retransmits) {
      ++give_ups_;
      pending_.erase(it);
      return;
    }
    ++tx.retransmits;
    ++retransmissions_;
    tx.rto *= reliable_.backoff;
    attempt(it);
  }

  graph::NodeId self_;
  rt::Executor& exec_;
  FloodWire<Payload>& wire_;
  Receiver receiver_;
  ReliableFloodingConfig reliable_;
  std::size_t max_dedup_ahead_ = 0;
  std::function<std::uint64_t(const Payload&)> payload_digest_;
  std::vector<OriginDedup> seen_;  // [origin]
  std::uint32_t next_seq_ = 0;
  std::map<PendingKey, PendingTx> pending_;
  std::uint64_t floodings_originated_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t give_ups_ = 0;
  std::uint64_t dedup_compactions_ = 0;

 public:
  // --- Checkpoint interface ---

  /// Deep copy of the node's mutable state. Pending-transmission
  /// records keep their armed-timer TimerIds and shared_ptrs to the
  /// (immutable) in-flight messages — both stay meaningful because a
  /// node snapshot is only ever restored together with the owning
  /// scheduler's calendar snapshot, and restoring never rebinds the
  /// message objects the calendar's delivery closures captured.
  /// Counters are included so that metrics after a restore match a
  /// replayed run exactly. Opaque to callers.
  struct Snapshot {
    std::vector<OriginDedup> seen;
    std::uint32_t next_seq = 0;
    std::map<PendingKey, PendingTx> pending;
    std::uint64_t floodings_originated = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t give_ups = 0;
    std::uint64_t dedup_compactions = 0;
  };

  void save(Snapshot& out) const {
    out.seen = seen_;
    out.next_seq = next_seq_;
    out.pending = pending_;
    out.floodings_originated = floodings_originated_;
    out.duplicates_dropped = duplicates_dropped_;
    out.retransmissions = retransmissions_;
    out.give_ups = give_ups_;
    out.dedup_compactions = dedup_compactions_;
  }

  void restore(const Snapshot& snap) {
    seen_ = snap.seen;
    next_seq_ = snap.next_seq;
    pending_ = snap.pending;
    floodings_originated_ = snap.floodings_originated;
    duplicates_dropped_ = snap.duplicates_dropped;
    retransmissions_ = snap.retransmissions;
    give_ups_ = snap.give_ups;
    dedup_compactions_ = snap.dedup_compactions;
  }
};

}  // namespace dgmc::lsr
