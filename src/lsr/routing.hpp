// Unicast routing tables computed from a switch's local image (the
// OSPF role in the paper's architecture: "an MC protocol may take
// advantage of the underlying unicast routing protocol").
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dgmc::lsr {

class RoutingTable {
 public:
  /// Builds the table for `self` by shortest-path-first over `g`
  /// (cost metric, deterministic equal-cost tie-break).
  static RoutingTable compute(const graph::Graph& g, graph::NodeId self);

  graph::NodeId self() const { return self_; }

  /// First hop toward `dest`; kInvalidNode if unreachable or dest==self.
  graph::NodeId next_hop(graph::NodeId dest) const;

  /// Shortest-path cost to `dest` (kInfiniteDistance if unreachable).
  double distance(graph::NodeId dest) const;

  bool reachable(graph::NodeId dest) const;

 private:
  graph::NodeId self_ = graph::kInvalidNode;
  std::vector<graph::NodeId> next_hop_;
  std::vector<double> dist_;
};

}  // namespace dgmc::lsr
