// Partial-order reduction primitives for the exploration strategies.
//
// Three pieces (DESIGN.md §12):
//
//   ActionSig      — calendar-independent identity of an enabled action.
//                    Scheduler EventIds are allocation order and differ
//                    between two interleavings reaching the same state;
//                    sleep sets and the commutation audit need an
//                    identity that survives reordering, which the event
//                    tag (plus the script index for injections)
//                    provides.
//
//   independent()  — the static independence relation sleep sets prune
//                    with (Godefroid). Two actions are independent when
//                    they provably commute — executing them in either
//                    order reaches the same state — AND each leaves the
//                    other enabled. Deliberately conservative: only
//                    tagged protocol events (deliveries, acks,
//                    retransmit timers, computation completions) at
//                    DIFFERENT switches qualify, and never two actions
//                    whose per-(receiver, origin) FIFO chains could
//                    interact. Injections (they advance the shared
//                    script cursor), faults, heartbeats and opaque
//                    events are dependent on everything.
//
//   audit_commutation() — the runtime harness that *checks* the claim:
//                    execute the pair in both orders from a snapshot and
//                    compare state fingerprints. Wired into the DFS
//                    drivers behind SearchLimits::audit_commutation and
//                    exercised directly by check_reduction_test; any
//                    independence-relation bug fails loudly instead of
//                    silently dropping interleavings.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "check/executor.hpp"

namespace dgmc::check {

/// Calendar-independent identity of an enabled action (see file
/// comment). Total order + equality so sleep sets can live in sorted
/// vectors.
struct ActionSig {
  bool is_injection = false;
  std::uint32_t injection = 0;  // script index (is_injection)
  des::EventTag tag{};          // event identity  (!is_injection)

  friend auto tie(const ActionSig& s) {
    return std::make_tuple(s.is_injection, s.injection,
                           static_cast<std::uint8_t>(s.tag.kind), s.tag.node,
                           s.tag.peer, s.tag.seq, s.tag.link, s.tag.digest);
  }
  friend bool operator==(const ActionSig& a, const ActionSig& b) {
    return tie(a) == tie(b);
  }
  friend bool operator<(const ActionSig& a, const ActionSig& b) {
    return tie(a) < tie(b);
  }
};

ActionSig action_sig(const Executor::Action& a);

/// True when the two actions provably commute and preserve each other's
/// enabledness (the sleep-set soundness requirement). Symmetric.
bool independent(const ActionSig& a, const ActionSig& b);

/// Sorted-vector sleep set: `subset` is the dedup-table dominance test
/// (a stored exploration with sleep set S covers a new visit with sleep
/// set S' iff S ⊆ S' — it explored a superset of the transitions).
bool sleep_contains(const std::vector<ActionSig>& sleep, const ActionSig& s);
bool sleep_subset(const std::vector<ActionSig>& a,
                  const std::vector<ActionSig>& b);

/// Runtime commutation check: from the executor's current state, runs
/// enabled()[i] then enabled()[j]'s signature-matched counterpart, and
/// the same pair in the opposite order, comparing the resulting state
/// fingerprints; the executor is restored to its entry state either
/// way. Returns false when the two orders disagree (the independence
/// relation mis-classified the pair) or a counterpart action
/// disappeared (enabledness was not preserved). Does not call check(),
/// so the install-monotone watch is untouched.
bool audit_commutation(Executor& exec, std::size_t i, std::size_t j);

}  // namespace dgmc::check
