// Greedy counterexample minimizer.
//
// Works at the scenario level, not the choice level: dropping a choice
// from a trace renumbers every later enabled-set index, so instead the
// minimizer drops *injected events* from the scenario script and
// re-runs the bounded DFS on the reduced scenario. A drop is kept iff
// the search still finds a violation of the same oracle. Repeats to a
// fixpoint. The result is a trace whose `drop` lines reproduce the
// reduced script from the catalog scenario, so it replays through the
// normal `dgmc_check replay` path.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/explorer.hpp"

namespace dgmc::check {

struct MinimizeResult {
  /// Minimized counterexample (with dropped_injections filled in).
  Trace trace;
  std::vector<std::string> annotations;
  Violation violation;
  std::size_t injections_dropped = 0;
  /// Searches run while probing candidate drops.
  std::size_t searches = 0;
};

/// Minimizes a violating trace previously produced by a search over a
/// catalog scenario. `oracle` names the violation to preserve. Returns
/// nullopt if the trace's scenario is unknown or the violation cannot
/// be reproduced even with no drops (stale trace).
std::optional<MinimizeResult> minimize_trace(const Trace& violating,
                                             const std::string& oracle,
                                             const SearchLimits& limits,
                                             std::string* error);

}  // namespace dgmc::check
