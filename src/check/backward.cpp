#include "check/backward.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace dgmc::check {

namespace {

bool fault_like(const Injection& inj) {
  switch (inj.kind) {
    case Injection::Kind::kLinkDown:
    case Injection::Kind::kLinkUp:
    case Injection::Kind::kCrash:
    case Injection::Kind::kRestart:
      return true;
    case Injection::Kind::kJoin:
    case Injection::Kind::kLeave:
      return false;
  }
  return false;
}

/// Every integer appearing in the violation's detail string — the
/// switch and link ids its witness named. Candidates touching these ids
/// are ranked first: the violation happened *somewhere*, and a fault at
/// that somewhere is the likeliest trigger.
std::set<std::int64_t> mentioned_ids(const std::string& detail) {
  std::set<std::int64_t> out;
  std::size_t i = 0;
  while (i < detail.size()) {
    if (std::isdigit(static_cast<unsigned char>(detail[i])) != 0) {
      std::int64_t v = 0;
      while (i < detail.size() &&
             std::isdigit(static_cast<unsigned char>(detail[i])) != 0) {
        v = v * 10 + (detail[i] - '0');
        ++i;
      }
      out.insert(v);
    } else {
      ++i;
    }
  }
  return out;
}

std::string plan_to_string(const fault::FaultPlan& plan) {
  if (plan.crashes.empty() && plan.flaps.empty()) return "empty schedule";
  std::string out;
  for (const fault::SwitchCrash& c : plan.crashes) {
    if (!out.empty()) out += ", ";
    out += "crash/restart switch " + std::to_string(c.node);
  }
  for (const fault::LinkFlap& f : plan.flaps) {
    if (!out.empty()) out += ", ";
    out += "flap link " + std::to_string(f.link);
  }
  return out;
}

}  // namespace

ScenarioSpec strip_faults(const ScenarioSpec& witness) {
  ScenarioSpec base = witness;
  base.injections.clear();
  for (const Injection& inj : witness.injections) {
    if (!fault_like(inj)) base.injections.push_back(inj);
  }
  base.faults = fault::FaultPlan{};
  return base;
}

BackwardResult backward_search(const ScenarioSpec& witness,
                               const Violation& target,
                               const SearchLimits& limits) {
  BackwardResult out;
  const ScenarioSpec base = strip_faults(witness);
  const std::set<std::int64_t> hot = mentioned_ids(target.detail);

  // Candidate schedules, smallest-first. Fault times are nominal: the
  // explorer interleaves calendar events freely, so only the schedule's
  // *content* matters (crash must precede restart on the calendar, and
  // the explorer may still no-op them in either order).
  std::vector<fault::FaultPlan> candidates;
  candidates.emplace_back();  // pure churn
  auto ranked = [&hot](std::int32_t id) { return hot.count(id) == 0; };
  std::vector<graph::NodeId> nodes(
      static_cast<std::size_t>(base.graph.node_count()));
  for (graph::NodeId n = 0; n < base.graph.node_count(); ++n) {
    nodes[static_cast<std::size_t>(n)] = n;
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     return ranked(a) < ranked(b);
                   });
  for (graph::NodeId n : nodes) {
    fault::FaultPlan plan;
    plan.crashes.push_back(
        fault::SwitchCrash{n, /*crash_at=*/1.0, /*restart_at=*/2.0});
    candidates.push_back(std::move(plan));
  }
  std::vector<graph::LinkId> links(
      static_cast<std::size_t>(base.graph.link_count()));
  for (graph::LinkId l = 0; l < base.graph.link_count(); ++l) {
    links[static_cast<std::size_t>(l)] = l;
  }
  std::stable_sort(links.begin(), links.end(),
                   [&](graph::LinkId a, graph::LinkId b) {
                     return ranked(a) < ranked(b);
                   });
  for (graph::LinkId l : links) {
    fault::FaultPlan plan;
    plan.flaps.push_back(fault::LinkFlap{l, /*down_at=*/1.0, /*up_at=*/2.0});
    candidates.push_back(std::move(plan));
  }

  for (fault::FaultPlan& plan : candidates) {
    ScenarioSpec spec = base;
    const bool has_faults = !plan.crashes.empty() || !plan.flaps.empty();
    spec.faults = plan;
    // Strict oracles presuppose a crash- and loss-free run; under an
    // injected fault they fire spuriously and would mask the target.
    if (has_faults) spec.strict_oracles = false;
    ++out.candidates_tried;
    SearchResult r = explore_dfs(spec, limits);
    const bool hit =
        r.violation.has_value() && r.violation->oracle == target.oracle;
    out.log.push_back(plan_to_string(plan) + ": " +
                      (hit ? "reproduces '" + target.oracle + "'"
                           : (r.violation.has_value()
                                  ? "different oracle ('" +
                                        r.violation->oracle + "')"
                                  : "no violation")));
    if (hit) {
      out.found = true;
      out.schedule = std::move(plan);
      out.scenario = std::move(spec);
      out.search = std::move(r);
      return out;
    }
  }
  return out;
}

}  // namespace dgmc::check
