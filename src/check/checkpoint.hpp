// Checkpoint-restore backtracking for the state-space explorer.
//
// The stateless (VeriSoft-style) driver backtracks by re-executing the
// whole choice prefix from the initial state — O(depth) Executor steps
// per resync, which dominates exploration wall-clock once scenarios go
// past a dozen levels. This layer trades memory for that time: every k
// DFS levels the driver parks a full Executor::Snapshot on a stack, and
// a resync restores the deepest parked snapshot at or above the target
// depth, then replays only the <= k-step tail. Backtracking cost drops
// from O(depth) to O(k + pending events).
//
// Determinism (DESIGN.md §8/§9): a restore brings back the calendar
// with its (time, seq) FIFO contract plus the id/seq counters, the
// whole network state, and the oracle path state, so exploration
// results — fingerprint streams, visited-state counts, violations,
// traces — are bit-identical to full-replay exploration at any
// checkpoint interval and any job count. Only SearchStats::transitions
// differs between intervals: it counts replayed steps, and fewer
// replays is the whole point. (At a *fixed* interval it too is
// identical across job counts.)
//
// Memory: snapshots are pooled. A retired snapshot returns to a
// freelist and its containers keep their capacity, so steady-state
// exploration performs no snapshot-sized allocations — the pool acts as
// an arena whose high-water mark is ceil(max_depth / k) + 1 snapshots
// per driver. Parallel subtree tasks each own a private pool (snapshots
// are bound to one Executor's object graph and must not cross tasks).
//
// Reduction state (DESIGN.md §12): sleep sets and enabled-action
// signatures are deliberately NOT part of Executor::Snapshot. They are
// path metadata — a function of the choice prefix, not of the state —
// and live in the DFS driver's frame stack, which backtracking unwinds
// in lockstep with resync targets. A restore therefore never needs to
// (and must not) touch them: restoring an executor to depth d pairs it
// with the frames 0..d the driver kept, whose sleep sets are exactly
// those of the re-entered path. This holds at every checkpoint interval
// and in the parallel frontier mode, whose subtree tasks receive their
// prefix's sleep set explicitly.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "check/executor.hpp"

namespace dgmc::check {

/// Freelist of Executor snapshots. acquire() reuses a released
/// snapshot, retaining the capacity of every nested container (calendar
/// record vector, per-switch maps, flag vectors), so only the first few
/// acquisitions pay allocation. Not thread-safe: one pool per driver.
class CheckpointPool {
 public:
  std::unique_ptr<Executor::Snapshot> acquire() {
    if (free_.empty()) return std::make_unique<Executor::Snapshot>();
    std::unique_ptr<Executor::Snapshot> s = std::move(free_.back());
    free_.pop_back();
    return s;
  }

  void release(std::unique_ptr<Executor::Snapshot> s) {
    free_.push_back(std::move(s));
  }

  std::size_t pooled() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<Executor::Snapshot>> free_;
};

/// Stack of (depth, snapshot) checkpoints mirroring the DFS path. The
/// invariant — every entry's depth-prefix of the driver's choice vector
/// is exactly the path the snapshot was taken on — holds because
/// resync_to() pops every entry deeper than its target before the
/// driver changes any choice at or below those depths.
class CheckpointStack {
 public:
  /// interval == 0 disables checkpointing (callers should then use
  /// full replay); pool must outlive the stack.
  CheckpointStack(std::size_t interval, CheckpointPool& pool)
      : interval_(interval), pool_(pool) {}

  CheckpointStack(const CheckpointStack&) = delete;
  CheckpointStack& operator=(const CheckpointStack&) = delete;

  ~CheckpointStack() { clear(); }

  bool enabled() const { return interval_ != 0; }
  std::size_t interval() const { return interval_; }
  std::size_t size() const { return stack_.size(); }

  /// Unconditionally checkpoints `exec` at `depth` (the root / task
  /// prefix anchor, so a resync never has to fall back to a full
  /// replay).
  void save(const Executor& exec, std::size_t depth);

  /// Checkpoints `exec` when `depth` lands on the interval grid.
  void maybe_save(const Executor& exec, std::size_t depth) {
    if (enabled() && depth % interval_ == 0) save(exec, depth);
  }

  /// Rewinds `exec` onto the current DFS path at the deepest checkpoint
  /// with depth <= target, recycling every deeper (abandoned-branch)
  /// entry, and returns that checkpoint's depth. The caller replays the
  /// (target - returned) tail steps. Asserts a checkpoint exists (the
  /// anchor save() guarantees one).
  std::size_t resync_to(Executor& exec, std::size_t target);

  void clear();

 private:
  struct Entry {
    std::size_t depth = 0;
    std::unique_ptr<Executor::Snapshot> snap;
  };

  std::size_t interval_;
  CheckpointPool& pool_;
  std::vector<Entry> stack_;
};

}  // namespace dgmc::check
