// Scenarios for systematic state-space exploration.
//
// A ScenarioSpec is a *closed* description of a transition system: the
// physical graph, the protocol parameters, and a script of injected
// external events (joins, leaves, link failures, crashes). The script
// is ordered — injection i fires only after 0..i-1 — modeling a
// sequential operator whose timing *relative to protocol messages* is
// what the explorer varies. Everything else (message deliveries, timer
// firings) is under explorer control, so a spec plus a choice trace
// reproduces one execution exactly (see check::Executor).
//
// Scenarios are deliberately small (3-6 switches, 1-2 MCs): systematic
// search pays exponentially for size, and the protocol logic the
// oracles guard — vector-timestamp comparisons under arbitrary LSA
// interleavings — already exercises every code path at this scale
// (Helmy, Estrin & Gupta, "Systematic Testing of Multicast Routing
// Protocols", make the same tradeoff).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "graph/permutation.hpp"
#include "sim/network.hpp"
#include "sim/spec.hpp"

namespace dgmc::check {

/// One scripted external event the explorer can fire at any point
/// between protocol actions.
struct Injection {
  enum class Kind : std::uint8_t {
    kJoin = 0,
    kLeave = 1,
    kLinkDown = 2,
    kLinkUp = 3,
    kCrash = 4,
    kRestart = 5,
  };
  Kind kind = Kind::kJoin;
  graph::NodeId node = graph::kInvalidNode;  // join/leave/crash/restart
  mc::McId mcid = mc::kInvalidMc;            // join/leave
  mc::McType type = mc::McType::kSymmetric;  // join
  mc::MemberRole role = mc::MemberRole::kBoth;
  graph::LinkId link = graph::kInvalidLink;  // link-down/link-up
};

std::string to_string(const Injection& inj);

struct ScenarioSpec {
  std::string name;
  std::string description;
  graph::Graph graph;
  sim::DgmcNetwork::Params params;
  /// Topology algorithm: incremental (paper §3.5) or from-scratch.
  bool incremental_algorithm = false;
  std::vector<Injection> injections;
  /// Enables the oracles that presuppose a loss- and crash-free run:
  /// membership reconstruction from the injection script, R >= E and
  /// C <= R at quiescence. Crash scenarios set this false — a wiped
  /// switch legitimately ends with gaps those oracles would flag.
  bool strict_oracles = true;

  /// Scheduled faults installed into the network before exploration
  /// (stochastic loss/jitter fields must stay zero — the checker's
  /// transition system is lossless; only flaps and crashes carry over).
  /// Their calendar events become explorer-controlled kFault actions.
  /// Backward search (check/backward.hpp) enumerates values of this
  /// field to hunt for a fault schedule reproducing a violation.
  fault::FaultPlan faults;

  /// MC ids this scenario's script touches, ascending.
  std::vector<mc::McId> mcs() const;
};

/// The built-in scenario catalog (see `dgmc_check list`).
const std::vector<ScenarioSpec>& scenarios();

/// Symmetric companion catalog: scenarios built on graphs with
/// non-trivial automorphism groups (rings, stars) whose scripts leave
/// some of that symmetry unbroken. Kept separate from scenarios() so
/// the primary catalog's size stays a stable regression anchor; both
/// catalogs are searchable through find_scenario.
const std::vector<ScenarioSpec>& symmetric_scenarios();

/// Looks up a scenario by name in both catalogs; nullptr if unknown.
const ScenarioSpec* find_scenario(std::string_view name);

/// The scenario's usable symmetry group: graph automorphisms (same
/// adjacency, costs, delays) that also fix every injection in the
/// ordered script and every scheduled fault — the script is a sequence,
/// not a set, so a permutation that maps injection i to injection j != i
/// changes the transition system and must be discarded. Always contains
/// the identity (first); size 1 means symmetry reduction is a no-op.
std::vector<graph::Permutation> scenario_symmetries(const ScenarioSpec& spec);

/// Builds a fresh network for one execution of the spec.
std::unique_ptr<sim::DgmcNetwork> build_network(const ScenarioSpec& spec);

/// Turns a declarative soak spec into a checkable scenario: the same
/// graph and protocol parameters, with the churn programs expanded
/// (deterministically, from the spec's own seed) into an injection
/// script. `max_injections` truncates the script (0 = keep everything)
/// — systematic search pays exponentially for length, so checking a
/// storm's first handful of events is the useful configuration. The
/// checker's transition system is lossless, so the spec's stochastic
/// loss/jitter plan does not carry over; timing nondeterminism is the
/// explorer's to control. Strict oracles stay enabled only when the
/// kept script has no link/crash events (a wipe legitimately breaks
/// them).
ScenarioSpec scenario_from_soak(const sim::SoakSpec& soak,
                                std::size_t max_injections);

}  // namespace dgmc::check
