#include "check/executor.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace dgmc::check {

namespace {

const char* tag_kind_name(des::EventTag::Kind k) {
  switch (k) {
    case des::EventTag::Kind::kOpaque: return "event";
    case des::EventTag::Kind::kDelivery: return "deliver";
    case des::EventTag::Kind::kAck: return "ack";
    case des::EventTag::Kind::kRetransmit: return "retransmit";
    case des::EventTag::Kind::kCompute: return "finish-computation";
    case des::EventTag::Kind::kFault: return "fault";
    case des::EventTag::Kind::kHeartbeat: return "heartbeat";
  }
  return "?";
}

}  // namespace

Executor::Executor(const ScenarioSpec& spec)
    : spec_(spec), net_(build_network(spec_)) {}

void Executor::refresh_enabled() {
  enabled_.clear();
  if (next_injection_ < spec_.injections.size()) {
    Action a;
    a.kind = Action::Kind::kInjection;
    a.injection = next_injection_;
    enabled_.push_back(a);
  }

  const auto& pending = net_->scheduler().pending_events();

  // Per-(receiver, origin) FIFO: only the lowest-seq pending copy is
  // deliverable (see class comment). In lossless mode, redundant copies
  // of the *same* LSA racing over different links are interchangeable —
  // whichever lands first delivers, the rest dedup — so one
  // representative (the native-order first) suffices; in reliable mode
  // the arrival link decides which ack goes where, so copies on
  // different links stay distinct actions.
  const bool collapse_links = !spec_.params.reliable.enabled;
  std::map<std::pair<std::int32_t, std::int32_t>, std::uint32_t> min_seq;
  for (const auto& p : pending) {
    if (p.tag.kind != des::EventTag::Kind::kDelivery) continue;
    const auto key = std::make_pair(p.tag.node, p.tag.peer);
    auto it = min_seq.find(key);
    if (it == min_seq.end() || p.tag.seq < it->second) min_seq[key] = p.tag.seq;
  }
  std::set<std::tuple<std::int32_t, std::int32_t, std::uint32_t, std::int32_t>>
      taken;
  for (const auto& p : pending) {  // already sorted by (time, seq)
    if (p.tag.kind == des::EventTag::Kind::kDelivery) {
      const auto key = std::make_pair(p.tag.node, p.tag.peer);
      if (p.tag.seq != min_seq[key]) continue;
      const std::int32_t link = collapse_links ? -1 : p.tag.link;
      if (!taken.insert({p.tag.node, p.tag.peer, p.tag.seq, link}).second) {
        continue;
      }
    }
    Action a;
    a.kind = Action::Kind::kEvent;
    a.event = p.id;
    a.tag = p.tag;
    enabled_.push_back(a);
  }
  enabled_valid_ = true;
}

const std::vector<Executor::Action>& Executor::enabled() {
  if (!enabled_valid_) refresh_enabled();
  return enabled_;
}

void Executor::apply_injection(const Injection& inj) {
  // Guards mirror sim::DgmcNetwork::install_faults: an injection whose
  // precondition a previous action invalidated (the minimizer drops
  // script entries; a crash downs a flapping link) degrades to a no-op
  // instead of tripping an assertion.
  switch (inj.kind) {
    case Injection::Kind::kJoin:
      net_->join(inj.node, inj.mcid, inj.type, inj.role);
      break;
    case Injection::Kind::kLeave:
      net_->leave(inj.node, inj.mcid);
      break;
    case Injection::Kind::kLinkDown:
      if (net_->physical().link(inj.link).up) net_->fail_link(inj.link);
      break;
    case Injection::Kind::kLinkUp:
      if (!net_->physical().link(inj.link).up) net_->restore_link(inj.link);
      break;
    case Injection::Kind::kCrash:
      if (net_->switch_alive(inj.node)) {
        net_->crash_switch(inj.node);
        // A wipe legitimately resets C; drop the monotonicity history.
        for (auto it = last_installed_.begin(); it != last_installed_.end();) {
          it = it->first.first == inj.node ? last_installed_.erase(it)
                                          : std::next(it);
        }
      }
      break;
    case Injection::Kind::kRestart:
      if (!net_->switch_alive(inj.node)) net_->restart_switch(inj.node);
      break;
  }
}

void Executor::step(std::size_t choice) {
  const std::vector<Action>& acts = enabled();
  DGMC_ASSERT_MSG(choice < acts.size(), "choice out of range");
  const Action a = acts[choice];
  if (a.kind == Action::Kind::kInjection) {
    apply_injection(spec_.injections[a.injection]);
    ++next_injection_;
  } else {
    const bool ok = net_->scheduler().run_event(a.event);
    DGMC_ASSERT_MSG(ok, "enabled event vanished");
  }
  ++depth_;
  enabled_valid_ = false;
}

std::uint64_t Executor::fingerprint() {
  std::uint64_t h = net_->fingerprint();
  h = util::hash_mix(h, next_injection_);
  // In-flight multiset, canonically ordered by tag (time excluded).
  std::vector<des::EventTag> tags;
  for (const auto& p : net_->scheduler().pending_events()) {
    tags.push_back(p.tag);
  }
  std::sort(tags.begin(), tags.end(), [](const des::EventTag& a,
                                         const des::EventTag& b) {
    return std::tie(a.kind, a.node, a.peer, a.seq, a.link, a.digest) <
           std::tie(b.kind, b.node, b.peer, b.seq, b.link, b.digest);
  });
  for (const des::EventTag& t : tags) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(t.kind));
    h = util::hash_mix(h, static_cast<std::uint64_t>(t.node));
    h = util::hash_mix(h, static_cast<std::uint64_t>(t.peer));
    h = util::hash_mix(h, t.seq);
    h = util::hash_mix(h, static_cast<std::uint64_t>(t.link));
    h = util::hash_mix(h, t.digest);
  }
  h = util::hash_mix(h, tags.size());
  return h;
}

std::uint64_t Executor::canonical_fingerprint(
    const std::vector<graph::Permutation>& syms) {
  DGMC_ASSERT(!syms.empty());
  std::uint64_t best = ~std::uint64_t{0};
  std::vector<des::EventTag> tags;
  for (const graph::Permutation& p : syms) {
    std::uint64_t h = net_->fingerprint(p);
    h = util::hash_mix(h, next_injection_);
    tags.clear();
    for (const auto& pe : net_->scheduler().pending_events()) {
      des::EventTag t = pe.tag;
      t.node = p.map_node(t.node);
      t.peer = p.map_node(t.peer);
      t.link = p.map_link(t.link);
      t.digest = 0;  // digests embed switch ids; (origin, seq) suffices
      tags.push_back(t);
    }
    std::sort(tags.begin(), tags.end(), [](const des::EventTag& a,
                                           const des::EventTag& b) {
      return std::tie(a.kind, a.node, a.peer, a.seq, a.link) <
             std::tie(b.kind, b.node, b.peer, b.seq, b.link);
    });
    for (const des::EventTag& t : tags) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(t.kind));
      h = util::hash_mix(h, static_cast<std::uint64_t>(t.node));
      h = util::hash_mix(h, static_cast<std::uint64_t>(t.peer));
      h = util::hash_mix(h, t.seq);
      h = util::hash_mix(h, static_cast<std::uint64_t>(t.link));
    }
    h = util::hash_mix(h, tags.size());
    best = std::min(best, h);
  }
  return best;
}

std::optional<Violation> Executor::check_install_monotone() {
  for (mc::McId mcid : spec_.mcs()) {
    for (graph::NodeId n = 0; n < net_->size(); ++n) {
      const core::DgmcSwitch& sw = net_->switch_at(n);
      const auto key = std::make_pair(n, mcid);
      if (!sw.alive() || !sw.has_state(mcid)) {
        // Destroyed state (empty MC) restarts the monotone sequence.
        last_installed_.erase(key);
        continue;
      }
      const core::VectorTimestamp& c = *sw.stamp_c(mcid);
      const graph::NodeId origin = sw.proposer(mcid);
      auto it = last_installed_.find(key);
      if (it != last_installed_.end() && !c.dominates(it->second.first)) {
        return Violation{
            "install-monotone",
            "switch " + std::to_string(n) + ", mc " + std::to_string(mcid) +
                ": installed stamp retreated from " +
                it->second.first.to_string() + " (proposer " +
                std::to_string(it->second.second) + ") to " + c.to_string() +
                " (proposer " + std::to_string(origin) +
                ") — a stale proposal was accepted"};
      }
      last_installed_[key] = {c, origin};
    }
  }
  return std::nullopt;
}

std::optional<Violation> Executor::check() {
  if (auto v = check_step_invariants(*net_, spec_)) return v;
  if (auto v = check_install_monotone()) return v;
  if (done()) {
    if (auto v =
            check_quiescence_invariants(*net_, spec_, next_injection_)) {
      return v;
    }
  }
  return std::nullopt;
}

void Executor::save(Snapshot& out) const {
  net_->save(out.network);
  out.next_injection = next_injection_;
  out.depth = depth_;
  out.last_installed = last_installed_;
}

void Executor::restore(const Snapshot& snap) {
  net_->restore(snap.network);
  next_injection_ = snap.next_injection;
  depth_ = snap.depth;
  last_installed_ = snap.last_installed;
  enabled_valid_ = false;
}

std::string Executor::describe(const Action& a) const {
  if (a.kind == Action::Kind::kInjection) {
    return "inject " + to_string(spec_.injections[a.injection]);
  }
  const des::EventTag& t = a.tag;
  std::string out = tag_kind_name(t.kind);
  if (t.node >= 0) out += " at=" + std::to_string(t.node);
  if (t.peer >= 0) out += " origin=" + std::to_string(t.peer);
  if (t.kind == des::EventTag::Kind::kDelivery ||
      t.kind == des::EventTag::Kind::kAck ||
      t.kind == des::EventTag::Kind::kRetransmit) {
    out += " seq=" + std::to_string(t.seq);
  }
  if (t.link >= 0) out += " link=" + std::to_string(t.link);
  return out;
}

}  // namespace dgmc::check
