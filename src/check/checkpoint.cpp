#include "check/checkpoint.hpp"

#include "util/assert.hpp"

namespace dgmc::check {

void CheckpointStack::save(const Executor& exec, std::size_t depth) {
  if (!stack_.empty()) {
    DGMC_ASSERT_MSG(stack_.back().depth < depth,
                    "checkpoints must deepen monotonically");
  }
  Entry e;
  e.depth = depth;
  e.snap = pool_.acquire();
  exec.save(*e.snap);
  stack_.push_back(std::move(e));
}

std::size_t CheckpointStack::resync_to(Executor& exec, std::size_t target) {
  // Entries deeper than the target belong to branches the DFS has
  // abandoned; recycle them. (Lazy: nothing was paid for them when the
  // driver popped frames, only now on an actual resync.)
  while (!stack_.empty() && stack_.back().depth > target) {
    pool_.release(std::move(stack_.back().snap));
    stack_.pop_back();
  }
  DGMC_ASSERT_MSG(!stack_.empty(), "no checkpoint at or above target depth");
  exec.restore(*stack_.back().snap);
  return stack_.back().depth;
}

void CheckpointStack::clear() {
  while (!stack_.empty()) {
    pool_.release(std::move(stack_.back().snap));
    stack_.pop_back();
  }
}

}  // namespace dgmc::check
