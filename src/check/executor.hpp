// check::Executor — interposition layer between an exploration strategy
// and one running DgmcNetwork.
//
// The Executor treats the network as an explicit transition system:
//
//   state   = protocol state of every switch + link/interface flags +
//             flooding dedup state + the multiset of in-flight
//             messages/armed timers + the injection-script cursor
//   actions = (a) executing one tagged pending calendar event (an LSA
//             copy delivery, an ack, a computation finishing, an RTO),
//             (b) firing the next scripted injection.
//
// Instead of executing the calendar in (time, seq) order like
// des::Scheduler::run(), a strategy repeatedly inspects enabled() and
// picks; the Executor dispatches via Scheduler::run_event(). This
// models an asynchronous network with arbitrary message delays — the
// setting the paper's vector-timestamp safety argument addresses — so
// the search visits interleavings no single-seed simulation produces.
//
// Soundness constraint on enabled(): per (receiver, origin) pair, only
// the lowest-sequence pending LSA copy is deliverable. The real
// transport cannot reorder two floodings of the same origin on the way
// to the same receiver (copies traverse identical link sets and later
// floodings start later), so schedules violating per-origin FIFO would
// explore impossible executions and report phantom violations.
// Everything else — deliveries of different origins, timers,
// injections — commutes freely.
//
// A (ScenarioSpec, choice sequence) pair identifies one execution
// exactly; that is what counterexample traces store and what replay
// re-runs step by step.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.hpp"
#include "check/scenario.hpp"

namespace dgmc::check {

class Executor {
 public:
  explicit Executor(const ScenarioSpec& spec);

  struct Action {
    enum class Kind : std::uint8_t { kEvent = 0, kInjection = 1 };
    Kind kind = Kind::kEvent;
    des::Scheduler::EventId event{};  // kEvent
    des::EventTag tag{};              // kEvent
    std::size_t injection = 0;        // kInjection: index into the script
  };

  /// Enabled actions in canonical order: the next scripted injection
  /// (if any) first, then pending calendar events by (time, seq) —
  /// index 0 approximates "what the native simulation would do next",
  /// which is what delay-bounded search measures deviations against.
  const std::vector<Action>& enabled();

  /// Terminal state: calendar drained and script exhausted.
  bool done() { return enabled().empty(); }

  /// Executes enabled()[choice].
  void step(std::size_t choice);

  /// Transitions executed so far.
  std::size_t depth() const { return depth_; }

  std::size_t injections_fired() const { return next_injection_; }

  /// Hash identifying the state up to behavioral equivalence (network
  /// fingerprint + in-flight action multiset + script cursor).
  /// Simulated time is deliberately excluded: two states differing only
  /// in clock value behave identically under explorer control.
  std::uint64_t fingerprint();

  /// Symmetry-canonical state hash: the minimum, over the scenario's
  /// automorphism group (scenario_symmetries), of the fingerprint the
  /// relabeled state would produce — so two states that differ only by
  /// a permutation of interchangeable switches hash to one class.
  /// Content digests are dropped (they embed switch ids); (origin, seq)
  /// identifies every in-flight LSA instead, which is sound because
  /// per-origin sequence counters are monotone and survive crashes.
  /// NOT comparable with fingerprint() values — a search must use one
  /// convention throughout. `syms` must contain the identity.
  std::uint64_t canonical_fingerprint(
      const std::vector<graph::Permutation>& syms);

  /// Evaluates the oracle catalog against the current state (the
  /// quiescence group only when done()). Also advances the
  /// install-monotonicity watch, so call exactly once per state.
  std::optional<Violation> check();

  /// Human-readable label of an enabled action (trace annotations).
  std::string describe(const Action& a) const;

  sim::DgmcNetwork& network() { return *net_; }
  const ScenarioSpec& spec() const { return spec_; }

  // --- Checkpoint interface (see check/checkpoint.hpp) ---

  /// Everything needed to rewind this Executor: the network snapshot
  /// (calendar included), the script cursor, the transition count, and
  /// the install-monotone oracle's watch state (it must rewind with the
  /// world, or a restored run would compare against future installs).
  struct Snapshot {
    sim::DgmcNetwork::Snapshot network;
    std::size_t next_injection = 0;
    std::size_t depth = 0;
    std::map<std::pair<graph::NodeId, mc::McId>,
             std::pair<core::VectorTimestamp, graph::NodeId>>
        last_installed;
  };

  /// Copies the executor's state into `out`, reusing its buffers.
  void save(Snapshot& out) const;

  /// Restores state previously saved from this executor. Enabled-action
  /// and fingerprint queries after restore give bit-identical results
  /// to a fresh replay of the same choice prefix.
  void restore(const Snapshot& snap);

 private:
  void refresh_enabled();
  void apply_injection(const Injection& inj);
  std::optional<Violation> check_install_monotone();

  ScenarioSpec spec_;  // owned copy: must outlive net_, survive callers
  std::unique_ptr<sim::DgmcNetwork> net_;
  std::size_t next_injection_ = 0;
  std::size_t depth_ = 0;
  std::vector<Action> enabled_;
  bool enabled_valid_ = false;
  /// Last observed installed stamp + proposer per (switch, mc), for the
  /// install-monotone oracle.
  std::map<std::pair<graph::NodeId, mc::McId>,
           std::pair<core::VectorTimestamp, graph::NodeId>>
      last_installed_;
};

}  // namespace dgmc::check
