// Backward, fault-directed search (dgmc_check explore --backward).
//
// Forward exploration asks "does any interleaving of THIS scenario
// violate an oracle?". Backward search inverts the question, following
// Helmy, Estrin & Gupta's fault-oriented test generation: given a
// recorded invariant violation, find a *fault schedule* — a placement
// of switch crash/restart cycles or link flaps — under which the
// violation is reachable again from a fault-free script. The driver:
//
//   1. Strip the witness scenario of its fault-like external events
//      (link-down/up, crash/restart injections, any installed fault
//      plan), keeping the membership churn that defines the workload.
//   2. Enumerate candidate fault schedules smallest-first: the empty
//      schedule (pure churn reproduces some violations on its own),
//      then every single-switch crash/restart cycle, then every
//      single-link flap — each ranked so that switches and links named
//      in the violation's detail string are tried first.
//   3. Forward-explore each candidate scenario (reduction honored; the
//      schedule's calendar events become explorer-controlled kFault
//      actions it interleaves freely) and accept the first candidate
//      whose search violates the SAME oracle.
//
// The result is a minimal-by-construction fault schedule plus the
// violating search, whose trace replays like any other counterexample.
#pragma once

#include <string>
#include <vector>

#include "check/explorer.hpp"

namespace dgmc::check {

struct BackwardResult {
  /// True when some candidate schedule reproduced the target oracle.
  bool found = false;
  /// The accepted fault schedule (empty = pure churn suffices).
  fault::FaultPlan schedule;
  /// The scenario the accepted schedule was installed into.
  ScenarioSpec scenario;
  /// The violating forward search under `schedule`.
  SearchResult search;
  std::size_t candidates_tried = 0;
  /// One human-readable line per candidate tried, verdict included.
  std::vector<std::string> log;
};

/// Strips fault-like events from `witness` (step 1 above). Exposed for
/// tests; backward_search applies it internally.
ScenarioSpec strip_faults(const ScenarioSpec& witness);

/// Runs the backward search for a violation of `target.oracle` seen on
/// `witness` (steps 2-3). Each candidate's forward search runs under
/// `limits` (reduction included); strict oracles are disabled for
/// non-empty schedules — they presuppose a crash-free run and would
/// fire spuriously under an injected fault.
BackwardResult backward_search(const ScenarioSpec& witness,
                               const Violation& target,
                               const SearchLimits& limits);

}  // namespace dgmc::check
