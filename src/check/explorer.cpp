#include "check/explorer.hpp"

#include <memory>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dgmc::check {

namespace {

Trace trace_for(const ScenarioSpec& spec,
                const std::vector<std::uint32_t>& choices) {
  Trace t;
  t.scenario = spec.name;
  t.accept_stale_proposals = spec.params.dgmc.accept_stale_proposals;
  t.choices = choices;
  return t;
}

std::vector<std::string> annotate(const ScenarioSpec& spec,
                                  const std::vector<std::uint32_t>& choices) {
  std::vector<std::string> out;
  Executor exec(spec);
  for (std::uint32_t c : choices) {
    out.push_back(exec.describe(exec.enabled()[c]));
    exec.step(c);
  }
  return out;
}

/// Rebuilds an Executor at the state reached by `choices`. Oracles are
/// re-evaluated along the way — not to detect violations (the prefix
/// was already verified clean, and replay is deterministic) but because
/// check() is also what advances the install-monotone watch, which is
/// path state the fresh Executor must regrow.
std::unique_ptr<Executor> replay_prefix(const ScenarioSpec& spec,
                                        const std::vector<std::uint32_t>& choices,
                                        SearchStats& stats) {
  auto exec = std::make_unique<Executor>(spec);
  (void)exec->check();
  for (std::uint32_t c : choices) {
    exec->step(c);
    ++stats.transitions;
    (void)exec->check();
  }
  return exec;
}

bool budget_spent(const SearchLimits& limits, const SearchStats& stats) {
  return limits.max_transitions != 0 &&
         stats.transitions >= limits.max_transitions;
}

void finish(SearchResult& result, const ScenarioSpec& spec,
            const std::vector<std::uint32_t>& choices,
            std::optional<Violation> violation) {
  result.violation = std::move(violation);
  result.trace = trace_for(spec, choices);
  if (result.violation.has_value()) {
    result.annotations = annotate(spec, choices);
  }
}

/// Shared skeleton of the dfs and delay strategies: an explicit-stack
/// DFS with stateless (replay-based) backtracking. Frame i is the
/// state reached by choices[0..i-1]. `exec` lazily tracks `choices`:
/// after backtracking it goes stale and is rebuilt only when the next
/// step is actually taken, so popping a whole subtree costs no replays.
struct DfsDriver {
  struct Frame {
    std::size_t next_choice = 0;
    std::size_t num_enabled = 0;
    std::size_t delay_left = 0;  // delay strategy only
  };

  const ScenarioSpec& spec;
  const SearchLimits& limits;
  const bool delay_mode;

  SearchResult result;
  std::vector<Frame> frames;
  std::vector<std::uint32_t> choices;
  std::unique_ptr<Executor> exec;
  bool in_sync = true;
  bool truncated = false;
  /// fingerprint -> largest remaining depth budget already explored
  /// from that state. Re-expansion is sound only with a larger budget.
  std::unordered_map<std::uint64_t, std::size_t> visited;

  DfsDriver(const ScenarioSpec& s, const SearchLimits& l, bool delay)
      : spec(s), limits(l), delay_mode(delay) {}

  SearchResult run() {
    exec = std::make_unique<Executor>(spec);
    if (auto v = exec->check()) {
      finish(result, spec, choices, std::move(v));
      return std::move(result);
    }
    if (!delay_mode && limits.dedup) {
      visited[exec->fingerprint()] = limits.max_depth;
    }
    frames.push_back(
        Frame{0, exec->enabled().size(),
              delay_mode ? limits.delay_budget : std::size_t{0}});

    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t choice = f.next_choice;
      if (choice >= f.num_enabled ||
          (delay_mode && choice > f.delay_left)) {
        // Subtree exhausted (in delay mode also: remaining choices all
        // cost more delays than we have left).
        if (choice >= f.num_enabled && f.num_enabled == 0) {
          ++result.stats.executions;  // terminal state counted on unwind
        }
        frames.pop_back();
        if (!choices.empty()) choices.pop_back();
        in_sync = false;
        continue;
      }
      ++f.next_choice;
      const std::size_t child_delay_left =
          delay_mode ? f.delay_left - choice : std::size_t{0};

      if (budget_spent(limits, result.stats)) {
        truncated = true;
        break;
      }
      if (!in_sync) {
        exec = replay_prefix(spec, choices, result.stats);
        in_sync = true;
      }
      exec->step(choice);
      ++result.stats.transitions;
      choices.push_back(static_cast<std::uint32_t>(choice));
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, choices.size());

      if (auto v = exec->check()) {
        result.stats.states_seen = visited.size();
        finish(result, spec, choices, std::move(v));
        return std::move(result);
      }
      if (exec->done()) {
        ++result.stats.executions;
        choices.pop_back();
        in_sync = false;
        continue;
      }
      if (choices.size() >= limits.max_depth) {
        ++result.stats.depth_cutoffs;
        truncated = true;
        choices.pop_back();
        in_sync = false;
        continue;
      }
      const std::size_t remaining = limits.max_depth - choices.size();
      if (!delay_mode && limits.dedup) {
        const std::uint64_t fp = exec->fingerprint();
        auto [it, inserted] = visited.try_emplace(fp, remaining);
        if (!inserted) {
          if (it->second >= remaining) {
            ++result.stats.pruned;
            choices.pop_back();
            in_sync = false;
            continue;
          }
          it->second = remaining;
        }
      }
      frames.push_back(Frame{0, exec->enabled().size(), child_delay_left});
    }

    result.stats.states_seen = visited.size();
    result.exhaustive = !truncated;
    return std::move(result);
  }
};

}  // namespace

SearchResult explore_dfs(const ScenarioSpec& spec, const SearchLimits& limits) {
  return DfsDriver(spec, limits, /*delay=*/false).run();
}

SearchResult explore_delay_bounded(const ScenarioSpec& spec,
                                   const SearchLimits& limits) {
  return DfsDriver(spec, limits, /*delay=*/true).run();
}

SearchResult explore_random(const ScenarioSpec& spec,
                            const SearchLimits& limits) {
  SearchResult result;
  bool truncated = false;
  for (std::size_t walk = 0; walk < limits.walks; ++walk) {
    if (budget_spent(limits, result.stats)) {
      truncated = true;
      break;
    }
    util::RngStream rng =
        util::RngStream::derive(limits.seed, "walk-" + std::to_string(walk));
    Executor exec(spec);
    std::vector<std::uint32_t> choices;
    std::optional<Violation> v = exec.check();
    while (!v.has_value() && !exec.done()) {
      if (choices.size() >= limits.max_depth) {
        ++result.stats.depth_cutoffs;
        truncated = true;
        break;
      }
      if (budget_spent(limits, result.stats)) {
        truncated = true;
        break;
      }
      const std::size_t choice = rng.index(exec.enabled().size());
      choices.push_back(static_cast<std::uint32_t>(choice));
      exec.step(choice);
      ++result.stats.transitions;
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, choices.size());
      v = exec.check();
    }
    ++result.stats.executions;
    if (v.has_value()) {
      finish(result, spec, choices, std::move(v));
      return result;
    }
  }
  // Random walks sample the space; they are never exhaustive unless
  // the walks happened to cover it, which we do not track.
  result.exhaustive = false;
  (void)truncated;
  return result;
}

ReplayResult replay(const ScenarioSpec& spec, const Trace& trace,
                    std::vector<std::string>* step_log) {
  ReplayResult out;
  Executor exec(spec);
  if (auto v = exec.check()) {
    out.violation = std::move(v);
    out.violation_step = 0;
    return out;
  }
  for (std::size_t i = 0; i < trace.choices.size(); ++i) {
    const std::uint32_t choice = trace.choices[i];
    const auto& acts = exec.enabled();
    if (choice >= acts.size()) {
      out.divergence = "step " + std::to_string(i) + ": choice " +
                       std::to_string(choice) + " out of range (" +
                       std::to_string(acts.size()) +
                       " enabled) — trace does not match this "
                       "build/scenario";
      return out;
    }
    if (step_log != nullptr) {
      step_log->push_back(exec.describe(acts[choice]));
    }
    exec.step(choice);
    ++out.steps_executed;
    if (auto v = exec.check()) {
      out.violation = std::move(v);
      out.violation_step = i + 1;
      return out;
    }
  }
  return out;
}

}  // namespace dgmc::check
