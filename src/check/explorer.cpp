#include "check/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "check/checkpoint.hpp"
#include "check/reduction.hpp"
#include "exec/fingerprint_set.hpp"
#include "exec/pool.hpp"
#include "graph/permutation.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dgmc::check {

namespace {

/// One recorded exploration of a state: the remaining depth budget it
/// had and the sleep set it started with. A new visit is covered (and
/// prunable) iff some entry had at least as much budget AND a sleep set
/// no larger — it explored a superset of the transitions this visit
/// would. Without reduction every sleep set is empty and the vector
/// degenerates to the historical single budget-per-fingerprint rule.
struct VisitEntry {
  std::size_t budget = 0;
  std::vector<ActionSig> sleep;
};

using VisitedMap = std::unordered_map<std::uint64_t, std::vector<VisitEntry>>;

bool visit_covered(const std::vector<VisitEntry>& entries, std::size_t budget,
                   const std::vector<ActionSig>& sleep) {
  for (const VisitEntry& e : entries) {
    if (e.budget >= budget && sleep_subset(e.sleep, sleep)) return true;
  }
  return false;
}

void visit_record(std::vector<VisitEntry>& entries, std::size_t budget,
                  std::vector<ActionSig> sleep) {
  // Drop entries the new exploration dominates, so the vector stays
  // minimal (and exactly one entry deep in unreduced mode).
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](const VisitEntry& e) {
                                 return budget >= e.budget &&
                                        sleep_subset(sleep, e.sleep);
                               }),
                entries.end());
  entries.push_back(VisitEntry{budget, std::move(sleep)});
}

/// Reduction-aware dedup visit for a state entered with sleep set
/// `sleep` and `remaining` budget. Returns true when a recorded
/// exploration fully covers this visit (prune). Otherwise records the
/// visit and returns false — and, in reduce mode, applies Godefroid's
/// state-caching + sleep-set rule: transitions that prior
/// sufficient-budget visits already explored (the complement of the
/// intersection I of their sleep sets) are added to `sleep`, so the
/// re-expansion walks only what those visits missed. The recorded
/// entry's sleep set is then S ∩ I — after this visit, everything
/// outside it has been explored with >= `remaining` budget.
bool dedup_visit(std::vector<VisitEntry>& entries, std::size_t remaining,
                 bool reduce, const std::vector<ActionSig>& enabled,
                 std::vector<ActionSig>& sleep) {
  if (visit_covered(entries, remaining, sleep)) return true;
  if (!reduce) {
    visit_record(entries, remaining, sleep);
    return false;
  }
  bool any = false;
  std::vector<ActionSig> inter;  // I: what every prior visit left asleep
  for (const VisitEntry& e : entries) {
    if (e.budget < remaining) continue;
    if (!any) {
      inter = e.sleep;
      any = true;
    } else {
      std::vector<ActionSig> next;
      std::set_intersection(inter.begin(), inter.end(), e.sleep.begin(),
                            e.sleep.end(), std::back_inserter(next));
      inter = std::move(next);
    }
  }
  if (!any) {
    visit_record(entries, remaining, sleep);
    return false;
  }
  std::vector<ActionSig> record;  // S ∩ I
  std::set_intersection(sleep.begin(), sleep.end(), inter.begin(),
                        inter.end(), std::back_inserter(record));
  std::vector<ActionSig> effective;  // enabled \ ((enabled \ S) ∩ I)
  for (const ActionSig& s : enabled) {
    if (sleep_contains(sleep, s) || !sleep_contains(inter, s)) {
      effective.push_back(s);
    }
  }
  std::sort(effective.begin(), effective.end());
  effective.erase(std::unique(effective.begin(), effective.end()),
                  effective.end());
  visit_record(entries, remaining, std::move(record));
  sleep = std::move(effective);
  return false;
}

/// Sleep set a child inherits when `chosen` is executed at a state with
/// enabled signatures `sigs`, sleep set `sleep`, and siblings
/// 0..chosen-1 already explored (Godefroid): everything slept or
/// already explored that is independent of the chosen action.
std::vector<ActionSig> child_sleep_set(const std::vector<ActionSig>& sigs,
                                       const std::vector<ActionSig>& sleep,
                                       std::size_t chosen) {
  std::vector<ActionSig> out;
  for (const ActionSig& t : sleep) {
    if (independent(t, sigs[chosen])) out.push_back(t);
  }
  for (std::size_t d = 0; d < chosen; ++d) {
    if (independent(sigs[d], sigs[chosen])) out.push_back(sigs[d]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ActionSig> enabled_sigs(Executor& exec) {
  std::vector<ActionSig> out;
  out.reserve(exec.enabled().size());
  for (const Executor::Action& a : exec.enabled()) {
    out.push_back(action_sig(a));
  }
  return out;
}

/// Runs the commutation audit over every independent-classified pair of
/// enabled actions at the executor's current state (the
/// SearchLimits::audit_commutation harness). Asserts on disagreement.
void audit_state(Executor& exec, const std::vector<ActionSig>& sigs) {
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    for (std::size_t j = i + 1; j < sigs.size(); ++j) {
      if (!independent(sigs[i], sigs[j])) continue;
      DGMC_ASSERT_MSG(audit_commutation(exec, i, j),
                      "independence relation mis-classified a pair: the two "
                      "execution orders disagree");
    }
  }
}

Trace trace_for(const ScenarioSpec& spec,
                const std::vector<std::uint32_t>& choices) {
  Trace t;
  t.scenario = spec.name;
  t.accept_stale_proposals = spec.params.dgmc.accept_stale_proposals;
  t.premature_destroy_on_empty = spec.params.dgmc.premature_destroy_on_empty;
  t.unguarded_sync = spec.params.dgmc.unguarded_sync;
  t.choices = choices;
  return t;
}

std::vector<std::string> annotate(const ScenarioSpec& spec,
                                  const std::vector<std::uint32_t>& choices) {
  std::vector<std::string> out;
  Executor exec(spec);
  for (std::uint32_t c : choices) {
    out.push_back(exec.describe(exec.enabled()[c]));
    exec.step(c);
  }
  return out;
}

/// Rebuilds an Executor at the state reached by `choices`. Oracles are
/// re-evaluated along the way — not to detect violations (the prefix
/// was already verified clean, and replay is deterministic) but because
/// check() is also what advances the install-monotone watch, which is
/// path state the fresh Executor must regrow.
std::unique_ptr<Executor> replay_prefix(const ScenarioSpec& spec,
                                        const std::vector<std::uint32_t>& choices,
                                        SearchStats& stats) {
  auto exec = std::make_unique<Executor>(spec);
  (void)exec->check();
  for (std::uint32_t c : choices) {
    exec->step(c);
    ++stats.transitions;
    (void)exec->check();
  }
  return exec;
}

bool budget_spent(const SearchLimits& limits, const SearchStats& stats) {
  return limits.max_transitions != 0 &&
         stats.transitions >= limits.max_transitions;
}

void finish(SearchResult& result, const ScenarioSpec& spec,
            const std::vector<std::uint32_t>& choices,
            std::optional<Violation> violation) {
  result.violation = std::move(violation);
  result.trace = trace_for(spec, choices);
  if (result.violation.has_value()) {
    result.annotations = annotate(spec, choices);
  }
}

/// Shared skeleton of the dfs and delay strategies: an explicit-stack
/// DFS. Frame i is the state reached by choices[0..i-1]. `exec` lazily
/// tracks `choices`: after backtracking it goes stale and is resynced
/// only when the next step is actually taken, so popping a whole
/// subtree costs no replays.
///
/// Resync is O(Δ) by default: a CheckpointStack parks an Executor
/// snapshot every limits.checkpoint_interval levels and resyncing
/// restores the deepest on-path checkpoint plus a bounded tail replay
/// (check/checkpoint.hpp). With checkpoint_interval == 0 the driver
/// falls back to stateless full-prefix replay (the VeriSoft mode, kept
/// as the bench baseline and differential-testing partner). Both modes
/// visit the identical states in the identical order.
///
/// The parallel frontier mode reuses the skeleton for its subtree
/// tasks by setting `prefix` (choices applied before the search root;
/// traces and depth accounting are always relative to the true root),
/// seeding `visited` from the frontier phase, pointing `filter` at the
/// shared cross-task fingerprint set, and arming `cancel_best` for
/// first-counterexample-wins cancellation. The serial entry points
/// leave all four at their defaults, which reproduces the original
/// behavior exactly.
struct DfsDriver {
  struct Frame {
    std::size_t next_choice = 0;
    std::size_t num_enabled = 0;
    std::size_t delay_left = 0;  // delay strategy only
    /// Reduction mode only: signatures of the enabled actions at this
    /// frame's state (index-aligned with enabled()) and the sleep set
    /// the state was entered with. Both are pure path metadata — they
    /// live on the driver's stack, not in Executor snapshots, so
    /// checkpoint restores leave them untouched by construction.
    std::vector<ActionSig> sigs;
    std::vector<ActionSig> sleep;
  };

  const ScenarioSpec& spec;
  const SearchLimits& limits;
  const bool delay_mode;
  const bool reduce;
  /// Scenario automorphism group (identity-first); fingerprints are
  /// canonicalized over it only when it is non-trivial — canonical and
  /// plain fingerprints are different hash domains and one search must
  /// use one convention throughout.
  std::vector<graph::Permutation> syms;
  bool use_canonical = false;

  SearchResult result;
  std::vector<Frame> frames;
  std::vector<std::uint32_t> choices;
  std::unique_ptr<Executor> exec;
  bool in_sync = true;
  bool truncated = false;
  /// fingerprint -> recorded explorations (budget + sleep set); see
  /// VisitEntry for the covering rule.
  VisitedMap visited;

  // Parallel-subtree hooks (see struct comment).
  std::vector<std::uint32_t> prefix;
  /// Sleep set of the prefix state (frontier phase computed it).
  std::vector<ActionSig> prefix_sleep;
  exec::FingerprintSet* filter = nullptr;
  const std::atomic<std::size_t>* cancel_best = nullptr;
  std::size_t task_index = 0;

  // O(Δ) backtracking state. Private per driver: snapshots reference
  // one Executor's object graph and must never cross subtree tasks.
  CheckpointPool ckpt_pool;
  CheckpointStack ckpt{limits.checkpoint_interval, ckpt_pool};

  DfsDriver(const ScenarioSpec& s, const SearchLimits& l, bool delay)
      : spec(s), limits(l), delay_mode(delay), reduce(l.reduce) {
    if (reduce) {
      syms = scenario_symmetries(spec);
      use_canonical = !delay_mode && syms.size() > 1;
    }
  }

  std::size_t depth_now() const { return prefix.size() + choices.size(); }

  std::uint64_t state_fp() {
    return use_canonical ? exec->canonical_fingerprint(syms)
                         : exec->fingerprint();
  }

  std::vector<std::uint32_t> full_choices() const {
    std::vector<std::uint32_t> full = prefix;
    full.insert(full.end(), choices.begin(), choices.end());
    return full;
  }

  bool cancelled() const {
    return cancel_best != nullptr &&
           cancel_best->load(std::memory_order_relaxed) < task_index;
  }

  /// Rebuilds `exec` at the state reached by full_choices(). Checkpoint
  /// mode restores the deepest on-path snapshot in place and replays
  /// only the tail; stateless mode re-executes the whole prefix from a
  /// fresh network. Oracles re-run per replayed step in both modes —
  /// not to detect violations (the path was verified clean) but because
  /// check() advances the install-monotone watch, path state the
  /// restore rewound to the snapshot's depth.
  void resync() {
    if (!ckpt.enabled()) {
      exec = replay_prefix(spec, full_choices(), result.stats);
      return;
    }
    const std::size_t at = ckpt.resync_to(*exec, depth_now());
    DGMC_ASSERT(at >= prefix.size() && at <= depth_now());
    for (std::size_t d = at - prefix.size(); d < choices.size(); ++d) {
      exec->step(choices[d]);
      ++result.stats.transitions;
      (void)exec->check();
    }
  }

  SearchResult run() {
    if (prefix.empty()) {
      exec = std::make_unique<Executor>(spec);
      if (auto v = exec->check()) {
        finish(result, spec, choices, std::move(v));
        return std::move(result);
      }
      if (!delay_mode && limits.dedup) {
        visit_record(visited[state_fp()], limits.max_depth, {});
      }
    } else {
      // Subtree task: the frontier phase already verified the prefix
      // states clean and recorded their fingerprints; replay regrows
      // the oracle path state (see replay_prefix).
      exec = replay_prefix(spec, prefix, result.stats);
    }
    // Anchor checkpoint at the search root, so resync() always finds a
    // snapshot and never falls back to a full replay.
    if (ckpt.enabled()) ckpt.save(*exec, depth_now());
    Frame root{0, exec->enabled().size(),
               delay_mode ? limits.delay_budget : std::size_t{0}};
    if (reduce || limits.audit_commutation) root.sigs = enabled_sigs(*exec);
    root.sleep = prefix_sleep;
    if (limits.audit_commutation) audit_state(*exec, root.sigs);
    frames.push_back(std::move(root));

    while (!frames.empty()) {
      if (cancelled()) {
        truncated = true;
        break;
      }
      Frame& f = frames.back();
      const std::size_t choice = f.next_choice;
      if (choice >= f.num_enabled ||
          (delay_mode && choice > f.delay_left)) {
        // Subtree exhausted (in delay mode also: remaining choices all
        // cost more delays than we have left).
        if (choice >= f.num_enabled && f.num_enabled == 0) {
          ++result.stats.executions;  // terminal state counted on unwind
        }
        frames.pop_back();
        if (!choices.empty()) choices.pop_back();
        in_sync = false;
        continue;
      }
      ++f.next_choice;
      if (reduce && sleep_contains(f.sleep, f.sigs[choice])) {
        // Sleeping transition: the interleaving executing it first was
        // (or will be) explored from an ancestor, and it commutes with
        // everything on the path since — skipping costs no coverage.
        ++result.stats.sleep_pruned;
        continue;
      }
      const std::size_t child_delay_left =
          delay_mode ? f.delay_left - choice : std::size_t{0};

      if (budget_spent(limits, result.stats)) {
        truncated = true;
        break;
      }
      if (!in_sync) {
        resync();
        in_sync = true;
      }
      exec->step(choice);
      ++result.stats.transitions;
      choices.push_back(static_cast<std::uint32_t>(choice));
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, depth_now());

      if (auto v = exec->check()) {
        result.stats.states_seen = visited.size();
        finish(result, spec, full_choices(), std::move(v));
        return std::move(result);
      }
      if (exec->done()) {
        ++result.stats.executions;
        choices.pop_back();
        in_sync = false;
        continue;
      }
      if (depth_now() >= limits.max_depth) {
        ++result.stats.depth_cutoffs;
        truncated = true;
        choices.pop_back();
        in_sync = false;
        continue;
      }
      // The child's sleep set must be derived from the *parent* frame
      // before that frame reference can be invalidated by the push.
      std::vector<ActionSig> child_sleep;
      if (reduce) child_sleep = child_sleep_set(f.sigs, f.sleep, choice);
      std::vector<ActionSig> child_sigs;
      if (reduce || limits.audit_commutation) child_sigs = enabled_sigs(*exec);
      const std::size_t remaining = limits.max_depth - depth_now();
      if (!delay_mode && limits.dedup) {
        const std::uint64_t fp = state_fp();
        if (filter != nullptr) filter->insert(fp);
        std::vector<VisitEntry>& entries = visited[fp];
        if (dedup_visit(entries, remaining, reduce, child_sigs, child_sleep)) {
          ++result.stats.pruned;
          choices.pop_back();
          in_sync = false;
          continue;
        }
      }
      ckpt.maybe_save(*exec, depth_now());
      Frame child{0, exec->enabled().size(), child_delay_left};
      child.sigs = std::move(child_sigs);
      child.sleep = std::move(child_sleep);
      if (limits.audit_commutation) audit_state(*exec, child.sigs);
      frames.push_back(std::move(child));
    }

    result.stats.states_seen = visited.size();
    result.exhaustive = !truncated;
    return std::move(result);
  }
};

}  // namespace

bool equivalent_results(const SearchResult& a, const SearchResult& b,
                        bool compare_transitions) {
  if (a.violation.has_value() != b.violation.has_value()) return false;
  if (a.violation.has_value() &&
      (a.violation->oracle != b.violation->oracle ||
       a.violation->detail != b.violation->detail)) {
    return false;
  }
  if (a.trace.choices != b.trace.choices) return false;
  if (a.exhaustive != b.exhaustive) return false;
  const SearchStats& x = a.stats;
  const SearchStats& y = b.stats;
  if (compare_transitions && x.transitions != y.transitions) return false;
  return x.executions == y.executions && x.states_seen == y.states_seen &&
         x.pruned == y.pruned && x.sleep_pruned == y.sleep_pruned &&
         x.depth_cutoffs == y.depth_cutoffs &&
         x.max_depth_reached == y.max_depth_reached;
}

bool equivalent_violation_sets(const SearchResult& a, const SearchResult& b) {
  if (a.violation.has_value() != b.violation.has_value()) return false;
  return !a.violation.has_value() ||
         a.violation->oracle == b.violation->oracle;
}

SearchResult explore_dfs(const ScenarioSpec& spec, const SearchLimits& limits) {
  return DfsDriver(spec, limits, /*delay=*/false).run();
}

SearchResult explore_delay_bounded(const ScenarioSpec& spec,
                                   const SearchLimits& limits) {
  return DfsDriver(spec, limits, /*delay=*/true).run();
}

SearchResult explore_random(const ScenarioSpec& spec,
                            const SearchLimits& limits) {
  SearchResult result;
  bool truncated = false;
  for (std::size_t walk = 0; walk < limits.walks; ++walk) {
    if (budget_spent(limits, result.stats)) {
      truncated = true;
      break;
    }
    util::RngStream rng =
        util::RngStream::derive(limits.seed, "walk-" + std::to_string(walk));
    Executor exec(spec);
    std::vector<std::uint32_t> choices;
    std::optional<Violation> v = exec.check();
    while (!v.has_value() && !exec.done()) {
      if (choices.size() >= limits.max_depth) {
        ++result.stats.depth_cutoffs;
        truncated = true;
        break;
      }
      if (budget_spent(limits, result.stats)) {
        truncated = true;
        break;
      }
      const std::size_t choice = rng.index(exec.enabled().size());
      choices.push_back(static_cast<std::uint32_t>(choice));
      exec.step(choice);
      ++result.stats.transitions;
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, choices.size());
      v = exec.check();
    }
    ++result.stats.executions;
    if (v.has_value()) {
      finish(result, spec, choices, std::move(v));
      return result;
    }
  }
  // Random walks sample the space; they are never exhaustive unless
  // the walks happened to cover it, which we do not track.
  result.exhaustive = false;
  (void)truncated;
  return result;
}

namespace {

constexpr std::size_t kNoTask = std::numeric_limits<std::size_t>::max();

}  // namespace

SearchResult explore_random_parallel(const ScenarioSpec& spec,
                                     const SearchLimits& limits,
                                     std::size_t jobs) {
  jobs = exec::resolve_jobs(jobs);

  // Shared state across workers. Stats accumulate in relaxed atomics:
  // in a violation-free run every walk executes identically regardless
  // of scheduling, so the sums are order-independent and bit-identical
  // at any job count. The fingerprint filter counts distinct states —
  // a set union, equally order-independent.
  exec::FingerprintSet filter(/*log2_capacity=*/21);
  std::atomic<std::size_t> next_walk{0};
  std::atomic<std::size_t> best{kNoTask};
  std::mutex best_mu;
  std::vector<std::uint32_t> best_choices;
  std::optional<Violation> best_violation;
  std::atomic<std::size_t> transitions{0};
  std::atomic<std::size_t> executions{0};
  std::atomic<std::size_t> depth_cutoffs{0};
  std::atomic<std::size_t> max_depth_reached{0};

  const util::RngStream base(limits.seed);
  auto over_budget = [&] {
    return limits.max_transitions != 0 &&
           transitions.load(std::memory_order_relaxed) >=
               limits.max_transitions;
  };

  exec::Pool pool(jobs);
  for (std::size_t worker = 0; worker < jobs; ++worker) {
    pool.submit([&] {
      // Workers pull walk indices from the shared counter; each walk's
      // randomness is a pure function of (limits.seed, walk), so walk
      // identity — not worker identity — determines its execution.
      for (;;) {
        const std::size_t walk =
            next_walk.fetch_add(1, std::memory_order_relaxed);
        if (walk >= limits.walks) return;
        if (over_budget()) return;
        if (walk > best.load(std::memory_order_relaxed)) {
          continue;  // a lower-index walk already violated: cancelled
        }
        util::RngStream rng = base.fork(walk);
        Executor ex(spec);
        std::vector<std::uint32_t> choices;
        std::optional<Violation> v = ex.check();
        bool aborted = false;
        std::size_t walk_max_depth = 0;
        while (!v.has_value() && !ex.done()) {
          if (choices.size() >= limits.max_depth) {
            depth_cutoffs.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (over_budget()) break;
          if (walk > best.load(std::memory_order_relaxed)) {
            aborted = true;  // cooperative first-counterexample-wins
            break;
          }
          const std::size_t choice = rng.index(ex.enabled().size());
          choices.push_back(static_cast<std::uint32_t>(choice));
          ex.step(choice);
          transitions.fetch_add(1, std::memory_order_relaxed);
          filter.insert(ex.fingerprint());
          walk_max_depth = std::max(walk_max_depth, choices.size());
          v = ex.check();
        }
        if (aborted) continue;
        executions.fetch_add(1, std::memory_order_relaxed);
        std::size_t cur = max_depth_reached.load(std::memory_order_relaxed);
        while (walk_max_depth > cur &&
               !max_depth_reached.compare_exchange_weak(
                   cur, walk_max_depth, std::memory_order_relaxed)) {
        }
        if (v.has_value()) {
          std::lock_guard<std::mutex> lk(best_mu);
          if (walk < best.load(std::memory_order_relaxed)) {
            best.store(walk, std::memory_order_relaxed);
            best_choices = std::move(choices);
            best_violation = std::move(v);
          }
        }
      }
    });
  }
  pool.wait();

  SearchResult result;
  result.stats.transitions = transitions.load(std::memory_order_relaxed);
  result.stats.executions = executions.load(std::memory_order_relaxed);
  result.stats.depth_cutoffs = depth_cutoffs.load(std::memory_order_relaxed);
  result.stats.max_depth_reached =
      max_depth_reached.load(std::memory_order_relaxed);
  result.stats.states_seen = filter.size();
  result.exhaustive = false;  // sampling, as in the serial strategy
  if (best_violation.has_value()) {
    finish(result, spec, best_choices, std::move(best_violation));
  }
  return result;
}

SearchResult explore_dfs_parallel(const ScenarioSpec& spec,
                                  const SearchLimits& limits,
                                  std::size_t jobs) {
  jobs = exec::resolve_jobs(jobs);
  SearchResult result;
  exec::FingerprintSet filter(/*log2_capacity=*/21);
  VisitedMap visited;
  bool truncated = false;

  // Reduction state shared by both phases (see DfsDriver): the frontier
  // phase threads sleep sets along its prefixes and the subtree tasks
  // inherit them, so the decomposition stays job-count independent.
  std::vector<graph::Permutation> syms;
  bool use_canonical = false;
  if (limits.reduce) {
    syms = scenario_symmetries(spec);
    use_canonical = syms.size() > 1;
  }
  auto state_fp = [&](Executor& ex) {
    return use_canonical ? ex.canonical_fingerprint(syms) : ex.fingerprint();
  };

  // --- Phase 1: serial breadth-first frontier expansion. Checks every
  // state it passes, so a violation within the frontier depth is found
  // here, in deterministic BFS order. The width target is a limit
  // parameter, not a function of the job count: the decomposition into
  // subtree tasks — and therefore every statistic — is identical at
  // any DGMC_JOBS.
  struct Prefix {
    std::vector<std::uint32_t> choices;
    std::vector<ActionSig> sleep;  // reduction mode only
  };
  std::vector<Prefix> frontier;
  {
    Executor ex(spec);
    if (auto v = ex.check()) {
      finish(result, spec, {}, std::move(v));
      return result;
    }
    const std::uint64_t fp = state_fp(ex);
    filter.insert(fp);
    if (limits.dedup) visit_record(visited[fp], limits.max_depth, {});
    if (ex.done()) {
      result.stats.executions = 1;
      result.stats.states_seen = filter.size();
      result.exhaustive = true;
      return result;
    }
    frontier.emplace_back();
  }
  // Phase-1 scratch snapshot, reused across every parent (nested
  // containers keep their capacity). With checkpointing disabled the
  // legacy path below replays the prefix once per child instead.
  Executor::Snapshot parent_snap;
  const bool snapshot_children = limits.checkpoint_interval != 0;
  while (!frontier.empty() && frontier.size() < limits.frontier_width) {
    std::vector<Prefix> next;
    for (const Prefix& p : frontier) {
      const std::unique_ptr<Executor> parent =
          replay_prefix(spec, p.choices, result.stats);
      const std::size_t n = parent->enabled().size();
      std::vector<ActionSig> sigs;
      if (limits.reduce || limits.audit_commutation) {
        sigs = enabled_sigs(*parent);
      }
      if (limits.audit_commutation) audit_state(*parent, sigs);
      if (snapshot_children) parent->save(parent_snap);
      bool parent_dirty = false;
      for (std::size_t c = 0; c < n; ++c) {
        if (limits.reduce && sleep_contains(p.sleep, sigs[c])) {
          ++result.stats.sleep_pruned;
          continue;
        }
        std::unique_ptr<Executor> replayed;
        Executor* child;
        if (snapshot_children) {
          // Siblings expand in the same Executor: rewind to the parent
          // state instead of replaying the prefix from scratch.
          if (parent_dirty) parent->restore(parent_snap);
          child = parent.get();
          parent_dirty = true;
        } else {
          replayed = replay_prefix(spec, p.choices, result.stats);
          child = replayed.get();
        }
        child->step(c);
        ++result.stats.transitions;
        std::vector<std::uint32_t> cp = p.choices;
        cp.push_back(static_cast<std::uint32_t>(c));
        result.stats.max_depth_reached =
            std::max(result.stats.max_depth_reached, cp.size());
        if (auto v = child->check()) {
          result.stats.states_seen = filter.size();
          finish(result, spec, cp, std::move(v));
          return result;
        }
        if (child->done()) {
          ++result.stats.executions;
          continue;
        }
        const std::uint64_t fp = state_fp(*child);
        filter.insert(fp);
        if (cp.size() >= limits.max_depth) {
          ++result.stats.depth_cutoffs;
          truncated = true;
          continue;
        }
        std::vector<ActionSig> child_sleep;
        if (limits.reduce) child_sleep = child_sleep_set(sigs, p.sleep, c);
        std::vector<ActionSig> child_sigs;
        if (limits.reduce) child_sigs = enabled_sigs(*child);
        const std::size_t remaining = limits.max_depth - cp.size();
        if (limits.dedup) {
          std::vector<VisitEntry>& entries = visited[fp];
          if (dedup_visit(entries, remaining, limits.reduce, child_sigs,
                          child_sleep)) {
            ++result.stats.pruned;
            continue;
          }
        }
        next.push_back(Prefix{std::move(cp), std::move(child_sleep)});
      }
    }
    frontier = std::move(next);
  }
  if (frontier.empty()) {
    result.stats.states_seen = filter.size();
    result.exhaustive = !truncated;
    return result;
  }

  // --- Phase 2: one DFS task per frontier prefix, each with a private
  // checkpoint pool (DfsDriver owns its own). Each task
  // prunes against its own copy of the frontier-phase dedup table (no
  // cross-task sharing — sharing would make pruning, and thus the
  // stats, schedule-dependent). limits.max_transitions, when set,
  // bounds each subtree task separately. On a violation the lowest
  // frontier index wins and higher-index tasks cancel cooperatively.
  std::atomic<std::size_t> best{kNoTask};
  std::mutex best_mu;
  std::vector<SearchResult> task_results(frontier.size());
  exec::Pool pool(jobs);
  for (std::size_t t = 0; t < frontier.size(); ++t) {
    pool.submit([&, t] {
      if (t > best.load(std::memory_order_relaxed)) {
        task_results[t].exhaustive = false;  // cancelled before start
        return;
      }
      DfsDriver driver(spec, limits, /*delay=*/false);
      driver.prefix = frontier[t].choices;
      driver.prefix_sleep = frontier[t].sleep;
      driver.visited = visited;
      driver.filter = &filter;
      driver.cancel_best = &best;
      driver.task_index = t;
      SearchResult r = driver.run();
      if (r.violation.has_value()) {
        std::lock_guard<std::mutex> lk(best_mu);
        if (t < best.load(std::memory_order_relaxed)) {
          best.store(t, std::memory_order_relaxed);
        }
      }
      task_results[t] = std::move(r);
    });
  }
  pool.wait();

  const std::size_t best_task = best.load(std::memory_order_relaxed);
  bool all_exhaustive = true;
  for (std::size_t t = 0; t < task_results.size(); ++t) {
    const SearchResult& r = task_results[t];
    result.stats.transitions += r.stats.transitions;
    result.stats.executions += r.stats.executions;
    result.stats.pruned += r.stats.pruned;
    result.stats.depth_cutoffs += r.stats.depth_cutoffs;
    result.stats.max_depth_reached =
        std::max(result.stats.max_depth_reached, r.stats.max_depth_reached);
    all_exhaustive = all_exhaustive && r.exhaustive;
  }
  result.stats.states_seen = filter.size();
  if (best_task != kNoTask) {
    SearchResult& winner = task_results[best_task];
    result.violation = std::move(winner.violation);
    result.trace = std::move(winner.trace);
    result.annotations = std::move(winner.annotations);
    result.exhaustive = false;
  } else {
    result.exhaustive = !truncated && all_exhaustive;
  }
  return result;
}

ReplayResult replay(const ScenarioSpec& spec, const Trace& trace,
                    std::vector<std::string>* step_log) {
  ReplayResult out;
  Executor exec(spec);
  if (auto v = exec.check()) {
    out.violation = std::move(v);
    out.violation_step = 0;
    return out;
  }
  for (std::size_t i = 0; i < trace.choices.size(); ++i) {
    const std::uint32_t choice = trace.choices[i];
    const auto& acts = exec.enabled();
    if (choice >= acts.size()) {
      out.divergence = "step " + std::to_string(i) + ": choice " +
                       std::to_string(choice) + " out of range (" +
                       std::to_string(acts.size()) +
                       " enabled) — trace does not match this "
                       "build/scenario";
      return out;
    }
    if (step_log != nullptr) {
      step_log->push_back(exec.describe(acts[choice]));
    }
    exec.step(choice);
    ++out.steps_executed;
    if (auto v = exec.check()) {
      out.violation = std::move(v);
      out.violation_step = i + 1;
      return out;
    }
  }
  return out;
}

}  // namespace dgmc::check
