// dgmc_check — systematic state-space exploration of the D-GMC
// protocol over small scenarios.
//
//   dgmc_check list
//   dgmc_check explore <scenario> [--strategy dfs|delay|random]
//       [--depth N] [--delays N] [--walks N] [--seed N] [--jobs N]
//       [--max-transitions N] [--checkpoint-interval N]
//       [--reduce] [--audit-commutation]
//       [--break-accept] [--break-destroy] [--break-sync]
//       [--trace-out FILE] [--minimize]
//   dgmc_check explore --backward <trace-file> [flags as above]
//   dgmc_check replay <trace-file> [--step]
//
// --jobs N switches the dfs and random strategies onto the parallel
// execution engine with N workers (0 = DGMC_JOBS env var or hardware
// concurrency); results are bit-identical at any job count. The delay
// strategy is serial-only.
//
// --checkpoint-interval N controls O(Δ) backtracking for the dfs and
// delay strategies: a snapshot every N levels, restore + tail replay
// on resync (0 = legacy full-prefix replay). Exploration results are
// bit-identical at any value; only the reported transitions count —
// replay-step accounting — varies.
//
// --reduce enables partial-order (sleep-set) + symmetry reduction for
// the dfs and delay strategies (DESIGN.md §12): fewer states and
// transitions, same violation verdict. --audit-commutation additionally
// re-executes every independent-classified action pair in both orders
// and asserts the states agree (slow; a debugging harness for the
// independence relation).
//
// --backward FILE runs fault-directed backward search: FILE must be a
// violating trace; its fault-like events are stripped and small fault
// schedules (crash/restart cycles, link flaps) are enumerated until a
// forward search reproduces a violation of the same oracle.
//
// Exit status: 0 = no violation, 1 = violation found (for --backward: a
// schedule found), 2 = usage or input error. `--break-accept`,
// `--break-destroy` and `--break-sync` enable the deliberate protocol
// faults (accepting proposals without T >= E; destroying state on
// empty membership without the R >= E guard; resyncing without the
// sync-floor guard) used to demonstrate that the oracles catch real
// bugs; see DESIGN.md §7 and §12.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "check/backward.hpp"
#include "check/executor.hpp"
#include "check/explorer.hpp"
#include "check/minimize.hpp"
#include "check/trace.hpp"

namespace {

using namespace dgmc;
using namespace dgmc::check;

int usage() {
  std::fprintf(stderr,
               "usage: dgmc_check list\n"
               "       dgmc_check explore <scenario> [--strategy "
               "dfs|delay|random]\n"
               "           [--depth N] [--delays N] [--walks N] [--seed N]\n"
               "           [--jobs N] [--max-transitions N] "
               "[--checkpoint-interval N]\n"
               "           [--reduce] [--audit-commutation]\n"
               "           [--break-accept] [--break-destroy] "
               "[--break-sync]\n"
               "           [--trace-out FILE] [--minimize]\n"
               "       dgmc_check explore --spec FILE [--spec-injections N] "
               "[flags as above]\n"
               "       dgmc_check explore --backward <trace-file> "
               "[flags as above]\n"
               "       dgmc_check replay <trace-file> [--step]\n");
  return 2;
}

int cmd_list() {
  for (const ScenarioSpec& s : scenarios()) {
    std::printf("%-22s %s\n", s.name.c_str(), s.description.c_str());
  }
  for (const ScenarioSpec& s : symmetric_scenarios()) {
    std::printf("%-22s %s\n", s.name.c_str(), s.description.c_str());
  }
  return 0;
}

void print_stats(const char* strategy, const SearchStats& st,
                 bool exhaustive) {
  std::printf(
      "[%s] transitions=%zu executions=%zu states=%zu pruned=%zu "
      "sleep-pruned=%zu depth-cutoffs=%zu max-depth=%zu%s\n",
      strategy, st.transitions, st.executions, st.states_seen, st.pruned,
      st.sleep_pruned, st.depth_cutoffs, st.max_depth_reached,
      exhaustive ? " (exhaustive within depth bound)" : "");
}

void print_violation(const Violation& v) {
  std::printf("VIOLATION [%s] %s\n", v.oracle.c_str(), v.detail.c_str());
}

void print_trace(const Trace& trace,
                 const std::vector<std::string>& annotations) {
  std::printf("counterexample (%zu steps):\n", trace.choices.size());
  for (std::size_t i = 0; i < trace.choices.size(); ++i) {
    std::printf("  %3zu: choice %u", i, trace.choices[i]);
    if (i < annotations.size()) std::printf("  %s", annotations[i].c_str());
    std::printf("\n");
  }
}

int cmd_explore(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string scenario_name;
  int first_flag = 0;
  if (argv[0][0] != '-') {
    scenario_name = argv[0];
    first_flag = 1;
  }
  std::string strategy = "dfs";
  std::string trace_out;
  std::string spec_path;
  std::string backward_path;
  std::size_t spec_injections = 8;  // full churn scripts are unsearchable
  bool break_accept = false;
  bool break_destroy = false;
  bool break_sync = false;
  bool do_minimize = false;
  bool parallel = false;
  std::size_t jobs = 0;
  SearchLimits limits;

  for (int i = first_flag; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--strategy") {
      const char* v = value();
      if (v == nullptr) return usage();
      strategy = v;
    } else if (arg == "--depth") {
      const char* v = value();
      if (v == nullptr) return usage();
      limits.max_depth = std::stoul(v);
    } else if (arg == "--delays") {
      const char* v = value();
      if (v == nullptr) return usage();
      limits.delay_budget = std::stoul(v);
    } else if (arg == "--walks") {
      const char* v = value();
      if (v == nullptr) return usage();
      limits.walks = std::stoul(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage();
      limits.seed = std::stoull(v);
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr) return usage();
      parallel = true;
      jobs = std::stoul(v);
    } else if (arg == "--max-transitions") {
      const char* v = value();
      if (v == nullptr) return usage();
      limits.max_transitions = std::stoul(v);
    } else if (arg == "--checkpoint-interval") {
      const char* v = value();
      if (v == nullptr) return usage();
      limits.checkpoint_interval = std::stoul(v);
    } else if (arg == "--spec") {
      const char* v = value();
      if (v == nullptr) return usage();
      spec_path = v;
    } else if (arg == "--spec-injections") {
      const char* v = value();
      if (v == nullptr) return usage();
      spec_injections = std::stoul(v);
    } else if (arg == "--backward") {
      const char* v = value();
      if (v == nullptr) return usage();
      backward_path = v;
    } else if (arg == "--reduce") {
      limits.reduce = true;
    } else if (arg == "--audit-commutation") {
      limits.audit_commutation = true;
    } else if (arg == "--break-accept") {
      break_accept = true;
    } else if (arg == "--break-destroy") {
      break_destroy = true;
    } else if (arg == "--break-sync") {
      break_sync = true;
    } else if (arg == "--minimize") {
      do_minimize = true;
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return usage();
      trace_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    }
  }

  if (!backward_path.empty()) {
    // Backward, fault-directed mode: FILE is a violating trace. Replay
    // it to learn the target oracle, then search fault schedules.
    if (!scenario_name.empty() || !spec_path.empty()) {
      std::fprintf(stderr,
                   "--backward is exclusive with a scenario name/--spec\n");
      return usage();
    }
    std::string error;
    std::optional<Trace> trace = load_trace(backward_path, &error);
    if (!trace.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::optional<ScenarioSpec> witness = resolve_spec(*trace, &error);
    if (!witness.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    ReplayResult rr = replay(*witness, *trace);
    if (rr.divergence.has_value()) {
      std::fprintf(stderr, "DIVERGENCE: %s\n", rr.divergence->c_str());
      return 2;
    }
    if (!rr.violation.has_value()) {
      std::fprintf(stderr, "trace %s reproduces no violation; --backward "
                           "needs a violating trace\n",
                   backward_path.c_str());
      return 2;
    }
    std::printf("target violation from %s:\n", backward_path.c_str());
    print_violation(*rr.violation);
    BackwardResult bw = backward_search(*witness, *rr.violation, limits);
    for (const std::string& line : bw.log) {
      std::printf("  candidate %s\n", line.c_str());
    }
    std::printf("backward search: %zu candidate schedule(s) tried\n",
                bw.candidates_tried);
    if (!bw.found) {
      std::printf("no fault schedule reproduces [%s]\n",
                  rr.violation->oracle.c_str());
      return 0;
    }
    print_stats("backward-dfs", bw.search.stats, bw.search.exhaustive);
    print_violation(*bw.search.violation);
    print_trace(bw.search.trace, bw.search.annotations);
    return 1;
  }

  ScenarioSpec spec;
  std::string spec_text;
  if (!spec_path.empty()) {
    if (!scenario_name.empty()) {
      std::fprintf(stderr, "--spec and a scenario name are exclusive\n");
      return usage();
    }
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "cannot read spec: %s\n", spec_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    spec_text = buffer.str();
    const auto parsed = sim::SoakSpec::parse(spec_text);
    if (const auto* err = std::get_if<sim::SpecError>(&parsed)) {
      std::fprintf(stderr, "%s:%d: %s\n", spec_path.c_str(), err->line,
                   err->message.c_str());
      return 2;
    }
    spec = scenario_from_soak(std::get<sim::SoakSpec>(parsed),
                              spec_injections);
    std::printf("expanded soak spec %s: %zu injections kept\n",
                spec_path.c_str(), spec.injections.size());
  } else {
    if (scenario_name.empty()) return usage();
    const ScenarioSpec* base = find_scenario(scenario_name);
    if (base == nullptr) {
      std::fprintf(stderr, "unknown scenario: %s (see `dgmc_check list`)\n",
                   scenario_name.c_str());
      return 2;
    }
    spec = *base;
  }
  spec.params.dgmc.accept_stale_proposals = break_accept;
  spec.params.dgmc.premature_destroy_on_empty = break_destroy;
  spec.params.dgmc.unguarded_sync = break_sync;

  std::printf("scenario %s: %s\n", spec.name.c_str(),
              spec.description.c_str());
  if (break_accept) {
    std::printf("NOTE: deliberate fault enabled (accept_stale_proposals)\n");
  }
  if (break_destroy) {
    std::printf(
        "NOTE: deliberate fault enabled (premature_destroy_on_empty)\n");
  }
  if (break_sync) {
    std::printf("NOTE: deliberate fault enabled (unguarded_sync)\n");
  }

  SearchResult result;
  std::string engine = strategy;
  if (strategy == "dfs") {
    result = parallel ? explore_dfs_parallel(spec, limits, jobs)
                      : explore_dfs(spec, limits);
    if (parallel) engine = "dfs-par";
  } else if (strategy == "delay") {
    if (parallel) {
      std::fprintf(stderr,
                   "note: --jobs ignored (delay strategy is serial-only)\n");
    }
    result = explore_delay_bounded(spec, limits);
  } else if (strategy == "random") {
    result = parallel ? explore_random_parallel(spec, limits, jobs)
                      : explore_random(spec, limits);
    if (parallel) engine = "random-par";
  } else {
    std::fprintf(stderr, "unknown strategy: %s\n", strategy.c_str());
    return usage();
  }
  print_stats(engine.c_str(), result.stats, result.exhaustive);

  if (!result.violation.has_value()) {
    std::printf("no violation found\n");
    return 0;
  }
  print_violation(*result.violation);

  Trace trace = result.trace;
  std::vector<std::string> annotations = result.annotations;
  // A spec-driven trace embeds its scenario so the file is
  // self-contained (no catalog lookup on replay).
  trace.spec_text = spec_text;
  trace.spec_injections = spec_text.empty() ? 0 : spec_injections;
  if (do_minimize) {
    std::string error;
    std::optional<MinimizeResult> min =
        minimize_trace(trace, result.violation->oracle, limits, &error);
    if (!min.has_value()) {
      std::fprintf(stderr, "minimize failed: %s\n", error.c_str());
    } else {
      std::printf(
          "minimized: dropped %zu of %zu injections (%zu searches), "
          "%zu steps\n",
          min->injections_dropped, spec.injections.size(), min->searches,
          min->trace.choices.size());
      trace = min->trace;
      annotations = min->annotations;
      print_violation(min->violation);
    }
  }
  print_trace(trace, annotations);

  if (!trace_out.empty()) {
    if (!save_trace(trace, trace_out, annotations)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      return 2;
    }
    std::printf("trace written to %s (replay with `dgmc_check replay %s`)\n",
                trace_out.c_str(), trace_out.c_str());
  }
  return 1;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  bool step_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--step") == 0) {
      step_mode = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return usage();
    }
  }

  std::string error;
  std::optional<Trace> trace = load_trace(path, &error);
  if (!trace.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  std::optional<ScenarioSpec> spec = resolve_spec(*trace, &error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }

  std::printf("replaying %zu steps of %s%s\n", trace->choices.size(),
              trace->scenario.c_str(),
              trace->accept_stale_proposals
                  ? " (fault: accept_stale_proposals)"
                  : "");
  std::vector<std::string> step_log;
  ReplayResult rr =
      replay(*spec, *trace, step_mode ? &step_log : nullptr);
  if (step_mode) {
    for (std::size_t i = 0; i < step_log.size(); ++i) {
      std::printf("  %3zu: %s\n", i, step_log[i].c_str());
    }
  }
  if (rr.divergence.has_value()) {
    std::fprintf(stderr, "DIVERGENCE: %s\n", rr.divergence->c_str());
    return 2;
  }
  if (rr.violation.has_value()) {
    std::printf("reproduced after step %zu:\n", rr.violation_step);
    print_violation(*rr.violation);
    return 1;
  }
  std::printf("replayed %zu steps: no violation\n", rr.steps_executed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "explore") return cmd_explore(argc - 2, argv + 2);
  if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
  return usage();
}
