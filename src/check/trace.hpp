// Counterexample choice traces.
//
// A trace is the full identity of one explored execution: the scenario
// name, the option overrides that shaped the build-under-test (today:
// the deliberate T >= E relaxation), and the sequence of enabled-action
// indices the strategy chose. Because Executor::enabled() is
// deterministic, replaying the choices against the same scenario
// reproduces the execution — and its violation — exactly, step by step
// (see check::replay and `dgmc_check replay --step`).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/scenario.hpp"

namespace dgmc::check {

struct Trace {
  std::string scenario;
  /// Mirrors DgmcConfig::accept_stale_proposals (the test-only fault).
  bool accept_stale_proposals = false;
  /// Mirrors DgmcConfig::premature_destroy_on_empty.
  bool premature_destroy_on_empty = false;
  /// Mirrors DgmcConfig::unguarded_sync.
  bool unguarded_sync = false;
  /// Indices into the catalog scenario's injection script removed
  /// before building the network (written by the minimizer); choices
  /// are relative to the reduced script.
  std::vector<std::size_t> dropped_injections;
  std::vector<std::uint32_t> choices;
  /// When nonempty, the scenario is not a catalog entry but a soak
  /// spec (sim/spec.hpp) embedded verbatim — the trace file is then
  /// self-contained and replayable with no catalog lookup (the
  /// convergence watchdog writes these). `spec_injections` truncates
  /// the expanded churn script, matching scenario_from_soak (0 = all).
  std::string spec_text;
  std::size_t spec_injections = 0;
};

/// Resolves the trace's scenario — from the embedded soak spec when
/// present, from the catalog otherwise — and applies its option
/// overrides; nullopt (with *error set) if unknown or malformed.
std::optional<ScenarioSpec> resolve_spec(const Trace& trace,
                                         std::string* error);

/// Renders the trace in the file format (what save_trace writes); the
/// soak watchdog embeds this in its failure report.
std::string trace_to_string(const Trace& trace,
                            const std::vector<std::string>& annotations = {});

/// Writes the trace; `annotations` (optional, same length as choices)
/// become per-step comments for human readers.
bool save_trace(const Trace& trace, const std::string& path,
                const std::vector<std::string>& annotations = {});

/// Parses a trace file; nullopt (with *error set) on malformed input.
std::optional<Trace> load_trace(const std::string& path, std::string* error);

}  // namespace dgmc::check
