#include "check/reduction.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dgmc::check {

namespace {

using Kind = des::EventTag::Kind;

/// Event kinds whose handlers touch only the tagged switch's state
/// (plus freshly enqueued messages). Faults mutate topology, opaque
/// events are unknown, heartbeats drive cross-switch watchdogs: all
/// conservatively dependent.
bool reducible_kind(Kind k) {
  return k == Kind::kDelivery || k == Kind::kAck || k == Kind::kRetransmit ||
         k == Kind::kCompute;
}

/// Switches whose per-origin FIFO chains the action can extend: the
/// acting switch itself, plus — for deliveries and retransmits, which
/// forward or (re)send copies of origin `peer`'s LSA — that origin.
/// Executing such an action can enqueue new copies of `peer`'s LSAs at
/// other switches, and a *lower-seq* copy landing at a receiver with a
/// pending higher-seq copy of the same origin retracts that pending
/// action under the min-seq rule.
bool in_footprint(const des::EventTag& t, std::int32_t node) {
  if (t.node == node) return true;
  if ((t.kind == Kind::kDelivery || t.kind == Kind::kRetransmit) &&
      t.peer == node) {
    return true;
  }
  return false;
}

}  // namespace

ActionSig action_sig(const Executor::Action& a) {
  ActionSig s;
  if (a.kind == Executor::Action::Kind::kInjection) {
    s.is_injection = true;
    s.injection = static_cast<std::uint32_t>(a.injection);
  } else {
    s.tag = a.tag;
  }
  return s;
}

bool independent(const ActionSig& a, const ActionSig& b) {
  if (a.is_injection || b.is_injection) return false;
  if (!reducible_kind(a.tag.kind) || !reducible_kind(b.tag.kind)) return false;
  // Same switch: handlers read-modify-write the same protocol state.
  if (a.tag.node == b.tag.node) return false;
  // A delivery stays enabled only while it is the min-seq pending copy
  // for its (receiver, origin) pair; any action that can inject copies
  // of that origin's LSAs — or that runs at the origin itself — may
  // disturb the chain and is dependent.
  if (a.tag.kind == Kind::kDelivery && in_footprint(b.tag, a.tag.peer)) {
    return false;
  }
  if (b.tag.kind == Kind::kDelivery && in_footprint(a.tag, b.tag.peer)) {
    return false;
  }
  return true;
}

bool sleep_contains(const std::vector<ActionSig>& sleep, const ActionSig& s) {
  return std::binary_search(sleep.begin(), sleep.end(), s);
}

bool sleep_subset(const std::vector<ActionSig>& a,
                  const std::vector<ActionSig>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

namespace {

/// Index of the enabled action matching `sig`, or npos.
std::size_t find_sig(Executor& exec, const ActionSig& sig) {
  const auto& acts = exec.enabled();
  for (std::size_t k = 0; k < acts.size(); ++k) {
    if (action_sig(acts[k]) == sig) return k;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

bool audit_commutation(Executor& exec, std::size_t i, std::size_t j) {
  DGMC_ASSERT(i != j);
  const ActionSig si = action_sig(exec.enabled()[i]);
  const ActionSig sj = action_sig(exec.enabled()[j]);

  Executor::Snapshot at_s;
  exec.save(at_s);

  auto run_pair = [&](const ActionSig& first, const ActionSig& second,
                      std::uint64_t* fp) {
    const std::size_t a = find_sig(exec, first);
    if (a == static_cast<std::size_t>(-1)) return false;
    exec.step(a);
    const std::size_t b = find_sig(exec, second);
    if (b == static_cast<std::size_t>(-1)) return false;  // not preserved
    exec.step(b);
    *fp = exec.fingerprint();
    return true;
  };

  std::uint64_t fp_ij = 0;
  std::uint64_t fp_ji = 0;
  bool ok = run_pair(si, sj, &fp_ij);
  exec.restore(at_s);
  ok = ok && run_pair(sj, si, &fp_ji);
  exec.restore(at_s);
  return ok && fp_ij == fp_ji;
}

}  // namespace dgmc::check
