// Invariant oracles for systematic exploration.
//
// Each oracle is a predicate over one reachable network state (or, for
// the quiescence group, over a terminal state with nothing in flight).
// The catalog with its paper justification lives in DESIGN.md §7; in
// short:
//
// Checked after EVERY transition:
//   stamp-containment   E >= C  — an installed topology's stamp was
//                       merged into E before acceptance (Fig 5 lines
//                       10-13), so knowledge always contains what is
//                       installed.
//   heard-within-known  E >= R  — R counts LSAs heard directly, E adds
//                       what stamps reveal transitively; direct
//                       knowledge can never exceed total knowledge.
//   install-monotone    C never retreats: a replacement proposal's
//                       stamp dominates (or ties under the proposer-id
//                       tie-break) the replaced one — the acceptance
//                       test T >= E plus the freshness check make
//                       installs a monotone sequence per switch.
//
// Checked at QUIESCENCE (empty calendar, script exhausted):
//   agreement           all switches holding MC state have identical
//                       (installed topology, member list, C, proposer)
//                       — the paper's central claim (§3.3).
//   valid-topology      the agreed topology serves the agreed member
//                       list per MC type (reuses mc/validation; §1
//                       Figure 1).
//   membership          the agreed member list equals the set derived
//                       from the injection script (strict scenarios).
//   quiescent-complete  R >= E and R >= C: with nothing in flight every
//                       heard-of event has been delivered (strict
//                       scenarios, and only when no switch destroyed MC
//                       state during the run: a wipe — crash or
//                       destroy-on-empty — legitimately loses R history
//                       that E keeps via stamps).
#pragma once

#include <optional>
#include <string>

#include "check/scenario.hpp"

namespace dgmc::check {

struct Violation {
  std::string oracle;  // catalog name, e.g. "install-monotone"
  std::string detail;  // human-readable witness
};

/// Oracles evaluated after every transition, over the given MC ids.
/// Callers without a ScenarioSpec (the soak runner) use this overload
/// directly.
std::optional<Violation> check_step_invariants(const sim::DgmcNetwork& net,
                                               const std::vector<mc::McId>& mcs);

/// Oracles evaluated after every transition. `spec` supplies the MC
/// ids to inspect.
std::optional<Violation> check_step_invariants(const sim::DgmcNetwork& net,
                                               const ScenarioSpec& spec);

/// The quiescence oracles that need no injection script: agreement and
/// valid-topology over the given MC ids. Sound under loss, crashes and
/// churn, which is what the soak runner evaluates at its phase drains.
std::optional<Violation> check_agreement_invariants(
    const sim::DgmcNetwork& net, const std::vector<mc::McId>& mcs);

/// Oracles evaluated only at quiescence. `injections_fired` bounds the
/// prefix of the script used to reconstruct expected membership.
std::optional<Violation> check_quiescence_invariants(
    const sim::DgmcNetwork& net, const ScenarioSpec& spec,
    std::size_t injections_fired);

}  // namespace dgmc::check
