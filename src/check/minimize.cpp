#include "check/minimize.hpp"

#include <algorithm>

namespace dgmc::check {

namespace {

/// Runs the bounded DFS on the scenario described by `candidate`; true
/// iff it finds a violation of the wanted oracle, in which case
/// `candidate.choices` and `*out` are updated to the fresh witness.
/// The search honors limits.checkpoint_interval, so every minimization
/// probe backtracks in O(Δ) rather than O(depth) — the minimizer runs
/// one full search per candidate drop and feels this directly.
bool still_violates(Trace& candidate, const std::string& oracle,
                    const SearchLimits& limits, MinimizeResult* out) {
  std::string error;
  std::optional<ScenarioSpec> spec = resolve_spec(candidate, &error);
  if (!spec.has_value()) return false;
  ++out->searches;
  // Minimization probes always search unreduced: a reduced probe covers
  // interleavings only up to commutation/symmetry, so it could fail to
  // rediscover the specific witness a candidate drop still admits —
  // rejecting a drop that is actually minimizable — and the witness it
  // does return must replay under the plain, reduction-free Executor
  // semantics that `dgmc_check replay` uses.
  SearchLimits probe = limits;
  probe.reduce = false;
  probe.audit_commutation = false;
  SearchResult result = explore_dfs(*spec, probe);
  if (!result.violation.has_value() || result.violation->oracle != oracle) {
    return false;
  }
  candidate.choices = result.trace.choices;
  out->annotations = result.annotations;
  out->violation = *result.violation;
  return true;
}

}  // namespace

std::optional<MinimizeResult> minimize_trace(const Trace& violating,
                                             const std::string& oracle,
                                             const SearchLimits& limits,
                                             std::string* error) {
  const ScenarioSpec* base = find_scenario(violating.scenario);
  if (base == nullptr) {
    if (error != nullptr) *error = "unknown scenario: " + violating.scenario;
    return std::nullopt;
  }

  MinimizeResult out;
  Trace current = violating;
  if (!still_violates(current, oracle, limits, &out)) {
    if (error != nullptr) {
      *error = "search no longer reproduces a '" + oracle +
               "' violation on " + violating.scenario;
    }
    return std::nullopt;
  }

  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < base->injections.size(); ++i) {
      if (std::find(current.dropped_injections.begin(),
                    current.dropped_injections.end(),
                    i) != current.dropped_injections.end()) {
        continue;
      }
      Trace candidate = current;
      candidate.dropped_injections.push_back(i);
      candidate.choices.clear();
      if (still_violates(candidate, oracle, limits, &out)) {
        current = std::move(candidate);
        ++out.injections_dropped;
        progress = true;
      }
    }
  }

  std::sort(current.dropped_injections.begin(),
            current.dropped_injections.end());
  out.trace = std::move(current);
  return out;
}

}  // namespace dgmc::check
