// Exploration strategies over check::Executor.
//
// The DFS strategies historically backtracked statelessly (VeriSoft
// style): discard the Executor and replay the choice prefix from a
// fresh network — O(depth) replays per backtrack. With
// SearchLimits::checkpoint_interval > 0 (the default) they instead
// park an Executor snapshot every k levels and resync by restoring the
// nearest checkpoint plus a <= k-step tail replay — O(k) per backtrack
// (see check/checkpoint.hpp and DESIGN.md §9). Both modes explore the
// identical space and return bit-identical results; only
// SearchStats::transitions (which counts replayed steps) differs.
//
//   dfs    — bounded depth-first search of every sound interleaving,
//            pruned by state fingerprints: a state already explored
//            with at least as much remaining depth budget is not
//            re-expanded.
//   delay  — delay-bounded search: choice index k costs k "delays"
//            (deviations from the native (time, seq) schedule); only
//            executions within the delay budget are explored. Finds
//            most concurrency bugs at tiny budgets (Emmi, Qadeer &
//            Rakamarić's delay-bounded scheduling).
//   random — seeded random walks; each walk's choices are recorded, so
//            a violating walk replays exactly like a DFS trace.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/executor.hpp"
#include "check/trace.hpp"

namespace dgmc::check {

struct SearchLimits {
  /// Transition-depth bound per execution (0 = only the initial state).
  std::size_t max_depth = 60;
  /// Global transition budget across the whole search; 0 = unlimited.
  std::size_t max_transitions = 0;
  /// DFS only: prune states whose fingerprint was already explored with
  /// >= remaining budget.
  bool dedup = true;
  /// delay strategy: total delay budget per execution.
  std::size_t delay_budget = 2;
  /// random strategy: number of walks and the root seed.
  std::size_t walks = 200;
  std::uint64_t seed = 1;
  /// Parallel frontier DFS: the serial breadth-first phase stops
  /// expanding once the frontier holds at least this many prefixes,
  /// which then become independent subtree tasks. Deliberately NOT a
  /// function of the job count, so the work decomposition — and hence
  /// every statistic — is identical at any DGMC_JOBS.
  std::size_t frontier_width = 32;
  /// DFS/delay backtracking: snapshot the executor every this many
  /// levels and resync via restore + <= interval-step tail replay
  /// (check/checkpoint.hpp). 0 = legacy full-prefix replay. Exploration
  /// results are bit-identical at any value; only stats.transitions
  /// (replay-step accounting) varies with it. Default 1 — a pooled
  /// snapshot copy is cheaper than even one replayed transition (which
  /// runs the event, every oracle, and the enabled-set refresh) on
  /// every catalog scenario, so checkpointing each level wins outright;
  /// raise it to trade resync time for snapshot memory on deeper
  /// searches, BENCH_check_explore tracks the ratio.
  std::size_t checkpoint_interval = 1;
  /// Partial-order + symmetry reduction (DESIGN.md §12, the --reduce
  /// flag): sleep-set pruning over the independence relation in
  /// check/reduction.hpp, plus — for the dfs strategies, when the
  /// scenario has non-trivial symmetries — canonicalized state
  /// fingerprints that fold switch-relabeling-equivalent states into
  /// one dedup class. Sound for violation *existence*: a reduced dfs
  /// reports a violation iff the unreduced dfs does (the skipped
  /// interleavings commute into explored ones; symmetric states violate
  /// symmetric oracles together), but the specific witness trace, the
  /// first violation's detail string, and the execution statistics may
  /// all differ from the unreduced run — compare with
  /// equivalent_violation_sets, not equivalent_results. Within reduced
  /// mode the full determinism contract still holds: identical results
  /// at any checkpoint_interval and job count. Under the delay
  /// strategy, sleep pruning can skip a schedule whose commuted
  /// equivalent lies outside the delay budget — reduction there trades
  /// delay-metric coverage for speed.
  bool reduce = false;
  /// Debug harness: before every expansion the driver re-executes each
  /// independent-classified enabled pair in both orders from a snapshot
  /// and asserts the state fingerprints agree (check/reduction.hpp).
  /// Catches independence-relation bugs loudly; costs O(enabled²)
  /// transitions per state, so it is for tests and small scenarios.
  bool audit_commutation = false;
};

struct SearchStats {
  std::size_t transitions = 0;   // total Executor::step calls (incl. replays)
  std::size_t executions = 0;    // complete or cut-off executions examined
  std::size_t states_seen = 0;   // distinct fingerprints (dfs only)
  std::size_t pruned = 0;        // dfs expansions skipped via dedup
  std::size_t sleep_pruned = 0;  // transitions skipped via sleep sets
  std::size_t depth_cutoffs = 0; // executions truncated by max_depth
  std::size_t max_depth_reached = 0;
};

struct SearchResult {
  std::optional<Violation> violation;
  /// Choice trace reaching the violation (empty if none found).
  Trace trace;
  /// Human labels, one per trace choice (for annotated trace files).
  std::vector<std::string> annotations;
  SearchStats stats;
  /// True iff the search space within max_depth was covered completely
  /// (no violation, no cutoff by max_transitions or max_depth).
  bool exhaustive = false;
};

/// Determinism-contract comparison of two search results: violation
/// (oracle and detail), trace choices, exhaustiveness, and every
/// SearchStats field except transitions, which counts *replay* steps
/// and therefore legitimately differs between checkpoint intervals
/// (that reduction is the optimization). Pass compare_transitions =
/// true when both runs used the same checkpoint_interval — then
/// transitions must match bit-for-bit too (e.g. across job counts).
bool equivalent_results(const SearchResult& a, const SearchResult& b,
                        bool compare_transitions = false);

/// The reduced-vs-unreduced contract: both searches agree on whether a
/// violation exists and, when one does, on which oracle fired. Witness
/// traces, detail strings (which name specific switches — symmetric
/// states violate under relabeled witnesses) and statistics
/// legitimately differ between a reduced and an unreduced search; for
/// two runs of the SAME configuration use equivalent_results instead.
bool equivalent_violation_sets(const SearchResult& a, const SearchResult& b);

SearchResult explore_dfs(const ScenarioSpec& spec, const SearchLimits& limits);
SearchResult explore_delay_bounded(const ScenarioSpec& spec,
                                   const SearchLimits& limits);
SearchResult explore_random(const ScenarioSpec& spec,
                            const SearchLimits& limits);

// Parallel engine (exec::Pool). Both modes honor the determinism
// contract (DESIGN.md §8): the returned violation, its trace, and —
// when no violation cuts the search short — every SearchStats field
// are bit-identical at any job count. jobs = 0 resolves via
// exec::resolve_jobs (DGMC_JOBS env var, else hardware concurrency).
//
// Random mode: walk i draws from RngStream(seed).fork(i), workers pull
// walk indices from a shared counter, and distinct states are counted
// through a shared atomic fingerprint filter (states_seen, which the
// serial random strategy does not report). On a violation the *lowest*
// violating walk index wins and walks above the current best cancel
// cooperatively, so which counterexample is returned never depends on
// scheduling. limits.max_transitions is enforced only approximately
// across workers; leave it 0 when byte-identical stats matter.
SearchResult explore_random_parallel(const ScenarioSpec& spec,
                                     const SearchLimits& limits,
                                     std::size_t jobs = 0);

// Frontier mode for bounded DFS: a serial breadth-first phase expands
// the root into limits.frontier_width choice prefixes (checking every
// state it passes, so a shallow violation is found deterministically),
// then each prefix's subtree runs as an independent stateless-DFS task
// with its own dedup table seeded from the frontier phase. Lowest
// violating frontier index wins, with cooperative cancellation of
// higher-index tasks.
SearchResult explore_dfs_parallel(const ScenarioSpec& spec,
                                  const SearchLimits& limits,
                                  std::size_t jobs = 0);

struct ReplayResult {
  /// Violation hit during replay, if any.
  std::optional<Violation> violation;
  /// Step index (into trace.choices) after which the violation fired.
  std::size_t violation_step = 0;
  /// Set when a choice index was out of range — the trace does not
  /// match this build/scenario.
  std::optional<std::string> divergence;
  std::size_t steps_executed = 0;
};

/// Re-executes a trace choice by choice, checking oracles after every
/// step. `step_log`, when non-null, receives one describe() line per
/// executed action (the CLI's --step mode).
ReplayResult replay(const ScenarioSpec& spec, const Trace& trace,
                    std::vector<std::string>* step_log = nullptr);

}  // namespace dgmc::check
