#include "check/scenario.hpp"

#include <algorithm>

#include "mc/algorithm.hpp"
#include "util/assert.hpp"

namespace dgmc::check {

std::string to_string(const Injection& inj) {
  switch (inj.kind) {
    case Injection::Kind::kJoin:
      return "join mc=" + std::to_string(inj.mcid) + " at=" +
             std::to_string(inj.node);
    case Injection::Kind::kLeave:
      return "leave mc=" + std::to_string(inj.mcid) + " at=" +
             std::to_string(inj.node);
    case Injection::Kind::kLinkDown:
      return "link-down link=" + std::to_string(inj.link);
    case Injection::Kind::kLinkUp:
      return "link-up link=" + std::to_string(inj.link);
    case Injection::Kind::kCrash:
      return "crash switch=" + std::to_string(inj.node);
    case Injection::Kind::kRestart:
      return "restart switch=" + std::to_string(inj.node);
  }
  return "?";
}

std::vector<mc::McId> ScenarioSpec::mcs() const {
  std::vector<mc::McId> out;
  for (const Injection& inj : injections) {
    if (inj.mcid != mc::kInvalidMc) out.push_back(inj.mcid);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::unique_ptr<sim::DgmcNetwork> build_network(const ScenarioSpec& spec) {
  auto algorithm = spec.incremental_algorithm
                       ? mc::make_incremental_algorithm()
                       : mc::make_from_scratch_algorithm();
  auto net = std::make_unique<sim::DgmcNetwork>(spec.graph, spec.params,
                                                std::move(algorithm));
  if (!spec.faults.flaps.empty() || !spec.faults.crashes.empty()) {
    // The checker's transition system is lossless: only scheduled
    // flaps/crashes may carry over. Stochastic fields would make the
    // executor's behavior depend on decision-draw order, breaking
    // choice-trace reproducibility.
    DGMC_ASSERT(spec.faults.iid_loss == 0.0 && !spec.faults.use_burst &&
                spec.faults.max_extra_delay == 0.0);
    net->install_faults(spec.faults, /*seed=*/1);
  }
  return net;
}

std::vector<graph::Permutation> scenario_symmetries(const ScenarioSpec& spec) {
  auto fixes_script = [&spec](const graph::Permutation& p) {
    for (const Injection& inj : spec.injections) {
      if (p.map_node(inj.node) != inj.node) return false;
      if (p.map_link(inj.link) != inj.link) return false;
    }
    for (const fault::LinkFlap& f : spec.faults.flaps) {
      if (p.map_link(f.link) != f.link) return false;
    }
    for (const fault::SwitchCrash& c : spec.faults.crashes) {
      if (p.map_node(c.node) != c.node) return false;
    }
    return true;
  };
  std::vector<graph::Permutation> out;
  for (graph::Permutation& p : graph::graph_automorphisms(spec.graph)) {
    if (fixes_script(p)) out.push_back(std::move(p));
  }
  DGMC_ASSERT(!out.empty() && out.front().is_identity());
  return out;
}

ScenarioSpec scenario_from_soak(const sim::SoakSpec& soak,
                                std::size_t max_injections) {
  ScenarioSpec spec;
  spec.name = "soak:" + soak.name;
  spec.description = "expanded from a soak spec (seed " +
                     std::to_string(soak.soak_seed) + ")";
  spec.graph = soak.build_graph();
  spec.params = soak.network_params();
  spec.incremental_algorithm = soak.incremental;

  bool has_wipe_or_topology_event = false;
  for (const sim::SoakEvent& ev :
       sim::ChurnEngine::expand_all(soak, spec.graph, soak.soak_seed)) {
    if (max_injections > 0 && spec.injections.size() >= max_injections) break;
    Injection inj;
    switch (ev.kind) {
      case sim::SoakEvent::Kind::kJoin:
        inj.kind = Injection::Kind::kJoin;
        break;
      case sim::SoakEvent::Kind::kLeave:
        inj.kind = Injection::Kind::kLeave;
        break;
      case sim::SoakEvent::Kind::kFail:
        inj.kind = Injection::Kind::kLinkDown;
        has_wipe_or_topology_event = true;
        break;
      case sim::SoakEvent::Kind::kRestore:
        inj.kind = Injection::Kind::kLinkUp;
        has_wipe_or_topology_event = true;
        break;
      case sim::SoakEvent::Kind::kCrash:
        inj.kind = Injection::Kind::kCrash;
        has_wipe_or_topology_event = true;
        break;
      case sim::SoakEvent::Kind::kRestart:
        inj.kind = Injection::Kind::kRestart;
        has_wipe_or_topology_event = true;
        break;
    }
    inj.node = ev.node;
    inj.link = ev.link;
    inj.mcid = ev.mcid;
    inj.type = ev.type;
    inj.role = ev.role;
    spec.injections.push_back(inj);
  }
  spec.strict_oracles = !has_wipe_or_topology_event;
  return spec;
}

namespace {

Injection join(graph::NodeId node, mc::McId mcid,
               mc::MemberRole role = mc::MemberRole::kBoth) {
  Injection inj;
  inj.kind = Injection::Kind::kJoin;
  inj.node = node;
  inj.mcid = mcid;
  inj.role = role;
  return inj;
}

Injection leave(graph::NodeId node, mc::McId mcid) {
  Injection inj;
  inj.kind = Injection::Kind::kLeave;
  inj.node = node;
  inj.mcid = mcid;
  return inj;
}

Injection link_down(graph::LinkId link) {
  Injection inj;
  inj.kind = Injection::Kind::kLinkDown;
  inj.link = link;
  return inj;
}

Injection link_up(graph::LinkId link) {
  Injection inj;
  inj.kind = Injection::Kind::kLinkUp;
  inj.link = link;
  return inj;
}

Injection crash(graph::NodeId node) {
  Injection inj;
  inj.kind = Injection::Kind::kCrash;
  inj.node = node;
  return inj;
}

Injection restart(graph::NodeId node) {
  Injection inj;
  inj.kind = Injection::Kind::kRestart;
  inj.node = node;
  return inj;
}

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(0, 2);
  return g;
}

graph::Graph line(int n) {
  graph::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_link(i, i + 1);
  return g;
}

graph::Graph ring(int n) {
  graph::Graph g(n);
  for (int i = 0; i < n; ++i) g.add_link(i, (i + 1) % n);
  return g;
}

graph::Graph star(int n) {
  // Hub 0, leaves 1..n-1. Any leaf permutation fixing the script is an
  // automorphism — the largest symmetry group per switch count.
  graph::Graph g(n);
  for (int i = 1; i < n; ++i) g.add_link(0, i);
  return g;
}

graph::Graph diamond() {
  // 4-cycle plus one chord: two distinct paths between every pair, so a
  // single link failure never partitions.
  graph::Graph g(4);
  g.add_link(0, 1);  // link 0
  g.add_link(1, 2);  // link 1
  g.add_link(2, 3);  // link 2
  g.add_link(0, 3);  // link 3
  g.add_link(1, 3);  // link 4 (chord)
  return g;
}

std::vector<ScenarioSpec> make_catalog() {
  std::vector<ScenarioSpec> out;

  {
    // The acceptance scenario: one MC on the smallest non-trivial
    // graph, concurrent joins racing a leave. Small enough to explore
    // every interleaving to full execution depth.
    ScenarioSpec s;
    s.name = "triangle-join-leave";
    s.description =
        "3 switches (triangle), 1 MC: joins at 0 and 1 racing a leave at "
        "1. Exercises concurrent proposals, the equal-stamp tie-break and "
        "destroy-on-shrink paths.";
    s.graph = triangle();
    s.injections = {join(0, 1), join(1, 1), leave(1, 1)};
    out.push_back(std::move(s));
  }
  {
    // The 3-join variant: too large for exhaustive search (use delay or
    // random strategies), kept for CLI experiments.
    ScenarioSpec s;
    s.name = "triangle-3join-leave";
    s.description =
        "3 switches (triangle), 1 MC: joins at 0, 1, 2 racing a leave at "
        "1. Larger cousin of triangle-join-leave; exhaustive search is "
        "impractical — use --strategy delay or random.";
    s.graph = triangle();
    s.injections = {join(0, 1), join(1, 1), join(2, 1), leave(1, 1)};
    out.push_back(std::move(s));
  }
  {
    // Two fully concurrent joins — the smallest scenario where two
    // switches can propose with incomparable timestamps.
    ScenarioSpec s;
    s.name = "triangle-2join";
    s.description =
        "3 switches (triangle), 1 MC: concurrent joins at 0 and 2. The "
        "minimal concurrent-proposal race.";
    s.graph = triangle();
    s.injections = {join(0, 1), join(2, 1)};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "line4-concurrent-join";
    s.description =
        "4 switches in a line, 1 MC: joins at both ends plus one "
        "interior. Long flooding paths let proposals overtake each "
        "other's event LSAs.";
    s.graph = line(4);
    s.injections = {join(0, 1), join(3, 1), join(1, 1)};
    out.push_back(std::move(s));
  }
  {
    // A link on the installed tree fails while membership still churns.
    ScenarioSpec s;
    s.name = "diamond-link-fail";
    s.description =
        "4 switches (diamond), 1 MC: joins at 0, 2, 3, then the 0-1 link "
        "fails mid-churn. The failure detector's MC LSA races the "
        "join/leave traffic; the network must re-route around the chord.";
    s.graph = diamond();
    s.injections = {join(0, 1), join(2, 1), join(3, 1), link_down(0),
                    link_up(0)};
    out.push_back(std::move(s));
  }
  {
    // Switch crash and recovery under the partition-resync extension.
    ScenarioSpec s;
    s.name = "diamond-crash-recover";
    s.description =
        "4 switches (diamond), 1 MC with partition_resync: member 3 "
        "crashes after the tree is proposed and restarts; neighbors must "
        "re-teach it its own pre-crash history via McSync.";
    s.graph = diamond();
    s.params.dgmc.partition_resync = true;
    s.injections = {join(0, 1), join(3, 1), crash(3), restart(3)};
    s.strict_oracles = false;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "diamond-two-mc";
    s.description =
        "4 switches (diamond), 2 MCs: interleaved joins on independent "
        "connections sharing one CPU per switch — cross-MC computation "
        "scheduling must not corrupt either tree.";
    s.graph = diamond();
    s.injections = {join(0, 1), join(2, 2), join(2, 1), join(0, 2)};
    out.push_back(std::move(s));
  }

  return out;
}

std::vector<ScenarioSpec> make_symmetric_catalog() {
  std::vector<ScenarioSpec> out;

  {
    // C6 with the script pinned to the 0–3 axis: the reflection
    // swapping 1<->5 and 2<->4 survives, so every interleaving has a
    // mirror twin the canonicalizer folds away.
    ScenarioSpec s;
    s.name = "ring6-crash";
    s.description =
        "6 switches in a ring, 1 MC with partition_resync: joins at 0 "
        "and 3, then 3 crashes and restarts. The 0-3 mirror symmetry "
        "halves the reachable class count under --reduce.";
    s.graph = ring(6);
    s.params.dgmc.partition_resync = true;
    s.injections = {join(0, 1), join(3, 1), crash(3), restart(3)};
    s.strict_oracles = false;
    out.push_back(std::move(s));
  }
  {
    // Hub-and-spoke with only hub and one leaf scripted: leaves 2-5
    // stay interchangeable (4! = 24 automorphisms), the steepest
    // symmetry-reduction ratio in the catalog. The crash/restart of
    // leaf 1 rides the calendar as fault events, making this the bench
    // scenario for fault-aware reduction.
    ScenarioSpec s;
    s.name = "star6-crash";
    s.description =
        "6 switches in a star (hub 0), 1 MC with partition_resync: "
        "joins at hub and leaf 1, scheduled crash/restart of leaf 1 via "
        "a fault plan. Leaves 2-5 are interchangeable under --reduce.";
    s.graph = star(6);
    s.params.dgmc.partition_resync = true;
    s.injections = {join(0, 1), join(1, 1)};
    s.faults.crashes = {{/*node=*/1, /*crash_at=*/1.0, /*restart_at=*/2.0}};
    s.strict_oracles = false;
    out.push_back(std::move(s));
  }

  return out;
}

}  // namespace

const std::vector<ScenarioSpec>& scenarios() {
  static const std::vector<ScenarioSpec> catalog = make_catalog();
  return catalog;
}

const std::vector<ScenarioSpec>& symmetric_scenarios() {
  static const std::vector<ScenarioSpec> catalog = make_symmetric_catalog();
  return catalog;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& s : scenarios()) {
    if (s.name == name) return &s;
  }
  for (const ScenarioSpec& s : symmetric_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace dgmc::check
