#include "check/trace.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>
#include <variant>

namespace dgmc::check {

std::optional<ScenarioSpec> resolve_spec(const Trace& trace,
                                         std::string* error) {
  ScenarioSpec spec;
  if (!trace.spec_text.empty()) {
    const auto parsed = sim::SoakSpec::parse(trace.spec_text);
    if (const auto* err = std::get_if<sim::SpecError>(&parsed)) {
      if (error != nullptr) {
        *error = "embedded spec line " + std::to_string(err->line) + ": " +
                 err->message;
      }
      return std::nullopt;
    }
    spec = scenario_from_soak(std::get<sim::SoakSpec>(parsed),
                              trace.spec_injections);
  } else {
    const ScenarioSpec* base = find_scenario(trace.scenario);
    if (base == nullptr) {
      if (error != nullptr) *error = "unknown scenario: " + trace.scenario;
      return std::nullopt;
    }
    spec = *base;
  }
  spec.params.dgmc.accept_stale_proposals = trace.accept_stale_proposals;
  spec.params.dgmc.premature_destroy_on_empty =
      trace.premature_destroy_on_empty;
  spec.params.dgmc.unguarded_sync = trace.unguarded_sync;
  std::vector<std::size_t> drops = trace.dropped_injections;
  std::sort(drops.begin(), drops.end(), std::greater<>());
  for (std::size_t d : drops) {
    if (d >= spec.injections.size()) {
      if (error != nullptr) {
        *error = "drop index " + std::to_string(d) + " out of range for " +
                 trace.scenario;
      }
      return std::nullopt;
    }
    spec.injections.erase(spec.injections.begin() +
                          static_cast<std::ptrdiff_t>(d));
  }
  return spec;
}

std::string trace_to_string(const Trace& trace,
                            const std::vector<std::string>& annotations) {
  std::ostringstream out;
  out << "# dgmc_check trace v1\n";
  out << "scenario " << trace.scenario << "\n";
  if (trace.accept_stale_proposals) {
    out << "option accept_stale_proposals 1\n";
  }
  if (trace.premature_destroy_on_empty) {
    out << "option premature_destroy_on_empty 1\n";
  }
  if (trace.unguarded_sync) {
    out << "option unguarded_sync 1\n";
  }
  if (!trace.spec_text.empty()) {
    // Embed the soak spec verbatim, each line guarded by "| " so the
    // choice parser never sees it (and '#' inside survives).
    if (trace.spec_injections > 0) {
      out << "spec-injections " << trace.spec_injections << "\n";
    }
    out << "spec-begin\n";
    std::istringstream spec_lines(trace.spec_text);
    std::string spec_line;
    while (std::getline(spec_lines, spec_line)) {
      out << "| " << spec_line << "\n";
    }
    out << "spec-end\n";
  }
  for (std::size_t d : trace.dropped_injections) {
    out << "drop " << d << "\n";
  }
  for (std::size_t i = 0; i < trace.choices.size(); ++i) {
    out << trace.choices[i];
    if (i < annotations.size() && !annotations[i].empty()) {
      out << "  # " << annotations[i];
    }
    out << "\n";
  }
  return out.str();
}

bool save_trace(const Trace& trace, const std::string& path,
                const std::vector<std::string>& annotations) {
  std::ofstream out(path);
  if (!out) return false;
  out << trace_to_string(trace, annotations);
  return static_cast<bool>(out);
}

std::optional<Trace> load_trace(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  Trace trace;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = path + ":" + std::to_string(lineno) + ": " + why;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing comment, then surrounding whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    line = line.substr(first, line.find_last_not_of(" \t\r") - first + 1);

    std::istringstream tokens(line);
    std::string word;
    tokens >> word;
    if (word == "scenario") {
      if (!(tokens >> trace.scenario)) return fail("scenario needs a name");
    } else if (word == "option") {
      std::string key;
      int value = 0;
      if (!(tokens >> key >> value)) return fail("option needs key + value");
      if (key == "accept_stale_proposals") {
        trace.accept_stale_proposals = value != 0;
      } else if (key == "premature_destroy_on_empty") {
        trace.premature_destroy_on_empty = value != 0;
      } else if (key == "unguarded_sync") {
        trace.unguarded_sync = value != 0;
      } else {
        return fail("unknown option: " + key);
      }
    } else if (word == "drop") {
      std::size_t index = 0;
      if (!(tokens >> index)) return fail("drop needs an injection index");
      trace.dropped_injections.push_back(index);
    } else if (word == "spec-injections") {
      std::size_t count = 0;
      if (!(tokens >> count)) return fail("spec-injections needs a count");
      trace.spec_injections = count;
    } else if (word == "spec-begin") {
      // Raw block: lines are "| <spec line>" until "spec-end". Read
      // them without the comment stripping above — spec lines may
      // themselves contain '#' comments.
      bool closed = false;
      std::string raw;
      while (std::getline(in, raw)) {
        ++lineno;
        if (!raw.empty() && raw.back() == '\r') raw.pop_back();
        const std::size_t start = raw.find_first_not_of(" \t");
        const std::string trimmed =
            start == std::string::npos ? "" : raw.substr(start);
        if (trimmed == "spec-end") {
          closed = true;
          break;
        }
        if (trimmed.empty() || trimmed[0] != '|') {
          return fail("spec block lines must start with '|'");
        }
        std::string content = trimmed.substr(1);
        if (!content.empty() && content.front() == ' ') content.erase(0, 1);
        trace.spec_text += content;
        trace.spec_text += '\n';
      }
      if (!closed) return fail("unterminated spec block");
    } else {
      std::size_t parsed = 0;
      unsigned long choice = 0;
      try {
        choice = std::stoul(word, &parsed);
      } catch (...) {
        parsed = 0;
      }
      if (parsed != word.size()) return fail("expected choice index: " + word);
      trace.choices.push_back(static_cast<std::uint32_t>(choice));
    }
  }
  if (trace.scenario.empty()) {
    lineno = 0;
    return fail("missing 'scenario' line");
  }
  return trace;
}

}  // namespace dgmc::check
