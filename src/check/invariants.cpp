#include "check/invariants.hpp"

#include "mc/validation.hpp"

namespace dgmc::check {

namespace {

std::string where(graph::NodeId node, mc::McId mcid) {
  return "switch " + std::to_string(node) + ", mc " + std::to_string(mcid);
}

/// The agreement + valid-topology block for one MC (shared between the
/// explorer's quiescence oracle and the soak runner's drain checks).
std::optional<Violation> agreement_for_mc(const sim::DgmcNetwork& net,
                                          mc::McId mcid) {
  const core::DgmcSwitch* ref = nullptr;
  graph::NodeId ref_node = graph::kInvalidNode;
  for (graph::NodeId n = 0; n < net.size(); ++n) {
    const core::DgmcSwitch& sw = net.switch_at(n);
    if (!sw.alive() || !sw.has_state(mcid)) continue;
    if (ref == nullptr) {
      ref = &sw;
      ref_node = n;
      continue;
    }
    if (!(*sw.installed(mcid) == *ref->installed(mcid))) {
      return Violation{"agreement",
                       where(n, mcid) + ": installed topology differs from "
                                        "switch " +
                           std::to_string(ref_node) + "'s"};
    }
    if (!(*sw.members(mcid) == *ref->members(mcid))) {
      return Violation{"agreement",
                       where(n, mcid) + ": member list differs from switch " +
                           std::to_string(ref_node) + "'s"};
    }
    if (!(*sw.stamp_c(mcid) == *ref->stamp_c(mcid))) {
      return Violation{
          "agreement", where(n, mcid) + ": C=" + sw.stamp_c(mcid)->to_string() +
                           " differs from switch " + std::to_string(ref_node) +
                           "'s C=" + ref->stamp_c(mcid)->to_string()};
    }
    if (sw.proposer(mcid) != ref->proposer(mcid)) {
      return Violation{
          "agreement",
          where(n, mcid) + ": installed proposer " +
              std::to_string(sw.proposer(mcid)) + " differs from switch " +
              std::to_string(ref_node) + "'s " +
              std::to_string(ref->proposer(mcid))};
    }
  }

  if (ref != nullptr) {
    // --- valid-topology: the agreed tree serves the agreed members.
    if (!mc::is_valid_topology(net.physical(), ref->mc_type(mcid),
                               *ref->members(mcid), *ref->installed(mcid))) {
      return Violation{
          "valid-topology",
          where(ref_node, mcid) +
              ": agreed topology is not valid for the agreed member list"};
    }
    // A switch the tree or member list involves but that holds no
    // state cannot forward — content agreement above misses it.
    for (graph::NodeId n : ref->installed(mcid)->nodes()) {
      if (net.switch_alive(n) && !net.switch_at(n).has_state(mcid)) {
        return Violation{"agreement",
                         where(n, mcid) +
                             ": on the agreed tree but holds no state"};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Violation> check_step_invariants(
    const sim::DgmcNetwork& net, const std::vector<mc::McId>& mcs) {
  for (mc::McId mcid : mcs) {
    for (graph::NodeId n = 0; n < net.size(); ++n) {
      const core::DgmcSwitch& sw = net.switch_at(n);
      if (!sw.alive() || !sw.has_state(mcid)) continue;
      const core::VectorTimestamp& r = *sw.stamp_r(mcid);
      const core::VectorTimestamp& e = *sw.stamp_e(mcid);
      const core::VectorTimestamp& c = *sw.stamp_c(mcid);
      if (!e.dominates(c)) {
        return Violation{
            "stamp-containment",
            where(n, mcid) + ": installed stamp C=" + c.to_string() +
                " not contained in known history E=" + e.to_string() +
                " — a proposal was accepted without T >= E"};
      }
      if (!e.dominates(r)) {
        return Violation{
            "heard-within-known",
            where(n, mcid) + ": directly heard R=" + r.to_string() +
                " exceeds known history E=" + e.to_string()};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_step_invariants(const sim::DgmcNetwork& net,
                                               const ScenarioSpec& spec) {
  return check_step_invariants(net, spec.mcs());
}

std::optional<Violation> check_agreement_invariants(
    const sim::DgmcNetwork& net, const std::vector<mc::McId>& mcs) {
  for (mc::McId mcid : mcs) {
    if (auto v = agreement_for_mc(net, mcid)) return v;
  }
  return std::nullopt;
}

std::optional<Violation> check_quiescence_invariants(
    const sim::DgmcNetwork& net, const ScenarioSpec& spec,
    std::size_t injections_fired) {
  for (mc::McId mcid : spec.mcs()) {
    // --- agreement + valid-topology: shared block.
    if (auto v = agreement_for_mc(net, mcid)) return v;

    if (!spec.strict_oracles) continue;

    // Re-find the reference switch for the strict oracles.
    const core::DgmcSwitch* ref = nullptr;
    graph::NodeId ref_node = graph::kInvalidNode;
    for (graph::NodeId n = 0; n < net.size(); ++n) {
      const core::DgmcSwitch& sw = net.switch_at(n);
      if (!sw.alive() || !sw.has_state(mcid)) continue;
      ref = &sw;
      ref_node = n;
      break;
    }

    // --- membership: replay the fired prefix of the injection script.
    mc::MemberList expected;
    for (std::size_t i = 0; i < injections_fired; ++i) {
      const Injection& inj = spec.injections[i];
      if (inj.mcid != mcid) continue;
      if (inj.kind == Injection::Kind::kJoin) expected.join(inj.node, inj.role);
      if (inj.kind == Injection::Kind::kLeave) expected.leave(inj.node);
    }
    if (ref == nullptr) {
      if (!expected.empty()) {
        return Violation{"membership",
                         "mc " + std::to_string(mcid) +
                             ": script leaves members but every switch "
                             "destroyed its state"};
      }
    } else {
      if (!(expected == *ref->members(mcid))) {
        return Violation{"membership",
                         where(ref_node, mcid) +
                             ": member list does not match the injection "
                             "script"};
      }
      // --- quiescent-complete: with nothing in flight, everything
      // known transitively has been heard directly, and the installed
      // stamp is within heard history (per-MC C <= R). Only sound on
      // wipe-free histories: destroy-on-empty legitimately discards R
      // counters while E survives via stamps, and the flooding layer's
      // dedup never redelivers what the destroyed state had consumed.
      bool wiped = false;
      for (graph::NodeId n = 0; n < net.size(); ++n) {
        if (net.switch_at(n).counters().states_destroyed > 0) wiped = true;
      }
      if (wiped) continue;
      for (graph::NodeId n = 0; n < net.size(); ++n) {
        const core::DgmcSwitch& sw = net.switch_at(n);
        if (!sw.alive() || !sw.has_state(mcid)) continue;
        const core::VectorTimestamp& r = *sw.stamp_r(mcid);
        if (!r.dominates(*sw.stamp_e(mcid))) {
          return Violation{
              "quiescent-complete",
              where(n, mcid) + ": at quiescence R=" + r.to_string() +
                  " < E=" + sw.stamp_e(mcid)->to_string() +
                  " — an LSA this switch knows of was never delivered"};
        }
        if (!r.dominates(*sw.stamp_c(mcid))) {
          return Violation{
              "quiescent-complete",
              where(n, mcid) + ": at quiescence C=" +
                  sw.stamp_c(mcid)->to_string() + " not within heard R=" +
                  r.to_string()};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace dgmc::check
