// Executor: the transport/clock/timer interface the protocol core is
// written against.
//
// Every protocol-layer module (core/protocol, lsr/flooding,
// lsr/unicast, core/sync consumers) drives exactly this surface: read
// the current time, schedule a callback after a delay, cancel a
// scheduled callback. Two implementations exist:
//
//   * des::Scheduler — the discrete-event calendar. now() is simulated
//     time, schedule_after() is a calendar insertion, and the check
//     subsystem can enumerate/interpose on pending events. Runs the
//     protocol deterministically for simulation and model checking.
//   * net::EventLoop — an epoll loop over real file descriptors.
//     now() is wall-clock (monotonic) time and timers fire when the
//     hardware clock says so. Runs the same protocol object code as a
//     deployable switch process.
//
// Because the protocol core never includes des/ or net/ headers, every
// protocol line of code is shared bit-for-bit between simulation,
// model checking and deployment (DESIGN.md §11). Keep this interface
// minimal: anything added here must be implementable by both a
// simulated calendar and a wall-clock loop.
#pragma once

#include <cstdint>

#include "rt/event_tag.hpp"
#include "rt/small_function.hpp"
#include "rt/time.hpp"

namespace dgmc::rt {

/// Opaque handle for cancelling a scheduled callback. Value 0 is never
/// a live timer (implementations start ids at 1), so a default-
/// constructed TimerId is safely cancellable as a no-op.
struct TimerId {
  std::uint64_t value = 0;
};

class Executor {
 public:
  /// Small-buffer callable: no heap allocation for the typical capture
  /// sizes the protocol schedules (see small_function.hpp).
  using Callback = SmallFunction;

  virtual ~Executor() = default;

  /// Current time (simulated or wall-clock, per implementation).
  virtual Time now() const = 0;

  /// Schedules `cb` to run at now() + delay (delay must be >= 0). The
  /// tag is semantic metadata for exploration tooling; implementations
  /// that cannot be interposed on may ignore it.
  virtual TimerId schedule_after(Time delay, EventTag tag, Callback cb) = 0;

  /// Cancels a scheduled callback. Returns false if it already ran or
  /// was cancelled before.
  virtual bool cancel(TimerId id) = 0;

  /// Untagged convenience overload.
  TimerId schedule_after(Time delay, Callback cb) {
    return schedule_after(delay, EventTag{}, std::move(cb));
  }
};

}  // namespace dgmc::rt
