// Time for the transport-agnostic runtime layer.
//
// Time is a double in seconds. Under the DES backend it is *simulated*
// time (des::SimTime aliases rt::Time); under the socket backend it is
// wall-clock seconds since the event loop started. Protocol code
// (core/, lsr/, mc/) computes only with durations and the executor's
// now(), so the same lines run unchanged against either clock.
#pragma once

namespace dgmc::rt {

using Time = double;

inline constexpr Time kMicrosecond = 1e-6;
inline constexpr Time kMillisecond = 1e-3;
inline constexpr Time kSecond = 1.0;

/// Events separated by less than this are considered simultaneous for
/// reporting purposes.
inline constexpr Time kTimeEps = 1e-12;

}  // namespace dgmc::rt
