// Semantic annotation of a scheduled event, consumed by check::Executor
// when the DES backend interposes on the calendar. The runtime layer
// never interprets the fields; producers (lsr flooding, the protocol
// entity) fill in whatever identifies the action. The socket backend
// accepts tags for interface parity and ignores them — wall-clock
// execution cannot be interposed on.
#pragma once

#include <cstdint>

namespace dgmc::rt {

struct EventTag {
  enum class Kind : std::uint8_t {
    kOpaque = 0,      // untagged (plain simulation events)
    kDelivery = 1,    // LSA copy arriving at `node` from origin `peer`
    kAck = 2,         // flooding ack arriving at `node`
    kRetransmit = 3,  // reliable-flooding RTO timer at sender `node`
    kCompute = 4,     // topology-computation completion at `node`
    kFault = 5,       // scheduled fault-plan action
    kHeartbeat = 6,   // neighbor HELLO / dead-interval timer (net backend)
    kBatchFlush = 7,  // end-of-round LSA batch flush at origin `node`
  };
  Kind kind = Kind::kOpaque;
  std::int32_t node = -1;     // the switch the event happens at
  std::int32_t peer = -1;     // counterpart switch (e.g. flooding origin)
  std::uint32_t seq = 0;      // per-origin flooding sequence number
  std::int32_t link = -1;     // link the copy travels on
  std::uint64_t digest = 0;   // content hash of the carried payload

  friend bool operator==(const EventTag&, const EventTag&) = default;
};

}  // namespace dgmc::rt
