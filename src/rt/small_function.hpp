// SmallFunction: a copyable type-erased void() callable with inline
// storage, replacing std::function on the event-calendar hot path.
//
// Every event the simulation schedules is a small lambda — a handful
// of ids plus a `this` pointer or a shared_ptr to an immutable message
// — but std::function implementations put many of them on the heap
// (libstdc++'s inline buffer is 16 bytes), so a single flooding
// operation used to cost one allocation per in-flight copy. The
// explorer executes millions of such events; SmallFunction keeps
// anything up to kInlineSize bytes inside the object and falls back to
// the heap only for outsized captures.
//
// Copyability is load-bearing, not a convenience: the checkpoint
// engine (des::Scheduler::Snapshot) snapshots the calendar by copying
// every pending record, callback included. Captured state must
// therefore be copy-constructible — the same requirement std::function
// imposed — and captured pointers must stay valid across restore,
// which holds because snapshots are only ever restored into the same
// simulation objects they were taken from.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dgmc::rt {

class SmallFunction {
 public:
  /// Bytes of inline storage. Sized for the largest hot capture (the
  /// flooding arrival lambda: this + link + node + shared_ptr) with
  /// headroom for fault-plan closures.
  static constexpr std::size_t kInlineSize = 48;

  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using T = std::decay_t<F>;
    if constexpr (fits_inline<T>) {
      ::new (storage_) T(std::forward<F>(f));
    } else {
      *reinterpret_cast<T**>(storage_) = new T(std::forward<F>(f));
    }
    vtable_ = &vtable_for<T>;
  }

  SmallFunction(const SmallFunction& other) { copy_from(other); }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(const SmallFunction& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  ~SmallFunction() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const { return vtable_ != nullptr; }

  friend bool operator==(const SmallFunction& f, std::nullptr_t) {
    return f.vtable_ == nullptr;
  }
  friend bool operator!=(const SmallFunction& f, std::nullptr_t) {
    return f.vtable_ != nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    void (*copy)(void* dst_storage, const void* src_storage);
    void (*move)(void* dst_storage, void* src_storage);
    void (*destroy)(void* storage);
  };

  template <typename T>
  static constexpr bool fits_inline =
      sizeof(T) <= kInlineSize && alignof(T) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<T>;

  template <typename T>
  static T* object(void* storage) {
    if constexpr (fits_inline<T>) {
      return std::launder(reinterpret_cast<T*>(storage));
    } else {
      return *reinterpret_cast<T* const*>(storage);
    }
  }

  template <typename T>
  static const T* object(const void* storage) {
    if constexpr (fits_inline<T>) {
      return std::launder(reinterpret_cast<const T*>(storage));
    } else {
      return *reinterpret_cast<const T* const*>(storage);
    }
  }

  template <typename T>
  static constexpr VTable vtable_for = {
      // invoke
      [](void* storage) { (*object<T>(storage))(); },
      // copy
      [](void* dst, const void* src) {
        if constexpr (fits_inline<T>) {
          ::new (dst) T(*object<T>(src));
        } else {
          *reinterpret_cast<T**>(dst) = new T(*object<T>(src));
        }
      },
      // move (source is destroyed afterwards by the caller's vtable_
      // being cleared, so heap payloads just transfer the pointer)
      [](void* dst, void* src) {
        if constexpr (fits_inline<T>) {
          ::new (dst) T(std::move(*object<T>(src)));
          object<T>(src)->~T();
        } else {
          *reinterpret_cast<T**>(dst) = *reinterpret_cast<T**>(src);
        }
      },
      // destroy
      [](void* storage) {
        if constexpr (fits_inline<T>) {
          object<T>(storage)->~T();
        } else {
          delete object<T>(storage);
        }
      },
  };

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  void copy_from(const SmallFunction& other) {
    if (other.vtable_ != nullptr) {
      other.vtable_->copy(storage_, other.storage_);
      vtable_ = other.vtable_;
    }
  }

  void move_from(SmallFunction& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->move(storage_, other.storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace dgmc::rt
