// DgmcNetwork: a complete simulated network running the D-GMC protocol —
// the physical graph, one DgmcSwitch + LocalImage per switch, and the
// flooding transport carrying both non-MC link LSAs and MC LSAs.
#pragma once

#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "core/protocol.hpp"
#include "des/scheduler.hpp"
#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "lsr/batcher.hpp"
#include "lsr/flooding.hpp"
#include "lsr/link_lsa.hpp"
#include "lsr/local_image.hpp"
#include "mc/algorithm.hpp"

namespace dgmc::sim {

class DgmcNetwork {
 public:
  /// Payload of a flooding: F = mc selects the McLsa alternative;
  /// McSync is the partition-resync extension (core/sync.hpp);
  /// McLsaBatch carries one round's coalesced MC LSAs as one wire op
  /// (DESIGN.md §13, Params::lsa_batching).
  using Payload = std::variant<lsr::LinkEventAd, core::McLsa, core::McSync,
                               core::McLsaBatch>;

  struct Params {
    double per_hop_overhead = 0.0;
    core::DgmcConfig dgmc;
    /// When true, BOTH endpoints of a failed/restored link detect the
    /// event, update their images, and flood non-MC LSAs (OSPF-like;
    /// required for correct knowledge propagation when the event
    /// partitions the network). When false — the default — a single
    /// detector acts, matching the paper's "exactly one non-MC LSA,
    /// followed by k MC LSAs" accounting (§3.1), which is exact as long
    /// as the network stays connected.
    bool dual_link_detection = false;
    /// Per-link ack + retransmission on the flooding transport. Off by
    /// default — the paper's lossless model. Required for convergence
    /// whenever a fault plan injects message loss.
    lsr::ReliableFloodingConfig reliable;
    /// Backpressure bounds for overload survival (all-zero — the
    /// default — is unlimited and preserves historical behavior).
    lsr::OverloadConfig overload;
    /// Coalesce the MC LSAs a switch originates in one round into one
    /// flooded batch (lsr::LsaBatcher; one wire op, one ack, one
    /// retransmit unit for all of them). Off — the default — floods
    /// every LSA as its own operation, bit-identical to the
    /// pre-batching simulator.
    bool lsa_batching = false;
  };

  DgmcNetwork(graph::Graph physical, Params params,
              std::unique_ptr<mc::TopologyAlgorithm> algorithm);

  DgmcNetwork(const DgmcNetwork&) = delete;
  DgmcNetwork& operator=(const DgmcNetwork&) = delete;

  des::Scheduler& scheduler() { return sched_; }
  const graph::Graph& physical() const { return physical_; }
  int size() const { return physical_.node_count(); }

  core::DgmcSwitch& switch_at(graph::NodeId n);
  const core::DgmcSwitch& switch_at(graph::NodeId n) const;
  const lsr::LocalImage& image_at(graph::NodeId n) const;

  // --- Event injection (at current simulated time) ---

  void join(graph::NodeId at, mc::McId mcid, mc::McType type,
            mc::MemberRole role = mc::MemberRole::kBoth);
  void leave(graph::NodeId at, mc::McId mcid);

  /// Fails a link: marks it down in the physical graph, lets `detector`
  /// (default: the lower-id endpoint, matching the paper's one-detector
  /// accounting) update its image, flood one non-MC LSA, and run
  /// EventHandler for each affected MC. Returns k, the number of MC
  /// LSAs the event triggers.
  int fail_link(graph::LinkId link,
                graph::NodeId detector = graph::kInvalidNode);

  /// Restores a link (floods the non-MC LSA; affects no installed
  /// topology, so k = 0).
  void restore_link(graph::LinkId link,
                    graph::NodeId detector = graph::kInvalidNode);

  /// Crashes a switch: wipes its volatile MC state, tears down its
  /// in-flight computation, kills its interfaces (every up incident
  /// link goes down, with each live neighbor as the detector — the
  /// paper's "nodal event" advertised as incident link failures), and
  /// silences its transport endpoint.
  void crash_switch(graph::NodeId node);

  /// Restarts a crashed switch with empty state: its image is re-seeded
  /// from the current network (standing in for the unicast LSR
  /// database bring-up), the links its crash took down come back up,
  /// and — with `partition_resync` — both ends of every recovered
  /// adjacency flood McSync summaries, from which the switch re-learns
  /// the MC state (including its own pre-crash history) it lost.
  void restart_switch(graph::NodeId node);

  bool switch_alive(graph::NodeId node) const;

  /// Gray-failure injection: silences a switch's transport endpoint —
  /// copies addressed to it evaporate, it stops acking, its pending
  /// retransmissions are abandoned, and LSAs it originates (joins,
  /// link detections, McSync) die at its own interface — while its
  /// protocol state stays alive and keeps evolving locally, stale.
  /// Unlike crash_switch no LSAs advertise the event, so the rest of
  /// the network keeps treating the switch as a valid MC participant:
  /// the canonical stuck-MC scenario the soak watchdog exists to
  /// catch.
  void silence_transport(graph::NodeId node) {
    flooding_.set_node_up(node, false);
  }

  /// Installs a seeded fault plan: loss/jitter hooks on the flooding
  /// transport plus calendar-driven link flaps and switch
  /// crash/restart events. Deterministic per (plan, seed). Call once,
  /// before running; plan times are absolute and must be >= now().
  void install_faults(const fault::FaultPlan& plan, std::uint64_t seed);

  /// Runs the calendar dry. With no pending injections this reaches
  /// protocol quiescence: no LSAs in flight, no computations running.
  void run_to_quiescence() { sched_.run(); }

  /// Loss-aware partial run: executes everything scheduled up to t.
  void run_until(des::SimTime t) { sched_.run_until(t); }

  /// Loss-aware quiescence: nothing left on the calendar *and* no
  /// armed retransmission timers (an armed timer is an undelivered
  /// LSA, so topology agreement checked earlier could still change).
  bool quiescent() const {
    return sched_.empty() && flooding_.retransmit_timers_armed() == 0 &&
           flooding_.queued() == 0;
  }

  // --- Metrics ---

  struct Totals {
    std::uint64_t computations = 0;       // topology computations started
    std::uint64_t mc_lsa_floodings = 0;   // MC LSA flooding operations
    std::uint64_t nonmc_lsa_floodings = 0;
    std::uint64_t sync_floodings = 0;     // partition-resync extension
    std::uint64_t proposals_flooded = 0;
    std::uint64_t proposals_accepted = 0;
    std::uint64_t installs = 0;
  };
  Totals totals() const;

  /// Per-link LSA copies sent by the flooding transport (both MC and
  /// non-MC), for scope comparisons with the hierarchical extension.
  std::uint64_t lsa_link_transmissions() const {
    return flooding_.link_transmissions();
  }

  /// Payload bytes the flooding transport put on links (codec wire
  /// encoding sizes; the batched-vs-unbatched comparison unit).
  std::uint64_t lsa_wire_bytes() const { return flooding_.wire_bytes(); }

  /// Aggregated LSA-batching counters across all switches (zeros when
  /// Params::lsa_batching is off).
  lsr::LsaBatcher::Counters batching_counters() const;

  /// The flooding transport, for reliability metrics (retransmissions,
  /// acks, drops, give-ups).
  const lsr::FloodingNetwork<Payload>& transport() const {
    return flooding_;
  }

  /// The installed fault injector, or nullptr.
  const fault::FaultInjector* faults() const { return injector_.get(); }

  /// Simulated time of the most recent topology installation anywhere.
  des::SimTime last_install_time() const { return last_install_time_; }

  /// Behavior-relevant state hash of the whole network: every switch's
  /// protocol state, link up/down flags, and the flooding transport's
  /// dedup/sequence/retransmission state. Excludes simulated time,
  /// metrics, and in-flight messages (the check::Executor hashes those
  /// from the scheduler's tagged calendar). Used by the explorer to
  /// recognize states already visited via a different interleaving.
  std::uint64_t fingerprint() const;

  /// Relabeled fingerprint (the check subsystem's symmetry reduction):
  /// the hash fingerprint() would produce on a network whose switch and
  /// link ids were renamed through `relabel`. Content digests are
  /// dropped in this mode (they embed switch ids); (origin, seq)
  /// identifies each LSA instead. See DESIGN.md §12.
  std::uint64_t fingerprint(const graph::Permutation& relabel) const;

  /// Tf for this network at the configured per-hop overhead.
  double flooding_diameter() const;

  // --- Checkpoint interface ---

  /// Deep copy of every piece of mutable simulation state: the event
  /// calendar (callbacks included), physical link flags, the flooding
  /// transport, every switch's image + protocol state, the fault
  /// injector's RNG/channel state, and the network-level counters.
  /// Restoring into the same DgmcNetwork resumes the simulation
  /// bit-identically — calendar closures captured `this` pointers into
  /// this network's objects, so a snapshot is only meaningful for the
  /// network it was taken from. check::Checkpoint pools these.
  struct Snapshot {
    des::Scheduler::Snapshot scheduler;
    std::vector<std::uint8_t> physical_links;  // per-link up flags
    lsr::FloodingNetwork<Payload>::Snapshot flooding;
    std::vector<std::vector<std::uint8_t>> images;  // per-host link flags
    std::vector<core::DgmcSwitch::Snapshot> switches;
    std::vector<lsr::LsaBatcher::Snapshot> batchers;
    std::map<mc::McId, std::vector<graph::NodeId>> holders;
    std::unique_ptr<fault::FaultInjector> injector;  // null if none
    std::vector<std::vector<graph::LinkId>> crashed_links;
    std::uint64_t nonmc_floodings = 0;
    std::uint64_t sync_floodings = 0;
    std::uint64_t installs = 0;
    des::SimTime last_install_time = 0.0;
  };

  /// Copies the network's state into `out`, reusing its buffers.
  void save(Snapshot& out) const;

  /// Restores state previously saved from this network.
  void restore(const Snapshot& snap);

  /// True if every switch holding state for `mcid` has the same member
  /// list, timestamp C and installed topology (or no switch holds
  /// state). Call at quiescence.
  bool converged(mc::McId mcid) const;

  /// The agreed topology at quiescence (asserts converged); empty if
  /// the MC is destroyed or has <= 1 member.
  trees::Topology agreed_topology(mc::McId mcid) const;

 private:
  struct Host {
    explicit Host(const graph::Graph& physical) : image(physical) {}
    lsr::LocalImage image;
    std::unique_ptr<core::DgmcSwitch> dgmc;
    std::unique_ptr<lsr::LsaBatcher> batcher;
  };

  void deliver(const lsr::FloodingNetwork<Payload>::Delivery& d);
  graph::NodeId pick_detector(graph::LinkId link,
                              graph::NodeId requested) const;
  void resync_over(const std::vector<graph::NodeId>& endpoints);
  void note_state_created(mc::McId mcid, graph::NodeId at);
  void note_state_destroyed(mc::McId mcid, graph::NodeId at);

  des::Scheduler sched_;
  graph::Graph physical_;
  Params params_;
  std::unique_ptr<mc::TopologyAlgorithm> algorithm_;
  lsr::FloodingNetwork<Payload> flooding_;
  std::vector<Host> hosts_;
  /// mcid -> hosts holding state for it, ascending. Maintained by the
  /// DgmcSwitch state-lifecycle hooks so convergence queries touch
  /// only the holders instead of scanning every switch (the many-MC
  /// hot path; see converged()).
  std::map<mc::McId, std::vector<graph::NodeId>> holders_;
  std::unique_ptr<fault::FaultInjector> injector_;
  /// Links each crashed switch's failure took down, pending restore.
  std::vector<std::vector<graph::LinkId>> crashed_links_;
  std::uint64_t nonmc_floodings_ = 0;
  std::uint64_t sync_floodings_ = 0;
  std::uint64_t installs_ = 0;
  des::SimTime last_install_time_ = 0.0;
};

}  // namespace dgmc::sim
