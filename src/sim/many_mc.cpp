#include "sim/many_mc.hpp"

#include <algorithm>

#include "core/codec.hpp"
#include "core/mc_lsa.hpp"
#include "core/timestamp.hpp"
#include "graph/generators.hpp"
#include "lsr/link_lsa.hpp"
#include "trees/topology.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace dgmc::sim {

namespace {
int clamp_cores(const ManyMcParams& p) {
  return std::max(1, std::min(p.cores, p.switches));
}

// Per-wire-op transport cost around the codec payload, from the real
// datagram layout (net/frame.cpp): a data frame is magic(4) version(1)
// kind(1) sender(4) link(4) origin(4) seq(4) payload_len(4) = 26 bytes
// of framing, and each delivered copy is answered by one 22-byte ack
// frame (magic..link + origin + seq). This is where batching's byte
// win lives: k LSAs in one frame pay the 26 + 22 once instead of k
// times (one batch = one reliability unit).
constexpr std::size_t kDataFrameOverheadBytes = 26;
constexpr std::size_t kAckFrameBytes = 22;

std::size_t wire_op_bytes(std::size_t payload_bytes) {
  return kDataFrameOverheadBytes + payload_bytes + kAckFrameBytes;
}
}  // namespace

ManyMcEngine::ManyMcEngine(ManyMcParams params)
    : params_(params),
      physical_([&params] {
        util::RngStream rng =
            util::RngStream::derive(params.seed, "manymc-graph");
        return graph::random_connected(params.switches, params.avg_degree,
                                       rng);
      }()),
      pool_(static_cast<std::size_t>(std::max(0, params.jobs))),
      churn_rng_(util::RngStream::derive(params.seed, "manymc-churn")),
      records_(params.shards) {
  DGMC_ASSERT(params_.switches >= 2);
  DGMC_ASSERT(params_.mcs >= 1);
  up_links_ = physical_.link_count();
  recompute_core_trees();

  // Honest wire sizes from the real codec at this network's stamp
  // dimension: a membership LSA (no proposal), a proposal LSA as base
  // plus a per-edge slope (both encodings are linear in edge count),
  // and the non-MC link event ad.
  core::McLsa scratch;
  scratch.source = 0;
  scratch.event = core::McEventType::kJoin;
  scratch.mc = 0;
  scratch.stamp = core::VectorTimestamp(params_.switches);
  membership_lsa_bytes_ = core::encoded_size(scratch);
  scratch.event = core::McEventType::kNone;
  scratch.proposal = trees::Topology{};
  proposal_lsa_base_bytes_ = core::encoded_size(scratch);
  scratch.proposal = trees::Topology({graph::Edge{0, 1}});
  proposal_lsa_edge_bytes_ =
      core::encoded_size(scratch) - proposal_lsa_base_bytes_;
  nonmc_lsa_bytes_ = core::encode(lsr::LinkEventAd{0, false}).size();
}

void ManyMcEngine::recompute_core_trees() {
  const int cores = clamp_cores(params_);
  core_trees_.resize(static_cast<std::size_t>(cores));
  exec::parallel_for(pool_, static_cast<std::size_t>(cores),
                     [this](std::size_t i) {
                       core_trees_[i] = graph::dijkstra(
                           physical_, static_cast<graph::NodeId>(i));
                     });
}

void ManyMcEngine::append_core_path(int core, graph::NodeId from,
                                    std::vector<graph::LinkId>& out) const {
  const graph::ShortestPaths& tree =
      core_trees_[static_cast<std::size_t>(core)];
  if (!tree.reachable(from)) return;  // severed by a down link
  graph::NodeId v = from;
  while (v != tree.source) {
    out.push_back(tree.parent_link[static_cast<std::size_t>(v)]);
    v = tree.parent[static_cast<std::size_t>(v)];
  }
}

void ManyMcEngine::rebuild_tree(mc::McId mcid, McRecord& rec) const {
  const int core = static_cast<int>(mcid % clamp_cores(params_));
  rec.tree_links.clear();
  for (const mc::MemberList::Entry& e : rec.members.entries()) {
    append_core_path(core, e.node, rec.tree_links);
  }
  std::sort(rec.tree_links.begin(), rec.tree_links.end());
  rec.tree_links.erase(
      std::unique(rec.tree_links.begin(), rec.tree_links.end()),
      rec.tree_links.end());
}

void ManyMcEngine::account_single_lsa(std::size_t lsa_bytes,
                                      ManyMcStats& into) const {
  // A single-LSA round: the batch frame degenerates to the plain
  // encoding, so both models charge identically.
  const std::uint64_t copies = static_cast<std::uint64_t>(up_links_);
  ++into.mc_lsas;
  into.wire_ops_unbatched += copies;
  into.wire_ops_batched += copies;
  into.wire_bytes_unbatched += copies * wire_op_bytes(lsa_bytes);
  into.wire_bytes_batched += copies * wire_op_bytes(lsa_bytes);
}

void ManyMcEngine::join(mc::McId mcid, graph::NodeId node,
                        mc::MemberRole role) {
  DGMC_ASSERT(physical_.valid_node(node));
  McRecord& rec = records_.get_or_create(mcid);
  rec.members.join(node, role);
  // Graft the member's core path onto the installed tree (incremental
  // join — the full rebuild only happens on leave and link events).
  std::vector<graph::LinkId> path;
  append_core_path(static_cast<int>(mcid % clamp_cores(params_)), node, path);
  rec.tree_links.insert(rec.tree_links.end(), path.begin(), path.end());
  std::sort(rec.tree_links.begin(), rec.tree_links.end());
  rec.tree_links.erase(
      std::unique(rec.tree_links.begin(), rec.tree_links.end()),
      rec.tree_links.end());
  ++stats_.membership_events;
  account_single_lsa(membership_lsa_bytes_, stats_);  // the join LSA
  account_single_lsa(proposal_lsa_base_bytes_ +
                         rec.tree_links.size() * proposal_lsa_edge_bytes_,
                     stats_);  // the computing switch's proposal
}

void ManyMcEngine::leave(mc::McId mcid, graph::NodeId node) {
  McRecord* rec = records_.find(mcid);
  DGMC_ASSERT(rec != nullptr && rec->members.contains(node));
  rec->members.leave(node);
  ++stats_.membership_events;
  account_single_lsa(membership_lsa_bytes_, stats_);  // the leave LSA
  if (rec->members.empty()) {
    records_.erase(mcid);  // destroy-on-empty
    return;
  }
  rebuild_tree(mcid, *rec);
  account_single_lsa(proposal_lsa_base_bytes_ +
                         rec->tree_links.size() * proposal_lsa_edge_bytes_,
                     stats_);
}

void ManyMcEngine::build_population() {
  const int shard_count = records_.shard_count();
  const int members =
      std::min(params_.members_per_mc, params_.switches);
  // Each MC's membership is a pure function of (seed, mcid), and a
  // shard's MCs are exactly the ids ≡ shard (mod shard_count), so the
  // parallel build touches disjoint shards and produces bit-identical
  // records at any (shards, jobs). Wire accounting accumulates into
  // per-shard scratch and merges in shard order.
  std::vector<ManyMcStats> scratch(static_cast<std::size_t>(shard_count));
  exec::parallel_for(
      pool_, static_cast<std::size_t>(shard_count), [&](std::size_t s) {
        for (mc::McId mcid = static_cast<mc::McId>(s);
             mcid < static_cast<mc::McId>(params_.mcs);
             mcid += static_cast<mc::McId>(shard_count)) {
          util::RngStream rng =
              util::RngStream::derive(params_.seed, "manymc-members")
                  .fork(static_cast<std::uint64_t>(mcid));
          std::vector<graph::NodeId> chosen;
          while (static_cast<int>(chosen.size()) < members) {
            const graph::NodeId node = static_cast<graph::NodeId>(
                rng.uniform_int(0, params_.switches - 1));
            if (std::find(chosen.begin(), chosen.end(), node) ==
                chosen.end()) {
              chosen.push_back(node);
            }
          }
          ManyMcStats& into = scratch[s];
          McRecord& rec = records_.get_or_create(mcid);
          for (const graph::NodeId node : chosen) {
            rec.members.join(node, mc::MemberRole::kBoth);
            append_core_path(
                static_cast<int>(mcid % clamp_cores(params_)), node,
                rec.tree_links);
            ++into.membership_events;
            account_single_lsa(membership_lsa_bytes_, into);
          }
          std::sort(rec.tree_links.begin(), rec.tree_links.end());
          rec.tree_links.erase(
              std::unique(rec.tree_links.begin(), rec.tree_links.end()),
              rec.tree_links.end());
          account_single_lsa(proposal_lsa_base_bytes_ +
                                 rec.tree_links.size() *
                                     proposal_lsa_edge_bytes_,
                             into);
        }
      });
  for (const ManyMcStats& s : scratch) {
    stats_.membership_events += s.membership_events;
    stats_.mc_lsas += s.mc_lsas;
    stats_.wire_ops_unbatched += s.wire_ops_unbatched;
    stats_.wire_ops_batched += s.wire_ops_batched;
    stats_.wire_bytes_unbatched += s.wire_bytes_unbatched;
    stats_.wire_bytes_batched += s.wire_bytes_batched;
  }
}

int ManyMcEngine::fail_link(graph::LinkId link) {
  DGMC_ASSERT(link >= 0 && link < physical_.link_count());
  DGMC_ASSERT_MSG(physical_.link(link).up, "link already down");
  physical_.set_link_up(link, false);
  --up_links_;
  recompute_core_trees();
  ++stats_.link_events;
  // The detector's one non-MC LSA (paper §3.1), identical in both
  // models — batching coalesces MC LSAs only.
  const std::uint64_t copies = static_cast<std::uint64_t>(up_links_);
  stats_.wire_ops_unbatched += copies;
  stats_.wire_ops_batched += copies;
  stats_.wire_bytes_unbatched += copies * wire_op_bytes(nonmc_lsa_bytes_);
  stats_.wire_bytes_batched += copies * wire_op_bytes(nonmc_lsa_bytes_);

  // The many-MC hot path: sweep every record, rebuild exactly those
  // whose installed tree used the link. Shards are disjoint, so the
  // sweep fans out across the pool; per-shard findings merge in shard
  // order below.
  // The detecting switch (the paper's one-detector accounting)
  // originates all k MC LSAs of this event in one round — the
  // canonical batching case: same origin, same round, one batch.
  struct ShardScratch {
    std::uint64_t recomputes = 0;
    std::vector<std::size_t> lsa_bytes;  // per affected MC
  };
  const int shard_count = records_.shard_count();
  std::vector<ShardScratch> scratch(static_cast<std::size_t>(shard_count));
  exec::parallel_for(
      pool_, static_cast<std::size_t>(shard_count), [&](std::size_t s) {
        records_.for_each_in_shard(
            static_cast<int>(s), [&](mc::McId mcid, McRecord& rec) {
              if (!std::binary_search(rec.tree_links.begin(),
                                      rec.tree_links.end(), link)) {
                return;
              }
              rebuild_tree(mcid, rec);
              ++scratch[s].recomputes;
              scratch[s].lsa_bytes.push_back(
                  proposal_lsa_base_bytes_ +
                  rec.tree_links.size() * proposal_lsa_edge_bytes_);
            });
      });

  // Unbatched: each of the detector's k LSAs is its own flood (k wire
  // ops per link, k frame headers, k acks). Batched: they share batch
  // frames chunked at core::kMaxBatchLsas. Both sums are built from
  // sizes and counts only, so the shard merge order cannot leak in.
  std::vector<std::size_t> sizes;
  for (const ShardScratch& s : scratch) {
    stats_.mc_recomputes += s.recomputes;
    sizes.insert(sizes.end(), s.lsa_bytes.begin(), s.lsa_bytes.end());
  }
  const int k = static_cast<int>(sizes.size());
  stats_.mc_lsas += static_cast<std::uint64_t>(k);
  for (const std::size_t bytes : sizes) {
    stats_.wire_ops_unbatched += copies;
    stats_.wire_bytes_unbatched += copies * wire_op_bytes(bytes);
    stats_.link_wire_ops_unbatched += copies;
    stats_.link_wire_bytes_unbatched += copies * wire_op_bytes(bytes);
  }
  for (std::size_t begin = 0; begin < sizes.size();
       begin += core::kMaxBatchLsas) {
    const std::size_t end =
        std::min(sizes.size(), begin + core::kMaxBatchLsas);
    std::size_t frame;
    if (end - begin == 1) {  // degenerate single frame
      frame = sizes[begin];
    } else {
      frame = 6;  // batch header: type, version, count
      for (std::size_t i = begin; i < end; ++i) frame += 4 + sizes[i];
    }
    stats_.wire_ops_batched += copies;
    stats_.wire_bytes_batched += copies * wire_op_bytes(frame);
    stats_.link_wire_ops_batched += copies;
    stats_.link_wire_bytes_batched += copies * wire_op_bytes(frame);
  }
  return k;
}

void ManyMcEngine::restore_link(graph::LinkId link) {
  DGMC_ASSERT(link >= 0 && link < physical_.link_count());
  DGMC_ASSERT_MSG(!physical_.link(link).up, "link already up");
  physical_.set_link_up(link, true);
  ++up_links_;
  recompute_core_trees();
  ++stats_.link_events;
  // An up event affects no installed topology (paper: k = 0): one
  // non-MC LSA and nothing else.
  const std::uint64_t copies = static_cast<std::uint64_t>(up_links_);
  stats_.wire_ops_unbatched += copies;
  stats_.wire_ops_batched += copies;
  stats_.wire_bytes_unbatched += copies * wire_op_bytes(nonmc_lsa_bytes_);
  stats_.wire_bytes_batched += copies * wire_op_bytes(nonmc_lsa_bytes_);
}

void ManyMcEngine::churn_round() {
  util::RngStream rng = churn_rng_.fork(churn_rounds_++);
  for (int e = 0; e < params_.churn_events_per_round; ++e) {
    const mc::McId mcid =
        static_cast<mc::McId>(rng.uniform_int(0, params_.mcs - 1));
    McRecord* rec = records_.find(mcid);
    if (rec != nullptr && rec->members.size() > 1 && rng.bernoulli(0.5)) {
      const std::vector<graph::NodeId> members = rec->members.all();
      leave(mcid, members[rng.index(members.size())]);
    } else {
      join(mcid, static_cast<graph::NodeId>(
                     rng.uniform_int(0, params_.switches - 1)));
    }
  }
  const graph::LinkId link = static_cast<graph::LinkId>(
      rng.uniform_int(0, physical_.link_count() - 1));
  if (physical_.link(link).up) {
    fail_link(link);
    restore_link(link);
  }
}

std::uint64_t ManyMcEngine::fingerprint() const {
  std::uint64_t h = 0x9E3779B9u;
  records_.for_each([&](mc::McId mcid, const McRecord& rec) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(mcid) + 1);
    h = util::hash_mix(h, static_cast<std::uint64_t>(rec.type));
    for (const mc::MemberList::Entry& e : rec.members.entries()) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(e.node));
      h = util::hash_mix(h, static_cast<std::uint64_t>(e.role));
    }
    for (const graph::LinkId id : rec.tree_links) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(id) + 7);
    }
    h = util::hash_mix(h, rec.tree_links.size());
  });
  return h;
}

std::size_t ManyMcEngine::record_bytes() const {
  std::size_t total = 0;
  records_.for_each([&](mc::McId, const McRecord& rec) {
    total += sizeof(McRecord);
    total += rec.members.entries().size() * sizeof(mc::MemberList::Entry);
    total += rec.tree_links.size() * sizeof(graph::LinkId);
  });
  return total;
}

}  // namespace dgmc::sim
