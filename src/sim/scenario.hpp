// Scenario DSL: drive a whole D-GMC simulation from a small text
// script (ns-style tooling). Grammar, one statement per line,
// '#' starts a comment:
//
//   network waxman <n> [seed=<u64>]      — or: ring|line|star <n>,
//   network grid <rows> <cols>             complete <n>
//   delay uniform <time>                 — every link's propagation delay
//   delay mean <time>                    — scale generator delays to mean
//   timing tc=<time> perhop=<time>       — computation time, per-hop LSA
//   option algorithm=incremental|fromscratch
//   option resync=on|off                 — partition resynchronization
//   option dualdetect=on|off             — both endpoints detect links
//   at <time> join <switch> mc=<id> [type=symmetric|receiver|asymmetric]
//                            [role=sender|receiver|both]
//   at <time> leave <switch> mc=<id>
//   at <time> fail <u> <v>
//   at <time> restore <u> <v>
//   at <time> send <switch> mc=<id>      — multicast data packet
//   run                                  — run to quiescence, report MCs
//
// `at` times are relative to the end of the previous `run` checkpoint,
// so scripts read top-to-bottom; a final `run` is implicit. Times
// accept s/ms/us suffixes ("25ms", "4us", "1.5s", bare seconds).
// Parsing is total: errors carry the line number and reason.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "des/time.hpp"
#include "graph/graph.hpp"
#include "mc/types.hpp"

namespace dgmc::sim {

struct ScenarioError {
  int line = 0;
  std::string message;
};

/// A parsed, executable scenario.
class Scenario {
 public:
  /// Parses the script; returns the scenario or the first error.
  static std::variant<Scenario, ScenarioError> parse(std::string_view text);

  /// Builds the network, plays every event, and writes a report of each
  /// `run` checkpoint plus a final summary to `out`. Returns false if
  /// any checkpoint found an unconverged MC.
  bool execute(std::FILE* out) const;

  // --- Introspection for tests ---
  int network_size() const { return network_size_; }
  std::size_t event_count() const { return events_.size(); }
  std::size_t checkpoint_count() const { return checkpoints_; }

 private:
  enum class Kind { kJoin, kLeave, kFail, kRestore, kSend };
  struct Event {
    des::SimTime at = 0.0;
    Kind kind = Kind::kJoin;
    graph::NodeId node = graph::kInvalidNode;  // join/leave/send switch
    graph::NodeId peer = graph::kInvalidNode;  // fail/restore other end
    mc::McId mcid = 0;
    mc::McType type = mc::McType::kSymmetric;
    mc::MemberRole role = mc::MemberRole::kBoth;
    int sequence = 0;  // statement order for `run` interleaving
  };

  enum class Topo { kWaxman, kRing, kLine, kStar, kGrid, kComplete };

  graph::Graph build_graph() const;

  Topo topo_ = Topo::kWaxman;
  int network_size_ = 20;
  int grid_rows_ = 0;
  int grid_cols_ = 0;
  std::uint64_t seed_ = 1;
  std::optional<double> uniform_delay_;
  std::optional<double> mean_delay_;
  des::SimTime tc_ = 25e-3;
  double per_hop_ = 4e-6;
  bool incremental_ = true;
  bool resync_ = false;
  bool dual_detect_ = false;
  std::vector<Event> events_;
  std::vector<int> run_points_;  // event sequence numbers of `run`
  std::size_t checkpoints_ = 0;
};

/// Parses "25ms" / "4us" / "1.5s" / "0.25" (seconds). nullopt on junk.
std::optional<double> parse_time(std::string_view token);

}  // namespace dgmc::sim
