#include "sim/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <set>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/dataplane.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::optional<long> parse_int(std::string_view s) {
  long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Splits "key=value"; returns nullopt if there is no '='.
std::optional<std::pair<std::string_view, std::string_view>> split_kv(
    std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) return std::nullopt;
  return std::make_pair(token.substr(0, eq), token.substr(eq + 1));
}

}  // namespace

std::optional<double> parse_time(std::string_view token) {
  double scale = 1.0;
  std::string_view digits = token;
  if (token.size() >= 2 && token.substr(token.size() - 2) == "ms") {
    scale = 1e-3;
    digits = token.substr(0, token.size() - 2);
  } else if (token.size() >= 2 && token.substr(token.size() - 2) == "us") {
    scale = 1e-6;
    digits = token.substr(0, token.size() - 2);
  } else if (token.size() >= 1 && token.back() == 's') {
    digits = token.substr(0, token.size() - 1);
  }
  if (digits.empty()) return std::nullopt;
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  if (v < 0.0) return std::nullopt;
  return v * scale;
}

std::variant<Scenario, ScenarioError> Scenario::parse(
    std::string_view text) {
  Scenario sc;
  int line_no = 0;
  int sequence = 0;
  std::istringstream stream{std::string(text)};
  std::string raw;

  auto fail = [&](std::string message) {
    return ScenarioError{line_no, std::move(message)};
  };

  while (std::getline(stream, raw)) {
    ++line_no;
    const std::vector<std::string> tok = tokenize(raw);
    if (tok.empty()) continue;

    if (tok[0] == "network") {
      if (tok.size() < 3) return fail("network needs a kind and size");
      const auto n = parse_int(tok[2]);
      if (!n || *n < 2 || *n > 10000) return fail("bad network size");
      sc.network_size_ = static_cast<int>(*n);
      if (tok[1] == "waxman") sc.topo_ = Topo::kWaxman;
      else if (tok[1] == "ring") sc.topo_ = Topo::kRing;
      else if (tok[1] == "line") sc.topo_ = Topo::kLine;
      else if (tok[1] == "star") sc.topo_ = Topo::kStar;
      else if (tok[1] == "complete") sc.topo_ = Topo::kComplete;
      else if (tok[1] == "grid") {
        sc.topo_ = Topo::kGrid;
        if (tok.size() < 4) return fail("grid needs rows and cols");
        const auto cols = parse_int(tok[3]);
        if (!cols || *cols < 1) return fail("bad grid cols");
        sc.grid_rows_ = static_cast<int>(*n);
        sc.grid_cols_ = static_cast<int>(*cols);
        sc.network_size_ = sc.grid_rows_ * sc.grid_cols_;
      } else {
        return fail("unknown network kind '" + tok[1] + "'");
      }
      for (std::size_t i = 3 + (sc.topo_ == Topo::kGrid ? 1 : 0);
           i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv || kv->first != "seed") return fail("unknown network arg");
        const auto seed = parse_int(kv->second);
        if (!seed || *seed < 0) return fail("bad seed");
        sc.seed_ = static_cast<std::uint64_t>(*seed);
      }
    } else if (tok[0] == "delay") {
      if (tok.size() != 3) return fail("delay needs mode and value");
      const auto t = parse_time(tok[2]);
      if (!t) return fail("bad delay value");
      if (tok[1] == "uniform") sc.uniform_delay_ = *t;
      else if (tok[1] == "mean") sc.mean_delay_ = *t;
      else return fail("delay mode must be uniform|mean");
    } else if (tok[0] == "timing") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("timing args are key=value");
        const auto t = parse_time(kv->second);
        if (!t) return fail("bad time value");
        if (kv->first == "tc") sc.tc_ = *t;
        else if (kv->first == "perhop") sc.per_hop_ = *t;
        else return fail("unknown timing key");
      }
    } else if (tok[0] == "option") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("option args are key=value");
        if (kv->first == "algorithm") {
          if (kv->second == "incremental") sc.incremental_ = true;
          else if (kv->second == "fromscratch") sc.incremental_ = false;
          else return fail("algorithm must be incremental|fromscratch");
        } else if (kv->first == "resync" || kv->first == "dualdetect") {
          bool value;
          if (kv->second == "on") value = true;
          else if (kv->second == "off") value = false;
          else return fail("expected on|off");
          if (kv->first == "resync") sc.resync_ = value;
          else sc.dual_detect_ = value;
        } else {
          return fail("unknown option '" + std::string(kv->first) + "'");
        }
      }
    } else if (tok[0] == "at") {
      if (tok.size() < 3) return fail("at needs a time and a command");
      const auto t = parse_time(tok[1]);
      if (!t) return fail("bad event time");
      Event ev;
      ev.at = *t;
      ev.sequence = sequence++;
      const std::string& cmd = tok[2];
      if (cmd == "join" || cmd == "leave" || cmd == "send") {
        if (tok.size() < 4) return fail(cmd + " needs a switch id");
        const auto node = parse_int(tok[3]);
        if (!node || *node < 0) return fail("bad switch id");
        ev.node = static_cast<graph::NodeId>(*node);
        ev.kind = cmd == "join"    ? Kind::kJoin
                  : cmd == "leave" ? Kind::kLeave
                                   : Kind::kSend;
        for (std::size_t i = 4; i < tok.size(); ++i) {
          const auto kv = split_kv(tok[i]);
          if (!kv) return fail("event args are key=value");
          if (kv->first == "mc") {
            const auto mcid = parse_int(kv->second);
            if (!mcid || *mcid < 0) return fail("bad mc id");
            ev.mcid = static_cast<mc::McId>(*mcid);
          } else if (kv->first == "type" && cmd == "join") {
            if (kv->second == "symmetric") {
              ev.type = mc::McType::kSymmetric;
            } else if (kv->second == "receiver") {
              ev.type = mc::McType::kReceiverOnly;
              ev.role = mc::MemberRole::kReceiver;
            } else if (kv->second == "asymmetric") {
              ev.type = mc::McType::kAsymmetric;
            } else {
              return fail("unknown MC type");
            }
          } else if (kv->first == "role" && cmd == "join") {
            if (kv->second == "sender") ev.role = mc::MemberRole::kSender;
            else if (kv->second == "receiver") {
              ev.role = mc::MemberRole::kReceiver;
            } else if (kv->second == "both") {
              ev.role = mc::MemberRole::kBoth;
            } else {
              return fail("unknown role");
            }
          } else {
            return fail("unknown event arg '" + std::string(kv->first) +
                        "'");
          }
        }
      } else if (cmd == "fail" || cmd == "restore") {
        if (tok.size() != 5) return fail(cmd + " needs two endpoints");
        const auto u = parse_int(tok[3]);
        const auto v = parse_int(tok[4]);
        if (!u || !v || *u < 0 || *v < 0 || *u == *v) {
          return fail("bad link endpoints");
        }
        ev.kind = cmd == "fail" ? Kind::kFail : Kind::kRestore;
        ev.node = static_cast<graph::NodeId>(*u);
        ev.peer = static_cast<graph::NodeId>(*v);
      } else {
        return fail("unknown command '" + cmd + "'");
      }
      sc.events_.push_back(ev);
    } else if (tok[0] == "run") {
      sc.run_points_.push_back(static_cast<int>(sc.events_.size()));
      ++sc.checkpoints_;
    } else {
      return fail("unknown statement '" + tok[0] + "'");
    }
  }

  // Validate event switch ids against the network size.
  for (const Event& ev : sc.events_) {
    if (ev.node >= sc.network_size_ ||
        (ev.peer != graph::kInvalidNode && ev.peer >= sc.network_size_)) {
      return ScenarioError{0, "event references a switch beyond the "
                              "network size"};
    }
  }
  return sc;
}

graph::Graph Scenario::build_graph() const {
  graph::Graph g;
  switch (topo_) {
    case Topo::kWaxman: {
      util::RngStream rng = util::RngStream::derive(seed_, "scenario");
      g = graph::waxman(network_size_, graph::WaxmanParams{}, rng);
      break;
    }
    case Topo::kRing: g = graph::ring(network_size_); break;
    case Topo::kLine: g = graph::line(network_size_); break;
    case Topo::kStar: g = graph::star(network_size_); break;
    case Topo::kComplete: g = graph::complete(network_size_); break;
    case Topo::kGrid: g = graph::grid(grid_rows_, grid_cols_); break;
  }
  if (uniform_delay_.has_value()) {
    g.set_uniform_delay(*uniform_delay_);
  } else if (mean_delay_.has_value() && graph::mean_link_delay(g) > 0) {
    g.scale_delays(*mean_delay_ / graph::mean_link_delay(g));
  } else {
    g.set_uniform_delay(1e-6);
  }
  return g;
}

bool Scenario::execute(std::FILE* out) const {
  DgmcNetwork::Params params;
  params.per_hop_overhead = per_hop_;
  params.dgmc.computation_time = tc_;
  params.dgmc.partition_resync = resync_;
  params.dual_link_detection = dual_detect_;
  DgmcNetwork net(build_graph(), params,
                  incremental_ ? mc::make_incremental_algorithm()
                               : mc::make_from_scratch_algorithm());
  DataPlane dp(net, DataPlane::Params{per_hop_});

  std::set<mc::McId> mcids;
  for (const Event& ev : events_) mcids.insert(ev.mcid);

  std::vector<std::uint64_t> packets;
  auto play = [&](const Event& ev) {
    net.scheduler().schedule_after(ev.at, [&net, &dp, &packets, ev] {
      switch (ev.kind) {
        case Kind::kJoin:
          net.join(ev.node, ev.mcid, ev.type, ev.role);
          break;
        case Kind::kLeave:
          net.leave(ev.node, ev.mcid);
          break;
        case Kind::kSend:
          packets.push_back(dp.send(ev.mcid, ev.node));
          break;
        case Kind::kFail: {
          const graph::LinkId link =
              net.physical().find_link(ev.node, ev.peer);
          if (link != graph::kInvalidLink && net.physical().link(link).up) {
            net.fail_link(link);
          }
          break;
        }
        case Kind::kRestore: {
          const graph::LinkId link =
              net.physical().find_link(ev.node, ev.peer);
          if (link != graph::kInvalidLink &&
              !net.physical().link(link).up) {
            net.restore_link(link);
          }
          break;
        }
      }
    });
  };

  bool all_converged = true;
  std::size_t next_event = 0;
  int checkpoint = 0;

  auto report = [&]() {
    ++checkpoint;
    std::fprintf(out, "== checkpoint %d (t=%.6fs) ==\n", checkpoint,
                 net.scheduler().now());
    for (mc::McId mcid : mcids) {
      bool known = false;
      for (graph::NodeId n = 0; n < net.size() && !known; ++n) {
        known = net.switch_at(n).has_state(mcid);
      }
      if (!known) {
        std::fprintf(out, "mc %d: destroyed\n", mcid);
        continue;
      }
      const bool converged = net.converged(mcid);
      all_converged = all_converged && converged;
      std::fprintf(out, "mc %d: ", mcid);
      graph::NodeId witness = 0;
      while (!net.switch_at(witness).has_state(mcid)) ++witness;
      std::fprintf(out, "members");
      for (graph::NodeId m :
           net.switch_at(witness).members(mcid)->all()) {
        std::fprintf(out, " %d", m);
      }
      std::fprintf(out, " | %zu edges | converged %s\n",
                   net.switch_at(witness).installed(mcid)->edge_count(),
                   converged ? "yes" : "NO");
    }
    if (!packets.empty()) {
      std::size_t full = 0;
      for (std::uint64_t id : packets) {
        const auto& r = dp.report(id);
        const auto* members =
            net.switch_at(r.source).has_state(r.mcid)
                ? net.switch_at(r.source).members(r.mcid)
                : nullptr;
        if (members != nullptr &&
            dp.delivered_to_all(id, members->all())) {
          ++full;
        }
      }
      std::fprintf(out, "packets: %zu sent, %zu fully delivered\n",
                   packets.size(), full);
      packets.clear();
    }
  };

  std::vector<int> boundaries = run_points_;
  if (boundaries.empty() ||
      boundaries.back() != static_cast<int>(events_.size())) {
    boundaries.push_back(static_cast<int>(events_.size()));
  }
  for (int boundary : boundaries) {
    for (; next_event < static_cast<std::size_t>(boundary); ++next_event) {
      play(events_[next_event]);
    }
    net.run_to_quiescence();
    report();
  }

  const auto totals = net.totals();
  std::fprintf(out,
               "== totals == computations=%llu mc_floodings=%llu "
               "nonmc_floodings=%llu syncs=%llu\n",
               static_cast<unsigned long long>(totals.computations),
               static_cast<unsigned long long>(totals.mc_lsa_floodings),
               static_cast<unsigned long long>(totals.nonmc_lsa_floodings),
               static_cast<unsigned long long>(totals.sync_floodings));
  return all_converged;
}

}  // namespace dgmc::sim
