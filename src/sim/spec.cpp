#include "sim/spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <set>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/algorithms.hpp"
#include "sim/scenario.hpp"  // parse_time
#include "sim/workload.hpp"
#include "util/assert.hpp"

namespace dgmc::sim {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::optional<long> parse_int(std::string_view s) {
  long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_real(std::string_view s) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::pair<std::string_view, std::string_view>> split_kv(
    std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) return std::nullopt;
  return std::make_pair(token.substr(0, eq), token.substr(eq + 1));
}

std::string fmt_real(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Canonical time rendering: full-precision seconds with an "s" suffix,
/// so serialize() -> parse_time round-trips the double exactly.
std::string fmt_time(double seconds) { return fmt_real(seconds) + "s"; }

const char* topo_name(SoakSpec::Topo t) {
  switch (t) {
    case SoakSpec::Topo::kWaxman: return "waxman";
    case SoakSpec::Topo::kRing: return "ring";
    case SoakSpec::Topo::kLine: return "line";
    case SoakSpec::Topo::kStar: return "star";
    case SoakSpec::Topo::kGrid: return "grid";
    case SoakSpec::Topo::kComplete: return "complete";
  }
  return "?";
}

}  // namespace

std::string to_string(const SoakEvent& ev) {
  char buf[96];
  switch (ev.kind) {
    case SoakEvent::Kind::kJoin:
      std::snprintf(buf, sizeof buf, "t=%.6f join %d mc=%d", ev.at, ev.node,
                    ev.mcid);
      break;
    case SoakEvent::Kind::kLeave:
      std::snprintf(buf, sizeof buf, "t=%.6f leave %d mc=%d", ev.at, ev.node,
                    ev.mcid);
      break;
    case SoakEvent::Kind::kFail:
      std::snprintf(buf, sizeof buf, "t=%.6f fail link=%d", ev.at, ev.link);
      break;
    case SoakEvent::Kind::kRestore:
      std::snprintf(buf, sizeof buf, "t=%.6f restore link=%d", ev.at, ev.link);
      break;
    case SoakEvent::Kind::kCrash:
      std::snprintf(buf, sizeof buf, "t=%.6f crash %d", ev.at, ev.node);
      break;
    case SoakEvent::Kind::kRestart:
      std::snprintf(buf, sizeof buf, "t=%.6f restart %d", ev.at, ev.node);
      break;
  }
  return buf;
}

std::variant<SoakSpec, SpecError> SoakSpec::parse(std::string_view text) {
  SoakSpec sp;
  int line_no = 0;
  std::vector<int> churn_lines;  // source line of each churn program
  std::istringstream stream{std::string(text)};
  std::string raw;

  auto fail = [&](std::string message) {
    return SpecError{line_no, std::move(message)};
  };

  while (std::getline(stream, raw)) {
    ++line_no;
    const std::vector<std::string> tok = tokenize(raw);
    if (tok.empty()) continue;

    if (tok[0] == "name") {
      if (tok.size() != 2) return fail("name needs one identifier");
      sp.name = tok[1];
    } else if (tok[0] == "network") {
      if (tok.size() < 3) return fail("network needs a kind and size");
      const auto n = parse_int(tok[2]);
      if (!n || *n < 2 || *n > 10000) return fail("bad network size");
      sp.network_size = static_cast<int>(*n);
      std::size_t arg0 = 3;
      if (tok[1] == "waxman") sp.topo = Topo::kWaxman;
      else if (tok[1] == "ring") sp.topo = Topo::kRing;
      else if (tok[1] == "line") sp.topo = Topo::kLine;
      else if (tok[1] == "star") sp.topo = Topo::kStar;
      else if (tok[1] == "complete") sp.topo = Topo::kComplete;
      else if (tok[1] == "grid") {
        sp.topo = Topo::kGrid;
        if (tok.size() < 4) return fail("grid needs rows and cols");
        const auto cols = parse_int(tok[3]);
        if (!cols || *cols < 1) return fail("bad grid cols");
        sp.grid_rows = static_cast<int>(*n);
        sp.grid_cols = static_cast<int>(*cols);
        sp.network_size = sp.grid_rows * sp.grid_cols;
        arg0 = 4;
      } else {
        return fail("unknown network kind '" + tok[1] + "'");
      }
      for (std::size_t i = arg0; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv || kv->first != "seed") return fail("unknown network arg");
        const auto seed = parse_int(kv->second);
        if (!seed || *seed < 0) return fail("bad seed");
        sp.topo_seed = static_cast<std::uint64_t>(*seed);
      }
    } else if (tok[0] == "delay") {
      if (tok.size() != 3) return fail("delay needs mode and value");
      const auto t = parse_time(tok[2]);
      if (!t) return fail("bad delay value");
      if (tok[1] == "uniform") sp.uniform_delay = *t;
      else if (tok[1] == "mean") sp.mean_delay = *t;
      else return fail("delay mode must be uniform|mean");
    } else if (tok[0] == "timing") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("timing args are key=value");
        const auto t = parse_time(kv->second);
        if (!t) return fail("bad time value");
        if (kv->first == "tc") sp.tc = *t;
        else if (kv->first == "perhop") sp.per_hop = *t;
        else return fail("unknown timing key");
      }
    } else if (tok[0] == "option") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("option args are key=value");
        if (kv->first == "algorithm") {
          if (kv->second == "incremental") sp.incremental = true;
          else if (kv->second == "fromscratch") sp.incremental = false;
          else return fail("algorithm must be incremental|fromscratch");
        } else if (kv->first == "resync" || kv->first == "dualdetect" ||
                   kv->first == "reliable" || kv->first == "batching") {
          bool value;
          if (kv->second == "on") value = true;
          else if (kv->second == "off") value = false;
          else return fail("expected on|off");
          if (kv->first == "resync") sp.resync = value;
          else if (kv->first == "dualdetect") sp.dual_detect = value;
          else if (kv->first == "batching") sp.lsa_batching = value;
          else sp.reliable = value;
        } else {
          return fail("unknown option '" + std::string(kv->first) + "'");
        }
      }
    } else if (tok[0] == "overload") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("overload args are key=value");
        const auto n = parse_int(kv->second);
        if (!n || *n < 0) return fail("bad overload value");
        if (kv->first == "inflight") {
          sp.overload.max_inflight_per_link = static_cast<int>(*n);
        } else if (kv->first == "queue") {
          sp.overload.max_queue_per_link = static_cast<int>(*n);
        } else if (kv->first == "dedupcap") {
          sp.overload.max_dedup_ahead = static_cast<std::size_t>(*n);
        } else {
          return fail("unknown overload key '" + std::string(kv->first) + "'");
        }
      }
    } else if (tok[0] == "soak") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("soak args are key=value");
        if (kv->first == "duration") {
          const auto t = parse_time(kv->second);
          if (!t || *t <= 0.0) return fail("bad duration");
          sp.duration = *t;
        } else if (kv->first == "phases") {
          const auto n = parse_int(kv->second);
          if (!n || *n < 1) return fail("bad phase count");
          sp.phases = static_cast<int>(*n);
        } else if (kv->first == "trials") {
          const auto n = parse_int(kv->second);
          if (!n || *n < 1) return fail("bad trial count");
          sp.trials = static_cast<int>(*n);
        } else if (kv->first == "seed") {
          const auto n = parse_int(kv->second);
          if (!n || *n < 0) return fail("bad seed");
          sp.soak_seed = static_cast<std::uint64_t>(*n);
        } else {
          return fail("unknown soak key '" + std::string(kv->first) + "'");
        }
      }
    } else if (tok[0] == "watchdog") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv || kv->first != "deadline") {
          return fail("watchdog takes deadline=<time>");
        }
        const auto t = parse_time(kv->second);
        if (!t || *t <= 0.0) return fail("bad watchdog deadline");
        sp.watchdog_deadline = *t;
      }
    } else if (tok[0] == "budget") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("budget args are key=value");
        if (kv->first == "rss_mb") {
          const auto v = parse_real(kv->second);
          if (!v || *v <= 0.0) return fail("bad rss budget");
          sp.budgets.rss_growth_mb = *v;
        } else {
          const auto n = parse_int(kv->second);
          if (!n || *n < 0) return fail("bad budget value");
          if (kv->first == "dedup") {
            sp.budgets.dedup_backlog = static_cast<std::size_t>(*n);
          } else if (kv->first == "pending") {
            sp.budgets.pending_retransmits = static_cast<std::size_t>(*n);
          } else {
            return fail("unknown budget key '" + std::string(kv->first) + "'");
          }
        }
      }
    } else if (tok[0] == "fault") {
      std::size_t arg0 = 1;
      const bool burst = tok.size() > 1 && tok[1] == "burst";
      if (burst) {
        sp.faults.use_burst = true;
        arg0 = 2;
      }
      for (std::size_t i = arg0; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("fault args are key=value");
        if (!burst && kv->first == "jitter") {
          const auto t = parse_time(kv->second);
          if (!t) return fail("bad jitter value");
          sp.faults.max_extra_delay = *t;
          continue;
        }
        const auto p = parse_real(kv->second);
        if (!p || *p < 0.0 || *p > 1.0) return fail("bad probability");
        if (!burst && kv->first == "loss") sp.faults.iid_loss = *p;
        else if (burst && kv->first == "pgb") sp.faults.burst.p_good_to_bad = *p;
        else if (burst && kv->first == "pbg") sp.faults.burst.p_bad_to_good = *p;
        else if (burst && kv->first == "lossgood") sp.faults.burst.loss_good = *p;
        else if (burst && kv->first == "lossbad") sp.faults.burst.loss_bad = *p;
        else return fail("unknown fault key '" + std::string(kv->first) + "'");
      }
    } else if (tok[0] == "churn") {
      if (tok.size() < 2) return fail("churn needs a program kind");
      ChurnProgram p;
      if (tok[1] == "flashcrowd") p.kind = ChurnProgram::Kind::kFlashCrowd;
      else if (tok[1] == "poisson") p.kind = ChurnProgram::Kind::kPoisson;
      else if (tok[1] == "drift") p.kind = ChurnProgram::Kind::kDrift;
      else if (tok[1] == "rolling") p.kind = ChurnProgram::Kind::kRolling;
      else if (tok[1] == "manymc") p.kind = ChurnProgram::Kind::kManyMc;
      else return fail("unknown churn program '" + tok[1] + "'");
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto kv = split_kv(tok[i]);
        if (!kv) return fail("churn args are key=value");
        const std::string key(kv->first);
        auto want_int = [&]() { return parse_int(kv->second); };
        auto want_real = [&]() { return parse_real(kv->second); };
        auto want_time = [&]() { return parse_time(kv->second); };
        if (key == "mc") {
          const auto n = want_int();
          if (!n || *n < 0) return fail("bad mc id");
          p.mcid = static_cast<mc::McId>(*n);
        } else if (key == "start") {
          const auto t = want_time();
          if (!t) return fail("bad start time");
          p.start = *t;
        } else if (key == "members") {
          const auto n = want_int();
          if (!n || *n < 1) return fail("bad member count");
          p.members = static_cast<int>(*n);
        } else if (key == "alpha") {
          const auto v = want_real();
          if (!v || *v <= 0.0) return fail("bad pareto alpha");
          p.alpha = *v;
        } else if (key == "scale") {
          const auto t = want_time();
          if (!t || *t <= 0.0) return fail("bad pareto scale");
          p.scale = *t;
        } else if (key == "type") {
          if (kv->second == "symmetric") p.type = mc::McType::kSymmetric;
          else if (kv->second == "receiver") {
            p.type = mc::McType::kReceiverOnly;
            p.role = mc::MemberRole::kReceiver;
          } else if (kv->second == "asymmetric") {
            p.type = mc::McType::kAsymmetric;
          } else {
            return fail("unknown MC type");
          }
        } else if (key == "role") {
          if (kv->second == "sender") p.role = mc::MemberRole::kSender;
          else if (kv->second == "receiver") p.role = mc::MemberRole::kReceiver;
          else if (kv->second == "both") p.role = mc::MemberRole::kBoth;
          else return fail("unknown role");
        } else if (key == "events") {
          const auto n = want_int();
          if (!n || *n < 0) return fail("bad event count");
          p.events = static_cast<int>(*n);
        } else if (key == "gap") {
          const auto t = want_time();
          if (!t || *t <= 0.0) return fail("bad gap");
          p.gap = *t;
        } else if (key == "links") {
          const auto n = want_int();
          if (!n || *n < 1) return fail("bad link count");
          p.links = static_cast<int>(*n);
        } else if (key == "period") {
          const auto t = want_time();
          if (!t || *t <= 0.0) return fail("bad period");
          p.period = *t;
        } else if (key == "sigma") {
          const auto v = want_real();
          if (!v || *v < 0.0) return fail("bad sigma");
          p.sigma = *v;
        } else if (key == "down") {
          const auto v = want_real();
          if (!v || *v <= 0.0) return fail("bad down threshold");
          p.down_threshold = *v;
        } else if (key == "up") {
          const auto v = want_real();
          if (!v || *v <= 0.0) return fail("bad up threshold");
          p.up_threshold = *v;
        } else if (key == "interval") {
          const auto t = want_time();
          if (!t || *t <= 0.0) return fail("bad interval");
          p.interval = *t;
        } else if (key == "downtime") {
          const auto t = want_time();
          if (!t || *t <= 0.0) return fail("bad downtime");
          p.downtime = *t;
        } else if (key == "count") {
          const auto n = want_int();
          if (!n || *n < 0) return fail("bad count");
          p.count = static_cast<int>(*n);
        } else if (key == "mcs") {
          const auto n = want_int();
          if (!n || *n < 1) return fail("bad mc count");
          p.mcs = static_cast<int>(*n);
        } else {
          return fail("unknown churn key '" + key + "'");
        }
      }
      if (p.kind == ChurnProgram::Kind::kDrift &&
          p.up_threshold >= p.down_threshold) {
        return fail("drift needs up < down (the hysteresis band)");
      }
      sp.churn.push_back(p);
      churn_lines.push_back(line_no);
    } else {
      return fail("unknown statement '" + tok[0] + "'");
    }
  }

  // --- whole-spec validation (blamed on the offending churn line) ---
  std::set<mc::McId> membership_mcs;
  for (std::size_t pi = 0; pi < sp.churn.size(); ++pi) {
    const ChurnProgram& p = sp.churn[pi];
    line_no = churn_lines[pi];
    const bool membership = p.kind == ChurnProgram::Kind::kFlashCrowd ||
                            p.kind == ChurnProgram::Kind::kPoisson ||
                            p.kind == ChurnProgram::Kind::kManyMc;
    if (membership) {
      const int span = p.kind == ChurnProgram::Kind::kManyMc ? p.mcs : 1;
      for (int m = 0; m < span; ++m) {
        if (!membership_mcs.insert(p.mcid + m).second) {
          return fail("mc " + std::to_string(p.mcid + m) +
                      " appears in more than one membership program");
        }
      }
      if (p.kind == ChurnProgram::Kind::kManyMc &&
          p.members > sp.network_size) {
        return fail("manymc members exceed the network size");
      }
      if (p.kind == ChurnProgram::Kind::kFlashCrowd &&
          p.members > sp.network_size) {
        return fail("flashcrowd members exceed the network size");
      }
      if (p.kind == ChurnProgram::Kind::kPoisson) {
        if (p.members < 2) return fail("poisson needs members >= 2");
        if (p.members + p.events > sp.network_size) {
          return fail("poisson members + events exceed the network size "
                      "(each node is used at most once)");
        }
      }
    }
    if (p.kind == ChurnProgram::Kind::kRolling &&
        p.count > sp.network_size) {
      return fail("rolling count exceeds the network size");
    }
  }
  if (sp.network_size < 3 && !membership_mcs.empty()) {
    return fail("membership churn needs a network of at least 3 switches");
  }
  return sp;
}

std::string SoakSpec::serialize() const {
  std::string out;
  auto line = [&](const std::string& s) { out += s + "\n"; };
  line("# dgmc soak spec v1");
  line("name " + name);
  {
    std::string net = std::string("network ") + topo_name(topo) + " ";
    if (topo == Topo::kGrid) {
      net += std::to_string(grid_rows) + " " + std::to_string(grid_cols);
    } else {
      net += std::to_string(network_size);
    }
    net += " seed=" + std::to_string(topo_seed);
    line(net);
  }
  if (uniform_delay.has_value()) line("delay uniform " + fmt_time(*uniform_delay));
  if (mean_delay.has_value()) line("delay mean " + fmt_time(*mean_delay));
  line("timing tc=" + fmt_time(tc) + " perhop=" + fmt_time(per_hop));
  line(std::string("option algorithm=") +
       (incremental ? "incremental" : "fromscratch") +
       " resync=" + (resync ? "on" : "off") +
       " dualdetect=" + (dual_detect ? "on" : "off") +
       " reliable=" + (reliable ? "on" : "off") +
       " batching=" + (lsa_batching ? "on" : "off"));
  if (overload.max_inflight_per_link > 0 || overload.max_queue_per_link > 0 ||
      overload.max_dedup_ahead > 0) {
    line("overload inflight=" + std::to_string(overload.max_inflight_per_link) +
         " queue=" + std::to_string(overload.max_queue_per_link) +
         " dedupcap=" + std::to_string(overload.max_dedup_ahead));
  }
  line("soak duration=" + fmt_time(duration) +
       " phases=" + std::to_string(phases) +
       " trials=" + std::to_string(trials) +
       " seed=" + std::to_string(soak_seed));
  line("watchdog deadline=" + fmt_time(watchdog_deadline));
  line("budget dedup=" + std::to_string(budgets.dedup_backlog) +
       " pending=" + std::to_string(budgets.pending_retransmits) +
       " rss_mb=" + fmt_real(budgets.rss_growth_mb));
  if (faults.iid_loss > 0.0 || faults.max_extra_delay > 0.0) {
    line("fault loss=" + fmt_real(faults.iid_loss) +
         " jitter=" + fmt_time(faults.max_extra_delay));
  }
  if (faults.use_burst) {
    line("fault burst pgb=" + fmt_real(faults.burst.p_good_to_bad) +
         " pbg=" + fmt_real(faults.burst.p_bad_to_good) +
         " lossgood=" + fmt_real(faults.burst.loss_good) +
         " lossbad=" + fmt_real(faults.burst.loss_bad));
  }
  for (const ChurnProgram& p : churn) {
    switch (p.kind) {
      case ChurnProgram::Kind::kFlashCrowd: {
        std::string s = "churn flashcrowd mc=" + std::to_string(p.mcid) +
                        " start=" + fmt_time(p.start) +
                        " members=" + std::to_string(p.members) +
                        " alpha=" + fmt_real(p.alpha) +
                        " scale=" + fmt_time(p.scale);
        if (p.type == mc::McType::kReceiverOnly) s += " type=receiver";
        else if (p.type == mc::McType::kAsymmetric) s += " type=asymmetric";
        if (p.type != mc::McType::kReceiverOnly) {
          if (p.role == mc::MemberRole::kSender) s += " role=sender";
          else if (p.role == mc::MemberRole::kReceiver) s += " role=receiver";
        }
        line(s);
        break;
      }
      case ChurnProgram::Kind::kPoisson:
        line("churn poisson mc=" + std::to_string(p.mcid) +
             " start=" + fmt_time(p.start) +
             " members=" + std::to_string(p.members) +
             " events=" + std::to_string(p.events) +
             " gap=" + fmt_time(p.gap));
        break;
      case ChurnProgram::Kind::kDrift:
        line("churn drift links=" + std::to_string(p.links) +
             " period=" + fmt_time(p.period) +
             " sigma=" + fmt_real(p.sigma) +
             " down=" + fmt_real(p.down_threshold) +
             " up=" + fmt_real(p.up_threshold));
        break;
      case ChurnProgram::Kind::kRolling:
        line("churn rolling start=" + fmt_time(p.start) +
             " interval=" + fmt_time(p.interval) +
             " downtime=" + fmt_time(p.downtime) +
             " count=" + std::to_string(p.count));
        break;
      case ChurnProgram::Kind::kManyMc: {
        std::string s = "churn manymc mc=" + std::to_string(p.mcid) +
                        " mcs=" + std::to_string(p.mcs) +
                        " start=" + fmt_time(p.start) +
                        " members=" + std::to_string(p.members) +
                        " gap=" + fmt_time(p.gap);
        if (p.type == mc::McType::kReceiverOnly) s += " type=receiver";
        else if (p.type == mc::McType::kAsymmetric) s += " type=asymmetric";
        if (p.type != mc::McType::kReceiverOnly) {
          if (p.role == mc::MemberRole::kSender) s += " role=sender";
          else if (p.role == mc::MemberRole::kReceiver) s += " role=receiver";
        }
        line(s);
        break;
      }
    }
  }
  return out;
}

graph::Graph SoakSpec::build_graph() const {
  graph::Graph g;
  switch (topo) {
    case Topo::kWaxman: {
      util::RngStream rng = util::RngStream::derive(topo_seed, "scenario");
      g = graph::waxman(network_size, graph::WaxmanParams{}, rng);
      break;
    }
    case Topo::kRing: g = graph::ring(network_size); break;
    case Topo::kLine: g = graph::line(network_size); break;
    case Topo::kStar: g = graph::star(network_size); break;
    case Topo::kComplete: g = graph::complete(network_size); break;
    case Topo::kGrid: g = graph::grid(grid_rows, grid_cols); break;
  }
  if (uniform_delay.has_value()) {
    g.set_uniform_delay(*uniform_delay);
  } else if (mean_delay.has_value() && graph::mean_link_delay(g) > 0) {
    g.scale_delays(*mean_delay / graph::mean_link_delay(g));
  } else {
    g.set_uniform_delay(1e-6);
  }
  return g;
}

DgmcNetwork::Params SoakSpec::network_params() const {
  DgmcNetwork::Params params;
  params.per_hop_overhead = per_hop;
  params.dgmc.computation_time = tc;
  params.dgmc.partition_resync = resync;
  params.dual_link_detection = dual_detect;
  params.reliable.enabled = reliable;
  params.lsa_batching = lsa_batching;
  params.overload = overload;
  return params;
}

std::vector<mc::McId> SoakSpec::mcs() const {
  std::vector<mc::McId> out;
  for (const ChurnProgram& p : churn) {
    if (p.kind == ChurnProgram::Kind::kFlashCrowd ||
        p.kind == ChurnProgram::Kind::kPoisson) {
      out.push_back(p.mcid);
    } else if (p.kind == ChurnProgram::Kind::kManyMc) {
      for (int m = 0; m < p.mcs; ++m) out.push_back(p.mcid + m);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// --- ChurnEngine ---

ChurnEngine::ChurnEngine(const SoakSpec& spec, const graph::Graph& graph,
                         std::uint64_t seed) {
  const util::RngStream base = util::RngStream::derive(seed, "churn");
  programs_.reserve(spec.churn.size());
  for (std::size_t i = 0; i < spec.churn.size(); ++i) {
    Program p{spec.churn[i], base.fork(i), {}, 0, {}, {}, {}, 0.0};
    build_schedule(p, graph, spec.network_size);
    programs_.push_back(std::move(p));
  }
}

void ChurnEngine::build_schedule(Program& p, const graph::Graph& graph,
                                 int n) {
  switch (p.cfg.kind) {
    case ChurnProgram::Kind::kFlashCrowd: {
      // A heavy-tailed join storm: `members` distinct switches arrive
      // with Pareto(alpha, scale) interarrivals — most of the crowd
      // lands in a burst, a few stragglers trail far behind.
      std::vector<graph::NodeId> nodes(n);
      for (graph::NodeId i = 0; i < n; ++i) nodes[i] = i;
      p.rng.shuffle(nodes);
      des::SimTime t = p.cfg.start;
      const int storm = std::min(p.cfg.members, n);
      for (int i = 0; i < storm; ++i) {
        SoakEvent ev;
        ev.at = t;
        ev.kind = SoakEvent::Kind::kJoin;
        ev.node = nodes[static_cast<std::size_t>(i)];
        ev.mcid = p.cfg.mcid;
        ev.type = p.cfg.type;
        ev.role = p.cfg.role;
        p.schedule.push_back(ev);
        // Pareto sample with minimum `scale`: scale * (1-u)^(-1/alpha).
        const double u = p.rng.uniform01();
        t += p.cfg.scale * std::pow(1.0 - u, -1.0 / p.cfg.alpha);
      }
      break;
    }
    case ChurnProgram::Kind::kPoisson: {
      const std::vector<graph::NodeId> initial =
          random_members(n, std::min(p.cfg.members, n), p.rng);
      for (graph::NodeId m : initial) {
        SoakEvent ev;
        ev.at = p.cfg.start;
        ev.kind = SoakEvent::Kind::kJoin;
        ev.node = m;
        ev.mcid = p.cfg.mcid;
        ev.type = p.cfg.type;
        ev.role = p.cfg.role;
        p.schedule.push_back(ev);
      }
      for (const MembershipEvent& m : poisson_membership(
               n, initial, p.cfg.events, p.cfg.gap, p.cfg.role, p.rng)) {
        SoakEvent ev;
        ev.at = p.cfg.start + m.at;
        ev.kind = m.join ? SoakEvent::Kind::kJoin : SoakEvent::Kind::kLeave;
        ev.node = m.node;
        ev.mcid = p.cfg.mcid;
        ev.type = p.cfg.type;
        ev.role = m.role;
        p.schedule.push_back(ev);
      }
      break;
    }
    case ChurnProgram::Kind::kDrift: {
      // Seeded pick of the drifting links; cost state starts from the
      // graph's own costs. Ticks are generated lazily per window.
      std::vector<graph::LinkId> all(
          static_cast<std::size_t>(graph.link_count()));
      for (graph::LinkId i = 0; i < graph.link_count(); ++i) {
        all[static_cast<std::size_t>(i)] = i;
      }
      p.rng.shuffle(all);
      const std::size_t take = std::min<std::size_t>(
          all.size(), static_cast<std::size_t>(p.cfg.links));
      p.drift_links.assign(all.begin(), all.begin() + take);
      p.cost.reserve(take);
      for (graph::LinkId id : p.drift_links) {
        p.cost.push_back(graph.link(id).cost);
      }
      p.down.assign(take, 0);
      p.next_tick = p.cfg.start + p.cfg.period;
      break;
    }
    case ChurnProgram::Kind::kRolling: {
      // A seeded permutation restarts one switch every `interval`.
      std::vector<graph::NodeId> order(n);
      for (graph::NodeId i = 0; i < n; ++i) order[i] = i;
      p.rng.shuffle(order);
      const int waves = p.cfg.count > 0 ? std::min(p.cfg.count, n) : n;
      for (int i = 0; i < waves; ++i) {
        const des::SimTime crash_at = p.cfg.start + i * p.cfg.interval;
        SoakEvent ev;
        ev.node = order[static_cast<std::size_t>(i)];
        ev.at = crash_at;
        ev.kind = SoakEvent::Kind::kCrash;
        p.schedule.push_back(ev);
        ev.at = crash_at + p.cfg.downtime;
        ev.kind = SoakEvent::Kind::kRestart;
        p.schedule.push_back(ev);
      }
      // downtime may exceed interval: restore time order.
      std::stable_sort(p.schedule.begin(), p.schedule.end(),
                       [](const SoakEvent& a, const SoakEvent& b) {
                         return a.at < b.at;
                       });
      break;
    }
    case ChurnProgram::Kind::kManyMc: {
      // The many-MC population: MC base+i is created at start + i*gap
      // by `members` distinct seeded switches joining in one burst.
      for (int m = 0; m < p.cfg.mcs; ++m) {
        const std::vector<graph::NodeId> nodes =
            random_members(n, std::min(p.cfg.members, n), p.rng);
        for (graph::NodeId node : nodes) {
          SoakEvent ev;
          ev.at = p.cfg.start + m * p.cfg.gap;
          ev.kind = SoakEvent::Kind::kJoin;
          ev.node = node;
          ev.mcid = p.cfg.mcid + m;
          ev.type = p.cfg.type;
          ev.role = p.cfg.role;
          p.schedule.push_back(ev);
        }
      }
      break;
    }
  }
}

void ChurnEngine::drift_window(Program& p, des::SimTime from, des::SimTime to,
                               std::vector<SoakEvent>* out) {
  (void)from;  // ticks advance monotonically; windows are contiguous
  while (p.next_tick < to) {
    for (std::size_t i = 0; i < p.drift_links.size(); ++i) {
      p.cost[i] += p.rng.uniform_real(-p.cfg.sigma, p.cfg.sigma);
      p.cost[i] = std::max(p.cost[i], 0.01);
      SoakEvent ev;
      ev.at = p.next_tick;
      ev.link = p.drift_links[i];
      if (p.down[i] == 0 && p.cost[i] >= p.cfg.down_threshold) {
        p.down[i] = 1;
        ev.kind = SoakEvent::Kind::kFail;
        out->push_back(ev);
      } else if (p.down[i] != 0 && p.cost[i] <= p.cfg.up_threshold) {
        p.down[i] = 0;
        ev.kind = SoakEvent::Kind::kRestore;
        out->push_back(ev);
      }
    }
    p.next_tick += p.cfg.period;
  }
}

std::vector<SoakEvent> ChurnEngine::phase_events(des::SimTime from,
                                                 des::SimTime to) {
  DGMC_ASSERT_MSG(from >= cursor_, "phase windows must be increasing");
  DGMC_ASSERT(to >= from);
  cursor_ = to;
  std::vector<std::pair<std::size_t, SoakEvent>> merged;
  for (std::size_t pi = 0; pi < programs_.size(); ++pi) {
    Program& p = programs_[pi];
    if (p.cfg.kind == ChurnProgram::Kind::kDrift) {
      std::vector<SoakEvent> events;
      drift_window(p, from, to, &events);
      for (const SoakEvent& ev : events) merged.emplace_back(pi, ev);
      continue;
    }
    while (p.next < p.schedule.size() && p.schedule[p.next].at < to) {
      if (p.schedule[p.next].at >= from) {
        merged.emplace_back(pi, p.schedule[p.next]);
      }
      ++p.next;
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second.at != b.second.at) {
                       return a.second.at < b.second.at;
                     }
                     return a.first < b.first;
                   });
  std::vector<SoakEvent> out;
  out.reserve(merged.size());
  for (auto& [pi, ev] : merged) out.push_back(ev);
  return out;
}

std::vector<SoakEvent> ChurnEngine::expand_all(const SoakSpec& spec,
                                               const graph::Graph& graph,
                                               std::uint64_t seed) {
  ChurnEngine engine(spec, graph, seed);
  return engine.phase_events(0.0, spec.duration);
}

}  // namespace dgmc::sim
