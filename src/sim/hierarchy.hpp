// Hierarchical D-GMC (extension).
//
// Paper §2: "LSR-based MC protocols ... are not intended for direct
// implementation in very large networks ... Scalability can be
// addressed by introducing a routing hierarchy into large networks.
// The combination of an LSR protocol and routing hierarchy is under
// consideration for the ATM PNNI standard. In this paper, we present
// the 'basic' D-GMC protocol; its extension to hierarchical networks
// is part of our ongoing work."
//
// This module realizes a two-level hierarchy in the PNNI style:
//
//  * The switches are partitioned into *areas* (peer groups). Each area
//    runs an independent D-GMC instance whose LSAs flood only across
//    intra-area links, and whose topology computations see only the
//    area's subgraph.
//  * One *border switch* per area represents it at level 2. Border
//    switches run a second D-GMC instance over an aggregated backbone
//    graph: one virtual link per pair of physically adjacent areas,
//    with delay equal to the physical shortest-path delay between the
//    border switches (PNNI-style aggregation).
//  * An MC with members in an area is realized as an intra-area MC over
//    {members of the area} ∪ {the area's border switch}, plus a
//    backbone MC over the border switches of all involved areas. The
//    global delivery tree is the union of the area trees with the
//    backbone tree's virtual edges expanded into physical paths.
//
// The payoff measured by bench/table_hierarchy: a membership event
// floods one LSA across its area (plus, on the first/last member of an
// area, one across the backbone) instead of across the whole network —
// per-event LSA deliveries drop from Θ(n) to Θ(area size).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/protocol.hpp"
#include "des/scheduler.hpp"
#include "graph/graph.hpp"
#include "lsr/flooding.hpp"
#include "mc/algorithm.hpp"

namespace dgmc::sim {

class HierarchicalNetwork {
 public:
  struct Params {
    double per_hop_overhead = 0.0;
    core::DgmcConfig dgmc;
  };

  /// `areas[n]` is node n's area id (0-based, contiguous). Every area's
  /// subgraph must be connected and every area must touch another area
  /// (single-area networks degenerate to flat D-GMC).
  HierarchicalNetwork(graph::Graph physical, std::vector<int> areas,
                      Params params,
                      std::unique_ptr<mc::TopologyAlgorithm> algorithm);

  HierarchicalNetwork(const HierarchicalNetwork&) = delete;
  HierarchicalNetwork& operator=(const HierarchicalNetwork&) = delete;

  des::Scheduler& scheduler() { return sched_; }
  const graph::Graph& physical() const { return physical_; }
  int size() const { return physical_.node_count(); }
  int area_count() const { return area_count_; }
  int area_of(graph::NodeId n) const { return areas_[n]; }
  graph::NodeId border_of(int area) const { return borders_[area]; }

  void join(graph::NodeId at, mc::McId mcid, mc::McType type,
            mc::MemberRole role = mc::MemberRole::kBoth);
  void leave(graph::NodeId at, mc::McId mcid);

  void run_to_quiescence() { sched_.run(); }

  struct Totals {
    std::uint64_t computations = 0;
    std::uint64_t mc_lsa_floodings = 0;
    std::uint64_t lsa_deliveries = 0;         // per-switch LSA receptions
    std::uint64_t link_transmissions = 0;     // per-link LSA copies
  };
  Totals totals() const;

  /// All involved area MCs and the backbone MC are internally
  /// converged.
  bool converged(mc::McId mcid) const;

  /// The glued global delivery topology: union of agreed area trees
  /// plus the backbone tree with virtual edges expanded into physical
  /// shortest paths. Asserts converged().
  trees::Topology global_topology(mc::McId mcid) const;

  /// The real members (excluding infrastructure border joins).
  std::vector<graph::NodeId> members(mc::McId mcid) const;

  /// Does the glued topology connect all members (the end-to-end
  /// service check)?
  bool serves_members(mc::McId mcid) const;

 private:
  using Payload = core::McLsa;
  using Flooding = lsr::FloodingNetwork<Payload>;

  struct Area {
    graph::Graph subgraph;  // all node ids, intra-area links only
    std::unique_ptr<Flooding> flooding;
  };

  core::DgmcSwitch& area_switch(graph::NodeId n) { return *area_dgmc_[n]; }
  core::DgmcSwitch& backbone_switch(int area) {
    return *backbone_dgmc_[area];
  }

  void ensure_area_engaged(int area, mc::McId mcid, mc::McType type);
  void maybe_disengage_area(int area, mc::McId mcid);

  des::Scheduler sched_;
  graph::Graph physical_;
  std::vector<int> areas_;
  int area_count_ = 0;
  Params params_;
  std::unique_ptr<mc::TopologyAlgorithm> algorithm_;

  std::vector<Area> area_nets_;
  std::vector<graph::NodeId> borders_;       // per area
  graph::Graph backbone_graph_;              // virtual links over borders
  std::unique_ptr<Flooding> backbone_flooding_;
  // Physical expansion of each virtual backbone link.
  std::map<graph::Edge, std::vector<graph::Edge>> virtual_paths_;

  std::vector<std::unique_ptr<core::DgmcSwitch>> area_dgmc_;  // per node
  std::vector<std::unique_ptr<core::DgmcSwitch>> backbone_dgmc_;  // /area

  // Ground truth of real (host-driven) membership per MC and area.
  struct McBook {
    mc::McType type = mc::McType::kSymmetric;
    std::vector<std::set<graph::NodeId>> per_area;  // real members
  };
  std::map<mc::McId, McBook> books_;
};

}  // namespace dgmc::sim
