#include "sim/hosts.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dgmc::sim {

void HostLayer::attach(HostId host, graph::NodeId ingress) {
  DGMC_ASSERT(net_.physical().valid_node(ingress));
  DGMC_ASSERT_MSG(hosts_.find(host) == hosts_.end(),
                  "host already attached");
  hosts_[host].ingress = ingress;
}

void HostLayer::detach(HostId host) {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return;
  // Leave every subscription first (may generate protocol events).
  const std::vector<Subscription> subs = it->second.subscriptions;
  for (const Subscription& s : subs) host_leave(host, s.mcid);
  hosts_.erase(host);
}

bool HostLayer::host_join(HostId host, mc::McId mcid, mc::McType type,
                          mc::MemberRole role) {
  auto it = hosts_.find(host);
  DGMC_ASSERT_MSG(it != hosts_.end(), "host not attached");
  DGMC_ASSERT(role != mc::MemberRole::kNone);
  HostState& hs = it->second;

  const mc::MemberRole before = aggregate_role(hs.ingress, mcid);

  auto sub = std::find_if(hs.subscriptions.begin(), hs.subscriptions.end(),
                          [mcid](const Subscription& s) {
                            return s.mcid == mcid;
                          });
  if (sub != hs.subscriptions.end()) {
    DGMC_ASSERT_MSG(sub->type == type, "MC type mismatch");
    sub->role = sub->role | role;
  } else {
    hs.subscriptions.push_back(Subscription{mcid, type, role});
  }

  const mc::MemberRole after = aggregate_role(hs.ingress, mcid);
  if (after == before) return false;  // no new capability at the switch
  // First interested host, or a host widened the switch's role: the
  // ingress switch (re-)joins; DgmcSwitch merges roles on re-join.
  net_.join(hs.ingress, mcid, type, after);
  return true;
}

bool HostLayer::host_leave(HostId host, mc::McId mcid) {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return false;
  HostState& hs = it->second;
  auto sub = std::find_if(hs.subscriptions.begin(), hs.subscriptions.end(),
                          [mcid](const Subscription& s) {
                            return s.mcid == mcid;
                          });
  if (sub == hs.subscriptions.end()) return false;
  hs.subscriptions.erase(sub);

  if (aggregate_role(hs.ingress, mcid) == mc::MemberRole::kNone) {
    // Last interested host at this switch: the switch leaves.
    net_.leave(hs.ingress, mcid);
    return true;
  }
  // Other hosts remain interested. Role *narrowing* (e.g. the only
  // sending host left while receivers stay) is deliberately not
  // advertised: D-GMC's member list supports join/leave only, so the
  // switch keeps its widest role until it leaves entirely. The surplus
  // capability is harmless — topologies stay valid, at worst slightly
  // larger than necessary for asymmetric MCs.
  return false;
}

graph::NodeId HostLayer::ingress_of(HostId host) const {
  auto it = hosts_.find(host);
  return it == hosts_.end() ? graph::kInvalidNode : it->second.ingress;
}

bool HostLayer::subscribed(HostId host, mc::McId mcid) const {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return false;
  return std::any_of(
      it->second.subscriptions.begin(), it->second.subscriptions.end(),
      [mcid](const Subscription& s) { return s.mcid == mcid; });
}

std::vector<HostId> HostLayer::subscribers(graph::NodeId ingress,
                                           mc::McId mcid) const {
  std::vector<HostId> out;
  for (const auto& [host, hs] : hosts_) {
    if (hs.ingress != ingress) continue;
    for (const Subscription& s : hs.subscriptions) {
      if (s.mcid == mcid) {
        out.push_back(host);
        break;
      }
    }
  }
  return out;
}

mc::MemberRole HostLayer::aggregate_role(graph::NodeId ingress,
                                         mc::McId mcid) const {
  mc::MemberRole role = mc::MemberRole::kNone;
  for (const auto& [host, hs] : hosts_) {
    if (hs.ingress != ingress) continue;
    for (const Subscription& s : hs.subscriptions) {
      if (s.mcid == mcid) role = role | s.role;
    }
  }
  return role;
}

}  // namespace dgmc::sim
