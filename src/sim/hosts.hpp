// Host/ingress layer (paper §1): "The switch (or switches) that
// connect a particular host to the rest of the network is referred to
// as the ingress switch of that host... A switch is said to be a
// member of a connection if one or more of its attached hosts are
// interested in the connection. When a host wants to join or leave a
// connection, it sends this request to its ingress switch, which takes
// an appropriate action according to the MC protocol."
//
// HostLayer aggregates per-switch host interest and drives the
// protocol: the switch joins the MC when its first host subscribes
// (with the union of host roles), re-joins with a widened role when a
// later host adds a capability, and leaves when the last host goes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/network.hpp"

namespace dgmc::sim {

using HostId = std::int32_t;

class HostLayer {
 public:
  explicit HostLayer(DgmcNetwork& net) : net_(net) {}

  HostLayer(const HostLayer&) = delete;
  HostLayer& operator=(const HostLayer&) = delete;

  /// Attaches a host to its ingress switch. A host has exactly one
  /// ingress switch; re-attaching elsewhere requires detach first.
  void attach(HostId host, graph::NodeId ingress);

  /// Detaches a host, leaving every MC it subscribed to.
  void detach(HostId host);

  /// Host subscribes to an MC; the ingress switch joins (or widens its
  /// role) if needed. Returns true if a protocol event was generated.
  bool host_join(HostId host, mc::McId mcid, mc::McType type,
                 mc::MemberRole role = mc::MemberRole::kBoth);

  /// Host unsubscribes; the ingress switch leaves when it was the last
  /// interested host. Returns true if a protocol event was generated.
  bool host_leave(HostId host, mc::McId mcid);

  graph::NodeId ingress_of(HostId host) const;
  bool subscribed(HostId host, mc::McId mcid) const;

  /// Hosts at `ingress` currently subscribed to `mcid`.
  std::vector<HostId> subscribers(graph::NodeId ingress,
                                  mc::McId mcid) const;

  /// Union of subscribed-host roles for (ingress, mcid); kNone if none.
  mc::MemberRole aggregate_role(graph::NodeId ingress, mc::McId mcid) const;

 private:
  struct Subscription {
    mc::McId mcid;
    mc::McType type;
    mc::MemberRole role;
  };
  struct HostState {
    graph::NodeId ingress = graph::kInvalidNode;
    std::vector<Subscription> subscriptions;
  };

  DgmcNetwork& net_;
  std::map<HostId, HostState> hosts_;
};

}  // namespace dgmc::sim
