#include "sim/hierarchy.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "mc/validation.hpp"
#include "util/assert.hpp"

namespace dgmc::sim {

HierarchicalNetwork::HierarchicalNetwork(
    graph::Graph physical, std::vector<int> areas, Params params,
    std::unique_ptr<mc::TopologyAlgorithm> algorithm)
    : physical_(std::move(physical)),
      areas_(std::move(areas)),
      params_(params),
      algorithm_(std::move(algorithm)) {
  const int n = physical_.node_count();
  DGMC_ASSERT(static_cast<int>(areas_.size()) == n);
  DGMC_ASSERT(algorithm_ != nullptr);
  for (int a : areas_) DGMC_ASSERT(a >= 0);
  area_count_ = 1 + *std::max_element(areas_.begin(), areas_.end());

  // --- Area subgraphs (intra-area links only) and border switches. ---
  area_nets_.resize(area_count_);
  borders_.assign(area_count_, graph::kInvalidNode);
  for (Area& area : area_nets_) area.subgraph = graph::Graph(n);
  for (const graph::Link& l : physical_.links()) {
    if (areas_[l.u] == areas_[l.v]) {
      area_nets_[areas_[l.u]].subgraph.add_link(l.u, l.v, l.cost, l.delay);
    } else {
      // Inter-area link: the lowest-id endpoint with any inter-area
      // link becomes its area's border switch.
      for (graph::NodeId end : {l.u, l.v}) {
        graph::NodeId& border = borders_[areas_[end]];
        if (border == graph::kInvalidNode || end < border) border = end;
      }
    }
  }
  for (int a = 0; a < area_count_; ++a) {
    DGMC_ASSERT_MSG(borders_[a] != graph::kInvalidNode,
                    "area has no inter-area link");
  }

  // --- Backbone: virtual links between borders of adjacent areas. ---
  backbone_graph_ = graph::Graph(n);
  const double overhead = params_.per_hop_overhead;
  std::vector<graph::ShortestPaths> border_paths(area_count_);
  for (int a = 0; a < area_count_; ++a) {
    border_paths[a] =
        graph::dijkstra(physical_, borders_[a],
                        [overhead](const graph::Link& l) {
                          return l.delay + overhead;
                        });
  }
  std::set<std::pair<int, int>> adjacent;
  for (const graph::Link& l : physical_.links()) {
    const int au = areas_[l.u];
    const int av = areas_[l.v];
    if (au != av) adjacent.insert({std::min(au, av), std::max(au, av)});
  }
  for (auto [a, b] : adjacent) {
    const graph::NodeId u = borders_[a];
    const graph::NodeId v = borders_[b];
    const graph::ShortestPaths& sp = border_paths[a];
    DGMC_ASSERT(sp.reachable(v));
    // The virtual link's delay aggregates the physical path; its cost
    // is the hop count so backbone trees minimize real path length.
    const std::vector<graph::NodeId> path = sp.path_to(v);
    backbone_graph_.add_link(u, v,
                             static_cast<double>(path.size() - 1),
                             sp.dist[v]);
    std::vector<graph::Edge>& expansion =
        virtual_paths_[graph::Edge(u, v)];
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      expansion.emplace_back(path[i], path[i + 1]);
    }
  }

  // --- Flooding transports. ---
  for (int a = 0; a < area_count_; ++a) {
    area_nets_[a].flooding = std::make_unique<Flooding>(
        sched_, area_nets_[a].subgraph, params_.per_hop_overhead);
    area_nets_[a].flooding->set_receiver(
        [this](const Flooding::Delivery& d) {
          area_dgmc_[d.at]->receive(d.payload);
        });
  }
  // The virtual-link delay already includes per-hop overheads.
  backbone_flooding_ =
      std::make_unique<Flooding>(sched_, backbone_graph_, 0.0);
  backbone_flooding_->set_receiver([this](const Flooding::Delivery& d) {
    backbone_dgmc_[areas_[d.at]]->receive(d.payload);
  });

  // --- Protocol instances. ---
  area_dgmc_.resize(n);
  for (graph::NodeId id = 0; id < n; ++id) {
    const int a = areas_[id];
    core::DgmcSwitch::Hooks hooks;
    hooks.flood = [this, a, id](core::McLsa lsa) {
      area_nets_[a].flooding->flood(id, std::move(lsa));
    };
    hooks.local_image = [this, a]() -> const graph::Graph& {
      return area_nets_[a].subgraph;
    };
    area_dgmc_[id] = std::make_unique<core::DgmcSwitch>(
        id, n, sched_, *algorithm_, params_.dgmc, std::move(hooks));
  }
  backbone_dgmc_.resize(area_count_);
  for (int a = 0; a < area_count_; ++a) {
    const graph::NodeId id = borders_[a];
    core::DgmcSwitch::Hooks hooks;
    hooks.flood = [this, id](core::McLsa lsa) {
      backbone_flooding_->flood(id, std::move(lsa));
    };
    hooks.local_image = [this]() -> const graph::Graph& {
      return backbone_graph_;
    };
    backbone_dgmc_[a] = std::make_unique<core::DgmcSwitch>(
        id, n, sched_, *algorithm_, params_.dgmc, std::move(hooks));
  }
}

void HierarchicalNetwork::ensure_area_engaged(int area, mc::McId mcid,
                                              mc::McType type) {
  // The border switch anchors the area tree and represents the area on
  // the backbone. It joins with both roles: it must receive from the
  // backbone and send into the area (and vice versa).
  area_switch(borders_[area]).local_join(mcid, type, mc::MemberRole::kBoth);
  backbone_switch(area).local_join(mcid, type, mc::MemberRole::kBoth);
}

void HierarchicalNetwork::maybe_disengage_area(int area, mc::McId mcid) {
  auto it = books_.find(mcid);
  if (it == books_.end()) return;
  if (!it->second.per_area[area].empty()) return;
  area_switch(borders_[area]).local_leave(mcid);
  backbone_switch(area).local_leave(mcid);
}

void HierarchicalNetwork::join(graph::NodeId at, mc::McId mcid,
                               mc::McType type, mc::MemberRole role) {
  DGMC_ASSERT(physical_.valid_node(at));
  auto [it, created] = books_.try_emplace(mcid);
  McBook& book = it->second;
  if (created) {
    book.type = type;
    book.per_area.resize(area_count_);
  }
  DGMC_ASSERT_MSG(book.type == type, "MC type mismatch");
  const int area = areas_[at];
  const bool first_in_area = book.per_area[area].empty();
  book.per_area[area].insert(at);
  if (first_in_area) ensure_area_engaged(area, mcid, type);
  // The border may be the joining switch itself; the role merge below
  // widens it as needed.
  area_switch(at).local_join(mcid, type, role);
}

void HierarchicalNetwork::leave(graph::NodeId at, mc::McId mcid) {
  auto it = books_.find(mcid);
  if (it == books_.end()) return;
  McBook& book = it->second;
  const int area = areas_[at];
  if (book.per_area[area].erase(at) == 0) return;
  if (at != borders_[area]) {
    area_switch(at).local_leave(mcid);
  }
  // else: the border stays joined while the area is engaged; if the
  // area just emptied, the disengage below removes it too.
  maybe_disengage_area(area, mcid);
}

HierarchicalNetwork::Totals HierarchicalNetwork::totals() const {
  Totals t;
  for (const auto& sw : area_dgmc_) {
    t.computations += sw->counters().computations_started;
    t.mc_lsa_floodings += sw->counters().lsas_flooded;
  }
  for (const auto& sw : backbone_dgmc_) {
    t.computations += sw->counters().computations_started;
    t.mc_lsa_floodings += sw->counters().lsas_flooded;
  }
  for (const Area& area : area_nets_) {
    t.link_transmissions += area.flooding->link_transmissions();
    t.lsa_deliveries +=
        area.flooding->link_transmissions() -
        area.flooding->duplicates_dropped();
  }
  t.link_transmissions += backbone_flooding_->link_transmissions();
  t.lsa_deliveries += backbone_flooding_->link_transmissions() -
                      backbone_flooding_->duplicates_dropped();
  return t;
}

bool HierarchicalNetwork::converged(mc::McId mcid) const {
  auto it = books_.find(mcid);
  if (it == books_.end()) return true;
  const McBook& book = it->second;

  // Backbone agreement among engaged borders.
  const core::DgmcSwitch* reference = nullptr;
  for (int a = 0; a < area_count_; ++a) {
    const core::DgmcSwitch& bb = *backbone_dgmc_[a];
    if (!bb.has_state(mcid)) continue;
    if (reference == nullptr) {
      reference = &bb;
      continue;
    }
    if (!(*bb.installed(mcid) == *reference->installed(mcid)) ||
        !(*bb.members(mcid) == *reference->members(mcid))) {
      return false;
    }
  }

  // Per-area agreement among the area's switches.
  for (int a = 0; a < area_count_; ++a) {
    const core::DgmcSwitch* area_ref = nullptr;
    for (graph::NodeId id = 0; id < physical_.node_count(); ++id) {
      if (areas_[id] != a) continue;
      const core::DgmcSwitch& sw = *area_dgmc_[id];
      if (!sw.has_state(mcid)) continue;
      if (area_ref == nullptr) {
        area_ref = &sw;
        continue;
      }
      if (!(*sw.installed(mcid) == *area_ref->installed(mcid)) ||
          !(*sw.members(mcid) == *area_ref->members(mcid))) {
        return false;
      }
    }
    // Engaged areas must actually have state.
    if (!book.per_area[a].empty() && area_ref == nullptr) return false;
  }
  return true;
}

trees::Topology HierarchicalNetwork::global_topology(mc::McId mcid) const {
  DGMC_ASSERT(converged(mcid));
  trees::Topology glued;
  // Area trees.
  for (int a = 0; a < area_count_; ++a) {
    const core::DgmcSwitch& border = *area_dgmc_[borders_[a]];
    if (border.has_state(mcid)) {
      glued = trees::Topology::merge(glued, *border.installed(mcid));
    }
  }
  // Backbone tree, expanded into physical paths.
  for (int a = 0; a < area_count_; ++a) {
    const core::DgmcSwitch& bb = *backbone_dgmc_[a];
    if (!bb.has_state(mcid)) continue;
    for (const graph::Edge& virt : bb.installed(mcid)->edges()) {
      auto it = virtual_paths_.find(virt);
      DGMC_ASSERT(it != virtual_paths_.end());
      glued = trees::Topology::merge(glued,
                                     trees::Topology(it->second));
    }
    break;  // all engaged borders agree; one suffices
  }
  return glued;
}

std::vector<graph::NodeId> HierarchicalNetwork::members(
    mc::McId mcid) const {
  std::vector<graph::NodeId> out;
  auto it = books_.find(mcid);
  if (it == books_.end()) return out;
  for (const auto& area_members : it->second.per_area) {
    out.insert(out.end(), area_members.begin(), area_members.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool HierarchicalNetwork::serves_members(mc::McId mcid) const {
  const std::vector<graph::NodeId> ms = members(mcid);
  if (ms.size() <= 1) return true;
  return trees::connects(global_topology(mcid), ms);
}

}  // namespace dgmc::sim
