// Workload generators (paper §4.1): "Two event-generating methods are
// used. In the first, events are clustered in a short period of time
// and conflict with each other ... In the second, events are relatively
// evenly distributed over long periods of time."
#pragma once

#include <vector>

#include "des/time.hpp"
#include "graph/graph.hpp"
#include "mc/types.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {

struct MembershipEvent {
  des::SimTime at = 0.0;  // offset from injection start
  graph::NodeId node = graph::kInvalidNode;
  bool join = true;  // false => leave
  mc::MemberRole role = mc::MemberRole::kBoth;
};

/// Generates `count` membership events against the evolving member set
/// starting from `initial_members`: joins pick non-members, leaves pick
/// members, chosen so at least two members always remain (mid-burst MC
/// destruction is exercised by dedicated tests, not the experiments).
/// Event times are uniform in [0, spread) — the paper's "very busy
/// period" — and returned sorted by time.
std::vector<MembershipEvent> bursty_membership(
    int network_size, const std::vector<graph::NodeId>& initial_members,
    int count, des::SimTime spread, mc::MemberRole role,
    util::RngStream& rng);

/// Same membership dynamics, but with exponentially distributed gaps of
/// the given mean between consecutive events — the paper's "normal
/// traffic periods" where events seldom conflict.
std::vector<MembershipEvent> poisson_membership(
    int network_size, const std::vector<graph::NodeId>& initial_members,
    int count, des::SimTime mean_gap, mc::MemberRole role,
    util::RngStream& rng);

/// Picks `count` distinct nodes as the initial member set.
std::vector<graph::NodeId> random_members(int network_size, int count,
                                          util::RngStream& rng);

}  // namespace dgmc::sim
