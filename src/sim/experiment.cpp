#include "sim/experiment.hpp"

#include <cstdlib>
#include <memory>

#include "exec/pool.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "util/assert.hpp"

namespace dgmc::sim {

namespace {

mc::MemberRole workload_role(mc::McType type) {
  switch (type) {
    case mc::McType::kSymmetric: return mc::MemberRole::kBoth;
    case mc::McType::kReceiverOnly: return mc::MemberRole::kReceiver;
    case mc::McType::kAsymmetric: return mc::MemberRole::kReceiver;
  }
  return mc::MemberRole::kBoth;
}

}  // namespace

RunResult run_single(const ExperimentConfig& cfg, int network_size,
                     int graph_index) {
  DGMC_ASSERT(network_size >= 3);
  const std::string tag = cfg.name + "/" + std::to_string(network_size) +
                          "/" + std::to_string(graph_index);
  util::RngStream topo_rng =
      util::RngStream::derive(cfg.seed, tag + "/topology");
  util::RngStream load_rng =
      util::RngStream::derive(cfg.seed, tag + "/workload");

  graph::Graph g =
      graph::waxman(network_size, graph::WaxmanParams{}, topo_rng);
  // Keep the Waxman model's distance-proportional delays, normalized so
  // the mean per-link propagation delay hits the preset's target.
  g.scale_delays(cfg.timing.link_delay / graph::mean_link_delay(g));

  DgmcNetwork::Params params;
  params.per_hop_overhead = cfg.timing.per_hop_overhead;
  params.dgmc.computation_time = cfg.timing.computation_time;
  DgmcNetwork net(std::move(g), params,
                  cfg.incremental_algorithm
                      ? mc::make_incremental_algorithm()
                      : mc::make_from_scratch_algorithm());

  const mc::McId mcid = 0;
  const mc::MemberRole role = workload_role(cfg.mc_type);
  const double round = net.flooding_diameter() + cfg.timing.computation_time;

  // --- Setup phase (not measured): establish the initial MC. ---
  const int initial =
      std::min(cfg.initial_members, std::max(2, network_size / 2));
  std::vector<graph::NodeId> members =
      random_members(network_size, initial, load_rng);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const graph::NodeId node = members[i];
    mc::MemberRole r = role;
    // Asymmetric MCs need at least one sender: the first member sends.
    if (cfg.mc_type == mc::McType::kAsymmetric && i == 0) {
      r = mc::MemberRole::kSender;
    }
    net.scheduler().schedule_after(static_cast<double>(i) * 2.0 * round,
                                   [&net, node, mcid, r, &cfg] {
                                     net.join(node, mcid, cfg.mc_type, r);
                                   });
  }
  net.run_to_quiescence();
  DGMC_ASSERT_MSG(net.converged(mcid), "setup phase failed to converge");

  // --- Measured phase. ---
  const DgmcNetwork::Totals before = net.totals();
  const des::SimTime t0 = net.scheduler().now();

  std::vector<MembershipEvent> events;
  if (cfg.workload == WorkloadKind::kBursty) {
    events = bursty_membership(network_size, members, cfg.events,
                               cfg.burst_spread_rounds * round, role,
                               load_rng);
  } else {
    events = poisson_membership(network_size, members, cfg.events,
                                cfg.normal_gap_rounds * round, role,
                                load_rng);
  }
  for (const MembershipEvent& e : events) {
    net.scheduler().schedule_at(
        t0 + e.at, [&net, e, mcid, &cfg] {
          if (e.join) {
            net.join(e.node, mcid, cfg.mc_type, e.role);
          } else {
            net.leave(e.node, mcid);
          }
        });
  }
  net.run_to_quiescence();

  const DgmcNetwork::Totals after = net.totals();
  RunResult out;
  const double n_events = static_cast<double>(cfg.events);
  out.computations_per_event =
      static_cast<double>(after.computations - before.computations) /
      n_events;
  out.floodings_per_event =
      static_cast<double>(after.mc_lsa_floodings - before.mc_lsa_floodings) /
      n_events;
  out.convergence_rounds = (net.last_install_time() - t0) / round;
  out.converged = net.converged(mcid);
  return out;
}

std::vector<ExperimentPoint> run_experiment(const ExperimentConfig& cfg) {
  // Fan out: every (network size, graph index) trial is one pool task.
  // run_single derives all its randomness from (cfg.seed, size, graph
  // index), and each trial owns its network and scheduler outright, so
  // trials commute; results land in index-addressed slots and are
  // merged below in deterministic (size, graph) order. Bit-identical
  // output at any job count.
  const std::size_t per = static_cast<std::size_t>(cfg.graphs_per_size);
  std::vector<RunResult> runs(cfg.network_sizes.size() * per);
  exec::Pool pool(static_cast<std::size_t>(cfg.jobs > 0 ? cfg.jobs : 0));
  exec::parallel_for(pool, runs.size(), [&](std::size_t i) {
    runs[i] = run_single(cfg, cfg.network_sizes[i / per],
                         static_cast<int>(i % per));
  });

  std::vector<ExperimentPoint> points;
  points.reserve(cfg.network_sizes.size());
  for (std::size_t s = 0; s < cfg.network_sizes.size(); ++s) {
    const int size = cfg.network_sizes[s];
    util::OnlineStats comp, flood, conv;
    int converged = 0;
    for (int g = 0; g < cfg.graphs_per_size; ++g) {
      const RunResult& r = runs[s * per + static_cast<std::size_t>(g)];
      comp.add(r.computations_per_event);
      flood.add(r.floodings_per_event);
      conv.add(r.convergence_rounds);
      if (r.converged) ++converged;
    }
    ExperimentPoint p;
    p.network_size = size;
    p.computations_per_event = util::Summary::of(comp);
    p.floodings_per_event = util::Summary::of(flood);
    p.convergence_rounds = util::Summary::of(conv);
    p.converged_fraction =
        static_cast<double>(converged) / cfg.graphs_per_size;
    points.push_back(p);
  }
  return points;
}

void print_points(const ExperimentConfig& cfg,
                  const std::vector<ExperimentPoint>& points,
                  std::FILE* out) {
  std::fprintf(out, "# %s\n", cfg.name.c_str());
  std::fprintf(out,
               "# workload=%s events=%d initial_members=%d mc_type=%s "
               "Tc=%.3gms per_hop=%.3gms graphs/size=%d seed=%llu\n",
               cfg.workload == WorkloadKind::kBursty ? "bursty" : "normal",
               cfg.events, cfg.initial_members, mc::to_string(cfg.mc_type),
               cfg.timing.computation_time / des::kMillisecond,
               (cfg.timing.per_hop_overhead + cfg.timing.link_delay) /
                   des::kMillisecond,
               cfg.graphs_per_size,
               static_cast<unsigned long long>(cfg.seed));
  std::fprintf(out, "%8s  %24s  %24s  %24s  %10s\n", "size",
               "computations/event", "floodings/event",
               "convergence (rounds)", "converged");
  for (const ExperimentPoint& p : points) {
    std::fprintf(out, "%8d  %24s  %24s  %24s  %9.0f%%\n", p.network_size,
                 p.computations_per_event.to_string().c_str(),
                 p.floodings_per_event.to_string().c_str(),
                 p.convergence_rounds.to_string().c_str(),
                 100.0 * p.converged_fraction);
  }
}

std::string serialize_points(const std::vector<ExperimentPoint>& points) {
  auto num = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  auto summary = [&](const util::Summary& s) {
    return "{\"mean\":" + num(s.mean) + ",\"ci95\":" + num(s.ci95) +
           ",\"n\":" + std::to_string(s.n) + "}";
  };
  std::string out = "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ExperimentPoint& p = points[i];
    if (i > 0) out += ",";
    out += "{\"network_size\":" + std::to_string(p.network_size) +
           ",\"computations_per_event\":" + summary(p.computations_per_event) +
           ",\"floodings_per_event\":" + summary(p.floodings_per_event) +
           ",\"convergence_rounds\":" + summary(p.convergence_rounds) +
           ",\"converged_fraction\":" + num(p.converged_fraction) + "}";
  }
  out += "]";
  return out;
}

ExperimentConfig apply_quick_mode(ExperimentConfig cfg) {
  const char* quick = std::getenv("DGMC_QUICK");
  if (quick != nullptr && quick[0] != '\0') {
    cfg.network_sizes = {25, 50, 100};
    cfg.graphs_per_size = std::min(cfg.graphs_per_size, 5);
  }
  return cfg;
}

}  // namespace dgmc::sim
