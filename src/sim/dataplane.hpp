// Multicast data plane: forwards packets over the MC topologies the
// switches have *installed* ("update routing entries for incident
// links in m according to P" — paper Figs 4/5).
//
// Forwarding is fully distributed: each switch consults its own current
// installed topology and member list, so during reconfiguration
// windows switches can disagree — packets may be lost (a switch whose
// topology lacks the edge drops the copy) or travel redundant edges.
// That transient disruption is a measurable property of the protocol
// (bench/table_dataplane_disruption) rather than an error.
//
// Delivery semantics by MC type:
//  * symmetric / asymmetric: the packet starts at the source switch and
//    spreads over topology edges with per-switch duplicate suppression
//    (so a cyclic asymmetric union still delivers exactly once per
//    switch).
//  * receiver-only: two-stage (paper Fig 1(b)) — the source unicasts to
//    its contact node (nearest topology node by its own image), which
//    then forwards over the tree.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/network.hpp"

namespace dgmc::sim {

class DataPlane {
 public:
  struct Params {
    double per_hop_overhead = 0.0;
  };

  struct PacketReport {
    std::uint64_t id = 0;
    mc::McId mcid = mc::kInvalidMc;
    graph::NodeId source = graph::kInvalidNode;
    std::vector<graph::NodeId> delivered_to;  // member switches reached
    std::uint64_t hops = 0;                   // link traversals
    std::uint64_t duplicates = 0;             // copies dropped by dedup
    std::uint64_t dead_drops = 0;  // copies dropped at a dead link
  };

  DataPlane(DgmcNetwork& net, Params params);

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  /// Injects one multicast packet at `source`'s switch. Returns the
  /// packet id; the report is complete once the network quiesces.
  std::uint64_t send(mc::McId mcid, graph::NodeId source);

  const PacketReport& report(std::uint64_t packet_id) const;

  /// Convenience: did the packet reach every switch in `members`?
  bool delivered_to_all(std::uint64_t packet_id,
                        const std::vector<graph::NodeId>& members) const;

  std::uint64_t packets_sent() const { return next_id_; }

 private:
  struct InFlight {
    PacketReport report;
    std::unordered_set<graph::NodeId> seen;  // per-switch dedup
  };

  void process_at(std::uint64_t id, graph::NodeId at, graph::NodeId from);
  void forward(std::uint64_t id, graph::NodeId at, graph::NodeId from);
  void unicast_then_tree(std::uint64_t id, graph::NodeId at,
                         graph::NodeId contact);

  DgmcNetwork& net_;
  Params params_;
  std::uint64_t next_id_ = 0;
  std::unordered_map<std::uint64_t, InFlight> packets_;
};

}  // namespace dgmc::sim
