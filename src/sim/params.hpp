// Timing presets for the paper's three experiments (§4.1).
//
// A *round* is Tf + Tc, where Tc is the topology computation time and
// Tf the flooding diameter. The experiments differ only in the
// Tf-to-Tc ratio:
//   Experiment 1 — computation dominates: per-hop LSA time ~4 us
//     (AAL-5, 53-byte cell on the authors' ATM testbed), Tc = 25 ms
//     (their 10-50 ms per-member signaling figure, midpoint).
//   Experiment 2 — communication dominates (WAN): per-hop ~5 ms,
//     Tc = 1 ms.
//   Experiment 3 — normal traffic: same timing as Experiment 1, events
//     spread far apart instead of bursty.
#pragma once

#include "core/protocol.hpp"
#include "des/time.hpp"

namespace dgmc::sim {

struct TimingParams {
  /// Per-hop LSA latency added on top of each link's propagation delay.
  double per_hop_overhead = 4 * des::kMicrosecond;
  /// Target *mean* link propagation delay for generated graphs (the
  /// Waxman model's distance-proportional delays are normalized to it);
  /// the effective per-hop time is link delay + per_hop_overhead.
  double link_delay = 1 * des::kMicrosecond;
  /// Tc: topology computation time.
  des::SimTime computation_time = 25 * des::kMillisecond;
};

/// Experiment 1 regime: Tc >> per-hop LSA time (ATM testbed values).
inline TimingParams computation_dominant() {
  return TimingParams{4 * des::kMicrosecond, 1 * des::kMicrosecond,
                      25 * des::kMillisecond};
}

/// Experiment 2 regime: Tf >> Tc (WAN-like per-hop latency).
inline TimingParams communication_dominant() {
  return TimingParams{5 * des::kMillisecond, 1 * des::kMillisecond,
                      1 * des::kMillisecond};
}

}  // namespace dgmc::sim
