#include "sim/workload.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dgmc::sim {

namespace {

/// Draws event targets against an evolving membership set. Each node is
/// used at most once per workload, so sorting events by time later
/// cannot invert a node's join/leave order. Times are filled in by the
/// caller.
std::vector<MembershipEvent> draw_events(
    int network_size, const std::vector<graph::NodeId>& initial_members,
    int count, mc::MemberRole role, util::RngStream& rng) {
  DGMC_ASSERT(network_size >= 3);
  DGMC_ASSERT(count >= 0);
  std::vector<bool> is_member(network_size, false);
  std::vector<bool> used(network_size, false);
  int member_count = 0;
  for (graph::NodeId m : initial_members) {
    DGMC_ASSERT(m >= 0 && m < network_size);
    if (!is_member[m]) {
      is_member[m] = true;
      ++member_count;
    }
  }

  auto eligible = [&](bool join) {
    std::vector<graph::NodeId> out;
    for (graph::NodeId n = 0; n < network_size; ++n) {
      if (!used[n] && is_member[n] != join) out.push_back(n);
    }
    return out;
  };

  // Cap total leaves so that at least two members survive under ANY
  // execution order: the caller may time-sort the events, so the
  // worst-case prefix executes every leave before any join.
  const int max_leaves = std::max(0, member_count - 2);
  int leaves_drawn = 0;

  std::vector<MembershipEvent> events;
  events.reserve(count);
  for (int i = 0; i < count; ++i) {
    const std::vector<graph::NodeId> joiners = eligible(true);
    std::vector<graph::NodeId> leavers = eligible(false);
    if (leaves_drawn >= max_leaves) leavers.clear();
    DGMC_ASSERT_MSG(!joiners.empty() || !leavers.empty(),
                    "workload exhausted eligible nodes");
    bool join;
    if (leavers.empty()) join = true;
    else if (joiners.empty()) join = false;
    else join = rng.bernoulli(0.5);

    const std::vector<graph::NodeId>& pool = join ? joiners : leavers;
    const graph::NodeId node = pool[rng.index(pool.size())];
    used[node] = true;
    is_member[node] = join;
    member_count += join ? 1 : -1;
    if (!join) ++leaves_drawn;
    events.push_back(MembershipEvent{0.0, node, join, role});
  }
  return events;
}

}  // namespace

std::vector<MembershipEvent> bursty_membership(
    int network_size, const std::vector<graph::NodeId>& initial_members,
    int count, des::SimTime spread, mc::MemberRole role,
    util::RngStream& rng) {
  DGMC_ASSERT(spread >= 0.0);
  std::vector<MembershipEvent> events =
      draw_events(network_size, initial_members, count, role, rng);
  for (MembershipEvent& e : events) e.at = rng.uniform_real(0.0, spread);
  std::stable_sort(events.begin(), events.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.at < b.at;
                   });
  return events;
}

std::vector<MembershipEvent> poisson_membership(
    int network_size, const std::vector<graph::NodeId>& initial_members,
    int count, des::SimTime mean_gap, mc::MemberRole role,
    util::RngStream& rng) {
  DGMC_ASSERT(mean_gap > 0.0);
  std::vector<MembershipEvent> events =
      draw_events(network_size, initial_members, count, role, rng);
  des::SimTime t = 0.0;
  for (MembershipEvent& e : events) {
    t += rng.exponential(mean_gap);
    e.at = t;
  }
  return events;
}

std::vector<graph::NodeId> random_members(int network_size, int count,
                                          util::RngStream& rng) {
  DGMC_ASSERT(count <= network_size);
  std::vector<graph::NodeId> all(network_size);
  for (graph::NodeId i = 0; i < network_size; ++i) all[i] = i;
  rng.shuffle(all);
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace dgmc::sim
