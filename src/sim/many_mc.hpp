// ManyMcEngine: the many-MC scale model (DESIGN.md §13).
//
// sim::DgmcNetwork replicates protocol state per switch — every holder
// of an MC keeps members, dimension-n vector stamps and an installed
// topology, which is the right fidelity for protocol checking but caps
// a single process at hundreds of switches × hundreds of MCs (2000
// switches × 20000 MCs of per-switch dimension-2000 stamps is
// terabytes). This engine models the *converged agreement* instead: ONE
// canonical record per MC (members + installed shared-tree links) in an
// mc::ShardStore, with the paper's event accounting (§3.1: one non-MC
// LSA then k MC LSAs per link event) charged in honest wire bytes taken
// from the real core/codec encoding at the full stamp dimension.
//
// Trees are core-based shared trees: core c = mcid % cores, and an MC's
// installed topology is the union of its members' shortest paths to the
// core in the per-core Dijkstra tree. A link event recomputes the
// `cores` parent trees once (shared by every MC on that core — the
// aggregated link-state trick) and then rebuilds exactly the MCs whose
// installed tree used the failed link; that per-MC sweep is the many-MC
// hot path and fans out across shards on an exec::Pool.
//
// Determinism contract (DESIGN.md §8): every public mutation and the
// fingerprint are bit-identical at any (shards, jobs) combination.
// Parallel phases write only shard-local state, per-shard accounting
// merges in shard index order, and the batched-wire model is computed
// from order-independent per-origin aggregates.
//
// Wire model per flooded LSA: one copy on every up link (`L` ops).
// Unbatched, each of the k MC LSAs a link event triggers pays L ops and
// its own encoded bytes per op. Batched, LSAs sharing an origin switch
// (the MC's computing switch — its lowest member) and round share one
// core::McLsaBatch frame: L ops per origin group, batch-framed bytes,
// chunked at core::kMaxBatchLsas. Membership events are single-LSA
// rounds, where the batch frame degenerates to the plain encoding and
// both models charge the same — exactly the behavior of the real
// lsr::LsaBatcher + codec pair this engine's numbers stand in for.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/pool.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "mc/member_list.hpp"
#include "mc/shard_store.hpp"
#include "mc/types.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {

struct ManyMcParams {
  int switches = 64;
  int mcs = 512;
  int members_per_mc = 8;
  /// ShardStore shard count; any value yields bit-identical results.
  int shards = 16;
  /// exec::Pool width for the per-shard sweeps (0 = hardware); any
  /// value yields bit-identical results.
  int jobs = 1;
  /// Shared-tree cores (capped at `switches`).
  int cores = 64;
  double avg_degree = 4.0;
  std::uint64_t seed = 1;
  /// Membership events per churn round (each a join or leave on a
  /// deterministically chosen MC).
  int churn_events_per_round = 8;
};

struct ManyMcStats {
  std::uint64_t membership_events = 0;
  std::uint64_t link_events = 0;
  /// Per-MC installed-tree rebuilds (the fanned-out work unit).
  std::uint64_t mc_recomputes = 0;
  /// MC LSAs the real protocol would flood for these events.
  std::uint64_t mc_lsas = 0;
  /// Wire cost of those floods under both models, same workload.
  std::uint64_t wire_ops_unbatched = 0;
  std::uint64_t wire_ops_batched = 0;
  std::uint64_t wire_bytes_unbatched = 0;
  std::uint64_t wire_bytes_batched = 0;
  /// The link-event MC-LSA share of the above — the rounds where the
  /// detector originates k LSAs at once and batching actually
  /// coalesces (membership rounds are single-LSA and identical in
  /// both models).
  std::uint64_t link_wire_ops_unbatched = 0;
  std::uint64_t link_wire_ops_batched = 0;
  std::uint64_t link_wire_bytes_unbatched = 0;
  std::uint64_t link_wire_bytes_batched = 0;

  std::uint64_t events() const {
    return membership_events + link_events + mc_recomputes;
  }
};

class ManyMcEngine {
 public:
  explicit ManyMcEngine(ManyMcParams params);

  const graph::Graph& physical() const { return physical_; }
  std::size_t mc_count() const { return records_.size(); }
  const ManyMcStats& stats() const { return stats_; }

  /// Creates params.mcs MCs with params.members_per_mc members each at
  /// deterministic pseudo-random switches. Fans out across shards.
  void build_population();

  /// Single membership events (used by build_population and churn).
  void join(mc::McId mcid, graph::NodeId node,
            mc::MemberRole role = mc::MemberRole::kBoth);
  void leave(mc::McId mcid, graph::NodeId node);

  /// Fails an up link: recomputes the core trees, rebuilds every MC
  /// whose installed tree used the link (parallel over shards), and
  /// charges the paper's 1 + k LSA floods. Returns k.
  int fail_link(graph::LinkId link);

  /// Restores a down link: core trees follow the new graph, installed
  /// trees keep their (still valid) links — the paper's k = 0 case.
  void restore_link(graph::LinkId link);

  /// One deterministic churn round: churn_events_per_round membership
  /// events plus one link fail + restore.
  void churn_round();

  /// Canonical state hash over all MCs in ascending mcid order;
  /// bit-identical at any (shards, jobs).
  std::uint64_t fingerprint() const;

  /// Bytes of per-MC record state currently held (members + tree
  /// links), for the memory-per-MC benchmark alongside process RSS.
  std::size_t record_bytes() const;

 private:
  struct McRecord {
    mc::McType type = mc::McType::kSymmetric;
    mc::MemberList members;
    /// Installed shared-tree links, ascending, unique.
    std::vector<graph::LinkId> tree_links;
  };

  void recompute_core_trees();
  void append_core_path(int core, graph::NodeId from,
                        std::vector<graph::LinkId>& out) const;
  void rebuild_tree(mc::McId mcid, McRecord& rec) const;
  /// Charges one single-LSA flood round to both wire models.
  void account_single_lsa(std::size_t lsa_bytes, ManyMcStats& into) const;

  ManyMcParams params_;
  graph::Graph physical_;
  exec::Pool pool_;
  util::RngStream churn_rng_;
  std::uint64_t churn_rounds_ = 0;
  int up_links_ = 0;
  std::vector<graph::ShortestPaths> core_trees_;
  mc::ShardStore<McRecord> records_;
  ManyMcStats stats_;
  // Codec-derived wire sizes at stamp dimension `switches` (see .cpp).
  std::size_t membership_lsa_bytes_ = 0;
  std::size_t proposal_lsa_base_bytes_ = 0;
  std::size_t proposal_lsa_edge_bytes_ = 0;
  std::size_t nonmc_lsa_bytes_ = 0;
};

}  // namespace dgmc::sim
