// Experiment runner reproducing the paper's evaluation (§4): sweeps
// network sizes, simulates 20 random graphs per size, and reports the
// three metrics of §4.1 with 95% confidence intervals:
//   * topology computations per event (computational overhead),
//   * flooding operations per event (communication overhead),
//   * convergence time in rounds (responsiveness), where a round is
//     Tf + Tc.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mc/types.hpp"
#include "sim/params.hpp"
#include "util/stats.hpp"

namespace dgmc::sim {

enum class WorkloadKind {
  kBursty,  // Experiments 1 and 2: conflicting events in a short window
  kNormal,  // Experiment 3: events well separated
};

struct ExperimentConfig {
  std::string name = "experiment";
  std::vector<int> network_sizes = {25, 50, 75, 100, 125, 150, 175, 200};
  int graphs_per_size = 20;
  TimingParams timing = computation_dominant();
  WorkloadKind workload = WorkloadKind::kBursty;
  int events = 10;           // membership events measured per run
  int initial_members = 8;   // MC size before the measured phase
  mc::McType mc_type = mc::McType::kSymmetric;
  bool incremental_algorithm = true;
  /// Normal-traffic mean gap between events, in rounds (Tf + Tc).
  double normal_gap_rounds = 10.0;
  /// Bursty window width, in fractions of a round.
  double burst_spread_rounds = 0.5;
  std::uint64_t seed = 42;
  /// Worker threads for the sweep: each (network size, graph) trial is
  /// an independent task. 0 = DGMC_JOBS env var or hardware
  /// concurrency (exec::resolve_jobs); 1 = inline serial execution.
  /// The sweep's output is bit-identical at every job count: trials
  /// derive their RNG streams from (seed, size, graph index) alone and
  /// points merge in deterministic (size, graph) order.
  int jobs = 0;
};

struct ExperimentPoint {
  int network_size = 0;
  util::Summary computations_per_event;  // "proposals per event"
  util::Summary floodings_per_event;
  util::Summary convergence_rounds;      // bursty runs only
  double converged_fraction = 0.0;       // sanity: must be 1.0
};

/// One simulation run's raw metrics (exposed for tests).
struct RunResult {
  double computations_per_event = 0.0;
  double floodings_per_event = 0.0;
  double convergence_rounds = 0.0;
  bool converged = false;
};

/// Runs a single (network size, graph index) trial.
RunResult run_single(const ExperimentConfig& cfg, int network_size,
                     int graph_index);

/// Full sweep: every size, `graphs_per_size` random graphs each.
std::vector<ExperimentPoint> run_experiment(const ExperimentConfig& cfg);

/// Prints the sweep as an aligned table (the paper's figure series).
void print_points(const ExperimentConfig& cfg,
                  const std::vector<ExperimentPoint>& points,
                  std::FILE* out = stdout);

/// Canonical serialization of a sweep: a JSON array of point objects
/// with every double rendered at full precision (%.17g), so two sweeps
/// are bit-identical iff their serializations are byte-identical. The
/// determinism tests compare job counts through this; the benches
/// embed it in BENCH_*.json.
std::string serialize_points(const std::vector<ExperimentPoint>& points);

/// Honors the DGMC_QUICK environment variable: when set (non-empty),
/// shrinks sizes/graph counts so the full bench suite stays fast.
ExperimentConfig apply_quick_mode(ExperimentConfig cfg);

}  // namespace dgmc::sim
