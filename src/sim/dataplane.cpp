#include "sim/dataplane.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "mc/validation.hpp"
#include "util/assert.hpp"

namespace dgmc::sim {

DataPlane::DataPlane(DgmcNetwork& net, Params params)
    : net_(net), params_(params) {}

std::uint64_t DataPlane::send(mc::McId mcid, graph::NodeId source) {
  DGMC_ASSERT(net_.physical().valid_node(source));
  const std::uint64_t id = next_id_++;
  InFlight& p = packets_[id];
  p.report.id = id;
  p.report.mcid = mcid;
  p.report.source = source;

  const core::DgmcSwitch& sw = net_.switch_at(source);
  if (!sw.has_state(mcid)) return id;  // unknown MC here: dropped

  if (sw.mc_type(mcid) == mc::McType::kReceiverOnly &&
      !sw.installed(mcid)->empty()) {
    // Stage 1: unicast to the contact node chosen from the source
    // switch's own view (paper Fig 1(b)).
    const graph::NodeId contact =
        mc::contact_node(net_.image_at(source).graph(), *sw.members(mcid),
                         *sw.installed(mcid), source);
    if (contact == graph::kInvalidNode) return id;
    unicast_then_tree(id, source, contact);
    return id;
  }
  process_at(id, source, graph::kInvalidNode);
  return id;
}

void DataPlane::unicast_then_tree(std::uint64_t id, graph::NodeId at,
                                  graph::NodeId contact) {
  if (at == contact) {
    process_at(id, at, graph::kInvalidNode);
    return;
  }
  // One unicast hop toward the contact along the source image's
  // shortest path, then recurse.
  const graph::ShortestPaths sp =
      graph::dijkstra(net_.image_at(at).graph(), at);
  if (!sp.reachable(contact)) return;
  const std::vector<graph::NodeId> path = sp.path_to(contact);
  DGMC_ASSERT(path.size() >= 2);
  const graph::NodeId next = path[1];
  const graph::LinkId link = net_.physical().find_link(at, next);
  InFlight& p = packets_.at(id);
  if (link == graph::kInvalidLink || !net_.physical().link(link).up) {
    ++p.report.dead_drops;
    return;
  }
  ++p.report.hops;
  const double delay =
      net_.physical().link(link).delay + params_.per_hop_overhead;
  net_.scheduler().schedule_after(delay, [this, id, next, contact] {
    unicast_then_tree(id, next, contact);
  });
}

void DataPlane::process_at(std::uint64_t id, graph::NodeId at,
                           graph::NodeId from) {
  InFlight& p = packets_.at(id);
  if (!p.seen.insert(at).second) {
    ++p.report.duplicates;
    return;
  }
  const core::DgmcSwitch& sw = net_.switch_at(at);
  if (sw.has_state(p.report.mcid) &&
      sw.members(p.report.mcid)->contains(at)) {
    p.report.delivered_to.push_back(at);
  }
  forward(id, at, from);
}

void DataPlane::forward(std::uint64_t id, graph::NodeId at,
                        graph::NodeId from) {
  const core::DgmcSwitch& sw = net_.switch_at(at);
  const mc::McId mcid = packets_.at(id).report.mcid;
  if (!sw.has_state(mcid)) return;  // no routing entries here
  // Forward over THIS switch's installed topology — its routing state.
  for (graph::NodeId next : sw.installed(mcid)->neighbors(at)) {
    if (next == from) continue;
    const graph::LinkId link = net_.physical().find_link(at, next);
    InFlight& p = packets_.at(id);
    if (link == graph::kInvalidLink || !net_.physical().link(link).up) {
      ++p.report.dead_drops;
      continue;
    }
    ++p.report.hops;
    const double delay =
        net_.physical().link(link).delay + params_.per_hop_overhead;
    net_.scheduler().schedule_after(
        delay, [this, id, next, at] { process_at(id, next, at); });
  }
}

const DataPlane::PacketReport& DataPlane::report(
    std::uint64_t packet_id) const {
  auto it = packets_.find(packet_id);
  DGMC_ASSERT_MSG(it != packets_.end(), "unknown packet id");
  return it->second.report;
}

bool DataPlane::delivered_to_all(
    std::uint64_t packet_id,
    const std::vector<graph::NodeId>& members) const {
  const PacketReport& r = report(packet_id);
  for (graph::NodeId m : members) {
    if (m == r.source) continue;  // the source trivially has the data
    if (std::find(r.delivered_to.begin(), r.delivered_to.end(), m) ==
        r.delivered_to.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace dgmc::sim
