#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "core/codec.hpp"
#include "graph/algorithms.hpp"
#include "mc/validation.hpp"
#include "util/hash.hpp"

namespace dgmc::sim {

namespace {
std::uint64_t mix_stamp(std::uint64_t h, const core::VectorTimestamp& t) {
  for (graph::NodeId i = 0; i < t.size(); ++i) h = util::hash_mix(h, t[i]);
  return h;
}

/// Content digest of a flooded payload, stamped into every copy's
/// des::EventTag so the explorer can distinguish in-flight messages.
std::uint64_t payload_digest(const DgmcNetwork::Payload& p) {
  std::uint64_t h = 0;
  if (const auto* ad = std::get_if<lsr::LinkEventAd>(&p)) {
    h = util::hash_mix(h, 0x11u);
    h = util::hash_mix(h, static_cast<std::uint64_t>(ad->link));
    h = util::hash_mix(h, ad->up ? 1 : 2);
    return h;
  }
  if (const auto* sync = std::get_if<core::McSync>(&p)) {
    h = util::hash_mix(h, 0x22u);
    h = util::hash_mix(h, static_cast<std::uint64_t>(sync->source));
    h = util::hash_mix(h, static_cast<std::uint64_t>(sync->mc));
    h = util::hash_mix(h, static_cast<std::uint64_t>(sync->mc_type));
    for (const core::McSyncEntry& e : sync->entries) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(e.node));
      h = util::hash_mix(h, e.events_heard);
      h = util::hash_mix(h, e.member_event_index);
      h = util::hash_mix(h, e.is_member ? 1 : 2);
      h = util::hash_mix(h, static_cast<std::uint64_t>(e.role));
    }
    for (const graph::Edge& e : sync->installed.edges()) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(e.a));
      h = util::hash_mix(h, static_cast<std::uint64_t>(e.b));
    }
    h = mix_stamp(h, sync->c);
    h = util::hash_mix(h, static_cast<std::uint64_t>(sync->c_origin));
    return h;
  }
  auto mix_mc_lsa = [](std::uint64_t acc, const core::McLsa& lsa) {
    acc = util::hash_mix(acc, 0x33u);
    acc = util::hash_mix(acc, static_cast<std::uint64_t>(lsa.source));
    acc = util::hash_mix(acc, static_cast<std::uint64_t>(lsa.event));
    acc = util::hash_mix(acc, static_cast<std::uint64_t>(lsa.mc));
    acc = util::hash_mix(acc, static_cast<std::uint64_t>(lsa.mc_type));
    acc = util::hash_mix(acc, static_cast<std::uint64_t>(lsa.join_role));
    acc = util::hash_mix(acc, static_cast<std::uint64_t>(lsa.link));
    if (lsa.proposal.has_value()) {
      for (const graph::Edge& e : lsa.proposal->edges()) {
        acc = util::hash_mix(acc, static_cast<std::uint64_t>(e.a));
        acc = util::hash_mix(acc, static_cast<std::uint64_t>(e.b));
      }
      acc = util::hash_mix(acc, lsa.proposal->edge_count() + 1);
    }
    acc = mix_stamp(acc, lsa.stamp);
    return acc;
  };
  if (const auto* batch = std::get_if<core::McLsaBatch>(&p)) {
    h = util::hash_mix(h, 0x44u);
    for (const core::McLsa& lsa : batch->lsas) h = mix_mc_lsa(h, lsa);
    h = util::hash_mix(h, batch->lsas.size());
    return h;
  }
  return mix_mc_lsa(h, std::get<core::McLsa>(p));
}

/// Wire-encoding size of a flooded payload (core/codec), charged per
/// link copy by the transport — the unit in which batching's
/// bytes-on-the-wire savings are measured.
std::size_t payload_wire_size(const DgmcNetwork::Payload& p) {
  if (const auto* lsa = std::get_if<core::McLsa>(&p)) {
    return core::encoded_size(*lsa);
  }
  if (const auto* batch = std::get_if<core::McLsaBatch>(&p)) {
    return core::encoded_size(*batch);
  }
  if (const auto* ad = std::get_if<lsr::LinkEventAd>(&p)) {
    return core::encode(*ad).size();
  }
  return core::encode(std::get<core::McSync>(p)).size();
}
}  // namespace

DgmcNetwork::DgmcNetwork(graph::Graph physical, Params params,
                         std::unique_ptr<mc::TopologyAlgorithm> algorithm)
    : physical_(std::move(physical)),
      params_(params),
      algorithm_(std::move(algorithm)),
      flooding_(sched_, physical_, params.per_hop_overhead) {
  DGMC_ASSERT(algorithm_ != nullptr);
  if (params.reliable.enabled) flooding_.set_reliable(params.reliable);
  flooding_.set_overload(params.overload);
  const int n = physical_.node_count();
  crashed_links_.resize(n);
  hosts_.reserve(n);
  for (graph::NodeId id = 0; id < n; ++id) {
    hosts_.emplace_back(physical_);
    Host& host = hosts_.back();
    // A transport-silenced switch (gray failure, silence_transport)
    // keeps producing LSAs, but they die at its interface — checked at
    // flood time, so a batch buffered before the silencing dies too.
    lsr::LsaBatcher::Hooks bhooks;
    bhooks.flood_single = [this, id](core::McLsa lsa) {
      if (!flooding_.node_up(id)) return;
      flooding_.flood(id, Payload{std::move(lsa)});
    };
    bhooks.flood_batch = [this, id](core::McLsaBatch batch) {
      if (!flooding_.node_up(id)) return;
      flooding_.flood(id, Payload{std::move(batch)});
    };
    host.batcher =
        std::make_unique<lsr::LsaBatcher>(sched_, id, std::move(bhooks));
    host.batcher->set_enabled(params.lsa_batching);
    core::DgmcSwitch::Hooks hooks;
    hooks.flood = [batcher = host.batcher.get()](core::McLsa lsa) {
      batcher->submit(std::move(lsa));
    };
    hooks.local_image = [&host]() -> const graph::Graph& {
      return host.image.graph();
    };
    hooks.on_state_created = [this, id](mc::McId mcid) {
      note_state_created(mcid, id);
    };
    hooks.on_state_destroyed = [this, id](mc::McId mcid) {
      note_state_destroyed(mcid, id);
    };
    hooks.on_install = [this](mc::McId, const trees::Topology&) {
      ++installs_;
      last_install_time_ = sched_.now();
    };
    host.dgmc = std::make_unique<core::DgmcSwitch>(
        id, n, sched_, *algorithm_, params.dgmc, std::move(hooks));
  }
  flooding_.set_receiver(
      [this](const lsr::FloodingNetwork<Payload>::Delivery& d) {
        deliver(d);
      });
  flooding_.set_payload_digest(payload_digest);
  flooding_.set_payload_size(payload_wire_size);
}

core::DgmcSwitch& DgmcNetwork::switch_at(graph::NodeId n) {
  DGMC_ASSERT(physical_.valid_node(n));
  return *hosts_[n].dgmc;
}

const core::DgmcSwitch& DgmcNetwork::switch_at(graph::NodeId n) const {
  DGMC_ASSERT(physical_.valid_node(n));
  return *hosts_[n].dgmc;
}

const lsr::LocalImage& DgmcNetwork::image_at(graph::NodeId n) const {
  DGMC_ASSERT(physical_.valid_node(n));
  return hosts_[n].image;
}

void DgmcNetwork::deliver(
    const lsr::FloodingNetwork<Payload>::Delivery& d) {
  if (const auto* link_ad = std::get_if<lsr::LinkEventAd>(&d.payload)) {
    hosts_[d.at].image.apply(*link_ad);
    return;
  }
  if (const auto* sync = std::get_if<core::McSync>(&d.payload)) {
    hosts_[d.at].dgmc->apply_sync(*sync);
    return;
  }
  if (const auto* batch = std::get_if<core::McLsaBatch>(&d.payload)) {
    // One delivery (one wire op, one ack) fans out to per-LSA receipt,
    // in origination order — what the unbatched wire would produce.
    for (const core::McLsa& lsa : batch->lsas) {
      hosts_[d.at].dgmc->receive(lsa);
    }
    return;
  }
  hosts_[d.at].dgmc->receive(std::get<core::McLsa>(d.payload));
}

void DgmcNetwork::note_state_created(mc::McId mcid, graph::NodeId at) {
  std::vector<graph::NodeId>& holding = holders_[mcid];
  auto it = std::lower_bound(holding.begin(), holding.end(), at);
  DGMC_ASSERT(it == holding.end() || *it != at);
  holding.insert(it, at);
}

void DgmcNetwork::note_state_destroyed(mc::McId mcid, graph::NodeId at) {
  auto entry = holders_.find(mcid);
  DGMC_ASSERT(entry != holders_.end());
  std::vector<graph::NodeId>& holding = entry->second;
  auto it = std::lower_bound(holding.begin(), holding.end(), at);
  DGMC_ASSERT(it != holding.end() && *it == at);
  holding.erase(it);
  if (holding.empty()) holders_.erase(entry);
}

void DgmcNetwork::join(graph::NodeId at, mc::McId mcid, mc::McType type,
                       mc::MemberRole role) {
  switch_at(at).local_join(mcid, type, role);
}

void DgmcNetwork::leave(graph::NodeId at, mc::McId mcid) {
  switch_at(at).local_leave(mcid);
}

graph::NodeId DgmcNetwork::pick_detector(graph::LinkId link,
                                         graph::NodeId requested) const {
  const graph::Link& l = physical_.link(link);
  if (requested == graph::kInvalidNode) return std::min(l.u, l.v);
  DGMC_ASSERT_MSG(requested == l.u || requested == l.v,
                  "detector must be a link endpoint");
  return requested;
}

int DgmcNetwork::fail_link(graph::LinkId link, graph::NodeId detector) {
  DGMC_ASSERT(link >= 0 && link < physical_.link_count());
  DGMC_ASSERT_MSG(physical_.link(link).up, "link already down");
  const graph::NodeId det = pick_detector(link, detector);
  physical_.set_link_up(link, false);
  flooding_.on_link_down(link);

  if (params_.dual_link_detection) {
    // Both endpoints notice the dead adjacency: each fixes its image,
    // floods a non-MC LSA, and repairs the MCs its topologies lose —
    // necessary when this failure partitions the network, because the
    // primary detector's floodings cannot cross the cut.
    const graph::Link& l = physical_.link(link);
    int k = 0;
    for (graph::NodeId endpoint : {std::min(l.u, l.v), std::max(l.u, l.v)}) {
      if (!hosts_[endpoint].dgmc->alive()) continue;  // cannot detect
      hosts_[endpoint].image.apply(lsr::LinkEventAd{link, false});
      if (flooding_.node_up(endpoint)) {  // gray failure swallows the LSA
        ++nonmc_floodings_;
        flooding_.flood(endpoint, Payload{lsr::LinkEventAd{link, false}});
      }
      const int affected = hosts_[endpoint].dgmc->local_link_event(link);
      if (endpoint == det) k = affected;
    }
    return k;
  }

  if (!hosts_[det].dgmc->alive()) return 0;  // the detector is down
  hosts_[det].image.apply(lsr::LinkEventAd{link, false});
  // One non-MC LSA, then k MC LSAs (paper §3.1, Figure 2). A
  // transport-silenced detector still observes and recomputes locally
  // — its divergence is what the soak watchdog exists to catch — but
  // its LSA dies at the interface.
  if (flooding_.node_up(det)) {
    ++nonmc_floodings_;
    flooding_.flood(det, Payload{lsr::LinkEventAd{link, false}});
  }
  return hosts_[det].dgmc->local_link_event(link);
}

void DgmcNetwork::restore_link(graph::LinkId link, graph::NodeId detector) {
  DGMC_ASSERT(link >= 0 && link < physical_.link_count());
  DGMC_ASSERT_MSG(!physical_.link(link).up, "link already up");
  const graph::NodeId det = pick_detector(link, detector);
  physical_.set_link_up(link, true);
  flooding_.on_link_up(link);
  const graph::Link& restored = physical_.link(link);
  for (graph::NodeId endpoint :
       {std::min(restored.u, restored.v), std::max(restored.u, restored.v)}) {
    if (!params_.dual_link_detection && endpoint != det) continue;
    if (!hosts_[endpoint].dgmc->alive()) continue;  // cannot detect
    hosts_[endpoint].image.apply(lsr::LinkEventAd{link, true});
    if (flooding_.node_up(endpoint)) {  // gray failure swallows the LSA
      ++nonmc_floodings_;
      flooding_.flood(endpoint, Payload{lsr::LinkEventAd{link, true}});
    }
    const int affected = hosts_[endpoint].dgmc->local_link_event(link);
    DGMC_ASSERT(affected == 0);  // an up event affects no topology
  }

  if (params_.dgmc.partition_resync) {
    // Database exchange on adjacency bring-up (core/sync.hpp): both
    // endpoints summarize every connection they know and flood the
    // summaries, letting a healed partition reconcile.
    const graph::Link& l = physical_.link(link);
    resync_over({l.u, l.v});
  }
}

void DgmcNetwork::resync_over(const std::vector<graph::NodeId>& endpoints) {
  for (graph::NodeId endpoint : endpoints) {
    if (!hosts_[endpoint].dgmc->alive()) continue;
    if (!flooding_.node_up(endpoint)) continue;  // gray failure: no sync
    for (mc::McId mcid : hosts_[endpoint].dgmc->known_mcs()) {
      ++sync_floodings_;
      flooding_.flood(endpoint,
                      Payload{hosts_[endpoint].dgmc->export_sync(mcid)});
    }
  }
}

bool DgmcNetwork::switch_alive(graph::NodeId node) const {
  DGMC_ASSERT(physical_.valid_node(node));
  return hosts_[node].dgmc->alive();
}

void DgmcNetwork::crash_switch(graph::NodeId node) {
  DGMC_ASSERT(physical_.valid_node(node));
  DGMC_ASSERT_MSG(hosts_[node].dgmc->alive(), "switch already crashed");
  hosts_[node].dgmc->crash();
  flooding_.set_node_up(node, false);
  // The crash is a nodal event: every up incident link dies, and each
  // live neighbor — never the corpse — detects its half (paper §3.1:
  // "a nodal failure is advertised as the set of its incident links
  // going down").
  std::vector<graph::LinkId>& downed = crashed_links_[node];
  DGMC_ASSERT(downed.empty());
  for (graph::LinkId id : physical_.links_of(node)) {
    if (!physical_.link(id).up) continue;
    physical_.set_link_up(id, false);
    downed.push_back(id);
    const graph::NodeId neighbor = physical_.other_end(id, node);
    if (!hosts_[neighbor].dgmc->alive()) continue;
    hosts_[neighbor].image.apply(lsr::LinkEventAd{id, false});
    if (!flooding_.node_up(neighbor)) continue;  // gray failure swallows
    ++nonmc_floodings_;
    flooding_.flood(neighbor, Payload{lsr::LinkEventAd{id, false}});
    hosts_[neighbor].dgmc->local_link_event(id);
  }
}

void DgmcNetwork::restart_switch(graph::NodeId node) {
  DGMC_ASSERT(physical_.valid_node(node));
  DGMC_ASSERT_MSG(!hosts_[node].dgmc->alive(), "switch is not crashed");
  hosts_[node].dgmc->restart();
  flooding_.set_node_up(node, true);
  // Bring the links the crash took down back up (a flap may have cycled
  // some already — skip those; their adjacency still resyncs below).
  for (graph::LinkId id : crashed_links_[node]) {
    if (physical_.link(id).up) continue;
    physical_.set_link_up(id, true);
    const graph::Link& l = physical_.link(id);
    for (graph::NodeId endpoint : {std::min(l.u, l.v), std::max(l.u, l.v)}) {
      if (!hosts_[endpoint].dgmc->alive()) continue;
      hosts_[endpoint].image.apply(lsr::LinkEventAd{id, true});
      if (!flooding_.node_up(endpoint)) continue;  // gray failure swallows
      ++nonmc_floodings_;
      flooding_.flood(endpoint, Payload{lsr::LinkEventAd{id, true}});
      const int affected = hosts_[endpoint].dgmc->local_link_event(id);
      DGMC_ASSERT(affected == 0);
    }
  }
  // The unicast LSR database bring-up is modeled as instantaneous: the
  // reborn switch re-seeds its image from current reality. (Events it
  // missed while dead are exactly the ones a real LSDB exchange would
  // replay.)
  hosts_[node].image = lsr::LocalImage(physical_);
  if (params_.dgmc.partition_resync) {
    // MC database exchange over every recovered adjacency. The reborn
    // switch knows no MCs, so in practice its neighbors teach it —
    // including its own pre-crash history (see DgmcSwitch::apply_sync).
    std::vector<graph::NodeId> endpoints;
    endpoints.push_back(node);
    for (graph::LinkId id : crashed_links_[node]) {
      const graph::Link& l = physical_.link(id);
      endpoints.push_back(l.u);
      endpoints.push_back(l.v);
    }
    std::sort(endpoints.begin(), endpoints.end());
    endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                    endpoints.end());
    resync_over(endpoints);
  }
  crashed_links_[node].clear();
}

void DgmcNetwork::install_faults(const fault::FaultPlan& plan,
                                 std::uint64_t seed) {
  DGMC_ASSERT_MSG(injector_ == nullptr, "fault plan already installed");
  injector_ = std::make_unique<fault::FaultInjector>(
      plan, physical_.link_count(), seed);
  lsr::FaultHooks hooks;
  hooks.drop = [this](graph::LinkId l) { return injector_->drop(l); };
  hooks.extra_delay = [this](graph::LinkId l) {
    return injector_->extra_delay(l);
  };
  flooding_.set_fault_hooks(std::move(hooks));
  // Scheduled faults ride the ordinary calendar. Each is guarded
  // against the state it expects having been changed by a concurrent
  // fault (a crash downing a flapping link, overlapping crash cycles):
  // the stale half of a cycle degrades to a no-op.
  // Each scheduled fault event gets a distinct tag: seq encodes the
  // plan index and the cycle phase (down/crash = 0, up/restart = 1).
  // Tags identify pending events in the explorer's calendar
  // fingerprint; with one shared tag, states differing only in *which*
  // fault timers are still pending would collapse as duplicates and
  // fault-directed search would silently skip schedules.
  des::EventTag fault_tag;
  fault_tag.kind = des::EventTag::Kind::kFault;
  std::uint32_t fault_index = 0;
  for (const fault::LinkFlap& f : plan.flaps) {
    DGMC_ASSERT(f.link >= 0 && f.link < physical_.link_count());
    fault_tag.link = f.link;
    fault_tag.seq = fault_index << 1;
    sched_.schedule_at(f.down_at, fault_tag, [this, f] {
      if (physical_.link(f.link).up) fail_link(f.link);
    });
    fault_tag.seq = (fault_index << 1) | 1;
    sched_.schedule_at(f.up_at, fault_tag, [this, f] {
      if (!physical_.link(f.link).up) restore_link(f.link);
    });
    ++fault_index;
  }
  fault_tag.link = -1;
  for (const fault::SwitchCrash& c : plan.crashes) {
    DGMC_ASSERT(physical_.valid_node(c.node));
    fault_tag.node = c.node;
    fault_tag.seq = fault_index << 1;
    sched_.schedule_at(c.crash_at, fault_tag, [this, c] {
      if (hosts_[c.node].dgmc->alive()) crash_switch(c.node);
    });
    fault_tag.seq = (fault_index << 1) | 1;
    sched_.schedule_at(c.restart_at, fault_tag, [this, c] {
      if (!hosts_[c.node].dgmc->alive()) restart_switch(c.node);
    });
    ++fault_index;
  }
}

DgmcNetwork::Totals DgmcNetwork::totals() const {
  Totals t;
  for (const Host& h : hosts_) {
    const core::DgmcCounters& c = h.dgmc->counters();
    t.computations += c.computations_started;
    t.mc_lsa_floodings += c.lsas_flooded;
    t.proposals_flooded += c.proposals_flooded;
    t.proposals_accepted += c.proposals_accepted;
  }
  t.nonmc_lsa_floodings = nonmc_floodings_;
  t.sync_floodings = sync_floodings_;
  t.installs = installs_;
  return t;
}

lsr::LsaBatcher::Counters DgmcNetwork::batching_counters() const {
  lsr::LsaBatcher::Counters total;
  for (const Host& h : hosts_) {
    const lsr::LsaBatcher::Counters& c = h.batcher->counters();
    total.lsas_submitted += c.lsas_submitted;
    total.singles_flooded += c.singles_flooded;
    total.batches_flooded += c.batches_flooded;
    total.batched_lsas += c.batched_lsas;
  }
  return total;
}

std::uint64_t DgmcNetwork::fingerprint() const {
  std::uint64_t h = 0x9E3779B9u;
  for (const Host& host : hosts_) h = host.dgmc->fingerprint(h);
  if (params_.lsa_batching) {
    // Buffered-but-unflushed LSAs are behavioral state. Hashed only
    // when batching is on so the hash stays what it always was for
    // every pre-batching configuration.
    for (const Host& host : hosts_) {
      for (const core::McLsa& lsa : host.batcher->pending_lsas()) {
        h = util::hash_mix(h, payload_digest(Payload{lsa}));
      }
      h = util::hash_mix(h, host.batcher->pending());
    }
  }
  for (graph::LinkId id = 0; id < physical_.link_count(); ++id) {
    h = util::hash_mix(h, physical_.link(id).up ? 1 : 2);
  }
  h = flooding_.fingerprint(h);
  for (const auto& links : crashed_links_) {
    for (graph::LinkId id : links) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(id) + 7);
    }
    h = util::hash_mix(h, links.size());
  }
  return h;
}

std::uint64_t DgmcNetwork::fingerprint(
    const graph::Permutation& relabel) const {
  // Mirrors fingerprint() field for field; every sequence indexed by a
  // switch or link id iterates in relabeled order (position m holds the
  // state of the preimage of m) and every stored id maps forward.
  std::uint64_t h = 0x9E3779B9u;
  for (std::size_t m = 0; m < hosts_.size(); ++m) {
    h = hosts_[static_cast<std::size_t>(relabel.node_inv[m])]
            .dgmc->fingerprint(h, &relabel);
  }
  for (graph::LinkId id = 0; id < physical_.link_count(); ++id) {
    h = util::hash_mix(
        h, physical_.link(relabel.link_inv[static_cast<std::size_t>(id)]).up
               ? 1
               : 2);
  }
  h = flooding_.fingerprint(h, relabel);
  for (std::size_t m = 0; m < crashed_links_.size(); ++m) {
    const auto& links =
        crashed_links_[static_cast<std::size_t>(relabel.node_inv[m])];
    std::vector<graph::LinkId> mapped;
    mapped.reserve(links.size());
    for (graph::LinkId id : links) mapped.push_back(relabel.map_link(id));
    std::sort(mapped.begin(), mapped.end());
    for (graph::LinkId id : mapped) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(id) + 7);
    }
    h = util::hash_mix(h, mapped.size());
  }
  return h;
}

void DgmcNetwork::save(Snapshot& out) const {
  sched_.save(out.scheduler);
  const int links = physical_.link_count();
  out.physical_links.resize(static_cast<std::size_t>(links));
  for (graph::LinkId id = 0; id < links; ++id) {
    out.physical_links[static_cast<std::size_t>(id)] =
        physical_.link(id).up ? 1 : 0;
  }
  flooding_.save(out.flooding);
  out.images.resize(hosts_.size());
  out.switches.resize(hosts_.size());
  out.batchers.resize(hosts_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i].image.save_link_flags(out.images[i]);
    hosts_[i].dgmc->save(out.switches[i]);
    hosts_[i].batcher->save(out.batchers[i]);
  }
  out.holders = holders_;
  if (injector_ != nullptr) {
    if (out.injector != nullptr) {
      *out.injector = *injector_;
    } else {
      out.injector = std::make_unique<fault::FaultInjector>(*injector_);
    }
  } else {
    out.injector.reset();
  }
  out.crashed_links = crashed_links_;
  out.nonmc_floodings = nonmc_floodings_;
  out.sync_floodings = sync_floodings_;
  out.installs = installs_;
  out.last_install_time = last_install_time_;
}

void DgmcNetwork::restore(const Snapshot& snap) {
  sched_.restore(snap.scheduler);
  DGMC_ASSERT(static_cast<int>(snap.physical_links.size()) ==
              physical_.link_count());
  for (graph::LinkId id = 0; id < physical_.link_count(); ++id) {
    physical_.set_link_up(id,
                          snap.physical_links[static_cast<std::size_t>(id)] !=
                              0);
  }
  flooding_.restore(snap.flooding);
  DGMC_ASSERT(snap.images.size() == hosts_.size());
  DGMC_ASSERT(snap.switches.size() == hosts_.size());
  DGMC_ASSERT(snap.batchers.size() == hosts_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i].image.restore_link_flags(snap.images[i]);
    hosts_[i].dgmc->restore(snap.switches[i]);
    hosts_[i].batcher->restore(snap.batchers[i]);
  }
  holders_ = snap.holders;
  if (snap.injector != nullptr) {
    DGMC_ASSERT_MSG(injector_ != nullptr,
                    "snapshot has faults the network never installed");
    *injector_ = *snap.injector;
  }
  // The converse (live injector, snapshot without one) cannot happen:
  // install_faults precedes any save, and injectors are never removed.
  crashed_links_ = snap.crashed_links;
  nonmc_floodings_ = snap.nonmc_floodings;
  sync_floodings_ = snap.sync_floodings;
  installs_ = snap.installs;
  last_install_time_ = snap.last_install_time;
}

double DgmcNetwork::flooding_diameter() const {
  return graph::flooding_diameter(physical_, params_.per_hop_overhead);
}

bool DgmcNetwork::converged(mc::McId mcid) const {
  // The holders_ index makes this O(holders) instead of O(switches):
  // with thousands of MCs each held by a handful of switches, the scan
  // over every host per MC was the dominant cost of a convergence
  // sweep (bench/micro_kernels: converged_scan vs converged_index).
  auto entry = holders_.find(mcid);
  if (entry == holders_.end()) return true;  // destroyed everywhere
  const std::vector<graph::NodeId>& holding = entry->second;
  DGMC_ASSERT(!holding.empty());
  const core::DgmcSwitch* reference = hosts_[holding.front()].dgmc.get();
  for (std::size_t i = 1; i < holding.size(); ++i) {
    const core::DgmcSwitch& s = *hosts_[holding[i]].dgmc;
    if (!(*s.installed(mcid) == *reference->installed(mcid))) return false;
    if (!(*s.members(mcid) == *reference->members(mcid))) return false;
    if (!(*s.stamp_c(mcid) == *reference->stamp_c(mcid))) return false;
  }
  // A switch that the agreed tree or member list involves but that
  // holds no state cannot forward for the connection. It never
  // *disagrees* on content, so the comparisons above miss it — this is
  // the signature of a crash recovery that failed to re-learn.
  for (graph::NodeId n : reference->installed(mcid)->nodes()) {
    if (!hosts_[n].dgmc->has_state(mcid)) return false;
  }
  for (graph::NodeId n : reference->members(mcid)->all()) {
    if (!hosts_[n].dgmc->has_state(mcid)) return false;
  }
  // The agreed topology must actually serve the agreed member list.
  return mc::is_valid_topology(physical_, reference->mc_type(mcid),
                               *reference->members(mcid),
                               *reference->installed(mcid));
}

trees::Topology DgmcNetwork::agreed_topology(mc::McId mcid) const {
  DGMC_ASSERT(converged(mcid));
  auto entry = holders_.find(mcid);
  if (entry == holders_.end()) return trees::Topology{};
  return *hosts_[entry->second.front()].dgmc->installed(mcid);
}

}  // namespace dgmc::sim
