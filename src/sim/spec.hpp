// Declarative soak/churn scenario spec — ONE format consumed by BOTH
// the long-run chaos soak runner (`dgmc_soak`, src/soak) and the model
// checker (`dgmc_check --spec`, via check::scenario_from_soak). Every
// stress workload is thereby also a checkable fault-search scenario
// (Helmy/Estrin/Gupta's methodology; see DESIGN.md §10).
//
// Grammar, one statement per line, '#' starts a comment:
//
//   name <identifier>
//   network waxman <n> [seed=<u64>]    — or ring|line|star|complete <n>,
//   network grid <rows> <cols>           grid <rows> <cols>
//   delay uniform <time> | delay mean <time>
//   timing tc=<time> perhop=<time>
//   option algorithm=incremental|fromscratch resync=on|off
//          dualdetect=on|off reliable=on|off batching=on|off
//   overload inflight=<n> queue=<n> dedupcap=<n>   — backpressure knobs
//   soak duration=<time> phases=<n> trials=<n> seed=<u64>
//   watchdog deadline=<time>
//   budget dedup=<n> pending=<n> rss_mb=<float>
//   fault loss=<p> jitter=<time>
//   fault burst pgb=<p> pbg=<p> lossgood=<p> lossbad=<p>
//   churn flashcrowd mc=<id> start=<time> members=<n> alpha=<f> scale=<time>
//         [type=symmetric|receiver|asymmetric] [role=sender|receiver|both]
//   churn poisson mc=<id> start=<time> members=<n> events=<n> gap=<time>
//   churn drift links=<n> period=<time> sigma=<f> down=<f> up=<f>
//   churn rolling start=<time> interval=<time> downtime=<time> count=<n>
//   churn manymc mc=<base> mcs=<n> start=<time> members=<n> gap=<time>
//         [type=symmetric|receiver|asymmetric] [role=sender|receiver|both]
//
// Times accept s/ms/us suffixes (sim/scenario.hpp parse_time). Parsing
// is total — errors carry line number and reason — and `serialize()`
// emits a canonical text that re-parses to an identical spec
// (round-trip pinned by tests/sim_spec_test.cpp).
//
// Churn programs (the workloads the paper's polite bursty/Poisson
// generators lack):
//   flashcrowd — a join storm with heavy-tailed (Pareto alpha/scale)
//     interarrivals: most arrivals cluster, a few straggle far out.
//   poisson    — background membership churn against an evolving member
//     set (reuses sim/workload semantics: each node used at most once).
//   drift      — DREAM_OLSR-style continuous link-cost drift: each
//     selected link's cost random-walks every `period`; crossing the
//     `down` threshold fails the link, recovering below `up` (< down —
//     the hysteresis band) restores it. Sub-threshold drift is tracked
//     but deliberately not protocol-visible: D-GMC floods link up/down
//     LSAs, not costs, so flaps are the protocol-visible projection.
//   rolling    — a rolling switch upgrade wave: a seeded permutation of
//     switches crash/restart one after another, `interval` apart.
//   manymc     — the many-MC population workload (DESIGN.md §13): `mcs`
//     connections with ids [base, base+mcs), each created `gap` apart
//     by a burst of `members` distinct seeded switches joining at once.
//     One spec line stands up hundreds of concurrent MCs for the sim,
//     soak, and net backends alike.
//
// Each MC id may appear in at most one membership program (flashcrowd/
// poisson/manymc id range) so join/leave sequences stay well-formed per
// MC.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "des/time.hpp"
#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "lsr/flooding.hpp"
#include "mc/types.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {

struct SpecError {
  int line = 0;
  std::string message;
};

/// One churn program (see header comment for semantics).
struct ChurnProgram {
  enum class Kind : std::uint8_t {
    kFlashCrowd = 0,
    kPoisson = 1,
    kDrift = 2,
    kRolling = 3,
    kManyMc = 4,
  };
  Kind kind = Kind::kFlashCrowd;
  // flashcrowd / poisson
  mc::McId mcid = 1;
  des::SimTime start = 0.0;
  int members = 8;  // flashcrowd: storm size; poisson: initial members
  double alpha = 1.5;   // flashcrowd: Pareto shape (> 0)
  double scale = 1e-3;  // flashcrowd: Pareto scale = minimum gap (> 0)
  mc::McType type = mc::McType::kSymmetric;
  mc::MemberRole role = mc::MemberRole::kBoth;
  int events = 10;           // poisson: churn events after the joins
  des::SimTime gap = 1.0;    // poisson: mean inter-event gap
  // drift
  int links = 4;             // number of drifting links (seeded pick)
  des::SimTime period = 0.25;
  double sigma = 0.2;        // per-period cost step, uniform(-sigma, sigma)
  double down_threshold = 2.0;  // cost >= down  => link fails
  double up_threshold = 1.5;    // cost <= up    => link restores
  // rolling
  des::SimTime interval = 5.0;
  des::SimTime downtime = 0.5;
  int count = 0;  // switches in the wave; 0 = every switch
  // manymc: population size; ids are [mcid, mcid + mcs), one creation
  // burst of `members` joins per MC, `gap` apart.
  int mcs = 256;
};

/// Steady-state bounds asserted at every phase boundary of a soak.
struct SoakBudgets {
  std::size_t dedup_backlog = 4096;        // flooding dedup `ahead` entries
  std::size_t pending_retransmits = 8192;  // armed retransmit timers
  double rss_growth_mb = 256.0;            // RSS growth since first phase
};

/// A parsed, executable soak spec.
class SoakSpec {
 public:
  /// Parses the text; returns the spec or the first error.
  static std::variant<SoakSpec, SpecError> parse(std::string_view text);

  /// Canonical text form: parse(serialize()) == *this (field-for-field;
  /// the round-trip test compares serializations).
  std::string serialize() const;

  /// Builds the physical graph the spec describes.
  graph::Graph build_graph() const;

  /// Network parameters (timing, options, reliability, backpressure).
  DgmcNetwork::Params network_params() const;

  /// MC ids any membership program touches, ascending.
  std::vector<mc::McId> mcs() const;

  std::string name = "soak";

  // --- topology ---
  enum class Topo : std::uint8_t {
    kWaxman = 0, kRing, kLine, kStar, kGrid, kComplete
  };
  Topo topo = Topo::kWaxman;
  int network_size = 20;
  int grid_rows = 0;
  int grid_cols = 0;
  std::uint64_t topo_seed = 1;
  std::optional<double> uniform_delay;
  std::optional<double> mean_delay;

  // --- timing / options ---
  des::SimTime tc = 25e-3;
  double per_hop = 4e-6;
  bool incremental = true;
  bool resync = true;
  bool dual_detect = false;
  bool reliable = true;
  /// Coalesce same-round MC LSA originations into batch frames
  /// (DESIGN.md §13). One knob for every backend the spec drives: the
  /// DES sim, dgmc_soak, and the UDP nethost all honor it.
  bool lsa_batching = false;
  lsr::OverloadConfig overload;

  // --- soak controls ---
  des::SimTime duration = 60.0;
  int phases = 4;
  int trials = 1;
  std::uint64_t soak_seed = 42;
  des::SimTime watchdog_deadline = 20.0;
  SoakBudgets budgets;

  // --- stochastic fault plan (flaps/crashes come from churn programs) ---
  fault::FaultPlan faults;

  std::vector<ChurnProgram> churn;
};

/// One concrete external event a churn program emits.
struct SoakEvent {
  enum class Kind : std::uint8_t {
    kJoin = 0, kLeave, kFail, kRestore, kCrash, kRestart
  };
  des::SimTime at = 0.0;
  Kind kind = Kind::kJoin;
  graph::NodeId node = graph::kInvalidNode;  // join/leave/crash/restart
  graph::LinkId link = graph::kInvalidLink;  // fail/restore
  mc::McId mcid = mc::kInvalidMc;
  mc::McType type = mc::McType::kSymmetric;
  mc::MemberRole role = mc::MemberRole::kBoth;
};

std::string to_string(const SoakEvent& ev);

/// Stateful, deterministic expansion of a spec's churn programs into
/// concrete events. Phase-incremental so the soak runner can schedule
/// one phase at a time (draining to quiescence in between) without
/// future events keeping the calendar non-empty. Program i draws every
/// decision from RngStream::derive(seed, "churn").fork(i), so adding or
/// removing one program never perturbs another's event sequence (the
/// same decoupling FaultInjector applies to fault kinds).
class ChurnEngine {
 public:
  ChurnEngine(const SoakSpec& spec, const graph::Graph& graph,
              std::uint64_t seed);

  /// Events with `from <= at < to`, sorted by (time, program index).
  /// Must be called with contiguous, increasing windows.
  std::vector<SoakEvent> phase_events(des::SimTime from, des::SimTime to);

  /// All events in [0, spec.duration) as one batch (checker bridge and
  /// tests; equivalent to concatenating every phase window).
  static std::vector<SoakEvent> expand_all(const SoakSpec& spec,
                                           const graph::Graph& graph,
                                           std::uint64_t seed);

 private:
  struct Program {
    ChurnProgram cfg;
    util::RngStream rng;
    // flashcrowd / poisson: precomputed schedule, next-index cursor.
    std::vector<SoakEvent> schedule;
    std::size_t next = 0;
    // drift: per-link state.
    std::vector<graph::LinkId> drift_links;
    std::vector<double> cost;
    std::vector<std::uint8_t> down;  // our model's view of the link
    des::SimTime next_tick = 0.0;
  };

  void build_schedule(Program& p, const graph::Graph& graph, int n);
  void drift_window(Program& p, des::SimTime from, des::SimTime to,
                    std::vector<SoakEvent>* out);

  std::vector<Program> programs_;
  des::SimTime cursor_ = 0.0;
};

}  // namespace dgmc::sim
