// Simulated time.
//
// Time is a double in seconds. Events separated by less than kTimeEps
// are considered simultaneous for reporting purposes; ordering between
// equal-time events is deterministic (FIFO by schedule order).
#pragma once

namespace dgmc::des {

using SimTime = double;

inline constexpr SimTime kMicrosecond = 1e-6;
inline constexpr SimTime kMillisecond = 1e-3;
inline constexpr SimTime kSecond = 1.0;

inline constexpr SimTime kTimeEps = 1e-12;

}  // namespace dgmc::des
