// Simulated time.
//
// SimTime is an alias of rt::Time (double seconds): under the DES
// backend the runtime layer's clock *is* simulated time. Events
// separated by less than kTimeEps are considered simultaneous for
// reporting purposes; ordering between equal-time events is
// deterministic (FIFO by schedule order).
#pragma once

#include "rt/time.hpp"

namespace dgmc::des {

using SimTime = rt::Time;

inline constexpr SimTime kMicrosecond = rt::kMicrosecond;
inline constexpr SimTime kMillisecond = rt::kMillisecond;
inline constexpr SimTime kSecond = rt::kSecond;

inline constexpr SimTime kTimeEps = rt::kTimeEps;

}  // namespace dgmc::des
