// Mailbox: typed message queue with arrival notification.
//
// The CSIM-style abstraction used by switch processes: senders deliver
// (optionally after a delay), the owner drains with try_receive(). The
// notification callback fires once per delivery at delivery time, which
// lets a reactive process model "invoked whenever LSAs are present in
// the mailbox" (paper §3.3) without polling.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "des/scheduler.hpp"

namespace dgmc::des {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Scheduler& sched) : sched_(sched) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Registers the arrival notification. At most one handler is
  /// supported; it runs after the message is enqueued.
  void on_message(std::function<void()> handler) {
    handler_ = std::move(handler);
  }

  /// Enqueues a message now and fires the notification.
  void deliver(T msg) {
    queue_.push_back(std::move(msg));
    if (handler_) handler_();
  }

  /// Enqueues a message after `delay` simulated seconds.
  void deliver_after(SimTime delay, T msg) {
    sched_.schedule_after(
        delay, [this, m = std::move(msg)]() mutable { deliver(std::move(m)); });
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Removes and returns the oldest message, or nullopt if empty.
  std::optional<T> try_receive() {
    if (queue_.empty()) return std::nullopt;
    T msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

 private:
  Scheduler& sched_;
  std::deque<T> queue_;
  std::function<void()> handler_;
};

}  // namespace dgmc::des
