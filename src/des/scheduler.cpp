#include "des/scheduler.hpp"

#include <utility>

#include "util/assert.hpp"

namespace dgmc::des {

Scheduler::EventId Scheduler::schedule_at(SimTime t, Callback cb) {
  DGMC_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  DGMC_ASSERT(cb != nullptr);
  const std::uint64_t id = next_id_++;
  heap_.push(Node{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++pending_;
  return EventId{id};
}

Scheduler::EventId Scheduler::schedule_after(SimTime delay, Callback cb) {
  DGMC_ASSERT_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::cancel(EventId id) {
  auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --pending_;
  // The heap node is left in place and skipped lazily on pop.
  return true;
}

bool Scheduler::pop_next(Node& out) {
  while (!heap_.empty()) {
    Node n = heap_.top();
    heap_.pop();
    if (callbacks_.count(n.id) != 0) {
      out = n;
      return true;
    }
    // Cancelled node: drop it.
  }
  return false;
}

bool Scheduler::step() {
  Node n;
  if (!pop_next(n)) return false;
  auto it = callbacks_.find(n.id);
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  --pending_;
  now_ = n.time;
  ++executed_;
  cb();
  return true;
}

std::size_t Scheduler::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t Scheduler::run_until(SimTime t) {
  DGMC_ASSERT(t >= now_);
  std::size_t count = 0;
  while (true) {
    Node n;
    if (!pop_next(n)) break;
    if (n.time > t) {
      // Peeked too far: push it back untouched.
      heap_.push(n);
      break;
    }
    auto it = callbacks_.find(n.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --pending_;
    now_ = n.time;
    ++executed_;
    cb();
    ++count;
  }
  now_ = t;
  return count;
}

}  // namespace dgmc::des
