#include "des/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace dgmc::des {

namespace {

/// (time, seq) strict-weak order on enumerated entries — the exact
/// order step()/run() executes them.
struct PendingBefore {
  bool operator()(const Scheduler::PendingEvent& a,
                  const Scheduler::PendingEvent& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

}  // namespace

Scheduler::EventId Scheduler::schedule_at(SimTime t, Callback cb) {
  return schedule_at(t, EventTag{}, std::move(cb));
}

Scheduler::EventId Scheduler::schedule_at(SimTime t, EventTag tag,
                                          Callback cb) {
  DGMC_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  DGMC_ASSERT(cb != nullptr);
  const std::uint64_t id = next_id_++;
  const std::uint64_t seq = next_seq_++;
  heap_.push(Node{t, seq, id});
  ordered_insert(EventId{id}, t, seq, tag);
  events_.emplace(id, Record{std::move(cb), t, seq, tag});
  return EventId{id};
}

Scheduler::EventId Scheduler::schedule_after(SimTime delay, EventTag tag,
                                             Callback cb) {
  DGMC_ASSERT_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, tag, std::move(cb));
}

bool Scheduler::cancel(EventId id) {
  auto it = events_.find(id.value);
  if (it == events_.end()) return false;
  ordered_erase(it->second.time, it->second.seq);
  events_.erase(it);
  // The heap node is left in place and skipped lazily on pop.
  return true;
}

bool Scheduler::pop_next(Node& out) {
  while (!heap_.empty()) {
    Node n = heap_.top();
    heap_.pop();
    if (events_.count(n.id) != 0) {
      out = n;
      return true;
    }
    // Cancelled or explicitly-run node: drop it.
  }
  return false;
}

void Scheduler::execute(std::uint64_t id, SimTime at) {
  auto it = events_.find(id);
  DGMC_ASSERT(it != events_.end());
  Callback cb = std::move(it->second.cb);
  ordered_erase(it->second.time, it->second.seq);
  events_.erase(it);
  now_ = at;
  ++executed_;
  cb();
}

bool Scheduler::step() {
  Node n;
  if (!pop_next(n)) return false;
  // After an out-of-order run_event the head may lie in the past;
  // the clock never retreats.
  execute(n.id, std::max(now_, n.time));
  return true;
}

std::size_t Scheduler::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t Scheduler::run_until(SimTime t) {
  DGMC_ASSERT(t >= now_);
  std::size_t count = 0;
  while (true) {
    Node n;
    if (!pop_next(n)) break;
    if (n.time > t) {
      // Peeked too far: push it back untouched.
      heap_.push(n);
      break;
    }
    execute(n.id, std::max(now_, n.time));
    ++count;
  }
  now_ = t;
  return count;
}

void Scheduler::ordered_insert(EventId id, SimTime time, std::uint64_t seq,
                               const EventTag& tag) {
  const PendingEvent ev{id, time, seq, tag};
  // Sequence numbers grow monotonically, so new events almost always
  // land at the back; lower_bound makes the cold case (an event at an
  // earlier time than some pending one) O(log n) + shift.
  auto it = std::lower_bound(ordered_.begin(), ordered_.end(), ev,
                             PendingBefore{});
  ordered_.insert(it, ev);
}

void Scheduler::ordered_erase(SimTime time, std::uint64_t seq) {
  const PendingEvent key{EventId{0}, time, seq, EventTag{}};
  auto it = std::lower_bound(ordered_.begin(), ordered_.end(), key,
                             PendingBefore{});
  DGMC_ASSERT(it != ordered_.end() && it->time == time && it->seq == seq);
  ordered_.erase(it);
}

bool Scheduler::run_event(EventId id) {
  auto it = events_.find(id.value);
  if (it == events_.end()) return false;
  execute(id.value, std::max(now_, it->second.time));
  return true;
}

void Scheduler::save(Snapshot& out) const {
  out.now = now_;
  out.next_seq = next_seq_;
  out.next_id = next_id_;
  out.executed = executed_;
  out.events.clear();
  out.events.reserve(ordered_.size());
  for (const PendingEvent& ev : ordered_) {
    const auto it = events_.find(ev.id.value);
    DGMC_ASSERT(it != events_.end());
    out.events.emplace_back(it->first, it->second);
  }
}

void Scheduler::restore(const Snapshot& snap) {
  now_ = snap.now;
  next_seq_ = snap.next_seq;
  next_id_ = snap.next_id;
  executed_ = snap.executed;
  events_.clear();
  ordered_.clear();
  // Rebuild the heap from scratch: any stale lazy-cancel nodes the live
  // heap carried are irrelevant once events_ is reset, and a stale node
  // whose id got re-pended by the snapshot would be actively wrong.
  std::vector<Node> nodes;
  nodes.reserve(snap.events.size());
  for (const auto& [id, rec] : snap.events) {
    events_.emplace(id, rec);
    ordered_.push_back(PendingEvent{EventId{id}, rec.time, rec.seq, rec.tag});
    nodes.push_back(Node{rec.time, rec.seq, id});
  }
  heap_ = std::priority_queue<Node, std::vector<Node>, Later>(
      Later{}, std::move(nodes));
}

}  // namespace dgmc::des
