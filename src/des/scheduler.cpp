#include "des/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace dgmc::des {

Scheduler::EventId Scheduler::schedule_at(SimTime t, Callback cb) {
  return schedule_at(t, EventTag{}, std::move(cb));
}

Scheduler::EventId Scheduler::schedule_at(SimTime t, EventTag tag,
                                          Callback cb) {
  DGMC_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  DGMC_ASSERT(cb != nullptr);
  const std::uint64_t id = next_id_++;
  const std::uint64_t seq = next_seq_++;
  heap_.push(Node{t, seq, id});
  events_.emplace(id, Record{std::move(cb), t, seq, tag});
  return EventId{id};
}

Scheduler::EventId Scheduler::schedule_after(SimTime delay, Callback cb) {
  return schedule_after(delay, EventTag{}, std::move(cb));
}

Scheduler::EventId Scheduler::schedule_after(SimTime delay, EventTag tag,
                                             Callback cb) {
  DGMC_ASSERT_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, tag, std::move(cb));
}

bool Scheduler::cancel(EventId id) {
  auto it = events_.find(id.value);
  if (it == events_.end()) return false;
  events_.erase(it);
  // The heap node is left in place and skipped lazily on pop.
  return true;
}

bool Scheduler::pop_next(Node& out) {
  while (!heap_.empty()) {
    Node n = heap_.top();
    heap_.pop();
    if (events_.count(n.id) != 0) {
      out = n;
      return true;
    }
    // Cancelled or explicitly-run node: drop it.
  }
  return false;
}

void Scheduler::execute(std::uint64_t id, SimTime at) {
  auto it = events_.find(id);
  DGMC_ASSERT(it != events_.end());
  Callback cb = std::move(it->second.cb);
  events_.erase(it);
  now_ = at;
  ++executed_;
  cb();
}

bool Scheduler::step() {
  Node n;
  if (!pop_next(n)) return false;
  // After an out-of-order run_event the head may lie in the past;
  // the clock never retreats.
  execute(n.id, std::max(now_, n.time));
  return true;
}

std::size_t Scheduler::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t Scheduler::run_until(SimTime t) {
  DGMC_ASSERT(t >= now_);
  std::size_t count = 0;
  while (true) {
    Node n;
    if (!pop_next(n)) break;
    if (n.time > t) {
      // Peeked too far: push it back untouched.
      heap_.push(n);
      break;
    }
    execute(n.id, std::max(now_, n.time));
    ++count;
  }
  now_ = t;
  return count;
}

std::vector<Scheduler::PendingEvent> Scheduler::pending_events() const {
  std::vector<PendingEvent> out;
  out.reserve(events_.size());
  for (const auto& [id, rec] : events_) {
    out.push_back(PendingEvent{EventId{id}, rec.time, rec.seq, rec.tag});
  }
  std::sort(out.begin(), out.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  return out;
}

bool Scheduler::run_event(EventId id) {
  auto it = events_.find(id.value);
  if (it == events_.end()) return false;
  execute(id.value, std::max(now_, it->second.time));
  return true;
}

}  // namespace dgmc::des
