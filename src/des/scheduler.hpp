// Event calendar for discrete-event simulation.
//
// A Scheduler holds pending (time, callback) events in a binary heap.
// Determinism: events with equal timestamps execute in the order they
// were scheduled (FIFO tie-break via a monotonically increasing
// sequence number), so a fixed seed reproduces an identical run.
//
// Exploration support (src/check): every event may carry an EventTag
// describing what it semantically is (a message delivery, an ack, a
// timer, ...). `pending_events()` enumerates the calendar
// deterministically and `run_event()` executes a *chosen* pending
// event instead of the earliest one, which is how the systematic
// explorer searches message interleavings the native (time, seq) order
// would never produce. Running an event "early" advances now() to at
// least that event's scheduled time; running it "late" leaves now()
// untouched — the explorer models an asynchronous network where
// message delays are arbitrary.
//
// Checkpoint support: `save()`/`restore()` snapshot the whole calendar
// — pending records (callbacks included; see small_function.hpp for
// why they are copyable), the clock, and the id/seq counters — so the
// explorer can rewind a simulation in O(pending) instead of replaying
// the entire event prefix. Restoring also restores next_seq_/next_id_,
// which keeps every post-restore event's (time, seq) tie-break and
// EventId bit-identical to a from-scratch replay: the FIFO determinism
// contract survives checkpointing.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "des/time.hpp"
#include "rt/executor.hpp"

namespace dgmc::des {

/// Semantic event annotation, moved to the runtime layer (rt/) so both
/// execution backends share one vocabulary. Aliased here for the many
/// existing des::EventTag users.
using EventTag = rt::EventTag;
using SmallFunction = rt::SmallFunction;

/// The DES calendar is one of the two rt::Executor implementations
/// (the other is net::EventLoop). `final` keeps the hot simulation
/// paths devirtualizable when callers hold a concrete Scheduler.
class Scheduler final : public rt::Executor {
 public:
  /// Small-buffer callable: no heap allocation for the typical capture
  /// sizes the simulation schedules (see small_function.hpp).
  using Callback = rt::SmallFunction;

  /// Opaque handle for cancellation. Alias of rt::TimerId: protocol
  /// code holding an rt::TimerId and sim code holding an EventId see
  /// the same 64-bit handle.
  using EventId = rt::TimerId;

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb);
  EventId schedule_at(SimTime t, EventTag tag, Callback cb);

  /// Schedules `cb` at now() + delay (delay must be >= 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    return rt::Executor::schedule_after(delay, std::move(cb));
  }
  EventId schedule_after(SimTime delay, EventTag tag, Callback cb) override;

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id) override;

  /// Current simulated time.
  SimTime now() const override { return now_; }

  /// Executes the next pending event, advancing time. Returns false if
  /// the calendar is empty.
  bool step();

  /// Runs until the calendar drains. Returns the number of events run.
  std::size_t run();

  /// Runs all events with time <= t, then advances now() to t.
  std::size_t run_until(SimTime t);

  // --- Exploration interface ---

  /// One enumerated calendar entry.
  struct PendingEvent {
    EventId id;
    SimTime time;
    std::uint64_t seq;  // schedule-order FIFO tie-break
    EventTag tag;
  };

  /// All pending (non-cancelled) events, sorted by (time, seq) — the
  /// exact order step()/run() would execute them. Deterministic: two
  /// runs that scheduled the same events enumerate identically.
  ///
  /// The view is maintained incrementally (ordered insert on schedule,
  /// binary-search erase on cancel/execute), so calling this per
  /// explorer step costs nothing — it no longer rebuilds and sorts a
  /// copy of the calendar. The reference is invalidated by any
  /// scheduling mutation.
  const std::vector<PendingEvent>& pending_events() const { return ordered_; }

  /// Executes a specific pending event out of calendar order. now()
  /// advances to max(now(), event time) — an event executed "late"
  /// never moves time backwards. Returns false if `id` is not pending
  /// (already ran or cancelled).
  bool run_event(EventId id);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return events_.size(); }

  bool empty() const { return events_.empty(); }

  /// Total events executed since construction (diagnostic).
  std::uint64_t executed() const { return executed_; }

  // --- Checkpoint interface ---

  /// A pending event's callback plus the metadata pending_events()
  /// reports. Public only as the Snapshot payload.
  struct Record {
    Callback cb;
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    EventTag tag;
  };

  /// A full copy of the calendar: every pending record (callback
  /// included), the clock, and the id/seq counters. Only meaningful
  /// for restore() on the *same* scheduler the snapshot was taken
  /// from — captured callbacks point into the owning simulation.
  struct Snapshot {
    SimTime now = 0.0;
    std::uint64_t next_seq = 0;
    std::uint64_t next_id = 1;
    std::uint64_t executed = 0;
    /// (id, record) pairs in (time, seq) order.
    std::vector<std::pair<std::uint64_t, Record>> events;
  };

  /// Copies the calendar into `out`, reusing its capacity (checkpoint
  /// pools hand the same Snapshot object back repeatedly).
  void save(Snapshot& out) const;

  /// Restores a calendar previously saved from this scheduler. After
  /// restore, execution order, future EventIds and (time, seq) pairs
  /// are bit-identical to a run that never diverged.
  void restore(const Snapshot& snap);

 private:
  struct Node {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    // Heap nodes hold only ordering data; callbacks live in a side map
    // so that cancellation/out-of-order execution does not require heap
    // surgery (stale nodes are skipped lazily on pop).
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Node& out);
  void execute(std::uint64_t id, SimTime at);
  void ordered_insert(EventId id, SimTime time, std::uint64_t seq,
                      const EventTag& tag);
  void ordered_erase(SimTime time, std::uint64_t seq);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Node, std::vector<Node>, Later> heap_;
  std::unordered_map<std::uint64_t, Record> events_;
  /// Pending events in (time, seq) order, maintained incrementally.
  std::vector<PendingEvent> ordered_;
};

}  // namespace dgmc::des
