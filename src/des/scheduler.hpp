// Event calendar for discrete-event simulation.
//
// A Scheduler holds pending (time, callback) events in a binary heap.
// Determinism: events with equal timestamps execute in the order they
// were scheduled (FIFO tie-break via a monotonically increasing
// sequence number), so a fixed seed reproduces an identical run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "des/time.hpp"

namespace dgmc::des {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancellation.
  struct EventId {
    std::uint64_t value = 0;
  };

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at now() + delay (delay must be >= 0).
  EventId schedule_after(SimTime delay, Callback cb);

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Executes the next pending event, advancing time. Returns false if
  /// the calendar is empty.
  bool step();

  /// Runs until the calendar drains. Returns the number of events run.
  std::size_t run();

  /// Runs all events with time <= t, then advances now() to t.
  std::size_t run_until(SimTime t);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_; }

  bool empty() const { return pending_ == 0; }

  /// Total events executed since construction (diagnostic).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Node {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    // Heap nodes hold only ordering data; callbacks live in a side map so
    // that cancellation does not require heap surgery.
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Node& out);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::priority_queue<Node, std::vector<Node>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace dgmc::des
