// SerialResource: a single-server FIFO queue over the event calendar.
//
// Models a switch CPU: jobs (e.g. topology computations of duration Tc)
// submitted while the resource is busy wait in FIFO order. The paper's
// protocol behaviour under bursts hinges on this serialization — LSAs
// that arrive while a computation is in flight invalidate its proposal.
#pragma once

#include <deque>
#include <functional>
#include <utility>

#include "des/scheduler.hpp"

namespace dgmc::des {

class SerialResource {
 public:
  using Callback = std::function<void()>;

  explicit SerialResource(Scheduler& sched) : sched_(sched) {}

  SerialResource(const SerialResource&) = delete;
  SerialResource& operator=(const SerialResource&) = delete;

  /// Enqueues a job occupying the resource for `duration`; `on_complete`
  /// runs at the moment the job finishes.
  void submit(SimTime duration, Callback on_complete) {
    queue_.push_back({duration, std::move(on_complete)});
    if (!busy_) start_next();
  }

  bool busy() const { return busy_; }

  /// Jobs waiting (not counting the one in service).
  std::size_t queue_length() const { return queue_.size(); }

  /// Total jobs completed (diagnostic / metrics).
  std::uint64_t completed() const { return completed_; }

 private:
  struct Job {
    SimTime duration;
    Callback on_complete;
  };

  void start_next() {
    if (queue_.empty()) return;
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    sched_.schedule_after(job.duration,
                          [this, cb = std::move(job.on_complete)]() mutable {
                            busy_ = false;
                            ++completed_;
                            cb();
                            if (!busy_) start_next();
                          });
  }

  Scheduler& sched_;
  std::deque<Job> queue_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace dgmc::des
