// Order-sensitive 64-bit hash combining, used for protocol-state
// fingerprints (check subsystem dedup). Not cryptographic; collisions
// only cost the explorer a wrongly-pruned (already-visited-looking)
// state, never a false violation.
#pragma once

#include <cstdint>

namespace dgmc::util {

/// Folds `v` into the running hash `h` (splitmix64-style finalizer, so
/// nearby inputs diverge well).
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t x = v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (x ^ (x >> 31));
}

}  // namespace dgmc::util
