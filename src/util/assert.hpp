// Lightweight always-on assertion macro for protocol invariants.
//
// Unlike <cassert>, these checks stay enabled in release builds: the
// simulator's correctness rests on protocol invariants (timestamp
// monotonicity, tree validity) that are cheap to check relative to
// topology computations, and a silent violation would corrupt every
// downstream measurement.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dgmc::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "DGMC_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace dgmc::util

#define DGMC_ASSERT(expr)                                            \
  ((expr) ? static_cast<void>(0)                                     \
          : ::dgmc::util::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define DGMC_ASSERT_MSG(expr, msg)                                   \
  ((expr) ? static_cast<void>(0)                                     \
          : ::dgmc::util::assert_fail(#expr, __FILE__, __LINE__, (msg)))
