#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace dgmc::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return mean_; }

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  DGMC_ASSERT(n_ > 0);
  return min_;
}

double OnlineStats::max() const {
  DGMC_ASSERT(n_ > 0);
  return max_;
}

double OnlineStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  const double se = stddev() / std::sqrt(static_cast<double>(n_));
  return t_critical_95(n_ - 1) * se;
}

double t_critical_95(std::size_t df) {
  // Two-sided 95% critical values; exact table for small df, asymptotic
  // (normal) value beyond. Sufficient for reporting CIs over 10-30 runs.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

Summary Summary::of(const OnlineStats& s) {
  return Summary{s.mean(), s.ci95_halfwidth(), s.count()};
}

std::string Summary::to_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f", precision, mean, precision,
                ci95);
  return buf;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace dgmc::util
