// Minimal leveled logger.
//
// Each DES run is single-threaded, but runs execute concurrently on
// exec::Pool workers, so the logger is thread-safe: the process-global
// level is an atomic (tests/examples can switch traces on without
// recompiling) and the stderr sink is serialized by a mutex so
// concurrent workers never interleave within a line.
//
// Compile-time gate: DGMC_LOG_MIN_LEVEL (an integer matching LogLevel's
// underlying values; settable via the CMake cache variable of the same
// name) removes every logging statement below it at compile time — the
// `if constexpr` branch is discarded, so disabled levels cost neither
// the formatting nor the level comparison. State-space exploration runs
// millions of transitions; a hot path must not pay for a DGMC_TRACE
// that is off. The default (0 = kTrace) compiles everything in and
// keeps the runtime gate as the only filter.
#pragma once

#include <cstdarg>

#ifndef DGMC_LOG_MIN_LEVEL
#define DGMC_LOG_MIN_LEVEL 0
#endif

namespace dgmc::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True if `level` survives the compile-time gate (mirrors the macro
/// logic; lets tests assert the build's configuration).
constexpr bool log_level_compiled_in(LogLevel level) {
  return static_cast<int>(level) >= DGMC_LOG_MIN_LEVEL;
}

/// printf-style logging at a given level.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace dgmc::util

// The arguments stay odr-used inside the discarded branch, so gating a
// level out never creates unused-variable warnings at call sites.
#define DGMC_LOG_AT(level, ...)                                       \
  do {                                                                \
    if constexpr (::dgmc::util::log_level_compiled_in(level)) {       \
      ::dgmc::util::logf((level), __VA_ARGS__);                       \
    }                                                                 \
  } while (0)

#define DGMC_TRACE(...) \
  DGMC_LOG_AT(::dgmc::util::LogLevel::kTrace, __VA_ARGS__)
#define DGMC_DEBUG(...) \
  DGMC_LOG_AT(::dgmc::util::LogLevel::kDebug, __VA_ARGS__)
#define DGMC_INFO(...) \
  DGMC_LOG_AT(::dgmc::util::LogLevel::kInfo, __VA_ARGS__)
#define DGMC_WARN(...) \
  DGMC_LOG_AT(::dgmc::util::LogLevel::kWarn, __VA_ARGS__)
