// Minimal leveled logger.
//
// The simulator is single-threaded; the logger is a thin veneer over
// stderr with a process-global level so that protocol traces can be
// switched on in tests/examples without recompiling.
#pragma once

#include <cstdarg>

namespace dgmc::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging at a given level.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace dgmc::util

#define DGMC_TRACE(...) \
  ::dgmc::util::logf(::dgmc::util::LogLevel::kTrace, __VA_ARGS__)
#define DGMC_DEBUG(...) \
  ::dgmc::util::logf(::dgmc::util::LogLevel::kDebug, __VA_ARGS__)
#define DGMC_INFO(...) \
  ::dgmc::util::logf(::dgmc::util::LogLevel::kInfo, __VA_ARGS__)
#define DGMC_WARN(...) \
  ::dgmc::util::logf(::dgmc::util::LogLevel::kWarn, __VA_ARGS__)
