#include "util/rng.hpp"

#include "util/assert.hpp"

namespace dgmc::util {

namespace {

// FNV-1a, used only to mix a stream name into the root seed.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// SplitMix64 finalizer: spreads correlated seeds across the state space.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RngStream RngStream::derive(std::uint64_t root_seed, std::string_view name) {
  return RngStream(mix(root_seed ^ fnv1a(name)));
}

RngStream RngStream::fork(std::uint64_t index) const {
  // The index-th output of SplitMix64 with state seed_: successive
  // states advance by the golden-ratio gamma, and mix() is the
  // SplitMix64 output finalizer.
  return RngStream(mix(seed_ + index * 0x9e3779b97f4a7c15ULL));
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  DGMC_ASSERT(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double RngStream::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double RngStream::uniform_real(double lo, double hi) {
  DGMC_ASSERT(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double RngStream::exponential(double mean) {
  DGMC_ASSERT(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool RngStream::bernoulli(double p) {
  DGMC_ASSERT(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t RngStream::index(std::size_t size) {
  DGMC_ASSERT(size > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace dgmc::util
