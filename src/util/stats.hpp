// Summary statistics for experiment reporting.
//
// The paper reports means with 95% confidence intervals over 20 random
// graphs per network size; OnlineStats (Welford) accumulates samples and
// Summary renders mean ± half-width using the Student t distribution.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dgmc::util {

/// Numerically stable accumulator for mean/variance (Welford's method).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Half-width of the 95% confidence interval for the mean
  /// (Student t with n-1 degrees of freedom); 0 for fewer than 2 samples.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 95% Student t critical value for the given degrees of freedom.
double t_critical_95(std::size_t degrees_of_freedom);

/// A rendered statistic: "mean ± ci" with raw fields available.
struct Summary {
  double mean = 0.0;
  double ci95 = 0.0;
  std::size_t n = 0;

  static Summary of(const OnlineStats& s);
  std::string to_string(int precision = 3) const;
};

/// Mean of a vector (0 for empty), convenience for tests.
double mean_of(const std::vector<double>& xs);

}  // namespace dgmc::util
