// Deterministic random-number streams.
//
// Every source of randomness in the simulator draws from a named
// RngStream so that a whole experiment is reproducible from a single
// root seed. Independent streams are derived by hashing the root seed
// with the stream name, which decouples e.g. topology generation from
// workload generation: adding a draw to one stream never perturbs the
// other.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace dgmc::util {

/// A self-contained pseudo-random stream (mt19937_64 based).
///
/// Thread model: an RngStream instance is NOT thread-safe; every
/// worker owns its streams. Parallel fan-outs derive one child per
/// task index with fork(), so each task's randomness depends only on
/// (root seed, index) — never on which worker ran it or in what order
/// (the determinism contract, DESIGN.md §8).
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Derives an independent stream from a root seed and a stream name.
  static RngStream derive(std::uint64_t root_seed, std::string_view name);

  /// Derives the index-th child stream: the child's seed is the
  /// index-th output of the SplitMix64 generator seeded with this
  /// stream's own seed. Pure function of (seed, index) — forking never
  /// draws from or perturbs this stream, and fork(i) == fork(i) always.
  RngStream fork(std::uint64_t index) const;

  /// The seed this stream was constructed with (forks derive from it).
  std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Picks a uniformly random element index of a container of given size.
  /// Requires size > 0.
  std::size_t index(std::size_t size);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace dgmc::util
