#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dgmc::util {

namespace {
// The runtime threshold is read on every call site that survives the
// compile-time gate, potentially from pool workers; relaxed atomic
// loads keep that read race-free and free of fences.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes the stderr sink so concurrent workers never interleave
// within a line (see tests/util_log_test.cpp ConcurrentLinesStayIntact).
std::mutex g_sink_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(g_sink_mu);
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace dgmc::util
