// Fault injection for the simulated network (robustness extension).
//
// The paper's correctness argument assumes reliable flooding ("every
// LSA eventually reaches every switch", §3.2) and defers "disastrous
// situations" to future work (§6). This module supplies the disasters:
// a seeded FaultPlan describes per-transmission message loss (i.i.d.
// and Gilbert–Elliott burst models), bounded extra-delay jitter (which
// reorders messages), scheduled link flaps, and switch crash/restart
// events. A FaultInjector evaluates the stochastic parts from one
// named RngStream, so a whole chaos run is reproducible from a single
// root seed; the scheduled parts (flaps, crashes) are driven through
// the ordinary DES calendar by the sim layer.
//
// Layering: this module depends only on graph/des/util. The flooding
// transport consumes loss/jitter decisions through std::function hooks
// (lsr never includes fault headers), and DgmcNetwork::install_faults
// wires both halves together.
#pragma once

#include <cstdint>
#include <vector>

#include "des/time.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dgmc::fault {

/// Two-state Gilbert–Elliott burst-loss model. Each transmission first
/// advances the per-link channel state (good <-> bad), then draws loss
/// with the state's probability — so losses cluster in bursts whose
/// mean length is 1 / p_bad_to_good transmissions.
struct GilbertElliott {
  double p_good_to_bad = 0.0;  ///< per-transmission transition G -> B
  double p_bad_to_good = 1.0;  ///< per-transmission transition B -> G
  double loss_good = 0.0;      ///< loss probability in the good state
  double loss_bad = 1.0;       ///< loss probability in the bad state
};

/// One scheduled down/up cycle of a link. `up_at` must exceed `down_at`.
struct LinkFlap {
  graph::LinkId link = graph::kInvalidLink;
  des::SimTime down_at = 0.0;
  des::SimTime up_at = 0.0;
};

/// One scheduled crash/restart cycle of a switch. The crash wipes the
/// switch's volatile MC state; `restart_at` must exceed `crash_at`.
struct SwitchCrash {
  graph::NodeId node = graph::kInvalidNode;
  des::SimTime crash_at = 0.0;
  des::SimTime restart_at = 0.0;
};

/// Declarative description of every fault a run should suffer.
struct FaultPlan {
  /// Per-transmission i.i.d. loss probability, applied to every link.
  double iid_loss = 0.0;
  /// Burst loss; only consulted when `use_burst` is set. Combined with
  /// `iid_loss` as independent loss causes.
  bool use_burst = false;
  GilbertElliott burst;
  /// Extra per-transmission delay, uniform in [0, max_extra_delay).
  /// Nonzero values reorder messages that share a link.
  double max_extra_delay = 0.0;
  std::vector<LinkFlap> flaps;
  std::vector<SwitchCrash> crashes;
};

/// Evaluates the stochastic faults of a FaultPlan deterministically:
/// the same (plan, link_count, seed) triple yields the same decision
/// sequence. Decisions are consumed in event-execution order, which
/// the DES calendar already makes deterministic.
///
/// Each fault kind draws from its own forked child of the injector's
/// base stream (i.i.d. loss = fork(0), burst channel = fork(1), jitter
/// = fork(2)), so enabling or disabling one kind in a plan never
/// perturbs the decision sequence of the others — the soak spec can
/// add burst loss to a scenario without reshuffling its jitter.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int link_count, std::uint64_t seed);

  /// Draws the fate of one transmission on `link`: true = lost.
  bool drop(graph::LinkId link);

  /// Draws the extra delay for one transmission on `link` (>= 0).
  des::SimTime extra_delay(graph::LinkId link);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t drops() const { return drops_; }

 private:
  FaultPlan plan_;
  util::RngStream loss_rng_;    // i.i.d. per-transmission loss
  util::RngStream burst_rng_;   // Gilbert–Elliott channel + loss
  util::RngStream jitter_rng_;  // extra-delay draws
  std::vector<std::uint8_t> bad_;  // per-link Gilbert–Elliott state
  std::uint64_t decisions_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace dgmc::fault
