#include "fault/fault.hpp"

#include "util/assert.hpp"

namespace dgmc::fault {

FaultInjector::FaultInjector(const FaultPlan& plan, int link_count,
                             std::uint64_t seed)
    : plan_(plan),
      loss_rng_(util::RngStream::derive(seed, "fault-injector").fork(0)),
      burst_rng_(util::RngStream::derive(seed, "fault-injector").fork(1)),
      jitter_rng_(util::RngStream::derive(seed, "fault-injector").fork(2)),
      bad_(static_cast<std::size_t>(link_count), 0) {
  DGMC_ASSERT(link_count >= 0);
  DGMC_ASSERT(plan.iid_loss >= 0.0 && plan.iid_loss <= 1.0);
  DGMC_ASSERT(plan.max_extra_delay >= 0.0);
  for (const LinkFlap& f : plan.flaps) {
    DGMC_ASSERT(f.link >= 0 && f.link < link_count);
    DGMC_ASSERT(f.up_at > f.down_at);
  }
  for (const SwitchCrash& c : plan.crashes) {
    DGMC_ASSERT(c.restart_at > c.crash_at);
  }
}

bool FaultInjector::drop(graph::LinkId link) {
  DGMC_ASSERT(link >= 0 &&
              static_cast<std::size_t>(link) < bad_.size());
  ++decisions_;
  bool lost = plan_.iid_loss > 0.0 && loss_rng_.bernoulli(plan_.iid_loss);
  if (plan_.use_burst) {
    std::uint8_t& state = bad_[link];
    if (state == 0) {
      if (burst_rng_.bernoulli(plan_.burst.p_good_to_bad)) state = 1;
    } else {
      if (burst_rng_.bernoulli(plan_.burst.p_bad_to_good)) state = 0;
    }
    const double p =
        state != 0 ? plan_.burst.loss_bad : plan_.burst.loss_good;
    if (p > 0.0 && burst_rng_.bernoulli(p)) lost = true;
  }
  if (lost) ++drops_;
  return lost;
}

des::SimTime FaultInjector::extra_delay(graph::LinkId link) {
  DGMC_ASSERT(link >= 0 &&
              static_cast<std::size_t>(link) < bad_.size());
  if (plan_.max_extra_delay <= 0.0) return 0.0;
  return jitter_rng_.uniform_real(0.0, plan_.max_extra_delay);
}

}  // namespace dgmc::fault
