#include "trees/incremental.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "trees/steiner.hpp"

namespace dgmc::trees {

Topology greedy_attach(const Graph& g, const Topology& tree, NodeId member,
                       NodeId fallback_anchor) {
  DGMC_ASSERT(g.valid_node(member));
  std::vector<NodeId> targets = tree.nodes();
  if (targets.empty() && fallback_anchor != graph::kInvalidNode &&
      fallback_anchor != member) {
    targets.push_back(fallback_anchor);
  }
  if (targets.empty()) return tree;  // first member: a lone node, no edges
  if (std::binary_search(targets.begin(), targets.end(), member)) {
    return tree;  // already on the tree
  }

  const graph::ShortestPaths sp = graph::dijkstra(g, member);
  NodeId best = graph::kInvalidNode;
  for (NodeId t : targets) {
    if (!sp.reachable(t)) continue;
    if (best == graph::kInvalidNode || sp.dist[t] < sp.dist[best]) best = t;
  }
  if (best == graph::kInvalidNode) return tree;  // partitioned; caller's duty

  Topology out = tree;
  // Walk the shortest path from `best` back to `member`. No interior
  // node of this path can already be on the tree: it would be strictly
  // nearer than `best` (positive link costs), so the result stays a tree.
  NodeId n = best;
  while (sp.parent[n] != graph::kInvalidNode) {
    out.add(Edge(n, sp.parent[n]));
    n = sp.parent[n];
  }
  return out;
}

Topology prune_after_leave(Topology tree, const std::vector<NodeId>& members) {
  return prune_non_terminal_leaves(std::move(tree), members);
}

}  // namespace dgmc::trees
