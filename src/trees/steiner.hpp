// Steiner-tree heuristics for symmetric and receiver-only MCs.
//
// KMB (Kou, Markowsky & Berman 1981) — the classic 2-approximation the
// dynamic-Steiner literature cited by the paper [6,9] builds on:
//   1. metric closure over the terminals,
//   2. MST of the closure,
//   3. expand closure edges into shortest paths,
//   4. MST of the expansion,
//   5. prune non-terminal leaves.
#pragma once

#include <vector>

#include "trees/topology.hpp"

namespace dgmc::trees {

/// KMB heuristic Steiner tree connecting `terminals` (cost metric).
/// Duplicates are tolerated; fewer than two distinct terminals yield an
/// empty topology. When the terminals are not mutually reachable (the
/// network is partitioned), the result is a Steiner *forest*: one tree
/// per connected component that holds two or more terminals — each side
/// of a partition keeps serving its own members (paper §6).
Topology kmb_steiner(const Graph& g, const std::vector<NodeId>& terminals);

/// Minimum spanning tree of the subgraph induced by `nodes` (Kruskal,
/// deterministic tie-break on edge order). Returns an empty topology if
/// the induced subgraph is disconnected.
Topology induced_mst(const Graph& g, const std::vector<NodeId>& nodes);

/// Repeatedly removes non-terminal leaves.
Topology prune_non_terminal_leaves(Topology t,
                                   const std::vector<NodeId>& terminals);

}  // namespace dgmc::trees
