#include "trees/topology.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/algorithms.hpp"

namespace dgmc::trees {

Topology::Topology(std::vector<Edge> edges) : edges_(std::move(edges)) {
  canonicalize();
}

Topology::Topology(std::initializer_list<Edge> edges) : edges_(edges) {
  canonicalize();
}

void Topology::canonicalize() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  for (const Edge& e : edges_) {
    DGMC_ASSERT_MSG(e.a != e.b && e.a >= 0, "malformed edge");
  }
}

bool Topology::contains(const Edge& e) const {
  return std::binary_search(edges_.begin(), edges_.end(), e);
}

std::vector<NodeId> Topology::nodes() const {
  std::vector<NodeId> ns;
  ns.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    ns.push_back(e.a);
    ns.push_back(e.b);
  }
  std::sort(ns.begin(), ns.end());
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
  return ns;
}

std::vector<NodeId> Topology::neighbors(NodeId n) const {
  std::vector<NodeId> out;
  for (const Edge& e : edges_) {
    if (e.a == n) out.push_back(e.b);
    else if (e.b == n) out.push_back(e.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int Topology::degree(NodeId n) const {
  int d = 0;
  for (const Edge& e : edges_) {
    if (e.a == n || e.b == n) ++d;
  }
  return d;
}

void Topology::add(const Edge& e) {
  DGMC_ASSERT(e.a != e.b && e.a >= 0);
  auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it != edges_.end() && *it == e) return;
  edges_.insert(it, e);
}

void Topology::remove(const Edge& e) {
  auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it != edges_.end() && *it == e) edges_.erase(it);
}

Topology Topology::merge(const Topology& a, const Topology& b) {
  std::vector<Edge> all = a.edges_;
  all.insert(all.end(), b.edges_.begin(), b.edges_.end());
  return Topology(std::move(all));
}

double topology_cost(const Graph& g, const Topology& t) {
  double total = 0.0;
  for (const Edge& e : t.edges()) {
    const graph::LinkId id = g.find_link(e.a, e.b);
    if (id == graph::kInvalidLink || !g.link(id).up) {
      return graph::kInfiniteDistance;
    }
    total += g.link(id).cost;
  }
  return total;
}

bool uses_only_live_links(const Graph& g, const Topology& t) {
  for (const Edge& e : t.edges()) {
    const graph::LinkId id = g.find_link(e.a, e.b);
    if (id == graph::kInvalidLink || !g.link(id).up) return false;
  }
  return true;
}

namespace {

// Union-find over arbitrary node ids.
class UnionFind {
 public:
  NodeId find(NodeId x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    NodeId root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      NodeId next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Returns false if x and y were already joined (i.e. a cycle).
  bool unite(NodeId x, NodeId y) {
    NodeId rx = find(x);
    NodeId ry = find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

  bool same(NodeId x, NodeId y) { return find(x) == find(y); }

 private:
  std::unordered_map<NodeId, NodeId> parent_;
};

}  // namespace

bool is_forest(const Topology& t) {
  UnionFind uf;
  for (const Edge& e : t.edges()) {
    if (!uf.unite(e.a, e.b)) return false;
  }
  return true;
}

bool connects(const Topology& t, const std::vector<NodeId>& required) {
  if (required.size() <= 1) return true;
  UnionFind uf;
  for (const Edge& e : t.edges()) uf.unite(e.a, e.b);
  // A required node absent from the topology is connected to nothing —
  // unless it equals another required node, which dedup below handles.
  const auto present = t.nodes();
  for (std::size_t i = 1; i < required.size(); ++i) {
    if (required[i] == required[0]) continue;
    if (!std::binary_search(present.begin(), present.end(), required[i]) ||
        !std::binary_search(present.begin(), present.end(), required[0])) {
      return false;
    }
    if (!uf.same(required[0], required[i])) return false;
  }
  return true;
}

bool is_steiner_tree(const Topology& t, const std::vector<NodeId>& required) {
  // Deduplicate required nodes.
  std::vector<NodeId> req = required;
  std::sort(req.begin(), req.end());
  req.erase(std::unique(req.begin(), req.end()), req.end());

  if (req.size() <= 1) return t.empty();
  if (!is_forest(t)) return false;
  if (!connects(t, req)) return false;
  // Single component: a forest connecting all terminals with no
  // superfluous component has exactly nodes-1 edges.
  const auto ns = t.nodes();
  return t.edge_count() + 1 == ns.size();
}

}  // namespace dgmc::trees
