#include "trees/exact.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "trees/steiner.hpp"

namespace dgmc::trees {

Topology exact_steiner(const Graph& g, const std::vector<NodeId>& terminals_in) {
  std::vector<NodeId> terminals = terminals_in;
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  if (terminals.size() <= 1) return Topology{};

  std::vector<NodeId> optional;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (!std::binary_search(terminals.begin(), terminals.end(), n)) {
      optional.push_back(n);
    }
  }
  DGMC_ASSERT_MSG(optional.size() <= 20, "exact_steiner: instance too large");

  Topology best;
  double best_cost = graph::kInfiniteDistance;
  const std::uint32_t limit = 1u << optional.size();
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    std::vector<NodeId> nodes = terminals;
    for (std::size_t i = 0; i < optional.size(); ++i) {
      if (mask & (1u << i)) nodes.push_back(optional[i]);
    }
    Topology mst = induced_mst(g, nodes);
    if (mst.empty() && nodes.size() > 1) continue;  // disconnected subset
    mst = prune_non_terminal_leaves(std::move(mst), terminals);
    const double cost = topology_cost(g, mst);
    if (cost < best_cost && is_steiner_tree(mst, terminals)) {
      best_cost = cost;
      best = std::move(mst);
    }
  }
  DGMC_ASSERT_MSG(best_cost < graph::kInfiniteDistance,
                  "terminals not mutually reachable");
  return best;
}

}  // namespace dgmc::trees
