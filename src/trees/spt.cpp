#include "trees/spt.hpp"

namespace dgmc::trees {

Topology shortest_path_tree(const Graph& g, NodeId root) {
  const graph::ShortestPaths sp = graph::dijkstra(g, root);
  std::vector<Edge> edges;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (sp.parent[n] != graph::kInvalidNode) {
      edges.emplace_back(n, sp.parent[n]);
    }
  }
  return Topology(std::move(edges));
}

Topology pruned_spt(const Graph& g, NodeId root,
                    const std::vector<NodeId>& terminals) {
  const graph::ShortestPaths sp = graph::dijkstra(g, root);
  std::vector<Edge> edges;
  for (NodeId t : terminals) {
    if (!sp.reachable(t)) continue;
    for (NodeId n = t; sp.parent[n] != graph::kInvalidNode;
         n = sp.parent[n]) {
      edges.emplace_back(n, sp.parent[n]);
    }
  }
  return Topology(std::move(edges));
}

Topology source_rooted_union(const Graph& g,
                             const std::vector<NodeId>& sources,
                             const std::vector<NodeId>& receivers) {
  Topology out;
  for (NodeId s : sources) {
    out = Topology::merge(out, pruned_spt(g, s, receivers));
  }
  return out;
}

}  // namespace dgmc::trees
