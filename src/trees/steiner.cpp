#include "trees/steiner.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/algorithms.hpp"

namespace dgmc::trees {

namespace {

std::vector<NodeId> dedup(std::vector<NodeId> ns) {
  std::sort(ns.begin(), ns.end());
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
  return ns;
}

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(int x, int y) {
    x = find(x);
    y = find(y);
    if (x == y) return false;
    parent_[x] = y;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

Topology induced_mst(const Graph& g, const std::vector<NodeId>& nodes_in) {
  const std::vector<NodeId> nodes = dedup(nodes_in);
  if (nodes.size() <= 1) return Topology{};

  std::unordered_map<NodeId, int> index;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    index[nodes[i]] = static_cast<int>(i);
  }

  struct Candidate {
    double cost;
    Edge edge;
  };
  std::vector<Candidate> candidates;
  for (const graph::Link& l : g.links()) {
    if (!l.up) continue;
    if (index.count(l.u) && index.count(l.v)) {
      candidates.push_back({l.cost, Edge(l.u, l.v)});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.cost != b.cost) return a.cost < b.cost;
                     return a.edge < b.edge;  // determinism across switches
                   });

  UnionFind uf(static_cast<int>(nodes.size()));
  std::vector<Edge> chosen;
  for (const Candidate& c : candidates) {
    if (uf.unite(index[c.edge.a], index[c.edge.b])) {
      chosen.push_back(c.edge);
    }
  }
  if (chosen.size() + 1 != nodes.size()) return Topology{};  // disconnected
  return Topology(std::move(chosen));
}

Topology prune_non_terminal_leaves(Topology t,
                                   const std::vector<NodeId>& terminals_in) {
  const std::vector<NodeId> terminals = dedup(terminals_in);
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId n : t.nodes()) {
      if (t.degree(n) == 1 &&
          !std::binary_search(terminals.begin(), terminals.end(), n)) {
        const NodeId peer = t.neighbors(n).front();
        t.remove(Edge(n, peer));
        changed = true;
      }
    }
  }
  return t;
}

namespace {

/// KMB on terminals known to be mutually reachable.
Topology kmb_connected(const Graph& g, const std::vector<NodeId>& terminals);

}  // namespace

Topology kmb_steiner(const Graph& g, const std::vector<NodeId>& terminals_in) {
  const std::vector<NodeId> terminals = dedup(terminals_in);
  if (terminals.size() <= 1) return Topology{};
  for (NodeId t : terminals) DGMC_ASSERT(g.valid_node(t));

  // Partitioned terminals: build one tree per component (Steiner
  // forest) so each side of a partition keeps its members connected.
  const std::vector<int> comp = graph::components(g);
  bool split = false;
  for (std::size_t i = 1; i < terminals.size(); ++i) {
    if (comp[terminals[i]] != comp[terminals[0]]) {
      split = true;
      break;
    }
  }
  if (split) {
    Topology forest;
    std::vector<NodeId> group;
    std::vector<bool> done(terminals.size(), false);
    for (std::size_t i = 0; i < terminals.size(); ++i) {
      if (done[i]) continue;
      group.clear();
      for (std::size_t j = i; j < terminals.size(); ++j) {
        if (comp[terminals[j]] == comp[terminals[i]]) {
          group.push_back(terminals[j]);
          done[j] = true;
        }
      }
      if (group.size() >= 2) {
        forest = Topology::merge(forest, kmb_connected(g, group));
      }
    }
    return forest;
  }
  return kmb_connected(g, terminals);
}

namespace {

Topology kmb_connected(const Graph& g, const std::vector<NodeId>& terminals) {
  // Step 1: metric closure over terminals — all-pairs shortest paths
  // among terminals (one Dijkstra per terminal).
  const std::size_t k = terminals.size();
  std::vector<graph::ShortestPaths> sps;
  sps.reserve(k);
  for (NodeId t : terminals) sps.push_back(graph::dijkstra(g, t));

  // Step 2: MST of the closure (Prim over the k x k distances).
  std::vector<bool> in_tree(k, false);
  std::vector<double> best(k, graph::kInfiniteDistance);
  std::vector<std::size_t> best_from(k, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < k; ++j) {
    best[j] = sps[0].dist[terminals[j]];
    best_from[j] = 0;
  }
  std::vector<std::pair<std::size_t, std::size_t>> closure_edges;
  for (std::size_t round = 1; round < k; ++round) {
    std::size_t pick = k;
    for (std::size_t j = 0; j < k; ++j) {
      if (!in_tree[j] && (pick == k || best[j] < best[pick])) pick = j;
    }
    DGMC_ASSERT_MSG(pick < k && best[pick] < graph::kInfiniteDistance,
                    "terminals not mutually reachable");
    in_tree[pick] = true;
    closure_edges.push_back({best_from[pick], pick});
    for (std::size_t j = 0; j < k; ++j) {
      if (!in_tree[j] && sps[pick].dist[terminals[j]] < best[j]) {
        best[j] = sps[pick].dist[terminals[j]];
        best_from[j] = pick;
      }
    }
  }

  // Step 3: expand closure edges into shortest paths.
  std::vector<Edge> expanded;
  for (auto [i, j] : closure_edges) {
    for (NodeId n = terminals[j]; sps[i].parent[n] != graph::kInvalidNode;
         n = sps[i].parent[n]) {
      expanded.emplace_back(n, sps[i].parent[n]);
    }
  }
  const Topology expansion(std::move(expanded));

  // Step 4: MST of the subgraph induced by the expansion's nodes.
  Topology mst = induced_mst(g, expansion.nodes());
  if (mst.empty() && expansion.nodes().size() > 1) {
    // Induced subgraph disconnected (possible only with down links that
    // appeared mid-computation); fall back to the expansion itself.
    mst = expansion;
  }

  // Step 5: prune non-terminal leaves.
  return prune_non_terminal_leaves(std::move(mst), terminals);
}

}  // namespace

}  // namespace dgmc::trees
