// Exact (exponential-time) Steiner tree, used by tests and benches to
// measure heuristic quality on small instances. Enumerates all subsets
// of candidate Steiner nodes and takes the cheapest induced MST.
#pragma once

#include <vector>

#include "trees/topology.hpp"

namespace dgmc::trees {

/// Optimal Steiner tree over the cost metric. Only feasible for graphs
/// with (node_count - |terminals|) <= ~20 non-terminals; asserts on
/// larger inputs to prevent accidental blow-ups.
Topology exact_steiner(const Graph& g, const std::vector<NodeId>& terminals);

}  // namespace dgmc::trees
