// Link-load accounting for the traffic-concentration comparison
// (paper §5: shared CBT trees have "the advantage of efficient use of
// network resources, but suffer from traffic concentration" versus
// per-source trees — Wei & Estrin [17]).
//
// Model: every source multicasts one unit to the whole group. On a
// shared tree, each source's packet covers every tree edge (plus the
// unicast path from the source to its contact node if the source is
// off-tree). On per-source trees, each source's packet covers only its
// own tree's edges. The maximum per-edge load is the concentration
// figure.
#pragma once

#include <unordered_map>
#include <vector>

#include "trees/topology.hpp"

namespace dgmc::trees {

using EdgeLoadMap = std::unordered_map<Edge, int, graph::EdgeHash>;

/// Adds one unit of load on every edge of `t`.
void add_topology_load(EdgeLoadMap& loads, const Topology& t);

/// Adds one unit of load along the shortest path (cost metric) from
/// `from` to `to` in `g`; no-op if from == to or unreachable.
void add_path_load(EdgeLoadMap& loads, const Graph& g, NodeId from,
                   NodeId to);

/// The largest per-edge load; 0 if empty.
int max_load(const EdgeLoadMap& loads);

/// Sum of all per-edge loads (total link traversals).
long total_load(const EdgeLoadMap& loads);

/// Loads when each source multicasts once over the *shared* tree `t`:
/// every tree edge per source, plus the source's unicast path to the
/// nearest tree node when it is off-tree.
EdgeLoadMap shared_tree_loads(const Graph& g, const Topology& t,
                              const std::vector<NodeId>& sources);

/// Loads when each source multicasts once over its own tree.
EdgeLoadMap per_source_tree_loads(const std::vector<Topology>& trees);

}  // namespace dgmc::trees
