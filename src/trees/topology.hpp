// Topology: the value type in which multipoint-connection topologies
// are proposed, flooded, compared and installed.
//
// A Topology is a canonical (sorted, deduplicated) edge set over the
// network graph. Canonical form matters: the D-GMC consensus invariant
// is "all switches install the same topology", which we check with
// operator==. A Topology is usually a tree, but asymmetric MCs built as
// unions of source-rooted trees may contain cycles, so tree-ness is a
// validation predicate rather than a representation invariant.
#pragma once

#include <initializer_list>
#include <vector>

#include "graph/graph.hpp"

namespace dgmc::trees {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::vector<Edge> edges);
  Topology(std::initializer_list<Edge> edges);

  const std::vector<Edge>& edges() const { return edges_; }
  bool empty() const { return edges_.empty(); }
  std::size_t edge_count() const { return edges_.size(); }

  bool contains(const Edge& e) const;

  /// All nodes touched by at least one edge, ascending.
  std::vector<NodeId> nodes() const;

  /// Neighbors of `n` within the topology, ascending.
  std::vector<NodeId> neighbors(NodeId n) const;

  /// Degree of `n` within the topology.
  int degree(NodeId n) const;

  /// Adds an edge (no-op if already present).
  void add(const Edge& e);

  /// Removes an edge (no-op if absent).
  void remove(const Edge& e);

  /// Edge-set union.
  static Topology merge(const Topology& a, const Topology& b);

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  void canonicalize();
  std::vector<Edge> edges_;  // sorted, unique
};

/// Sum of graph costs of the topology's edges. Edges absent from the
/// graph or down are charged kInfiniteDistance.
double topology_cost(const Graph& g, const Topology& t);

/// True if every edge exists in the graph and is up.
bool uses_only_live_links(const Graph& g, const Topology& t);

/// True if the topology's edge set is acyclic.
bool is_forest(const Topology& t);

/// True if the topology is a single connected acyclic component
/// containing every node in `required` (a Steiner tree for `required`).
/// An empty topology qualifies only when `required` has <= 1 node.
bool is_steiner_tree(const Topology& t, const std::vector<NodeId>& required);

/// True if every pair of `required` nodes is connected within the
/// topology (weaker than is_steiner_tree: cycles allowed).
bool connects(const Topology& t, const std::vector<NodeId>& required);

}  // namespace dgmc::trees
