#include "trees/load.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace dgmc::trees {

void add_topology_load(EdgeLoadMap& loads, const Topology& t) {
  for (const Edge& e : t.edges()) ++loads[e];
}

void add_path_load(EdgeLoadMap& loads, const Graph& g, NodeId from,
                   NodeId to) {
  if (from == to) return;
  const graph::ShortestPaths sp = graph::dijkstra(g, from);
  if (!sp.reachable(to)) return;
  for (NodeId n = to; sp.parent[n] != graph::kInvalidNode;
       n = sp.parent[n]) {
    ++loads[Edge(n, sp.parent[n])];
  }
}

int max_load(const EdgeLoadMap& loads) {
  int best = 0;
  for (const auto& [edge, load] : loads) best = std::max(best, load);
  return best;
}

long total_load(const EdgeLoadMap& loads) {
  long sum = 0;
  for (const auto& [edge, load] : loads) sum += load;
  return sum;
}

EdgeLoadMap shared_tree_loads(const Graph& g, const Topology& t,
                              const std::vector<NodeId>& sources) {
  EdgeLoadMap loads;
  const std::vector<NodeId> tree_nodes = t.nodes();
  for (NodeId s : sources) {
    add_topology_load(loads, t);
    if (t.empty() ||
        std::binary_search(tree_nodes.begin(), tree_nodes.end(), s)) {
      continue;  // on-tree source: no first-stage unicast leg
    }
    // Off-tree source: unicast to the nearest tree node (first-stage
    // delivery of the receiver-only MC model, paper Fig 1(b)).
    const graph::ShortestPaths sp = graph::dijkstra(g, s);
    NodeId contact = graph::kInvalidNode;
    for (NodeId n : tree_nodes) {
      if (!sp.reachable(n)) continue;
      if (contact == graph::kInvalidNode || sp.dist[n] < sp.dist[contact]) {
        contact = n;
      }
    }
    if (contact != graph::kInvalidNode) {
      for (NodeId n = contact; sp.parent[n] != graph::kInvalidNode;
           n = sp.parent[n]) {
        ++loads[Edge(n, sp.parent[n])];
      }
    }
  }
  return loads;
}

EdgeLoadMap per_source_tree_loads(const std::vector<Topology>& trees) {
  EdgeLoadMap loads;
  for (const Topology& t : trees) add_topology_load(loads, t);
  return loads;
}

}  // namespace dgmc::trees
