// Incremental topology updates (paper §3.5): "an implementation should
// invoke an incremental update algorithm, which adds a tree branch to
// reach a new member or removes a branch from a leaving member".
//
// greedy_attach is the GREEDY heuristic of the dynamic Steiner problem
// (Imase & Waxman [9]): join the new member to the *nearest* node of
// the existing tree by a shortest path.
#pragma once

#include <vector>

#include "trees/topology.hpp"

namespace dgmc::trees {

/// Connects `member` to the existing tree by the cheapest shortest path
/// ending at any current tree node (or at `fallback_anchor` if the tree
/// is empty). Returns the augmented topology. If `member` already lies
/// on the tree, returns `tree` unchanged.
Topology greedy_attach(const Graph& g, const Topology& tree, NodeId member,
                       NodeId fallback_anchor = graph::kInvalidNode);

/// Removes the branch serving a departed member: prunes non-terminal
/// leaves with respect to the remaining `members`.
Topology prune_after_leave(Topology tree, const std::vector<NodeId>& members);

}  // namespace dgmc::trees
