// Source-rooted shortest-path trees (the MOSPF-style topology), plus
// the pruned variant that keeps only branches leading to terminals.
#pragma once

#include <vector>

#include "graph/algorithms.hpp"
#include "trees/topology.hpp"

namespace dgmc::trees {

/// Full shortest-path tree rooted at `root` (all reachable nodes).
Topology shortest_path_tree(const Graph& g, NodeId root);

/// Shortest-path tree rooted at `root`, pruned to the union of the
/// shortest paths from root to each terminal. Terminals unreachable
/// from root are skipped. `root` itself need not be in `terminals`.
Topology pruned_spt(const Graph& g, NodeId root,
                    const std::vector<NodeId>& terminals);

/// Union of pruned SPTs, one per source, each reaching all receivers:
/// the asymmetric-MC topology (paper Fig 1(c); MOSPF-style per-source
/// trees toward a common receiver set). May contain cycles.
Topology source_rooted_union(const Graph& g,
                             const std::vector<NodeId>& sources,
                             const std::vector<NodeId>& receivers);

}  // namespace dgmc::trees
