// exec::FingerprintSet — a fixed-capacity, lock-free set of 64-bit
// state fingerprints shared by parallel search workers.
//
// The parallel explorer modes (check::explore_random_parallel,
// check::explore_dfs_parallel) count distinct states across workers
// through this filter. Because set membership is order-independent,
// the final size() is a pure function of *which* fingerprints were
// inserted — not of thread count or interleaving — which is what keeps
// SearchStats::states_seen bit-identical at any DGMC_JOBS (the
// determinism contract, DESIGN.md §8).
//
// Open addressing with linear probing over a power-of-two table of
// atomic slots; value 0 marks an empty slot, so the fingerprint 0 is
// remapped to a fixed sentinel. Inserts are CAS-only, no resizing: if
// a probe sequence finds no free slot the set saturates and further
// *new* keys are rejected (size() then undercounts — callers size the
// table for their workload; the explorer allocates 2^21 slots against
// scenarios that stay well under 10^5 states).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace dgmc::exec {

class FingerprintSet {
 public:
  /// Table of 2^log2_capacity slots (8 bytes each).
  explicit FingerprintSet(std::size_t log2_capacity = 20)
      : mask_((std::size_t{1} << log2_capacity) - 1),
        slots_(new std::atomic<std::uint64_t>[mask_ + 1]) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].store(0, std::memory_order_relaxed);
    }
  }

  /// Inserts `fp`; true iff it was not present. Safe to call from any
  /// number of threads concurrently; exactly one caller wins for a
  /// given new key.
  bool insert(std::uint64_t fp) {
    if (fp == 0) fp = kZeroSentinel;
    std::size_t idx = probe_start(fp);
    for (std::size_t step = 0; step <= mask_; ++step) {
      std::atomic<std::uint64_t>& slot = slots_[idx];
      std::uint64_t cur = slot.load(std::memory_order_acquire);
      if (cur == fp) return false;
      if (cur == 0) {
        std::uint64_t expected = 0;
        if (slot.compare_exchange_strong(expected, fp,
                                         std::memory_order_acq_rel)) {
          count_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        if (expected == fp) return false;  // lost the race to ourselves
        // Lost to a different key: fall through and keep probing.
      }
      idx = (idx + 1) & mask_;
    }
    saturated_.store(true, std::memory_order_relaxed);
    return false;
  }

  /// Number of distinct fingerprints successfully inserted.
  std::size_t size() const { return count_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return mask_ + 1; }

  /// True once an insert failed for lack of space (size() is a lower
  /// bound from then on).
  bool saturated() const {
    return saturated_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kZeroSentinel = 0x9e3779b97f4a7c15ULL;

  std::size_t probe_start(std::uint64_t fp) const {
    // Fibonacci hash of the fingerprint spreads clustered keys.
    return static_cast<std::size_t>((fp * 0x9e3779b97f4a7c15ULL) >> 32) &
           mask_;
  }

  std::size_t mask_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::atomic<std::size_t> count_{0};
  std::atomic<bool> saturated_{false};
};

}  // namespace dgmc::exec
