#include "exec/pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace dgmc::exec {

namespace {

// Set while a thread is executing inside worker_loop; lets submit()
// distinguish a nested (worker-side) call, which must never block on
// the bound, from an external one, which may.
thread_local const Pool* tl_worker_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

}  // namespace

std::size_t default_jobs() {
  if (const char* env = std::getenv("DGMC_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_jobs(std::size_t requested) {
  return requested > 0 ? requested : default_jobs();
}

Pool::Pool(std::size_t jobs, std::size_t queue_bound) {
  jobs_ = resolve_jobs(jobs);
  bound_ = queue_bound > 0 ? queue_bound : std::max<std::size_t>(4 * jobs_, 64);
  if (jobs_ == 1) return;  // inline mode: no threads, no queues
  workers_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Pool::submit(Task task) {
  if (jobs_ == 1) {
    // Inline mode: execute now, with the same capture-first-error and
    // drop-after-cancel semantics as the threaded pool.
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (cancel_) return;
    }
    run_task(task);
    return;
  }

  const bool nested = tl_worker_pool == this;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (cancel_ || stop_) return;
    if (nested && queued_ >= bound_) {
      // Deadlock guard: a worker blocking here could leave nobody to
      // drain the queue. Run the task on this worker instead.
      lk.unlock();
      run_task(task);
      return;
    }
    space_cv_.wait(lk, [&] { return queued_ < bound_ || cancel_ || stop_; });
    if (cancel_ || stop_) return;
    ++queued_;
    ++unfinished_;
  }

  // Placement: a worker pushes to the front of its own deque (LIFO,
  // depth-first keeps nested fan-outs cache-warm); external submitters
  // deal round-robin to the back.
  if (nested) {
    Worker& w = *workers_[tl_worker_index];
    std::lock_guard<std::mutex> wlk(w.mu);
    w.queue.push_front(std::move(task));
  } else {
    std::size_t target = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      target = next_worker_++ % jobs_;
    }
    Worker& w = *workers_[target];
    std::lock_guard<std::mutex> wlk(w.mu);
    w.queue.push_back(std::move(task));
  }
  work_cv_.notify_one();
  done_cv_.notify_all();  // a wait()-ing helper may want to steal it
}

bool Pool::try_pop(std::size_t self, Task& out) {
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.queue.empty()) {
      out = std::move(w.queue.front());
      w.queue.pop_front();
      std::lock_guard<std::mutex> mlk(mu_);
      --queued_;
      space_cv_.notify_one();
      return true;
    }
  }
  // Steal from the back of a victim's deque (oldest task first).
  for (std::size_t i = 1; i < jobs_; ++i) {
    Worker& v = *workers_[(self + i) % jobs_];
    std::lock_guard<std::mutex> lk(v.mu);
    if (!v.queue.empty()) {
      out = std::move(v.queue.back());
      v.queue.pop_back();
      std::lock_guard<std::mutex> mlk(mu_);
      --queued_;
      space_cv_.notify_one();
      return true;
    }
  }
  return false;
}

bool Pool::try_pop_any(Task& out) { return try_pop(0, out); }

void Pool::run_task(Task& task) {
  bool discard = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    discard = cancel_;
  }
  if (!discard) {
    try {
      task();
    } catch (...) {
      capture_exception();
    }
  }
}

void Pool::note_done() {
  std::lock_guard<std::mutex> lk(mu_);
  if (unfinished_ > 0) --unfinished_;
  if (unfinished_ == 0) done_cv_.notify_all();
}

void Pool::capture_exception() {
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    if (!error_) error_ = std::current_exception();
  }
  cancel();
}

void Pool::rethrow_if_error() {
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    std::swap(e, error_);
  }
  if (e) std::rethrow_exception(e);
}

void Pool::worker_loop(std::size_t self) {
  tl_worker_pool = this;
  tl_worker_index = self;
  for (;;) {
    Task task;
    if (try_pop(self, task)) {
      run_task(task);
      note_done();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    work_cv_.wait(lk, [&] { return stop_ || queued_ > 0; });
    if (stop_) return;
  }
}

void Pool::wait() {
  if (jobs_ == 1) {
    rethrow_if_error();
    return;
  }
  for (;;) {
    Task task;
    if (try_pop_any(task)) {
      run_task(task);
      note_done();
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (unfinished_ == 0) break;
    done_cv_.wait(lk, [&] { return unfinished_ == 0 || queued_ > 0; });
    if (unfinished_ == 0) break;
  }
  rethrow_if_error();
}

void Pool::cancel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cancel_ = true;
  }
  // Proactively clear the deques so "queued" really means stopped, not
  // merely skipped-on-pop.
  std::size_t cleared = 0;
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mu);
    cleared += w->queue.size();
    w->queue.clear();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    queued_ -= std::min(queued_, cleared);
    unfinished_ -= std::min(unfinished_, cleared);
    if (unfinished_ == 0) done_cv_.notify_all();
  }
  space_cv_.notify_all();
}

bool Pool::cancelled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cancel_;
}

void parallel_for(Pool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&body, i] { body(i); });
  }
  pool.wait();
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t jobs) {
  Pool pool(jobs);
  parallel_for(pool, n, body);
}

}  // namespace dgmc::exec
