// exec::Pool — a small work-stealing thread pool for embarrassingly
// parallel simulation workloads.
//
// Every fan-out site in this repo (experiment sweeps, random-walk and
// frontier state-space search, chaos storms) is a batch of fully
// independent single-threaded DES runs: each task owns its network,
// scheduler and RNG streams, so the pool never needs to synchronize
// *inside* a task — only to hand tasks out. Determinism is therefore a
// property of the call sites, not the pool: tasks derive their random
// streams from (root seed, task index) and write results into
// index-addressed slots, so any execution order produces bit-identical
// output (see DESIGN.md §8 for the contract).
//
// Topology: one deque per worker. A worker pops from the front of its
// own deque (LIFO, cache-warm) and steals from the back of a victim's
// (FIFO, oldest first); external submissions are dealt round-robin.
// The queue is bounded: an external submitter blocks when `bound`
// tasks are queued, while a *worker* submitting over the bound runs
// the task inline instead — blocking there could deadlock the pool on
// itself (every worker stuck in submit, nobody draining).
//
// Error and cancellation model: the first exception a task throws is
// captured, the pool cancels (queued tasks are discarded, running
// tasks finish), and wait() rethrows it. cancel() is cooperative and
// permanent — a cancelled pool drops all queued and future work; make
// a fresh pool to continue. wait() must not be called from inside a
// task (the caller's own task can never drain), and a pool expects a
// single external coordinator thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dgmc::exec {

/// Worker count used when the caller does not specify one: the
/// DGMC_JOBS environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency(), never less than 1.
std::size_t default_jobs();

/// `requested` if positive, else default_jobs().
std::size_t resolve_jobs(std::size_t requested);

class Pool {
 public:
  using Task = std::function<void()>;

  /// `jobs` = 0 resolves via resolve_jobs(). A pool of size 1 spawns
  /// no threads at all: submit() runs the task inline on the calling
  /// thread, which makes the serial path literally serial (and is what
  /// the determinism tests compare the parallel paths against).
  /// `queue_bound` = 0 picks a default of max(4 * jobs, 64).
  explicit Pool(std::size_t jobs = 0, std::size_t queue_bound = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  std::size_t size() const { return jobs_; }

  /// Enqueues a task. External callers block while the queue is at the
  /// bound; worker threads fall back to inline execution instead (see
  /// header comment). After cancel() the task is silently dropped.
  void submit(Task task);

  /// Blocks until every submitted task has completed or been
  /// discarded, helping to execute queued tasks while waiting. Then
  /// rethrows the first exception any task threw, if any (clearing it,
  /// so a pool whose tasks all succeed afterwards is reusable).
  void wait();

  /// Discards all queued tasks and any submitted later; tasks already
  /// running finish normally. Permanent for this pool.
  void cancel();

  bool cancelled() const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> queue;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, Task& out);
  bool try_pop_any(Task& out);
  void run_task(Task& task);
  void note_done();
  void capture_exception();
  void rethrow_if_error();

  std::size_t jobs_ = 1;
  std::size_t bound_ = 64;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Counters and flags live under mu_ so the condition variables never
  // miss a wakeup; the per-worker deques have their own locks.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queued_ > 0 || stop_
  std::condition_variable done_cv_;   // wait(): unfinished_ == 0 || work
  std::condition_variable space_cv_;  // submit(): queued_ < bound_
  std::size_t queued_ = 0;      // tasks sitting in deques
  std::size_t unfinished_ = 0;  // queued + running
  bool stop_ = false;
  bool cancel_ = false;
  std::size_t next_worker_ = 0;  // round-robin for external submits

  std::mutex err_mu_;
  std::exception_ptr error_;
};

/// Runs body(0) .. body(n-1) as pool tasks and waits for all of them.
/// Each index is an independent task; with a size-1 pool the calls
/// happen inline in index order. Must be called from outside any pool
/// task (it uses Pool::wait).
void parallel_for(Pool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Convenience overload: a fresh pool of resolve_jobs(jobs) workers.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t jobs = 0);

}  // namespace dgmc::exec
