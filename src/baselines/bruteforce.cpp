#include "baselines/bruteforce.hpp"

#include "util/assert.hpp"

namespace dgmc::baselines {

BruteForceNetwork::BruteForceNetwork(
    graph::Graph physical, Params params,
    std::unique_ptr<mc::TopologyAlgorithm> algorithm)
    : physical_(std::move(physical)),
      params_(params),
      algorithm_(std::move(algorithm)),
      flooding_(sched_, physical_, params.per_hop_overhead) {
  DGMC_ASSERT(algorithm_ != nullptr);
  hosts_.reserve(physical_.node_count());
  for (int i = 0; i < physical_.node_count(); ++i) {
    hosts_.push_back(std::make_unique<Host>(sched_));
  }
  flooding_.set_receiver(
      [this](const lsr::FloodingNetwork<MembershipLsa>::Delivery& d) {
        on_event(d.at, d.payload);
      });
}

void BruteForceNetwork::join(graph::NodeId at, mc::MemberRole role) {
  DGMC_ASSERT(physical_.valid_node(at));
  const MembershipLsa lsa{at, true, role};
  on_event(at, lsa);  // apply locally, then advertise
  flooding_.flood(at, lsa);
}

void BruteForceNetwork::leave(graph::NodeId at) {
  DGMC_ASSERT(physical_.valid_node(at));
  const MembershipLsa lsa{at, false, mc::MemberRole::kBoth};
  on_event(at, lsa);
  flooding_.flood(at, lsa);
}

void BruteForceNetwork::on_event(graph::NodeId at, const MembershipLsa& lsa) {
  Host& host = *hosts_[at];
  if (lsa.join) {
    host.members.join(lsa.source, lsa.role);
  } else {
    host.members.leave(lsa.source);
  }
  host.dirty = true;
  maybe_compute(at);
}

void BruteForceNetwork::maybe_compute(graph::NodeId at) {
  Host& host = *hosts_[at];
  if (host.computing || !host.dirty) return;
  host.computing = true;
  host.dirty = false;
  ++host.computations;

  // Snapshot inputs now; the result installs when the CPU finishes.
  mc::TopologyRequest req;
  req.type = params_.mc_type;
  req.members = &host.members;
  // previous is deliberately withheld: with no proposal mechanism, the
  // only way n independent computations agree is for each to be a pure
  // function of the shared (image, member list) inputs.
  req.previous = nullptr;
  trees::Topology result = algorithm_->compute(physical_, req);

  host.cpu.submit(params_.computation_time,
                  [this, at, result = std::move(result)]() mutable {
                    Host& h = *hosts_[at];
                    h.installed = std::move(result);
                    h.computing = false;
                    last_install_time_ = sched_.now();
                    maybe_compute(at);  // coalesced recomputation
                  });
}

BruteForceNetwork::Totals BruteForceNetwork::totals() const {
  Totals t;
  for (const auto& h : hosts_) t.computations += h->computations;
  t.floodings = flooding_.floodings_originated();
  return t;
}

bool BruteForceNetwork::converged() const {
  for (std::size_t i = 1; i < hosts_.size(); ++i) {
    if (!(hosts_[i]->members == hosts_[0]->members)) return false;
    if (!(hosts_[i]->installed == hosts_[0]->installed)) return false;
  }
  return true;
}

const trees::Topology& BruteForceNetwork::topology_at(graph::NodeId n) const {
  DGMC_ASSERT(physical_.valid_node(n));
  return hosts_[n]->installed;
}

const mc::MemberList& BruteForceNetwork::members_at(graph::NodeId n) const {
  DGMC_ASSERT(physical_.valid_node(n));
  return hosts_[n]->members;
}

}  // namespace dgmc::baselines
