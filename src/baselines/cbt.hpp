// CBT-like baseline (paper §2, §5; Ballardie's core-based trees):
// receiver-only MCs built as a shared tree rooted at a designated core.
//
// Joins travel hop-by-hop toward the core along unicast routes; the
// branch is instantiated by the acknowledgment walking back. Leaves
// prune leaf branches recursively. No flooding and no topology
// computations are involved — the trade-offs the paper calls out are
// (a) tree quality / traffic concentration versus D-GMC's Steiner
// trees and (b) the core placement problem, both measured by the
// comparison bench.
#pragma once

#include <cstdint>
#include <utility>
#include <memory>
#include <vector>

#include "des/scheduler.hpp"
#include "graph/graph.hpp"
#include "lsr/routing.hpp"
#include "trees/topology.hpp"

namespace dgmc::baselines {

class CbtNetwork {
 public:
  struct Params {
    double per_hop_overhead = 0.0;
  };

  CbtNetwork(graph::Graph physical, graph::NodeId core, Params params);
  CbtNetwork(graph::Graph physical, graph::NodeId core)
      : CbtNetwork(std::move(physical), core, Params{}) {}

  CbtNetwork(const CbtNetwork&) = delete;
  CbtNetwork& operator=(const CbtNetwork&) = delete;

  des::Scheduler& scheduler() { return sched_; }
  graph::NodeId core() const { return core_; }

  /// Sends a JOIN-REQUEST from `at` toward the core. The member is
  /// grafted when the ACK returns.
  void join(graph::NodeId at);

  /// Prunes `at` (and any branch it leaves dangling).
  void leave(graph::NodeId at);

  void run_to_quiescence() { sched_.run(); }

  /// The current shared tree (edges between on-tree switches).
  trees::Topology tree() const;

  bool is_member(graph::NodeId n) const;
  bool on_tree(graph::NodeId n) const;
  std::vector<graph::NodeId> members() const;

  struct Totals {
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    std::uint64_t control_hops = 0;  // unicast hops of JOIN/ACK/QUIT
  };
  Totals totals() const;

 private:
  struct Host {
    bool member = false;
    bool tree_node = false;
    graph::NodeId parent = graph::kInvalidNode;  // toward the core
    int child_count = 0;
    lsr::RoutingTable routes;
  };

  void forward_join(graph::NodeId at, std::vector<graph::NodeId> path);
  void graft(std::vector<graph::NodeId> path, std::size_t index);
  void maybe_prune(graph::NodeId at);
  double hop_delay(graph::NodeId from, graph::NodeId to) const;

  des::Scheduler sched_;
  graph::Graph physical_;
  graph::NodeId core_;
  Params params_;
  std::vector<Host> hosts_;
  Totals totals_;
};

}  // namespace dgmc::baselines
