// MOSPF-like baseline (paper §2; Moy, RFC 1584): data-driven,
// on-demand topology computation.
//
// Group membership is flooded in group-membership LSAs; routers store
// member lists but compute nothing on receipt (they only flush the
// routing cache for the group). When a datagram for the group arrives
// at a router with no cache entry for (source, group), the router
// computes the shortest-path tree rooted at the datagram's source,
// caches it, and forwards along the tree — "this forwarding will
// trigger further topology computations at other routers."
//
// The comparison metric is the paper §4 claim: MOSPF "requires a
// topology computation at every switch involved in the MC", versus
// D-GMC's one-per-event.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "des/resource.hpp"
#include "des/scheduler.hpp"
#include "graph/graph.hpp"
#include "lsr/flooding.hpp"
#include "mc/member_list.hpp"
#include "trees/topology.hpp"

namespace dgmc::baselines {

class MospfNetwork {
 public:
  struct Params {
    double per_hop_overhead = 0.0;
    des::SimTime computation_time = 25 * des::kMillisecond;
  };

  MospfNetwork(graph::Graph physical, Params params);

  MospfNetwork(const MospfNetwork&) = delete;
  MospfNetwork& operator=(const MospfNetwork&) = delete;

  des::Scheduler& scheduler() { return sched_; }

  /// Membership events (flooded as group-membership LSAs; receivers
  /// flush their routing caches for the group).
  void join(graph::NodeId at);
  void leave(graph::NodeId at);

  /// Injects a multicast datagram at `source`'s ingress switch.
  void send_datagram(graph::NodeId source);

  void run_to_quiescence() { sched_.run(); }

  struct Totals {
    std::uint64_t computations = 0;        // on-demand SPT computations
    std::uint64_t membership_floodings = 0;
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_delivered = 0;  // copies handed to members
  };
  Totals totals() const;

  const mc::MemberList& members_at(graph::NodeId n) const;

  /// The (source, group) tree cached at a switch, nullptr if none.
  const trees::Topology* cached_tree(graph::NodeId at,
                                     graph::NodeId source) const;

 private:
  struct MembershipLsa {
    graph::NodeId source;
    bool join;
  };
  struct Datagram {
    graph::NodeId source;    // multicast source (tree root)
    graph::NodeId from;      // previous-hop switch
  };

  struct Host {
    explicit Host(des::Scheduler& sched) : cpu(sched) {}
    mc::MemberList members;
    std::map<graph::NodeId, trees::Topology> cache;  // per source
    des::SerialResource cpu;
    std::uint64_t computations = 0;
  };

  void apply_membership(graph::NodeId at, const MembershipLsa& lsa);
  void handle_datagram(graph::NodeId at, const Datagram& d);
  void forward_datagram(graph::NodeId at, const Datagram& d,
                        const trees::Topology& tree);

  des::Scheduler sched_;
  graph::Graph physical_;
  Params params_;
  lsr::FloodingNetwork<MembershipLsa> flooding_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_delivered_ = 0;
};

}  // namespace dgmc::baselines
