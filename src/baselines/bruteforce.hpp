// The "brute-force LSR-based MC protocol" (paper §2): membership LSAs
// are flooded and *every* switch recomputes the MC topology for every
// event — "in a network with n switches, a single event could trigger n
// redundant computations for every existing MC. Such high overhead
// renders this protocol impractical."
//
// This is the yardstick D-GMC's "computations per event" is judged
// against. One charitable refinement is included: recomputations are
// coalesced per switch (a computation running when further LSAs arrive
// is followed by one recomputation, not one per LSA), so bursty numbers
// are a lower bound on the naive protocol's cost.
#pragma once

#include <memory>
#include <vector>

#include "des/resource.hpp"
#include "des/scheduler.hpp"
#include "graph/graph.hpp"
#include "lsr/flooding.hpp"
#include "mc/algorithm.hpp"
#include "trees/topology.hpp"

namespace dgmc::baselines {

class BruteForceNetwork {
 public:
  struct Params {
    double per_hop_overhead = 0.0;
    des::SimTime computation_time = 25 * des::kMillisecond;
    mc::McType mc_type = mc::McType::kSymmetric;
  };

  BruteForceNetwork(graph::Graph physical, Params params,
                    std::unique_ptr<mc::TopologyAlgorithm> algorithm);

  BruteForceNetwork(const BruteForceNetwork&) = delete;
  BruteForceNetwork& operator=(const BruteForceNetwork&) = delete;

  des::Scheduler& scheduler() { return sched_; }
  const graph::Graph& physical() const { return physical_; }

  /// Local membership events; each floods one membership LSA.
  void join(graph::NodeId at, mc::MemberRole role = mc::MemberRole::kBoth);
  void leave(graph::NodeId at);

  void run_to_quiescence() { sched_.run(); }

  struct Totals {
    std::uint64_t computations = 0;
    std::uint64_t floodings = 0;
  };
  Totals totals() const;
  des::SimTime last_install_time() const { return last_install_time_; }

  /// All switches agree on members and topology (call at quiescence).
  bool converged() const;
  const trees::Topology& topology_at(graph::NodeId n) const;
  const mc::MemberList& members_at(graph::NodeId n) const;

 private:
  struct MembershipLsa {
    graph::NodeId source;
    bool join;
    mc::MemberRole role;
  };

  struct Host {
    explicit Host(des::Scheduler& sched) : cpu(sched) {}
    mc::MemberList members;
    trees::Topology installed;
    des::SerialResource cpu;
    bool dirty = false;      // events arrived while computing
    bool computing = false;
    std::uint64_t computations = 0;
  };

  void on_event(graph::NodeId at, const MembershipLsa& lsa);
  void maybe_compute(graph::NodeId at);

  des::Scheduler sched_;
  graph::Graph physical_;
  Params params_;
  std::unique_ptr<mc::TopologyAlgorithm> algorithm_;
  lsr::FloodingNetwork<MembershipLsa> flooding_;
  std::vector<std::unique_ptr<Host>> hosts_;
  des::SimTime last_install_time_ = 0.0;
};

}  // namespace dgmc::baselines
