#include "baselines/cbt.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dgmc::baselines {

CbtNetwork::CbtNetwork(graph::Graph physical, graph::NodeId core,
                       Params params)
    : physical_(std::move(physical)), core_(core), params_(params) {
  DGMC_ASSERT(physical_.valid_node(core));
  hosts_.resize(physical_.node_count());
  for (graph::NodeId n = 0; n < physical_.node_count(); ++n) {
    hosts_[n].routes = lsr::RoutingTable::compute(physical_, n);
  }
  hosts_[core_].tree_node = true;  // the core anchors the tree
}

double CbtNetwork::hop_delay(graph::NodeId from, graph::NodeId to) const {
  const graph::LinkId id = physical_.find_link(from, to);
  DGMC_ASSERT(id != graph::kInvalidLink);
  return physical_.link(id).delay + params_.per_hop_overhead;
}

void CbtNetwork::join(graph::NodeId at) {
  DGMC_ASSERT(physical_.valid_node(at));
  if (hosts_[at].member) return;
  hosts_[at].member = true;
  ++totals_.joins;
  forward_join(at, {at});
}

void CbtNetwork::forward_join(graph::NodeId at,
                              std::vector<graph::NodeId> path) {
  if (hosts_[at].tree_node) {
    // Reached the tree (possibly the core): ACK walks the path back,
    // instantiating the branch hop by hop.
    const std::size_t anchor_index = path.size();
    graft(std::move(path), anchor_index);
    return;
  }
  const graph::NodeId next = hosts_[at].routes.next_hop(core_);
  DGMC_ASSERT_MSG(next != graph::kInvalidNode, "core unreachable");
  ++totals_.control_hops;
  path.push_back(next);
  const double delay = hop_delay(at, next);
  sched_.schedule_after(delay, [this, next, p = std::move(path)]() mutable {
    forward_join(next, std::move(p));
  });
}

void CbtNetwork::graft(std::vector<graph::NodeId> path, std::size_t index) {
  // path = joiner .. anchor; index counts down from the anchor.
  DGMC_ASSERT(index >= 1 && index <= path.size());
  if (index >= 2) {
    // Instantiate the edge between path[index-2] (downstream) and
    // path[index-1] (upstream).
    const graph::NodeId down = path[index - 2];
    const graph::NodeId up = path[index - 1];
    Host& d = hosts_[down];
    if (!d.tree_node) {
      d.tree_node = true;
      d.parent = up;
      ++hosts_[up].child_count;
    }
    ++totals_.control_hops;
    const double delay = hop_delay(up, down);
    sched_.schedule_after(delay,
                          [this, p = std::move(path), index]() mutable {
                            graft(std::move(p), index - 1);
                          });
    return;
  }
  // ACK arrived at the joiner: nothing further to instantiate.
}

void CbtNetwork::leave(graph::NodeId at) {
  DGMC_ASSERT(physical_.valid_node(at));
  if (!hosts_[at].member) return;
  hosts_[at].member = false;
  ++totals_.leaves;
  maybe_prune(at);
}

void CbtNetwork::maybe_prune(graph::NodeId at) {
  Host& h = hosts_[at];
  if (at == core_ || !h.tree_node || h.member || h.child_count > 0) return;
  // Leaf, non-member, not the core: QUIT to the parent.
  const graph::NodeId parent = h.parent;
  DGMC_ASSERT(parent != graph::kInvalidNode);
  h.tree_node = false;
  h.parent = graph::kInvalidNode;
  ++totals_.control_hops;
  const double delay = hop_delay(at, parent);
  sched_.schedule_after(delay, [this, parent] {
    --hosts_[parent].child_count;
    DGMC_ASSERT(hosts_[parent].child_count >= 0);
    maybe_prune(parent);
  });
}

trees::Topology CbtNetwork::tree() const {
  std::vector<graph::Edge> edges;
  for (graph::NodeId n = 0; n < physical_.node_count(); ++n) {
    if (hosts_[n].tree_node && hosts_[n].parent != graph::kInvalidNode) {
      edges.emplace_back(n, hosts_[n].parent);
    }
  }
  return trees::Topology(std::move(edges));
}

bool CbtNetwork::is_member(graph::NodeId n) const {
  DGMC_ASSERT(physical_.valid_node(n));
  return hosts_[n].member;
}

bool CbtNetwork::on_tree(graph::NodeId n) const {
  DGMC_ASSERT(physical_.valid_node(n));
  return hosts_[n].tree_node;
}

std::vector<graph::NodeId> CbtNetwork::members() const {
  std::vector<graph::NodeId> out;
  for (graph::NodeId n = 0; n < physical_.node_count(); ++n) {
    if (hosts_[n].member) out.push_back(n);
  }
  return out;
}

CbtNetwork::Totals CbtNetwork::totals() const { return totals_; }

}  // namespace dgmc::baselines
