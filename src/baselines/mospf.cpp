#include "baselines/mospf.hpp"

#include "trees/spt.hpp"
#include "util/assert.hpp"

namespace dgmc::baselines {

MospfNetwork::MospfNetwork(graph::Graph physical, Params params)
    : physical_(std::move(physical)),
      params_(params),
      flooding_(sched_, physical_, params.per_hop_overhead) {
  hosts_.reserve(physical_.node_count());
  for (int i = 0; i < physical_.node_count(); ++i) {
    hosts_.push_back(std::make_unique<Host>(sched_));
  }
  flooding_.set_receiver(
      [this](const lsr::FloodingNetwork<MembershipLsa>::Delivery& d) {
        apply_membership(d.at, d.payload);
      });
}

void MospfNetwork::join(graph::NodeId at) {
  DGMC_ASSERT(physical_.valid_node(at));
  const MembershipLsa lsa{at, true};
  apply_membership(at, lsa);
  flooding_.flood(at, lsa);
}

void MospfNetwork::leave(graph::NodeId at) {
  DGMC_ASSERT(physical_.valid_node(at));
  const MembershipLsa lsa{at, false};
  apply_membership(at, lsa);
  flooding_.flood(at, lsa);
}

void MospfNetwork::apply_membership(graph::NodeId at,
                                    const MembershipLsa& lsa) {
  Host& host = *hosts_[at];
  if (lsa.join) {
    host.members.join(lsa.source, mc::MemberRole::kReceiver);
  } else {
    host.members.leave(lsa.source);
  }
  // Membership changed: every cached tree for the group is stale.
  host.cache.clear();
}

void MospfNetwork::send_datagram(graph::NodeId source) {
  DGMC_ASSERT(physical_.valid_node(source));
  ++datagrams_sent_;
  handle_datagram(source, Datagram{source, graph::kInvalidNode});
}

void MospfNetwork::handle_datagram(graph::NodeId at, const Datagram& d) {
  Host& host = *hosts_[at];
  if (host.members.contains(at)) ++datagrams_delivered_;

  auto it = host.cache.find(d.source);
  if (it != host.cache.end()) {
    forward_datagram(at, d, it->second);
    return;
  }
  // Cache miss: compute the source-rooted pruned SPT on the CPU, then
  // forward. Datagram waits for the computation (MOSPF queues it).
  ++host.computations;
  trees::Topology tree =
      trees::pruned_spt(physical_, d.source, host.members.all());
  host.cpu.submit(params_.computation_time,
                  [this, at, d, tree = std::move(tree)]() mutable {
                    Host& h = *hosts_[at];
                    auto [pos, inserted] =
                        h.cache.emplace(d.source, std::move(tree));
                    (void)inserted;
                    forward_datagram(at, d, pos->second);
                  });
}

void MospfNetwork::forward_datagram(graph::NodeId at, const Datagram& d,
                                    const trees::Topology& tree) {
  for (graph::NodeId next : tree.neighbors(at)) {
    if (next == d.from) continue;
    const graph::LinkId id = physical_.find_link(at, next);
    if (id == graph::kInvalidLink || !physical_.link(id).up) continue;
    const double delay =
        physical_.link(id).delay + params_.per_hop_overhead;
    sched_.schedule_after(delay, [this, next, at, src = d.source] {
      handle_datagram(next, Datagram{src, at});
    });
  }
}

MospfNetwork::Totals MospfNetwork::totals() const {
  Totals t;
  for (const auto& h : hosts_) t.computations += h->computations;
  t.membership_floodings = flooding_.floodings_originated();
  t.datagrams_sent = datagrams_sent_;
  t.datagrams_delivered = datagrams_delivered_;
  return t;
}

const mc::MemberList& MospfNetwork::members_at(graph::NodeId n) const {
  DGMC_ASSERT(physical_.valid_node(n));
  return hosts_[n]->members;
}

const trees::Topology* MospfNetwork::cached_tree(graph::NodeId at,
                                                 graph::NodeId source) const {
  DGMC_ASSERT(physical_.valid_node(at));
  auto it = hosts_[at]->cache.find(source);
  return it == hosts_[at]->cache.end() ? nullptr : &it->second;
}

}  // namespace dgmc::baselines
