// Wire codec for the LSA formats of paper §3.1.
//
// An MC LSA is the tuple (S, F, V, G, P, T); a non-MC LSA is (S, F, D)
// with D a link-status description. The F flag is the leading type
// byte. All integers are little-endian; the vector timestamp is
// length-prefixed; the topology proposal is an optional edge list.
//
// decode_* returns nullopt on any malformed input (truncation, bad
// enum values, negative ids, self-loop edges) — never asserts, so the
// codec is safe on untrusted bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/mc_lsa.hpp"
#include "core/sync.hpp"
#include "lsr/link_lsa.hpp"

namespace dgmc::core {

/// Hard cap on an encoded buffer any decode_* will consider. Matches
/// the socket backend's datagram cap (net::kMaxDatagram): larger
/// buffers are malformed on any wire this codec serves, and rejecting
/// them up front bounds what a forged length field can make the
/// decoder allocate.
inline constexpr std::size_t kMaxEncoded = 64 * 1024;

/// Leading type byte (the paper's F flag).
enum class WireType : std::uint8_t {
  kMcLsa = 0xD6,
  kLinkEvent = 0xD7,
  kMcSync = 0xD8,
};

std::vector<std::uint8_t> encode(const McLsa& lsa);
std::vector<std::uint8_t> encode(const lsr::LinkEventAd& ad);
std::vector<std::uint8_t> encode(const McSync& sync);

/// Buffer-reuse variants: clear `out`, then append the encoding. The
/// buffer keeps its capacity across calls, so a caller encoding in a
/// loop (bench kernels, a future wire transport) allocates only until
/// the high-water mark.
void encode_into(const McLsa& lsa, std::vector<std::uint8_t>& out);
void encode_into(const lsr::LinkEventAd& ad, std::vector<std::uint8_t>& out);
void encode_into(const McSync& sync, std::vector<std::uint8_t>& out);

/// Type of an encoded buffer, or nullopt if empty/unknown.
std::optional<WireType> peek_type(const std::vector<std::uint8_t>& bytes);

std::optional<McLsa> decode_mc_lsa(const std::vector<std::uint8_t>& bytes);
std::optional<lsr::LinkEventAd> decode_link_event(
    const std::vector<std::uint8_t>& bytes);
std::optional<McSync> decode_mc_sync(const std::vector<std::uint8_t>& bytes);

/// Encoded size in bytes (diagnostic; equals encode(lsa).size()).
std::size_t encoded_size(const McLsa& lsa);

}  // namespace dgmc::core
