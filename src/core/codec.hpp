// Wire codec for the LSA formats of paper §3.1.
//
// An MC LSA is the tuple (S, F, V, G, P, T); a non-MC LSA is (S, F, D)
// with D a link-status description. The F flag is the leading type
// byte. All integers are little-endian; the vector timestamp is
// length-prefixed; the topology proposal is an optional edge list.
//
// decode_* returns nullopt on any malformed input (truncation, bad
// enum values, negative ids, self-loop edges) — never asserts, so the
// codec is safe on untrusted bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/mc_lsa.hpp"
#include "core/sync.hpp"
#include "lsr/link_lsa.hpp"

namespace dgmc::core {

/// Hard cap on an encoded buffer any decode_* will consider. Matches
/// the socket backend's datagram cap (net::kMaxDatagram): larger
/// buffers are malformed on any wire this codec serves, and rejecting
/// them up front bounds what a forged length field can make the
/// decoder allocate.
inline constexpr std::size_t kMaxEncoded = 64 * 1024;

/// Leading type byte (the paper's F flag).
enum class WireType : std::uint8_t {
  kMcLsa = 0xD6,
  kLinkEvent = 0xD7,
  kMcSync = 0xD8,
  /// Length-prefixed batch of MC LSAs carried as one wire op (see
  /// core/mc_lsa.hpp and DESIGN.md §13). Decoders predating the batch
  /// frame reject the unknown type byte cleanly (peek_type -> nullopt),
  /// and the frame carries its own version byte for future layout
  /// changes.
  kMcLsaBatch = 0xD9,
};

/// Version byte of the batch frame layout.
inline constexpr std::uint8_t kMcLsaBatchVersion = 1;

/// Largest LSA count a batch frame may carry (also bounds what a
/// forged count can make the decoder reserve).
inline constexpr std::uint32_t kMaxBatchLsas = 4096;

std::vector<std::uint8_t> encode(const McLsa& lsa);
std::vector<std::uint8_t> encode(const lsr::LinkEventAd& ad);
std::vector<std::uint8_t> encode(const McSync& sync);
std::vector<std::uint8_t> encode(const McLsaBatch& batch);

/// Buffer-reuse variants: clear `out`, then append the encoding. The
/// buffer keeps its capacity across calls, so a caller encoding in a
/// loop (bench kernels, a future wire transport) allocates only until
/// the high-water mark.
void encode_into(const McLsa& lsa, std::vector<std::uint8_t>& out);
void encode_into(const lsr::LinkEventAd& ad, std::vector<std::uint8_t>& out);
void encode_into(const McSync& sync, std::vector<std::uint8_t>& out);
/// A batch of exactly one LSA *degenerates* to the plain kMcLsa
/// encoding — byte-identical to encode(batch.lsas[0]) — so enabling
/// batching changes nothing on the wire until a round actually
/// coalesces two LSAs. Asserts the batch is non-empty.
void encode_into(const McLsaBatch& batch, std::vector<std::uint8_t>& out);

/// Type of an encoded buffer, or nullopt if empty/unknown.
std::optional<WireType> peek_type(const std::vector<std::uint8_t>& bytes);

std::optional<McLsa> decode_mc_lsa(const std::vector<std::uint8_t>& bytes);
std::optional<lsr::LinkEventAd> decode_link_event(
    const std::vector<std::uint8_t>& bytes);
std::optional<McSync> decode_mc_sync(const std::vector<std::uint8_t>& bytes);

/// Decodes a batch frame. Accepts a plain kMcLsa buffer too (wrapping
/// it as a batch of one — the degenerate form encode_into emits), so a
/// receiver can route both through one path. Every sub-LSA must decode
/// exactly (per-LSA length prefixes must tile the frame; trailing junk
/// anywhere rejects the whole batch).
std::optional<McLsaBatch> decode_mc_lsa_batch(
    const std::vector<std::uint8_t>& bytes);

/// Encoded size in bytes (diagnostic; equals encode(lsa).size()).
std::size_t encoded_size(const McLsa& lsa);
std::size_t encoded_size(const McLsaBatch& batch);

}  // namespace dgmc::core
