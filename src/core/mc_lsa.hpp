// The MC LSA (paper §3.1): "an MC LSA is a tuple (S, F, V, G, P, T)
// where S is the source address, F flags it as an MC LSA, V specifies
// an event {join, leave, link, none}, G identifies the MC, P is a
// (possibly NULL) topology proposal, and T is a timestamp."
//
// The F flag is realized by the transport-level variant (MC LSAs and
// non-MC link LSAs are distinct alternatives of the flooded payload).
// We additionally carry the MC's type and the joiner's role so that a
// switch hearing of an MC for the first time can allocate state — the
// paper's "when the first member advertises its presence, the other
// switches allocate necessary data structures".
#pragma once

#include <optional>
#include <vector>

#include "core/timestamp.hpp"
#include "mc/types.hpp"
#include "trees/topology.hpp"

namespace dgmc::core {

enum class McEventType : std::uint8_t {
  kNone = 0,   // triggered LSA: proposal only
  kJoin = 1,
  kLeave = 2,
  kLink = 3,   // a link/nodal event affected this MC's topology
};

const char* to_string(McEventType e);

struct McLsa {
  graph::NodeId source = graph::kInvalidNode;  // S
  McEventType event = McEventType::kNone;      // V
  mc::McId mc = mc::kInvalidMc;                // G
  mc::McType mc_type = mc::McType::kSymmetric;
  // Role the joining switch takes; meaningful when event == kJoin.
  mc::MemberRole join_role = mc::MemberRole::kBoth;
  // The link whose status change triggered this LSA; kLink events only.
  graph::LinkId link = graph::kInvalidLink;
  std::optional<trees::Topology> proposal;     // P
  VectorTimestamp stamp;                       // T

  friend bool operator==(const McLsa&, const McLsa&) = default;
};

/// A batch of MC LSAs flooded as ONE wire operation (DESIGN.md §13).
/// When several MCs react to the same round — the canonical case being
/// a link event, which makes every affected MC originate an LSA from
/// the same detecting switch — their LSAs share every link on the
/// flooding path, so carrying them in one frame turns k wire ops (and
/// k acks, k retransmit timers) into one. The flooding layer treats the
/// batch as a single reliability unit; receivers unpack and process
/// each LSA exactly as if it had arrived alone, in batch order.
struct McLsaBatch {
  std::vector<McLsa> lsas;

  friend bool operator==(const McLsaBatch&, const McLsaBatch&) = default;
};

inline const char* to_string(McEventType e) {
  switch (e) {
    case McEventType::kNone: return "none";
    case McEventType::kJoin: return "join";
    case McEventType::kLeave: return "leave";
    case McEventType::kLink: return "link";
  }
  return "?";
}

}  // namespace dgmc::core
