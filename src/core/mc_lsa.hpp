// The MC LSA (paper §3.1): "an MC LSA is a tuple (S, F, V, G, P, T)
// where S is the source address, F flags it as an MC LSA, V specifies
// an event {join, leave, link, none}, G identifies the MC, P is a
// (possibly NULL) topology proposal, and T is a timestamp."
//
// The F flag is realized by the transport-level variant (MC LSAs and
// non-MC link LSAs are distinct alternatives of the flooded payload).
// We additionally carry the MC's type and the joiner's role so that a
// switch hearing of an MC for the first time can allocate state — the
// paper's "when the first member advertises its presence, the other
// switches allocate necessary data structures".
#pragma once

#include <optional>

#include "core/timestamp.hpp"
#include "mc/types.hpp"
#include "trees/topology.hpp"

namespace dgmc::core {

enum class McEventType : std::uint8_t {
  kNone = 0,   // triggered LSA: proposal only
  kJoin = 1,
  kLeave = 2,
  kLink = 3,   // a link/nodal event affected this MC's topology
};

const char* to_string(McEventType e);

struct McLsa {
  graph::NodeId source = graph::kInvalidNode;  // S
  McEventType event = McEventType::kNone;      // V
  mc::McId mc = mc::kInvalidMc;                // G
  mc::McType mc_type = mc::McType::kSymmetric;
  // Role the joining switch takes; meaningful when event == kJoin.
  mc::MemberRole join_role = mc::MemberRole::kBoth;
  // The link whose status change triggered this LSA; kLink events only.
  graph::LinkId link = graph::kInvalidLink;
  std::optional<trees::Topology> proposal;     // P
  VectorTimestamp stamp;                       // T
};

inline const char* to_string(McEventType e) {
  switch (e) {
    case McEventType::kNone: return "none";
    case McEventType::kJoin: return "join";
    case McEventType::kLeave: return "leave";
    case McEventType::kLink: return "link";
  }
  return "?";
}

}  // namespace dgmc::core
