// Partition-heal resynchronization (extension).
//
// Paper §6 leaves open "the ability of the protocol to survive
// disastrous situations, such as network partitioning". The gap: while
// partitioned, each side floods events only internally; after the
// partition heals, the first LSA crossing the boundary carries a
// timestamp reflecting events the other side never received, so E
// races ahead of R there and the proposal gate (R >= E) jams forever —
// the missed LSAs will never be retransmitted.
//
// The fix mirrors OSPF's database exchange on adjacency bring-up: when
// a link comes up, each endpoint floods one McSync per connection it
// knows. A sync summarizes, per origin switch y: a provably complete
// prefix of y's history the sender has heard (its R[y], advertised
// only when R[y] = E[y] proves the heard set is exactly {1..R[y]};
// 0 otherwise), the index of the last membership change from y it
// applied, and y's current membership/role in the sender's view.
//
// Merging is conflict-free because every switch's events occur in
// exactly one partition: whichever side reports a longer prefix of
// y's events has seen *all* of them, so its view of y is
// authoritative. The receiver adopts, per component, the view with
// the longer prefix, then raises its make_proposal_flag so the normal
// proposal machinery reconciles the topology. Receivers also record
// the taught prefix (McState::sync_floor) so event LSAs still in
// flight for already-accounted events do not advance R a second time
// — the double-count would open the Fig 4 completeness gate with
// events unheard (found by dgmc_check; DESIGN.md §7).
#pragma once

#include <vector>

#include "core/timestamp.hpp"
#include "mc/types.hpp"
#include "trees/topology.hpp"

namespace dgmc::core {

/// Per-origin summary inside a sync.
struct McSyncEntry {
  graph::NodeId node = graph::kInvalidNode;
  std::uint32_t events_heard = 0;        // sender's R[node]
  std::uint32_t member_event_index = 0;  // sender's applied watermark
  bool is_member = false;
  mc::MemberRole role = mc::MemberRole::kNone;

  friend bool operator==(const McSyncEntry&, const McSyncEntry&) = default;
};

/// Flooded on link restoration, one per known connection.
struct McSync {
  graph::NodeId source = graph::kInvalidNode;
  mc::McId mc = mc::kInvalidMc;
  mc::McType mc_type = mc::McType::kSymmetric;
  std::vector<McSyncEntry> entries;  // every origin with any history
  /// The sender's accepted topology and its stamp — the relay of an
  /// already-accepted proposal. A receiver with no (or staler)
  /// installed state adopts it directly instead of racing a fresh
  /// proposal through the equal-stamp tie-break; this is what hands a
  /// restarted switch the network's current tree. `c_origin` is
  /// kInvalidNode when the sender has never installed.
  trees::Topology installed;
  VectorTimestamp c;
  graph::NodeId c_origin = graph::kInvalidNode;
};

}  // namespace dgmc::core
