#include "core/protocol.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/permutation.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace dgmc::core {

DgmcSwitch::DgmcSwitch(graph::NodeId self, int network_size,
                       rt::Executor& exec,
                       const mc::TopologyAlgorithm& algorithm,
                       DgmcConfig config, Hooks hooks)
    : self_(self),
      network_size_(network_size),
      exec_(exec),
      algorithm_(algorithm),
      config_(config),
      hooks_(std::move(hooks)),
      states_(config.mc_shards) {
  DGMC_ASSERT(self >= 0 && self < network_size);
  DGMC_ASSERT(hooks_.flood != nullptr);
  DGMC_ASSERT(hooks_.local_image != nullptr);
  DGMC_ASSERT(config_.computation_time >= 0.0);
}

DgmcSwitch::McState& DgmcSwitch::get_or_create(mc::McId mcid,
                                               mc::McType type) {
  bool created = false;
  McState& st = states_.get_or_create(mcid, &created);
  if (!created) {
    DGMC_ASSERT_MSG(st.type == type, "MC type mismatch");
    return st;
  }
  st.type = type;
  st.r = VectorTimestamp(network_size_);
  st.e = VectorTimestamp(network_size_);
  st.c = VectorTimestamp(network_size_);
  st.member_event_applied.assign(network_size_, 0);
  st.sync_floor = VectorTimestamp(network_size_);
  if (hooks_.on_state_created) hooks_.on_state_created(mcid);
  return st;
}

DgmcSwitch::McState* DgmcSwitch::find(mc::McId mcid) {
  return states_.find(mcid);
}

const DgmcSwitch::McState* DgmcSwitch::find(mc::McId mcid) const {
  return states_.find(mcid);
}

// --- Local events (paper Figure 4) ---

void DgmcSwitch::local_join(mc::McId mcid, mc::McType type,
                            mc::MemberRole role) {
  if (!alive_) return;
  McState& st = get_or_create(mcid, type);
  st.members.join(self_, role);
  event_handler(mcid, st, McEventType::kJoin, role, graph::kInvalidLink);
}

void DgmcSwitch::local_leave(mc::McId mcid) {
  if (!alive_) return;
  McState* st = find(mcid);
  if (st == nullptr || !st->members.contains(self_)) return;
  st->members.leave(self_);
  event_handler(mcid, *st, McEventType::kLeave, mc::MemberRole::kBoth,
                graph::kInvalidLink);
  maybe_destroy(mcid);
}

int DgmcSwitch::local_link_event(graph::LinkId link) {
  if (!alive_) return 0;
  const graph::Graph& image = hooks_.local_image();
  DGMC_ASSERT(link >= 0 && link < image.link_count());
  const graph::Link& l = image.link(link);
  const graph::Edge edge(l.u, l.v);

  // "k MC LSAs, where k is the number of MCs whose topologies are
  // affected by the event" (paper §3.1). A restored link affects no
  // installed topology, so k = 0 for up events by this definition; the
  // unicast LSR layer still floods its non-MC LSA.
  std::vector<mc::McId> affected;
  states_.for_each([&](mc::McId mcid, const McState& st) {
    if (!l.up && st.installed.contains(edge)) affected.push_back(mcid);
  });
  for (mc::McId mcid : affected) {
    McState* st = find(mcid);
    if (st == nullptr) continue;  // destroyed by an earlier iteration
    event_handler(mcid, *st, McEventType::kLink, mc::MemberRole::kBoth, link);
  }
  return static_cast<int>(affected.size());
}

void DgmcSwitch::event_handler(mc::McId mcid, McState& st, McEventType ev,
                               mc::MemberRole join_role, graph::LinkId link) {
  // Fig 4 line 1: R[x]++, E[x]++.
  st.r.increment(self_);
  st.e.increment(self_);
  // Record that this switch's own membership change (already applied by
  // the caller) corresponds to event index R[x].
  st.member_event_applied[self_] = st.r[self_];

  // Fig 4 line 2: compute only when no LSAs are known outstanding — and,
  // in our single-CPU model, when the CPU is free (otherwise defer via
  // the make_proposal_flag exactly as lines 15-17 do).
  if (!current_.has_value() && st.r.dominates(st.e)) {
    Computation c;
    c.mcid = mcid;
    c.event_path = true;
    c.event = ev;
    c.join_role = join_role;
    c.link = link;
    c.old_r = st.r;  // line 4: save current R
    c.arrivals_at_start = st.lsa_arrivals;
    auto result = compute_topology(st);  // line 5 (occupies the CPU)
    c.proposal = std::move(result.topology);
    c.from_scratch = result.from_scratch;
    start_computation(std::move(c));
  } else {
    // Fig 4 lines 15-17: flood the event, defer the proposal.
    McLsa lsa;
    lsa.source = self_;
    lsa.event = ev;
    lsa.mc = mcid;
    lsa.mc_type = st.type;
    lsa.join_role = join_role;
    lsa.link = link;
    lsa.stamp = st.r;
    flood(std::move(lsa));
    st.make_proposal_flag = true;
  }
}

// --- LSA reception (paper Figure 5) ---

void DgmcSwitch::receive(const McLsa& lsa) {
  DGMC_ASSERT(lsa.source != self_);
  if (!alive_) return;
  ++counters_.lsas_received;
  McState& st = get_or_create(lsa.mc, lsa.mc_type);
  ++st.lsa_arrivals;

  // Fig 5 lines 5-9: event LSAs advance R and the member list. R is a
  // per-origin COUNT of heard events — flooding dedup delivers each
  // event at most once, so R[y] == E[y] iff every known event of y has
  // been heard, even when the deferred flood of Fig 4 lines 11-13 puts
  // y's events on the wire out of index order. Under partition resync,
  // though, a sync summary can account an event before its LSA arrives
  // (a restart floods summaries while the origin's LSA still sits
  // behind a computation); counting the LSA again would push R past E
  // and open the proposal gate with events still unheard. sync_floor
  // records the prefix of each origin's history some sync already
  // covered; only events beyond it count. (Found by dgmc_check on
  // diamond-crash-recover: heard-within-known violation.)
  if (lsa.event != McEventType::kNone) {
    // unguarded_sync (TEST-ONLY) drops the floor check, restoring the
    // double-count bug for the check subsystem's regression traces.
    if (config_.unguarded_sync ||
        lsa.stamp[lsa.source] > st.sync_floor[lsa.source]) {
      st.r.increment(lsa.source);
    }
    if (lsa.event != McEventType::kLink) {
      // The stamp's own component is the index of this event at its
      // origin; apply the membership change only if we have not already
      // applied a later one (reordered-flooding guard).
      const std::uint32_t index = lsa.stamp[lsa.source];
      if (index > st.member_event_applied[lsa.source]) {
        st.member_event_applied[lsa.source] = index;
        if (lsa.event == McEventType::kJoin) {
          st.members.join(lsa.source, lsa.join_role);
        } else {
          st.members.leave(lsa.source);
        }
      }
    }
  }

  // Fig 5 line 10: E[i] = max(E[i], T[i]).
  st.e.merge_max(lsa.stamp);

  // Fig 5 lines 11-17: accept an up-to-date proposal, else look for an
  // inconsistency.
  if (lsa.proposal.has_value() &&
      (lsa.stamp.dominates(st.e) || config_.accept_stale_proposals)) {
    // T >= E: the proposal reflects every event this switch knows of.
    // Equal-stamp tie-break (see header): lower proposer id wins.
    const bool fresher = lsa.stamp.strictly_dominates(st.c);
    const bool tie = lsa.stamp == st.c;
    const bool tie_accept =
        tie && (!config_.equal_stamp_tie_break ||
                st.c_origin == graph::kInvalidNode ||
                lsa.source <= st.c_origin);
    if (fresher || tie_accept || config_.accept_stale_proposals) {
      install(lsa.mc, st, *lsa.proposal, lsa.stamp, lsa.source);
      ++counters_.proposals_accepted;
    } else {
      ++counters_.proposals_ignored;
    }
    st.make_proposal_flag = false;  // line 14
  } else {
    if (lsa.proposal.has_value()) ++counters_.proposals_ignored;
    if (st.r[self_] > lsa.stamp[self_]) {
      // Line 15: the sender did not know all our local events.
      st.make_proposal_flag = true;
      ++counters_.inconsistencies_detected;
    }
  }

  evaluate_trigger_gate(lsa.mc);
  maybe_destroy(lsa.mc);
}

// --- Crash / recovery ---

void DgmcSwitch::crash() {
  DGMC_ASSERT_MSG(alive_, "switch already crashed");
  alive_ = false;
  ++counters_.crashes;
  counters_.states_destroyed += states_.size();
  if (hooks_.on_state_destroyed) {
    for (mc::McId mcid : states_.keys()) hooks_.on_state_destroyed(mcid);
  }
  states_.clear();
  if (current_.has_value()) {
    // The in-flight computation dies with the CPU; reclaim its
    // completion event so a ghost finish cannot fire post-restart.
    exec_.cancel(current_event_);
    current_.reset();
    ++counters_.computations_withdrawn;
  }
}

void DgmcSwitch::restart() {
  DGMC_ASSERT_MSG(!alive_, "switch is not crashed");
  DGMC_ASSERT(states_.empty());
  alive_ = true;
}

std::vector<mc::McId> DgmcSwitch::known_mcs() const {
  return states_.keys();
}

McSync DgmcSwitch::export_sync(mc::McId mcid) const {
  const McState* st = find(mcid);
  DGMC_ASSERT(st != nullptr);
  McSync sync;
  sync.source = self_;
  sync.mc = mcid;
  sync.mc_type = st->type;
  for (graph::NodeId y = 0; y < network_size_; ++y) {
    const bool member = st->members.contains(y);
    if (st->r[y] == 0 && !member) continue;  // no history for y
    McSyncEntry entry;
    entry.node = y;
    // Advertise only a provably complete prefix of y's history. R[y]
    // is a count of heard events and E[y] the highest known index, so
    // R[y] == E[y] proves the heard set is exactly {1..R[y]}; with a
    // gap (deferred Fig 4 line 11-13 floods still in flight) the
    // count names no identifiable set and a receiver merging it could
    // double-count events when the missing LSAs arrive. Claiming 0
    // merely defers teaching to a quiescent (R == E) sender.
    // unguarded_sync (TEST-ONLY) advertises the raw count regardless of
    // completeness — the original double-count bug's other half.
    entry.events_heard =
        (config_.unguarded_sync || st->r[y] == st->e[y]) ? st->r[y] : 0;
    entry.member_event_index = st->member_event_applied[y];
    entry.is_member = member;
    entry.role = st->members.role_of(y);
    sync.entries.push_back(entry);
  }
  sync.installed = st->installed;
  sync.c = st->c;
  sync.c_origin = st->c_origin;
  return sync;
}

void DgmcSwitch::apply_sync(const McSync& sync) {
  if (sync.source == self_ || !alive_) return;
  McState& st = get_or_create(sync.mc, sync.mc_type);
  bool learned_anything = false;
  bool recovered_membership = false;
  mc::MemberRole recovered_role = mc::MemberRole::kNone;
  for (const McSyncEntry& entry : sync.entries) {
    DGMC_ASSERT(entry.node >= 0 && entry.node < network_size_);
    // The advertised prefix {1..events_heard} of this origin's history
    // is accounted into R below; record it so ReceiveLSA does not count
    // those events a second time when their LSA copies — still in
    // flight through the flooding layer — eventually arrive here.
    st.sync_floor.raise_to(entry.node, entry.events_heard);
    if (entry.node == self_) {
      // In steady state nobody can know more about our own events than
      // we do. A peer that does is reporting history we lost in a
      // crash: adopt it — including our own pre-crash membership — so
      // our next event index exceeds every watermark peers hold, and
      // continuity of R[self] is restored from the network's memory.
      if (entry.events_heard > st.r[self_]) {
        st.r.raise_to(self_, entry.events_heard);
        st.e.raise_to(self_, entry.events_heard);
        learned_anything = true;
        if (entry.member_event_index >= st.member_event_applied[self_]) {
          st.member_event_applied[self_] = entry.member_event_index;
          if (entry.is_member) {
            st.members.join(self_, entry.role);
            recovered_membership = true;
            recovered_role = entry.role;
          } else {
            st.members.leave(self_);
          }
        }
      }
      continue;
    }
    if (entry.events_heard > st.r[entry.node]) {
      // The sender's partition saw more of this origin's history; its
      // view of the origin is authoritative (each switch's events all
      // happen on its own side of a partition).
      st.r.raise_to(entry.node, entry.events_heard);
      learned_anything = true;
      if (entry.member_event_index >= st.member_event_applied[entry.node]) {
        st.member_event_applied[entry.node] = entry.member_event_index;
        if (entry.is_member) {
          st.members.join(entry.node, entry.role);
        } else {
          st.members.leave(entry.node);
        }
      }
    }
    st.e.raise_to(entry.node, entry.events_heard);
  }
  ++st.lsa_arrivals;  // invalidates any in-flight computation here

  // Adopt the sender's accepted topology when it is fresher than ours
  // (or ties and wins the same tie-break receive() uses). This is the
  // relay of an already-accepted proposal: a restarted switch gets the
  // network's current tree and matching C without proposing, so it
  // cannot fork the tie-break against switches that kept their state.
  if (sync.c_origin != graph::kInvalidNode) {
    const bool fresher = sync.c.strictly_dominates(st.c);
    const bool tie = sync.c == st.c;
    const bool tie_adopt =
        tie && (!config_.equal_stamp_tie_break ||
                st.c_origin == graph::kInvalidNode ||
                sync.c_origin < st.c_origin);
    if (fresher || tie_adopt) {
      install(sync.mc, st, sync.installed, sync.c, sync.c_origin);
    }
  }

  if (recovered_membership) {
    // We are a member the network pruned while we were down: announce
    // recovery as a fresh membership event. It raises R[self] past the
    // adopted C everywhere, so the proposal gate reopens and the event
    // machinery re-attaches us to the tree.
    event_handler(sync.mc, st, McEventType::kJoin, recovered_role,
                  graph::kInvalidLink);
  } else if (learned_anything) {
    // The installed topology predates the merged history; propose.
    st.make_proposal_flag = true;
  }
  evaluate_trigger_gate(sync.mc);
  maybe_destroy(sync.mc);
}

void DgmcSwitch::evaluate_trigger_gate(mc::McId mcid) {
  if (current_.has_value()) return;  // CPU busy; re-run when it frees
  McState* stp = find(mcid);
  if (stp == nullptr) return;
  McState& st = *stp;
  // A member-less connection is about to be destroyed everywhere
  // (§3.4); proposing a topology for it would be pure noise.
  if (st.members.empty()) return;
  // Fig 5 line 19: make_proposal_flag AND R >= E AND R > C.
  if (!st.make_proposal_flag) return;
  if (!st.r.dominates(st.e)) return;
  if (!st.r.strictly_dominates(st.c)) return;

  Computation c;
  c.mcid = mcid;
  c.event_path = false;
  c.old_r = st.r;  // line 20
  c.arrivals_at_start = st.lsa_arrivals;
  auto result = compute_topology(st);  // line 21
  c.proposal = std::move(result.topology);
  c.from_scratch = result.from_scratch;
  start_computation(std::move(c));
}

void DgmcSwitch::evaluate_all_trigger_gates() {
  // evaluate_trigger_gate never inserts or erases state, so iterating
  // the live store is safe; stop once a computation claims the CPU.
  states_.for_each_while([&](mc::McId mcid, McState&) {
    if (current_.has_value()) return false;
    evaluate_trigger_gate(mcid);
    return true;
  });
}

// --- Computation lifecycle ---

rt::Time DgmcSwitch::computation_duration(bool from_scratch) const {
  if (from_scratch || config_.incremental_computation_time < 0.0) {
    return config_.computation_time;
  }
  return config_.incremental_computation_time;
}

void DgmcSwitch::start_computation(Computation c) {
  DGMC_ASSERT(!current_.has_value());
  ++counters_.computations_started;
  if (hooks_.on_computation) hooks_.on_computation(c.mcid);
  const rt::Time duration = computation_duration(c.from_scratch);
  current_ = std::move(c);
  rt::EventTag tag;
  tag.kind = rt::EventTag::Kind::kCompute;
  tag.node = self_;
  current_event_ =
      exec_.schedule_after(duration, tag, [this] { finish_computation(); });
}

void DgmcSwitch::finish_computation() {
  DGMC_ASSERT(current_.has_value());
  Computation c = std::move(*current_);
  current_.reset();

  McState* stp = find(c.mcid);
  if (stp == nullptr) {
    // The MC was destroyed while we computed (last member left).
    ++counters_.computations_withdrawn;
    evaluate_all_trigger_gates();
    return;
  }
  McState& st = *stp;

  if (c.event_path) {
    McLsa lsa;
    lsa.source = self_;
    lsa.event = c.event;
    lsa.mc = c.mcid;
    lsa.mc_type = st.type;
    lsa.join_role = c.join_role;
    lsa.link = c.link;
    lsa.stamp = c.old_r;
    if (st.r == c.old_r) {
      // Fig 4 lines 6-10: proposal still valid.
      lsa.proposal = c.proposal;
      flood(std::move(lsa));
      st.make_proposal_flag = false;
      install(c.mcid, st, c.proposal, c.old_r, self_);
    } else {
      // Fig 4 lines 11-13: obsolete; flood the event alone, defer.
      ++counters_.computations_withdrawn;
      flood(std::move(lsa));
      st.make_proposal_flag = true;
    }
  } else {
    // Fig 5 line 22: still up to date only if R is unchanged and no MC
    // LSA for this connection arrived during the computation window.
    if (st.r == c.old_r && st.lsa_arrivals == c.arrivals_at_start) {
      McLsa lsa;
      lsa.source = self_;
      lsa.event = McEventType::kNone;
      lsa.mc = c.mcid;
      lsa.mc_type = st.type;
      lsa.stamp = st.r;
      lsa.proposal = c.proposal;
      flood(std::move(lsa));
      st.e = st.r;  // line 24: bring E up to date
      st.make_proposal_flag = false;
      install(c.mcid, st, c.proposal, c.old_r, self_);
    } else {
      // Line 29: withdraw; the flag stays set and the gate re-runs.
      ++counters_.computations_withdrawn;
    }
  }

  maybe_destroy(c.mcid);
  evaluate_all_trigger_gates();
}

// --- Helpers ---

void DgmcSwitch::install(mc::McId mcid, McState& st,
                         const trees::Topology& topo,
                         const VectorTimestamp& stamp, graph::NodeId origin) {
  st.installed = topo;
  st.c = stamp;
  st.c_origin = origin;
  if (hooks_.on_install) hooks_.on_install(mcid, topo);
}

void DgmcSwitch::flood(McLsa lsa) {
  ++counters_.lsas_flooded;
  if (lsa.proposal.has_value()) ++counters_.proposals_flooded;
  if (lsa.event != McEventType::kNone) ++counters_.event_lsas_flooded;
  hooks_.flood(std::move(lsa));
}

void DgmcSwitch::save(Snapshot& out) const {
  out.states = states_;
  out.current = current_;
  out.current_event = current_event_;
  out.alive = alive_;
  out.counters = counters_;
}

void DgmcSwitch::restore(const Snapshot& snap) {
  states_ = snap.states;
  current_ = snap.current;
  current_event_ = snap.current_event;
  alive_ = snap.alive;
  counters_ = snap.counters;
}

mc::TopologyAlgorithm::Result DgmcSwitch::compute_topology(
    const McState& st) const {
  mc::TopologyRequest req;
  req.type = st.type;
  req.members = &st.members;
  req.previous = st.installed.empty() ? nullptr : &st.installed;
  return algorithm_.compute_with_info(hooks_.local_image(), req);
}

void DgmcSwitch::maybe_destroy(mc::McId mcid) {
  if (!config_.destroy_on_empty) return;
  McState* st = find(mcid);
  if (st == nullptr || !st->members.empty()) return;
  if (current_.has_value() && current_->mcid == mcid) return;  // defer
  // Destroy only once every event we know of has been heard (R == E,
  // the Fig 4 line 2 completeness test). Destroying earlier discards
  // member_event_applied — the reordered-flooding guard — while LSAs
  // covering that history are still in flight, so a stale join arriving
  // after the wipe would resurrect a member that already left. (Found
  // by dgmc_check: a leave that preempts an in-flight join computation
  // floods before the join does; a switch whose first LSA for the MC is
  // that leave would otherwise create state, destroy it immediately and
  // then trust the late join.) At quiescence R == E holds everywhere,
  // so a member-less MC is still reclaimed on the last delivery.
  // premature_destroy_on_empty (TEST-ONLY) skips the guard, restoring
  // the original bug for the check subsystem's regression traces.
  if (!config_.premature_destroy_on_empty && !st->r.dominates(st->e)) return;
  ++counters_.states_destroyed;
  states_.erase(mcid);
  if (hooks_.on_state_destroyed) hooks_.on_state_destroyed(mcid);
}

// --- Introspection ---

namespace {
/// Node-indexed vector: component i of the relabeled stamp is the
/// original's component at the preimage of i.
std::uint64_t mix_stamp(std::uint64_t h, const VectorTimestamp& t,
                        const graph::Permutation* p) {
  for (graph::NodeId i = 0; i < t.size(); ++i) {
    h = util::hash_mix(h, t[p == nullptr ? i : p->node_inv[i]]);
  }
  return h;
}

std::uint64_t mix_topology(std::uint64_t h, const trees::Topology& t,
                           const graph::Permutation* p) {
  if (p == nullptr) {
    for (const graph::Edge& e : t.edges()) {  // canonical: sorted, unique
      h = util::hash_mix(h, static_cast<std::uint64_t>(e.a));
      h = util::hash_mix(h, static_cast<std::uint64_t>(e.b));
    }
    return util::hash_mix(h, t.edge_count());
  }
  // Relabeling breaks the stored sort order; re-normalize and re-sort.
  std::vector<graph::Edge> edges;
  edges.reserve(t.edges().size());
  for (const graph::Edge& e : t.edges()) {
    edges.emplace_back(p->map_node(e.a), p->map_node(e.b));
  }
  std::sort(edges.begin(), edges.end());
  for (const graph::Edge& e : edges) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(e.a));
    h = util::hash_mix(h, static_cast<std::uint64_t>(e.b));
  }
  return util::hash_mix(h, t.edge_count());
}
}  // namespace

std::uint64_t DgmcSwitch::fingerprint(std::uint64_t h,
                                      const graph::Permutation* p) const {
  h = util::hash_mix(h, alive_ ? 1 : 2);
  // Ascending-mcid store order: shard-count-invariant by contract.
  states_.for_each([&](mc::McId mcid, const McState& st) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(mcid));
    h = util::hash_mix(h, static_cast<std::uint64_t>(st.type));
    if (p == nullptr) {
      for (const mc::MemberList::Entry& e : st.members.entries()) {
        h = util::hash_mix(h, static_cast<std::uint64_t>(e.node));
        h = util::hash_mix(h, static_cast<std::uint64_t>(e.role));
      }
    } else {
      std::vector<std::pair<graph::NodeId, std::uint64_t>> members;
      members.reserve(st.members.entries().size());
      for (const mc::MemberList::Entry& e : st.members.entries()) {
        members.emplace_back(p->map_node(e.node),
                             static_cast<std::uint64_t>(e.role));
      }
      std::sort(members.begin(), members.end());
      for (const auto& [node, role] : members) {
        h = util::hash_mix(h, static_cast<std::uint64_t>(node));
        h = util::hash_mix(h, role);
      }
    }
    h = mix_stamp(h, st.r, p);
    h = mix_stamp(h, st.e, p);
    h = mix_stamp(h, st.c, p);
    h = util::hash_mix(
        h, static_cast<std::uint64_t>(
               p == nullptr ? st.c_origin : p->map_node(st.c_origin)));
    h = mix_topology(h, st.installed, p);
    h = util::hash_mix(h, st.make_proposal_flag ? 1 : 2);
    for (std::size_t w = 0; w < st.member_event_applied.size(); ++w) {
      // Indexed by origin node, so it permutes like a timestamp.
      h = util::hash_mix(
          h, st.member_event_applied[p == nullptr
                                         ? w
                                         : static_cast<std::size_t>(
                                               p->node_inv[w])]);
    }
    h = mix_stamp(h, st.sync_floor, p);
  });
  if (current_.has_value()) {
    const Computation& c = *current_;
    h = util::hash_mix(h, 0xC0117u);
    h = util::hash_mix(h, static_cast<std::uint64_t>(c.mcid));
    h = util::hash_mix(h, c.event_path ? 1 : 2);
    h = util::hash_mix(h, static_cast<std::uint64_t>(c.event));
    h = util::hash_mix(h, static_cast<std::uint64_t>(c.join_role));
    h = util::hash_mix(h, static_cast<std::uint64_t>(
                              p == nullptr ? c.link : p->map_link(c.link)));
    h = mix_stamp(h, c.old_r, p);
    h = mix_topology(h, c.proposal, p);
    h = util::hash_mix(h, c.from_scratch ? 1 : 2);
    // Only the *delta* of LSA arrivals since the computation started
    // matters (the line-22 withdrawal guard); absolute counts would
    // make every state look distinct.
    const McState* st = find(c.mcid);
    const bool doomed =
        st == nullptr || st->lsa_arrivals != c.arrivals_at_start;
    h = util::hash_mix(h, doomed ? 1 : 2);
  }
  return h;
}

bool DgmcSwitch::has_state(mc::McId mcid) const {
  return find(mcid) != nullptr;
}

const trees::Topology* DgmcSwitch::installed(mc::McId mcid) const {
  const McState* st = find(mcid);
  return st == nullptr ? nullptr : &st->installed;
}

const mc::MemberList* DgmcSwitch::members(mc::McId mcid) const {
  const McState* st = find(mcid);
  return st == nullptr ? nullptr : &st->members;
}

mc::McType DgmcSwitch::mc_type(mc::McId mcid) const {
  const McState* st = find(mcid);
  DGMC_ASSERT(st != nullptr);
  return st->type;
}

graph::NodeId DgmcSwitch::proposer(mc::McId mcid) const {
  const McState* st = find(mcid);
  return st == nullptr ? graph::kInvalidNode : st->c_origin;
}

const VectorTimestamp* DgmcSwitch::stamp_r(mc::McId mcid) const {
  const McState* st = find(mcid);
  return st == nullptr ? nullptr : &st->r;
}

const VectorTimestamp* DgmcSwitch::stamp_e(mc::McId mcid) const {
  const McState* st = find(mcid);
  return st == nullptr ? nullptr : &st->e;
}

const VectorTimestamp* DgmcSwitch::stamp_c(mc::McId mcid) const {
  const McState* st = find(mcid);
  return st == nullptr ? nullptr : &st->c;
}

bool DgmcSwitch::proposal_flag(mc::McId mcid) const {
  const McState* st = find(mcid);
  return st != nullptr && st->make_proposal_flag;
}

std::vector<graph::LinkId> DgmcSwitch::routing_entries(
    mc::McId mcid, const graph::Graph& image) const {
  std::vector<graph::LinkId> out;
  const McState* st = find(mcid);
  if (st == nullptr) return out;
  for (graph::LinkId id : image.links_of(self_)) {
    const graph::Link& l = image.link(id);
    if (st->installed.contains(graph::Edge(l.u, l.v))) out.push_back(id);
  }
  return out;
}

}  // namespace dgmc::core
