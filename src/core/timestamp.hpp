// Vector timestamps (paper §3: "A timestamp T is an n-tuple of natural
// numbers, where n is the number of switches in the network. The x-th
// component of T specifies how many events have been heard from switch
// x.").
//
// Comparison is componentwise, i.e. a *partial* order:
//   A >= B  iff  A[i] >= B[i] for all i       (dominates)
//   A >  B  iff  A >= B and A != B            (strictly_dominates)
// Incomparable pairs are exactly the concurrent-event conflicts the
// protocol must reconcile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dgmc::core {

class VectorTimestamp {
 public:
  VectorTimestamp() = default;

  /// All-zero timestamp of the given dimension (network size).
  explicit VectorTimestamp(int network_size)
      : counts_(static_cast<std::size_t>(network_size), 0) {}

  /// Builds a timestamp from raw per-switch event counts (codec use).
  static VectorTimestamp from_counts(std::vector<std::uint32_t> counts) {
    VectorTimestamp t;
    t.counts_ = std::move(counts);
    return t;
  }

  int size() const { return static_cast<int>(counts_.size()); }

  std::uint32_t operator[](graph::NodeId i) const {
    DGMC_ASSERT(i >= 0 && i < size());
    return counts_[i];
  }

  /// Records one more event heard from switch i.
  void increment(graph::NodeId i) {
    DGMC_ASSERT(i >= 0 && i < size());
    ++counts_[i];
  }

  /// Raises component i to at least `value` (partition resync merge).
  void raise_to(graph::NodeId i, std::uint32_t value) {
    DGMC_ASSERT(i >= 0 && i < size());
    if (value > counts_[i]) counts_[i] = value;
  }

  /// Componentwise maximum with `other` (paper ReceiveLSA line 10:
  /// "For every element E[i], set E[i] = max(E[i], T[i])").
  void merge_max(const VectorTimestamp& other);

  /// this >= other componentwise.
  bool dominates(const VectorTimestamp& other) const;

  /// this >= other and this != other.
  bool strictly_dominates(const VectorTimestamp& other) const;

  /// Sum of all components (total events reflected).
  std::uint64_t total() const;

  friend bool operator==(const VectorTimestamp&,
                         const VectorTimestamp&) = default;

  std::string to_string() const;

 private:
  std::vector<std::uint32_t> counts_;
};

}  // namespace dgmc::core
