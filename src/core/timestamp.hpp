// Vector timestamps (paper §3: "A timestamp T is an n-tuple of natural
// numbers, where n is the number of switches in the network. The x-th
// component of T specifies how many events have been heard from switch
// x.").
//
// Comparison is componentwise, i.e. a *partial* order:
//   A >= B  iff  A[i] >= B[i] for all i       (dominates)
//   A >  B  iff  A >= B and A != B            (strictly_dominates)
// Incomparable pairs are exactly the concurrent-event conflicts the
// protocol must reconcile.
//
// Storage: small-buffer optimized. Every LSA carries a timestamp and
// every switch keeps three per MC (R, E, C), so for the small networks
// the explorer grinds through (3–6 switches), timestamp copies used to
// dominate allocation counts. Dimensions up to kInlineCapacity live
// inside the object; larger networks fall back to one heap block. The
// dimension is fixed at construction (the network size never changes
// mid-run), which keeps the invariant simple: inline vs heap is decided
// once and never revisited.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dgmc::core {

class VectorTimestamp {
 public:
  /// Components stored inline. Covers every simulated network the check
  /// and bench catalogs use (<= 8 switches) without heap traffic.
  static constexpr int kInlineCapacity = 8;

  VectorTimestamp() = default;

  /// All-zero timestamp of the given dimension (network size).
  explicit VectorTimestamp(int network_size) { init_zero(network_size); }

  VectorTimestamp(const VectorTimestamp& other) { copy_from(other); }

  VectorTimestamp(VectorTimestamp&& other) noexcept
      : size_(other.size_), heap_(std::move(other.heap_)) {
    if (is_inline()) {
      std::memcpy(inline_, other.inline_, sizeof(std::uint32_t) * size_);
    }
    other.size_ = 0;
  }

  VectorTimestamp& operator=(const VectorTimestamp& other) {
    if (this != &other) {
      heap_.reset();
      copy_from(other);
    }
    return *this;
  }

  VectorTimestamp& operator=(VectorTimestamp&& other) noexcept {
    if (this != &other) {
      size_ = other.size_;
      heap_ = std::move(other.heap_);
      if (is_inline()) {
        std::memcpy(inline_, other.inline_, sizeof(std::uint32_t) * size_);
      }
      other.size_ = 0;
    }
    return *this;
  }

  /// Builds a timestamp from raw per-switch event counts (codec use).
  static VectorTimestamp from_counts(const std::uint32_t* counts,
                                     std::size_t n) {
    VectorTimestamp t;
    t.init_zero(static_cast<int>(n));
    std::memcpy(t.data(), counts, sizeof(std::uint32_t) * n);
    return t;
  }

  static VectorTimestamp from_counts(const std::vector<std::uint32_t>& counts) {
    return from_counts(counts.data(), counts.size());
  }

  int size() const { return size_; }

  std::uint32_t operator[](graph::NodeId i) const {
    DGMC_ASSERT(i >= 0 && i < size());
    return data()[i];
  }

  /// Sets component i outright (codec decode path — fills a
  /// default-zero timestamp in place instead of staging the counts in
  /// a temporary heap vector).
  void set(graph::NodeId i, std::uint32_t value) {
    DGMC_ASSERT(i >= 0 && i < size());
    data()[i] = value;
  }

  /// Records one more event heard from switch i.
  void increment(graph::NodeId i) {
    DGMC_ASSERT(i >= 0 && i < size());
    ++data()[i];
  }

  /// Raises component i to at least `value` (partition resync merge).
  void raise_to(graph::NodeId i, std::uint32_t value) {
    DGMC_ASSERT(i >= 0 && i < size());
    std::uint32_t* d = data();
    if (value > d[i]) d[i] = value;
  }

  /// Componentwise maximum with `other` (paper ReceiveLSA line 10:
  /// "For every element E[i], set E[i] = max(E[i], T[i])").
  void merge_max(const VectorTimestamp& other);

  /// this >= other componentwise.
  bool dominates(const VectorTimestamp& other) const;

  /// this >= other and this != other.
  bool strictly_dominates(const VectorTimestamp& other) const;

  /// Sum of all components (total events reflected).
  std::uint64_t total() const;

  friend bool operator==(const VectorTimestamp& a, const VectorTimestamp& b) {
    if (a.size_ != b.size_) return false;
    return std::memcmp(a.data(), b.data(),
                       sizeof(std::uint32_t) * a.size_) == 0;
  }

  std::string to_string() const;

  /// True when the components live in the inline buffer (test hook for
  /// the SBO boundary).
  bool is_inline() const { return size_ <= kInlineCapacity; }

 private:
  void init_zero(int n) {
    DGMC_ASSERT(n >= 0);
    size_ = n;
    if (is_inline()) {
      std::memset(inline_, 0, sizeof(std::uint32_t) * size_);
    } else {
      heap_ = std::make_unique<std::uint32_t[]>(static_cast<std::size_t>(n));
      std::memset(heap_.get(), 0, sizeof(std::uint32_t) * size_);
    }
  }

  void copy_from(const VectorTimestamp& other) {
    size_ = other.size_;
    if (is_inline()) {
      std::memcpy(inline_, other.inline_, sizeof(std::uint32_t) * size_);
    } else {
      heap_ = std::make_unique<std::uint32_t[]>(
          static_cast<std::size_t>(size_));
      std::memcpy(heap_.get(), other.heap_.get(),
                  sizeof(std::uint32_t) * size_);
    }
  }

  std::uint32_t* data() { return is_inline() ? inline_ : heap_.get(); }
  const std::uint32_t* data() const {
    return is_inline() ? inline_ : heap_.get();
  }

  int size_ = 0;
  std::uint32_t inline_[kInlineCapacity];
  std::unique_ptr<std::uint32_t[]> heap_;
};

}  // namespace dgmc::core
