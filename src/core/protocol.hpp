// DgmcSwitch: the D-GMC protocol entity running at one network switch
// (paper §3.3, Figures 4 and 5).
//
// The paper defines two concurrently running entities per switch that
// share state through atomic accesses:
//   EventHandler() — invoked when a local event (member join/leave at
//     an attached host, or a link/nodal change) occurs; floods an event
//     LSA and possibly computes a topology proposal.
//   ReceiveLSA()   — invoked when MC LSAs are present in the mailbox;
//     ingests them, detects inconsistencies, and possibly computes and
//     floods a *triggered* proposal.
//
// Simulation model (documented deviations from the two-thread fiction,
// chosen to be equivalent under the paper's atomicity assumption):
//   * LSA bookkeeping (paper ReceiveLSA lines 4-17) executes instantly
//     at LSA arrival time — per-LSA processing cost is negligible next
//     to topology computations, as in the paper's experiments.
//   * Topology computations occupy the switch's single CPU for Tc
//     simulated seconds; at most one runs per switch at a time. The
//     paper's revalidation guards map directly:
//       - EventHandler line 6 "IF (old_R = R)": R advanced during the
//         computation window => flood the event without the proposal.
//       - ReceiveLSA line 22 "no LSAs in mailbox AND old_R = R": any MC
//         LSA arrival for this MC during the window withdraws the
//         triggered proposal.
//   * If the CPU is busy when an event occurs, the event LSA is flooded
//     immediately without a proposal and make_proposal_flag is set —
//     the same "defer to ReceiveLSA" path the paper takes when LSAs are
//     outstanding (lines 15-17); the trigger gate re-runs when the CPU
//     frees.
//
// One deliberate extension: the paper leaves unresolved the race where
// two switches flood proposals with *equal* timestamps (possible when
// both detect the same inconsistency and both pass R >= E). Both pass
// the acceptance test T >= E, so switches could install different
// topologies in different orders and never reconcile. We break the tie
// deterministically by proposer id: an equal-stamp proposal replaces
// the installed one only if its proposer id is lower. See
// DESIGN.md "Key design decisions".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/mc_lsa.hpp"
#include "core/sync.hpp"
#include "rt/executor.hpp"
#include "mc/algorithm.hpp"
#include "mc/member_list.hpp"
#include "mc/shard_store.hpp"

namespace dgmc::graph {
struct Permutation;
}

namespace dgmc::core {

struct DgmcConfig {
  /// Tc: time one from-scratch topology computation occupies the
  /// switch CPU.
  rt::Time computation_time = 25 * rt::kMillisecond;
  /// Time an *incremental* update occupies the CPU (§3.5's motivation:
  /// attaching/pruning a branch is far cheaper than a Steiner
  /// computation). Negative (the default) means "same as
  /// computation_time", preserving the paper's single-Tc model.
  rt::Time incremental_computation_time = -1.0;
  /// Delete per-MC state when the member list empties (paper §3.4).
  /// Disable to keep tombstones (useful for post-run inspection).
  bool destroy_on_empty = true;
  /// Extension: flood McSync summaries when a link is restored so that
  /// healed partitions reconcile (see core/sync.hpp). Off by default —
  /// the base paper protocol has no such mechanism.
  bool partition_resync = false;
  /// Accept an equal-stamp proposal only from a proposer with an id no
  /// higher than the installed one's (the deterministic tie-break this
  /// implementation adds; see the class comment). Disabling reverts to
  /// the paper's literal rule — any proposal with T >= E replaces the
  /// installed topology — which can leave switches permanently
  /// disagreeing when equal-stamp proposals cross (the ablation
  /// bench/ablation_tiebreak quantifies how often).
  bool equal_stamp_tie_break = true;
  /// TEST-ONLY fault injection: relaxes ReceiveLSA's acceptance guards
  /// (Fig 5 line 11's T >= E test and the freshness check against C) so
  /// that *any* received proposal is installed. This is the
  /// deliberately broken build the check subsystem's self-test uses:
  /// systematic exploration must find an interleaving where a stale
  /// proposal overwrites a fresher installed topology and flag it via
  /// the install-monotone/stamp-containment oracles. Never enable
  /// outside of that test.
  bool accept_stale_proposals = false;
  /// TEST-ONLY fault injection: re-introduces the first protocol bug
  /// dgmc_check found (see maybe_destroy): destroy per-MC state as soon
  /// as the member list empties, without requiring R >= E. A leave that
  /// overtakes an in-flight join flooding then wipes the reordering
  /// guards and the late join resurrects a departed member. Never
  /// enable outside the check subsystem's regression tests.
  bool premature_destroy_on_empty = false;
  /// TEST-ONLY fault injection: re-introduces the second protocol bug
  /// dgmc_check found: McSync advertises raw R[y] instead of only
  /// provably complete (R[y] == E[y]) prefixes, and ReceiveLSA skips
  /// the sync_floor double-count guard. An McSync racing in-flight
  /// event LSAs then counts the same event twice, pushing R past E.
  /// Never enable outside the check subsystem's regression tests.
  bool unguarded_sync = false;
  /// Shard count for the per-MC state store (mc::ShardStore). Behavior
  /// is bit-identical at any value (DESIGN.md §13's determinism
  /// contract); more shards buy per-shard arenas sized for many-MC
  /// workloads and give a parallel driver independent units of work.
  /// 1 (the default) keeps the single-arena layout.
  int mc_shards = 1;
};

/// Per-switch, per-MC protocol counters (the paper's metrics inputs).
struct DgmcCounters {
  std::uint64_t computations_started = 0;
  std::uint64_t computations_withdrawn = 0;
  std::uint64_t proposals_flooded = 0;    // LSAs carrying P != NULL
  std::uint64_t event_lsas_flooded = 0;   // LSAs with V != none
  std::uint64_t lsas_flooded = 0;         // all MC LSAs originated
  std::uint64_t lsas_received = 0;
  std::uint64_t proposals_accepted = 0;
  std::uint64_t proposals_ignored = 0;    // stale (T >= E failed)
  std::uint64_t inconsistencies_detected = 0;  // R[x] > T[x]
  std::uint64_t crashes = 0;              // volatile-state wipes
  std::uint64_t states_destroyed = 0;     // per-MC wipes (empty or crash)
};

class DgmcSwitch {
 public:
  struct Hooks {
    /// Originates a flooding of the LSA (required). Takes the LSA by
    /// value: the switch hands over its freshly built LSA (timestamps
    /// included) so the transport can move it into the wire message
    /// instead of copying.
    std::function<void(McLsa)> flood;
    /// The switch's current local image of the network (required);
    /// called at computation start.
    std::function<const graph::Graph&()> local_image;
    /// Observer: a topology was installed for the MC (optional).
    std::function<void(mc::McId, const trees::Topology&)> on_install;
    /// Observer: a topology computation started (optional).
    std::function<void(mc::McId)> on_computation;
    /// Observer: per-MC state was created here — by a local join or by
    /// the first LSA/sync heard for the MC (optional). Lets a driver
    /// maintain an mcid -> holders index instead of scanning switches.
    std::function<void(mc::McId)> on_state_created;
    /// Observer: per-MC state was destroyed here — destroy-on-empty or
    /// a crash wipe (optional). Mirror of on_state_created.
    std::function<void(mc::McId)> on_state_destroyed;
  };

  DgmcSwitch(graph::NodeId self, int network_size, rt::Executor& exec,
             const mc::TopologyAlgorithm& algorithm, DgmcConfig config,
             Hooks hooks);

  DgmcSwitch(const DgmcSwitch&) = delete;
  DgmcSwitch& operator=(const DgmcSwitch&) = delete;

  // --- Local events (paper EventHandler, Figure 4) ---

  /// An attached host joined the MC; `type` is used when this switch
  /// creates the MC (first member), and must match for existing MCs.
  void local_join(mc::McId mcid, mc::McType type,
                  mc::MemberRole role = mc::MemberRole::kBoth);

  /// An attached host left the MC; no-op if this switch is not a member.
  void local_leave(mc::McId mcid);

  /// A link status change was detected locally (after the local image
  /// has been updated). Runs EventHandler for every MC whose installed
  /// topology uses the link, and returns how many MCs were affected —
  /// the paper's "k MC LSAs per link event".
  int local_link_event(graph::LinkId link);

  // --- LSA reception (paper ReceiveLSA, Figure 5) ---

  void receive(const McLsa& lsa);

  // --- Crash / recovery (robustness extension) ---

  /// Models a switch failure: every per-MC state (member lists,
  /// timestamps, installed topologies) is volatile and wiped, and any
  /// in-flight topology computation is torn down (its completion event
  /// is cancelled). While crashed, every protocol entry point is a
  /// no-op. Counters survive — they are the experimenter's, not the
  /// switch's.
  void crash();

  /// Brings a crashed switch back with empty volatile state. Recovery
  /// of MC state rides on neighbor-triggered McSync floods (the
  /// partition-resync path): apply_sync treats a peer that reports
  /// more of *our own* history than we hold as authoritative, which
  /// restores the event counter R[self] (and our pre-crash
  /// memberships) from the network's memory, so post-restart events
  /// get indices peers will not discard as stale.
  void restart();

  bool alive() const { return alive_; }

  // --- Partition resynchronization (extension, see core/sync.hpp) ---

  /// Connections this switch holds state for, ascending.
  std::vector<mc::McId> known_mcs() const;

  /// Summarizes this switch's view of `mcid` for flooding after a link
  /// restoration. Asserts the MC is known here.
  McSync export_sync(mc::McId mcid) const;

  /// Merges a flooded sync: adopts the authoritative (higher event
  /// count) view per origin, then lets the normal proposal machinery
  /// reconcile the topology. No-op for the sync's own originator.
  void apply_sync(const McSync& sync);

  // --- Introspection ---

  graph::NodeId self() const { return self_; }
  bool has_state(mc::McId mcid) const;
  /// Installed topology; nullptr if the MC is unknown here.
  const trees::Topology* installed(mc::McId mcid) const;
  const mc::MemberList* members(mc::McId mcid) const;
  /// The MC's type; asserts the MC is known here.
  mc::McType mc_type(mc::McId mcid) const;
  /// Proposer of the installed topology (C's origin); kInvalidNode if
  /// the MC is unknown here or nothing was ever installed.
  graph::NodeId proposer(mc::McId mcid) const;
  const VectorTimestamp* stamp_r(mc::McId mcid) const;
  const VectorTimestamp* stamp_e(mc::McId mcid) const;
  const VectorTimestamp* stamp_c(mc::McId mcid) const;
  bool proposal_flag(mc::McId mcid) const;
  /// The switch's multicast routing entries for an MC: its incident
  /// links that belong to the installed topology ("update routing
  /// entries for incident links in m according to P", Figs 4/5).
  /// `image` must be the switch's local image. Empty if the MC is
  /// unknown or the switch is not on the tree.
  std::vector<graph::LinkId> routing_entries(mc::McId mcid,
                                             const graph::Graph& image) const;
  bool computing() const { return current_.has_value(); }
  const DgmcCounters& counters() const { return counters_; }

  /// Folds every behavior-relevant bit of the switch's protocol state —
  /// aliveness, per-MC member lists, R/E/C, installed topology and
  /// proposer, proposal flag, membership watermarks, and the in-flight
  /// computation (content plus whether an LSA arrival has already
  /// doomed it) — into `h`. Two switches with equal fingerprints react
  /// identically to every future input, which is what lets the check
  /// subsystem's explorer deduplicate states reached by different
  /// interleavings. Counters and absolute lsa_arrivals are excluded:
  /// only the arrival *delta* since computation start affects behavior.
  ///
  /// `relabel`, when non-null, hashes the state as if every switch id
  /// had been renamed through the permutation: node-valued fields map
  /// through it, node-indexed vectors (timestamps, membership
  /// watermarks) permute, member lists and topology edges re-sort under
  /// the new ids, link-valued fields map through the induced link
  /// permutation. Used by the check subsystem's symmetry reduction:
  /// fingerprint(h, π) equals what fingerprint(h) would return on the
  /// actually-relabeled network. Null preserves the historical hash
  /// bit-for-bit.
  std::uint64_t fingerprint(std::uint64_t h,
                            const graph::Permutation* relabel = nullptr) const;

 private:
  struct McState {
    mc::McType type = mc::McType::kSymmetric;
    mc::MemberList members;
    VectorTimestamp r, e, c;
    graph::NodeId c_origin = graph::kInvalidNode;  // proposer of installed
    trees::Topology installed;
    bool make_proposal_flag = false;
    std::uint64_t lsa_arrivals = 0;  // guard for triggered computations
    // Highest per-origin event index whose membership change has been
    // applied. Guards against reordered join/leave LSAs from the same
    // origin (possible when the topology changes between two floodings)
    // corrupting the member list: a membership change applies only if
    // its event index exceeds this watermark.
    std::vector<std::uint32_t> member_event_applied;
    // Per-origin event prefix already accounted into R by an McSync
    // summary (local bookkeeping, never on the wire). An event LSA
    // whose index is <= this floor is already counted; incrementing R
    // for it again would double-count (see ReceiveLSA).
    VectorTimestamp sync_floor;
  };

  /// One in-flight topology computation (at most one per switch).
  struct Computation {
    mc::McId mcid;
    bool event_path;          // EventHandler (true) vs triggered (false)
    McEventType event = McEventType::kNone;  // event_path only
    mc::MemberRole join_role = mc::MemberRole::kBoth;
    graph::LinkId link = graph::kInvalidLink;
    VectorTimestamp old_r;
    std::uint64_t arrivals_at_start = 0;
    trees::Topology proposal;  // computed from the snapshot at start
    bool from_scratch = true;  // selects the modeled duration
  };

  McState& get_or_create(mc::McId mcid, mc::McType type);
  McState* find(mc::McId mcid);
  const McState* find(mc::McId mcid) const;

  /// Paper Figure 4. `ev` describes the local event already applied to
  /// the member list / local image.
  void event_handler(mc::McId mcid, McState& st, McEventType ev,
                     mc::MemberRole join_role, graph::LinkId link);

  /// Paper Figure 5 lines 19-31: decide whether to compute a triggered
  /// proposal.
  void evaluate_trigger_gate(mc::McId mcid);
  void evaluate_all_trigger_gates();

  void start_computation(Computation c);
  void finish_computation();

  void install(mc::McId mcid, McState& st, const trees::Topology& topo,
               const VectorTimestamp& stamp, graph::NodeId origin);
  void flood(McLsa lsa);
  mc::TopologyAlgorithm::Result compute_topology(const McState& st) const;
  rt::Time computation_duration(bool from_scratch) const;
  void maybe_destroy(mc::McId mcid);

  graph::NodeId self_;
  int network_size_;
  rt::Executor& exec_;
  const mc::TopologyAlgorithm& algorithm_;
  DgmcConfig config_;
  Hooks hooks_;
  /// MC-id-sharded per-MC state. Iteration (fingerprint, link events,
  /// trigger gates) is ascending-mcid regardless of shard count — the
  /// store's merge order reproduces the std::map order this field had
  /// before sharding, keeping fingerprints bit-identical.
  mc::ShardStore<McState> states_;
  std::optional<Computation> current_;
  rt::TimerId current_event_;  // completion event of current_
  bool alive_ = true;
  DgmcCounters counters_;

 public:
  // --- Checkpoint interface (declared after the state types it deep-
  // copies; see check/checkpoint.hpp for the surrounding machinery) ---

  /// Deep copy of every mutable protocol field. The in-flight
  /// computation's completion EventId is snapshotted verbatim: it stays
  /// meaningful because a switch snapshot is only ever restored
  /// together with the owning scheduler's calendar snapshot, which
  /// restores the matching pending event (and the id counter).
  /// Opaque to callers — the state types are private by design.
  struct Snapshot {
    mc::ShardStore<McState> states;  // deep copy of the shard arenas
    std::optional<Computation> current;
    rt::TimerId current_event;
    bool alive = true;
    DgmcCounters counters;
  };

  /// Copies the switch's state into `out`, reusing its capacity where
  /// the containers allow.
  void save(Snapshot& out) const;

  /// Restores state previously saved from this switch.
  void restore(const Snapshot& snap);
};

}  // namespace dgmc::core
