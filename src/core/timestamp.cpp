#include "core/timestamp.hpp"

namespace dgmc::core {

void VectorTimestamp::merge_max(const VectorTimestamp& other) {
  DGMC_ASSERT(size() == other.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (other.counts_[i] > counts_[i]) counts_[i] = other.counts_[i];
  }
}

bool VectorTimestamp::dominates(const VectorTimestamp& other) const {
  DGMC_ASSERT(size() == other.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] < other.counts_[i]) return false;
  }
  return true;
}

bool VectorTimestamp::strictly_dominates(const VectorTimestamp& other) const {
  return dominates(other) && !(*this == other);
}

std::uint64_t VectorTimestamp::total() const {
  std::uint64_t sum = 0;
  for (std::uint32_t c : counts_) sum += c;
  return sum;
}

std::string VectorTimestamp::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(counts_[i]);
  }
  out += ")";
  return out;
}

}  // namespace dgmc::core
