#include "core/timestamp.hpp"

namespace dgmc::core {

void VectorTimestamp::merge_max(const VectorTimestamp& other) {
  DGMC_ASSERT(size() == other.size());
  std::uint32_t* mine = data();
  const std::uint32_t* theirs = other.data();
  for (int i = 0; i < size_; ++i) {
    if (theirs[i] > mine[i]) mine[i] = theirs[i];
  }
}

bool VectorTimestamp::dominates(const VectorTimestamp& other) const {
  DGMC_ASSERT(size() == other.size());
  const std::uint32_t* mine = data();
  const std::uint32_t* theirs = other.data();
  for (int i = 0; i < size_; ++i) {
    if (mine[i] < theirs[i]) return false;
  }
  return true;
}

bool VectorTimestamp::strictly_dominates(const VectorTimestamp& other) const {
  return dominates(other) && !(*this == other);
}

std::uint64_t VectorTimestamp::total() const {
  std::uint64_t sum = 0;
  const std::uint32_t* d = data();
  for (int i = 0; i < size_; ++i) sum += d[i];
  return sum;
}

std::string VectorTimestamp::to_string() const {
  std::string out = "(";
  const std::uint32_t* d = data();
  for (int i = 0; i < size_; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(d[i]);
  }
  out += ")";
  return out;
}

}  // namespace dgmc::core
