#include "core/codec.hpp"

#include "util/assert.hpp"

namespace dgmc::core {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

/// Bounds-checked sequential reader.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return ok_ ? bytes_.size() - pos_ : 0; }
  std::size_t pos() const { return pos_; }

  bool skip(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::uint8_t u8() {
    if (pos_ + 1 > bytes_.size()) return fail<std::uint8_t>();
    return bytes_[pos_++];
  }

  std::uint32_t u32() {
    if (pos_ + 4 > bytes_.size()) return fail<std::uint32_t>();
    std::uint32_t v = bytes_[pos_] | (bytes_[pos_ + 1] << 8) |
                      (bytes_[pos_ + 2] << 16) |
                      (static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

 private:
  template <typename T>
  T fail() {
    ok_ = false;
    return T{};
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void put_stamp(std::vector<std::uint8_t>& out, const VectorTimestamp& t) {
  put_u32(out, static_cast<std::uint32_t>(t.size()));
  for (int i = 0; i < t.size(); ++i) put_u32(out, t[i]);
}

std::optional<VectorTimestamp> read_stamp(Reader& r) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > 1u << 20) return std::nullopt;  // sanity cap
  // Each entry takes 4 bytes: a count the buffer cannot possibly hold
  // is rejected *before* allocating the timestamp, so a forged length
  // field cannot amplify a small datagram into a large allocation.
  if (n > r.remaining() / 4) return std::nullopt;
  // Filled in place: no staging vector, and for n <= kInlineCapacity
  // (every simulated network) no allocation at all.
  VectorTimestamp stamp(static_cast<int>(n));
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t v = r.u32();
    if (!r.ok()) return std::nullopt;
    stamp.set(static_cast<graph::NodeId>(i), v);
  }
  return stamp;
}

/// Appends the kMcLsa frame without clearing (shared by the single
/// encoding and the batch frame's sub-encodings).
void append_mc_lsa(const McLsa& lsa, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(WireType::kMcLsa));
  put_i32(out, lsa.source);
  put_u8(out, static_cast<std::uint8_t>(lsa.event));
  put_i32(out, lsa.mc);
  put_u8(out, static_cast<std::uint8_t>(lsa.mc_type));
  put_u8(out, static_cast<std::uint8_t>(lsa.join_role));
  put_i32(out, lsa.link);
  put_stamp(out, lsa.stamp);
  put_u8(out, lsa.proposal.has_value() ? 1 : 0);
  if (lsa.proposal.has_value()) {
    put_u32(out, static_cast<std::uint32_t>(lsa.proposal->edge_count()));
    for (const graph::Edge& e : lsa.proposal->edges()) {
      put_i32(out, e.a);
      put_i32(out, e.b);
    }
  }
}

}  // namespace

std::vector<std::uint8_t> encode(const McLsa& lsa) {
  std::vector<std::uint8_t> out;
  encode_into(lsa, out);
  return out;
}

std::vector<std::uint8_t> encode(const lsr::LinkEventAd& ad) {
  std::vector<std::uint8_t> out;
  encode_into(ad, out);
  return out;
}

std::vector<std::uint8_t> encode(const McSync& sync) {
  std::vector<std::uint8_t> out;
  encode_into(sync, out);
  return out;
}

std::vector<std::uint8_t> encode(const McLsaBatch& batch) {
  std::vector<std::uint8_t> out;
  encode_into(batch, out);
  return out;
}

void encode_into(const McLsa& lsa, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(encoded_size(lsa));
  append_mc_lsa(lsa, out);
}

void encode_into(const lsr::LinkEventAd& ad, std::vector<std::uint8_t>& out) {
  out.clear();
  put_u8(out, static_cast<std::uint8_t>(WireType::kLinkEvent));
  put_i32(out, ad.link);
  put_u8(out, ad.up ? 1 : 0);
}

void encode_into(const McSync& sync, std::vector<std::uint8_t>& out) {
  out.clear();
  put_u8(out, static_cast<std::uint8_t>(WireType::kMcSync));
  put_i32(out, sync.source);
  put_i32(out, sync.mc);
  put_u8(out, static_cast<std::uint8_t>(sync.mc_type));
  put_u32(out, static_cast<std::uint32_t>(sync.entries.size()));
  for (const McSyncEntry& e : sync.entries) {
    put_i32(out, e.node);
    put_u32(out, e.events_heard);
    put_u32(out, e.member_event_index);
    put_u8(out, e.is_member ? 1 : 0);
    put_u8(out, static_cast<std::uint8_t>(e.role));
  }
  put_stamp(out, sync.c);
  put_i32(out, sync.c_origin);
  put_u32(out, static_cast<std::uint32_t>(sync.installed.edge_count()));
  for (const graph::Edge& e : sync.installed.edges()) {
    put_i32(out, e.a);
    put_i32(out, e.b);
  }
}

void encode_into(const McLsaBatch& batch, std::vector<std::uint8_t>& out) {
  DGMC_ASSERT(!batch.lsas.empty());
  if (batch.lsas.size() == 1) {
    // Degenerate form: byte-identical to the single-LSA frame.
    encode_into(batch.lsas.front(), out);
    return;
  }
  out.clear();
  out.reserve(encoded_size(batch));
  put_u8(out, static_cast<std::uint8_t>(WireType::kMcLsaBatch));
  put_u8(out, kMcLsaBatchVersion);
  put_u32(out, static_cast<std::uint32_t>(batch.lsas.size()));
  for (const McLsa& lsa : batch.lsas) {
    put_u32(out, static_cast<std::uint32_t>(encoded_size(lsa)));
    const std::size_t start = out.size();
    append_mc_lsa(lsa, out);
    DGMC_ASSERT(out.size() - start == encoded_size(lsa));
  }
}

std::optional<WireType> peek_type(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return std::nullopt;
  switch (bytes[0]) {
    case static_cast<std::uint8_t>(WireType::kMcLsa):
      return WireType::kMcLsa;
    case static_cast<std::uint8_t>(WireType::kLinkEvent):
      return WireType::kLinkEvent;
    case static_cast<std::uint8_t>(WireType::kMcSync):
      return WireType::kMcSync;
    case static_cast<std::uint8_t>(WireType::kMcLsaBatch):
      return WireType::kMcLsaBatch;
    default:
      return std::nullopt;
  }
}

std::optional<McLsa> decode_mc_lsa(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() > kMaxEncoded) return std::nullopt;
  if (peek_type(bytes) != WireType::kMcLsa) return std::nullopt;
  Reader r(bytes);
  (void)r.u8();  // type byte

  McLsa lsa;
  lsa.source = r.i32();
  const std::uint8_t event = r.u8();
  lsa.mc = r.i32();
  const std::uint8_t mc_type = r.u8();
  const std::uint8_t role = r.u8();
  lsa.link = r.i32();
  if (!r.ok()) return std::nullopt;

  if (lsa.source < 0 || lsa.mc < 0) return std::nullopt;
  if (event > static_cast<std::uint8_t>(McEventType::kLink)) {
    return std::nullopt;
  }
  lsa.event = static_cast<McEventType>(event);
  if (mc_type > static_cast<std::uint8_t>(mc::McType::kAsymmetric)) {
    return std::nullopt;
  }
  lsa.mc_type = static_cast<mc::McType>(mc_type);
  if (role == 0 || role > static_cast<std::uint8_t>(mc::MemberRole::kBoth)) {
    return std::nullopt;
  }
  lsa.join_role = static_cast<mc::MemberRole>(role);

  std::optional<VectorTimestamp> stamp = read_stamp(r);
  if (!stamp.has_value() || lsa.source >= stamp->size()) {
    return std::nullopt;
  }
  lsa.stamp = std::move(*stamp);

  const std::uint8_t has_proposal = r.u8();
  if (!r.ok() || has_proposal > 1) return std::nullopt;
  if (has_proposal == 1) {
    const std::uint32_t edges = r.u32();
    if (!r.ok() || edges > 1u << 20) return std::nullopt;
    if (edges > r.remaining() / 8) return std::nullopt;  // 8 bytes/edge
    std::vector<graph::Edge> es;
    es.reserve(edges);
    for (std::uint32_t i = 0; i < edges; ++i) {
      const graph::NodeId a = r.i32();
      const graph::NodeId b = r.i32();
      if (!r.ok() || a < 0 || b < 0 || a == b) return std::nullopt;
      es.emplace_back(a, b);
    }
    lsa.proposal = trees::Topology(std::move(es));
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;  // trailing junk
  return lsa;
}

std::optional<lsr::LinkEventAd> decode_link_event(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() > kMaxEncoded) return std::nullopt;
  if (peek_type(bytes) != WireType::kLinkEvent) return std::nullopt;
  Reader r(bytes);
  (void)r.u8();
  lsr::LinkEventAd ad;
  ad.link = r.i32();
  const std::uint8_t up = r.u8();
  if (!r.ok() || !r.exhausted() || ad.link < 0 || up > 1) {
    return std::nullopt;
  }
  ad.up = up == 1;
  return ad;
}

std::optional<McSync> decode_mc_sync(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() > kMaxEncoded) return std::nullopt;
  if (peek_type(bytes) != WireType::kMcSync) return std::nullopt;
  Reader r(bytes);
  (void)r.u8();
  McSync sync;
  sync.source = r.i32();
  sync.mc = r.i32();
  const std::uint8_t mc_type = r.u8();
  const std::uint32_t count = r.u32();
  if (!r.ok() || sync.source < 0 || sync.mc < 0 ||
      mc_type > static_cast<std::uint8_t>(mc::McType::kAsymmetric) ||
      count > 1u << 20) {
    return std::nullopt;
  }
  sync.mc_type = static_cast<mc::McType>(mc_type);
  // 14 bytes per entry; see the read_stamp comment on why the count is
  // checked against the buffer before reserving.
  if (count > r.remaining() / 14) return std::nullopt;
  sync.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    McSyncEntry e;
    e.node = r.i32();
    e.events_heard = r.u32();
    e.member_event_index = r.u32();
    const std::uint8_t member = r.u8();
    const std::uint8_t role = r.u8();
    if (!r.ok() || e.node < 0 || member > 1 ||
        role > static_cast<std::uint8_t>(mc::MemberRole::kBoth)) {
      return std::nullopt;
    }
    e.is_member = member == 1;
    e.role = static_cast<mc::MemberRole>(role);
    // A member entry must carry a usable role.
    if (e.is_member && role == 0) return std::nullopt;
    sync.entries.push_back(e);
  }
  std::optional<VectorTimestamp> c = read_stamp(r);
  if (!c.has_value()) return std::nullopt;
  sync.c = std::move(*c);
  sync.c_origin = r.i32();
  const std::uint32_t edges = r.u32();
  if (!r.ok() || sync.c_origin < graph::kInvalidNode || edges > 1u << 20) {
    return std::nullopt;
  }
  if (edges > r.remaining() / 8) return std::nullopt;  // 8 bytes/edge
  std::vector<graph::Edge> es;
  es.reserve(edges);
  for (std::uint32_t i = 0; i < edges; ++i) {
    const graph::NodeId a = r.i32();
    const graph::NodeId b = r.i32();
    if (!r.ok() || a < 0 || b < 0 || a == b) return std::nullopt;
    es.emplace_back(a, b);
  }
  sync.installed = trees::Topology(std::move(es));
  if (!r.exhausted()) return std::nullopt;
  return sync;
}

std::optional<McLsaBatch> decode_mc_lsa_batch(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() > kMaxEncoded) return std::nullopt;
  const std::optional<WireType> type = peek_type(bytes);
  if (type == WireType::kMcLsa) {
    // Degenerate form: a single-LSA frame is a batch of one.
    std::optional<McLsa> lsa = decode_mc_lsa(bytes);
    if (!lsa.has_value()) return std::nullopt;
    McLsaBatch batch;
    batch.lsas.push_back(std::move(*lsa));
    return batch;
  }
  if (type != WireType::kMcLsaBatch) return std::nullopt;
  Reader r(bytes);
  (void)r.u8();  // type byte
  const std::uint8_t version = r.u8();
  const std::uint32_t count = r.u32();
  if (!r.ok() || version != kMcLsaBatchVersion) return std::nullopt;
  // A real batch carries at least 2 LSAs (size 1 encodes as kMcLsa);
  // each needs a 4-byte length prefix plus a non-empty body, so a count
  // the buffer cannot hold is rejected before any allocation.
  if (count < 2 || count > kMaxBatchLsas) return std::nullopt;
  if (count > r.remaining() / 5) return std::nullopt;
  McLsaBatch batch;
  batch.lsas.reserve(count);
  std::vector<std::uint8_t> sub;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = r.u32();
    if (!r.ok() || len == 0 || len > r.remaining()) return std::nullopt;
    const std::size_t start = r.pos();
    sub.assign(bytes.begin() + static_cast<std::ptrdiff_t>(start),
               bytes.begin() + static_cast<std::ptrdiff_t>(start + len));
    r.skip(len);
    std::optional<McLsa> lsa = decode_mc_lsa(sub);
    if (!lsa.has_value()) return std::nullopt;  // includes nested batches
    batch.lsas.push_back(std::move(*lsa));
  }
  if (!r.exhausted()) return std::nullopt;  // trailing junk
  return batch;
}

std::size_t encoded_size(const McLsa& lsa) {
  std::size_t size = 1 + 4 + 1 + 4 + 1 + 1 + 4;        // header fields
  size += 4 + 4 * static_cast<std::size_t>(lsa.stamp.size());  // stamp
  size += 1;                                            // proposal flag
  if (lsa.proposal.has_value()) {
    size += 4 + 8 * lsa.proposal->edge_count();
  }
  return size;
}

std::size_t encoded_size(const McLsaBatch& batch) {
  DGMC_ASSERT(!batch.lsas.empty());
  if (batch.lsas.size() == 1) return encoded_size(batch.lsas.front());
  std::size_t size = 1 + 1 + 4;  // type, version, count
  for (const McLsa& lsa : batch.lsas) size += 4 + encoded_size(lsa);
  return size;
}

}  // namespace dgmc::core
