# Empty compiler generated dependencies file for dgmc_mc.
# This may be replaced when dependencies are built.
