// Long-run randomized soak: several MCs of different types share one
// network through interleaved membership churn, link failures and
// repairs; after every quiescence the global safety invariant must
// hold for every connection. This is the widest net in the suite —
// anything the targeted tests miss tends to wash up here.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mc/validation.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {
namespace {

struct McProfile {
  mc::McId id;
  mc::McType type;
};

class SoakTest : public testing::TestWithParam<int> {};

TEST_P(SoakTest, InterleavedChurnFailuresAndRepairs) {
  const int seed = GetParam();
  util::RngStream rng(seed * 7919);
  const int n = 24;

  // 2-edge-connected base so any single failure leaves it connected:
  // ring + chords.
  graph::Graph g = graph::ring(n);
  for (int i = 0; i < n / 2; i += 3) g.add_link(i, i + n / 2);
  g.set_uniform_delay(1e-6);

  DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 2e-3;
  params.dgmc.partition_resync = true;
  params.dual_link_detection = true;
  DgmcNetwork net(std::move(g), params, mc::make_incremental_algorithm());

  const std::vector<McProfile> mcs = {
      {0, mc::McType::kSymmetric},
      {1, mc::McType::kReceiverOnly},
      {2, mc::McType::kAsymmetric},
  };
  std::map<mc::McId, std::set<graph::NodeId>> membership;
  // Asymmetric MCs need a stable sender.
  net.join(0, 2, mc::McType::kAsymmetric, mc::MemberRole::kSender);
  membership[2].insert(0);
  net.run_to_quiescence();

  graph::LinkId down_link = graph::kInvalidLink;

  for (int step = 0; step < 60; ++step) {
    const int dice = static_cast<int>(rng.index(10));
    if (dice < 7) {
      // Membership churn on a random MC.
      const McProfile& mcp = mcs[rng.index(mcs.size())];
      const graph::NodeId node = static_cast<graph::NodeId>(rng.index(n));
      auto& members = membership[mcp.id];
      if (members.count(node) && !(mcp.id == 2 && node == 0)) {
        net.leave(node, mcp.id);
        members.erase(node);
      } else if (!members.count(node)) {
        const mc::MemberRole role =
            mcp.type == mc::McType::kSymmetric ? mc::MemberRole::kBoth
                                               : mc::MemberRole::kReceiver;
        net.join(node, mcp.id, mcp.type, role);
        members.insert(node);
      }
    } else if (dice < 9) {
      // Fail a random up link (at most one down at a time, keeping the
      // network connected).
      if (down_link == graph::kInvalidLink) {
        const graph::LinkId link = static_cast<graph::LinkId>(
            rng.index(net.physical().link_count()));
        if (net.physical().link(link).up) {
          net.fail_link(link);
          down_link = link;
        }
      }
    } else {
      if (down_link != graph::kInvalidLink) {
        net.restore_link(down_link);
        down_link = graph::kInvalidLink;
      }
    }
    net.run_to_quiescence();

    // --- Invariant check after every quiescence. ---
    for (const McProfile& mcp : mcs) {
      ASSERT_TRUE(net.converged(mcp.id))
          << "seed=" << seed << " step=" << step << " mc=" << mcp.id;
      const auto& expected = membership[mcp.id];
      if (expected.empty()) continue;
      // Member lists match ground truth everywhere that has state.
      const auto got = net.switch_at(0).members(mcp.id);
      ASSERT_NE(got, nullptr) << "seed=" << seed << " step=" << step;
      const auto all = got->all();
      ASSERT_EQ(std::set<graph::NodeId>(all.begin(), all.end()), expected)
          << "seed=" << seed << " step=" << step << " mc=" << mcp.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, testing::Range(1, 9));

}  // namespace
}  // namespace dgmc::sim
