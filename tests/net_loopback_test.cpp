// The socket backend end to end on 127.0.0.1: real UDP datagrams, real
// epoll, heartbeats, and the same protocol objects the simulator runs.
// Wall-clock margins are generous; exact-timing behavior belongs to the
// DES tests.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "graph/generators.hpp"
#include "mc/algorithm.hpp"
#include "net/cluster.hpp"
#include "net/frame.hpp"
#include "util/rng.hpp"

namespace dgmc::net {
namespace {

NetCluster::Config fast_config() {
  NetCluster::Config config;
  config.sw.dgmc.computation_time = 5e-3;
  config.sw.dgmc.partition_resync = true;
  config.sw.heartbeat.hello_interval = 0.02;
  config.sw.heartbeat.dead_interval = 0.15;
  config.max_wall = 20.0;
  return config;
}

sim::SoakEvent join_at(double at, graph::NodeId node, mc::McId mcid) {
  sim::SoakEvent ev;
  ev.at = at;
  ev.kind = sim::SoakEvent::Kind::kJoin;
  ev.node = node;
  ev.mcid = mcid;
  return ev;
}

sim::SoakEvent leave_at(double at, graph::NodeId node, mc::McId mcid) {
  sim::SoakEvent ev;
  ev.at = at;
  ev.kind = sim::SoakEvent::Kind::kLeave;
  ev.node = node;
  ev.mcid = mcid;
  return ev;
}

TEST(NetLoopback, JoinsConvergeOnRing4) {
  const graph::Graph g = graph::ring(4);
  const auto algorithm = mc::make_incremental_algorithm();
  NetCluster cluster(g, *algorithm, fast_config());
  const std::vector<sim::SoakEvent> events = {
      join_at(0.02, 0, 1), join_at(0.10, 1, 1), join_at(0.18, 2, 1)};
  const NetCluster::RunResult r = cluster.run(events, {1});
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.events_applied, 3u);
  EXPECT_GT(r.installs, 0u);
  EXPECT_GT(r.datagrams_sent, 0u);
  const trees::Topology tree = cluster.agreed_topology(1);
  EXPECT_GE(tree.edge_count(), 2u);  // spans three members
  for (graph::NodeId n : {0, 1, 2}) {
    EXPECT_TRUE(cluster.at(n).dgmc().has_state(1)) << "switch " << n;
  }
}

TEST(NetLoopback, LeaveToEmptyDestroysEverywhere) {
  const graph::Graph g = graph::ring(4);
  const auto algorithm = mc::make_incremental_algorithm();
  NetCluster cluster(g, *algorithm, fast_config());
  const std::vector<sim::SoakEvent> events = {
      join_at(0.02, 0, 1), join_at(0.10, 2, 1), leave_at(0.4, 0, 1),
      leave_at(0.6, 2, 1)};
  const NetCluster::RunResult r = cluster.run(events, {1});
  ASSERT_TRUE(r.converged);
  for (int n = 0; n < cluster.size(); ++n) {
    EXPECT_FALSE(cluster.at(n).dgmc().has_state(1)) << "switch " << n;
  }
}

TEST(NetLoopback, SeededReceiveLossStillConverges) {
  const graph::Graph g = graph::ring(6);
  const auto algorithm = mc::make_incremental_algorithm();
  NetCluster::Config config = fast_config();
  // Loss makes retransmissions take real time; be patient.
  config.stable_polls = 5;
  NetCluster cluster(g, *algorithm, config);
  // 15% independent receive loss at every switch. HELLOs are lost too:
  // with a 0.15s dead interval over 0.02s heartbeats, a spurious
  // link-down needs ~7 consecutive losses (p ~ 1e-6 per sweep) — the
  // heartbeat parameters are doing exactly their real-world job.
  for (int n = 0; n < cluster.size(); ++n) {
    auto rng = std::make_shared<util::RngStream>(1000 + n);
    cluster.at(n).set_rx_drop([rng] { return rng->bernoulli(0.15); });
  }
  std::vector<sim::SoakEvent> events;
  for (int n = 0; n < 5; ++n) {
    events.push_back(join_at(0.05 + 0.08 * n, n, 1));
  }
  events.push_back(leave_at(0.8, 1, 1));
  const NetCluster::RunResult r = cluster.run(events, {1});
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.events_applied, 6u);
  std::uint64_t dropped = 0;
  for (int n = 0; n < cluster.size(); ++n) {
    dropped += cluster.at(n).stats().rx_dropped;
  }
  EXPECT_GT(dropped, 0u);
  // Loss without retransmission would mean the reliability machinery
  // never engaged — convergence would have been luck.
  EXPECT_GT(r.retransmissions, 0u);
  const trees::Topology tree = cluster.agreed_topology(1);
  EXPECT_GE(tree.edge_count(), 3u);
}

TEST(NetLoopback, HeartbeatDetectsOutageAndReconverges) {
  const graph::Graph g = graph::ring(4);
  const auto algorithm = mc::make_incremental_algorithm();
  NetCluster cluster(g, *algorithm, fast_config());
  IoLoop& loop = cluster.loop();

  const graph::LinkId l23 = g.find_link(2, 3);
  const graph::LinkId l30 = g.find_link(3, 0);
  ASSERT_NE(l23, graph::kInvalidLink);
  ASSERT_NE(l30, graph::kInvalidLink);

  bool detected_down = false;
  loop.schedule_after(0.05, [&cluster] { cluster.at(0).join(1, mc::McType::kSymmetric); });
  loop.schedule_after(0.10, [&cluster] { cluster.at(1).join(1, mc::McType::kSymmetric); });
  // Switch 3 goes dark mid-run: heartbeats stop, both its neighbors
  // must time the links out.
  loop.schedule_after(0.4, [&cluster] { cluster.at(3).stop(); });
  loop.schedule_after(1.0, [&] {
    detected_down = !cluster.at(2).neighbors().link_up(l23) &&
                    !cluster.at(0).neighbors().link_up(l30);
    cluster.at(3).start();  // back from the dead
  });
  // After revival the healed adjacency resyncs; a join at the reborn
  // switch must then propagate normally.
  loop.schedule_after(1.6, [&cluster] { cluster.at(3).join(1, mc::McType::kSymmetric); });
  loop.schedule_after(3.0, [&loop] { loop.stop(); });
  loop.run();

  EXPECT_TRUE(detected_down);
  EXPECT_TRUE(cluster.at(2).neighbors().link_up(l23));
  EXPECT_TRUE(cluster.at(0).neighbors().link_up(l30));
  EXPECT_GT(cluster.at(2).stats().link_downs, 0u);
  EXPECT_GT(cluster.at(2).stats().link_ups, 0u);
  EXPECT_TRUE(cluster.quiescent());
  EXPECT_TRUE(cluster.converged(1));
  EXPECT_TRUE(cluster.at(3).dgmc().has_state(1));
  const trees::Topology tree = cluster.agreed_topology(1);
  EXPECT_GT(tree.degree(3), 0);
}

TEST(NetLoopback, MalformedDatagramsAreCountedAndIgnored) {
  const graph::Graph g = graph::line(2);
  const auto algorithm = mc::make_incremental_algorithm();
  NetCluster cluster(g, *algorithm, fast_config());
  IoLoop& loop = cluster.loop();

  // Inject garbage and misaddressed-but-valid frames at switch 0's
  // port from a separate socket.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(cluster.at(0).local_port());
  loop.schedule_after(0.05, [&] {
    const char garbage[] = "not a frame at all";
    (void)::sendto(fd, garbage, sizeof garbage, 0,
                   reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
    Frame forged;
    forged.kind = FrameKind::kAck;
    forged.sender = 7;  // no such adjacency
    forged.link = 0;
    forged.origin = 0;
    forged.seq = 1;
    const std::vector<std::uint8_t> bytes = encode_frame(forged);
    (void)::sendto(fd, bytes.data(), bytes.size(), 0,
                   reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
  });
  loop.schedule_after(0.5, [&loop] { loop.stop(); });
  loop.run();
  ::close(fd);

  EXPECT_GE(cluster.at(0).stats().decode_errors, 1u);
  EXPECT_GE(cluster.at(0).stats().misaddressed, 1u);
  // The junk must not have perturbed liveness.
  EXPECT_TRUE(cluster.at(0).neighbors().link_up(0));
}

}  // namespace
}  // namespace dgmc::net
