#include "mc/qos.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mc/validation.hpp"
#include "sim/network.hpp"

namespace dgmc::mc {
namespace {

using trees::Edge;
using trees::Topology;

MemberList make_members(const std::vector<graph::NodeId>& nodes) {
  MemberList ml;
  for (graph::NodeId n : nodes) ml.join(n, MemberRole::kBoth);
  return ml;
}

TEST(CapacityMap, ReserveReleaseBookkeeping) {
  CapacityMap caps(3, 10.0);
  EXPECT_DOUBLE_EQ(caps.available(0), 10.0);
  caps.reserve(0, 4.0);
  EXPECT_DOUBLE_EQ(caps.available(0), 6.0);
  caps.release(0, 4.0);
  EXPECT_DOUBLE_EQ(caps.available(0), 10.0);
  caps.set(2, 1.5);
  EXPECT_DOUBLE_EQ(caps.available(2), 1.5);
}

TEST(CapacityMapDeath, OverReservationAborts) {
  CapacityMap caps(1, 1.0);
  EXPECT_DEATH(caps.reserve(0, 2.0), "over-reservation");
}

TEST(CapacityMap, TopologyOperations) {
  const graph::Graph g = graph::line(4);
  CapacityMap caps(g.link_count(), 5.0);
  const Topology t({Edge(0, 1), Edge(1, 2)});
  EXPECT_TRUE(caps.can_carry(g, t, 5.0));
  EXPECT_FALSE(caps.can_carry(g, t, 5.1));
  caps.reserve_topology(g, t, 3.0);
  EXPECT_DOUBLE_EQ(caps.available(g.find_link(0, 1)), 2.0);
  EXPECT_DOUBLE_EQ(caps.available(g.find_link(2, 3)), 5.0);  // untouched
  caps.release_topology(g, t, 3.0);
  EXPECT_TRUE(caps.can_carry(g, t, 5.0));
}

TEST(QosAlgorithm, RoutesAroundSaturatedLinks) {
  // Ring: direct edge 0-1 is saturated; the tree must go the long way.
  const graph::Graph g = graph::ring(5);
  auto caps = std::make_shared<CapacityMap>(g.link_count(), 10.0);
  caps->set(g.find_link(0, 1), 0.5);
  const auto algo =
      make_qos_algorithm(1.0, caps, make_from_scratch_algorithm());
  const MemberList ml = make_members({0, 1});
  const Topology t = algo->compute(g, {McType::kSymmetric, &ml, nullptr});
  EXPECT_FALSE(t.contains(Edge(0, 1)));
  EXPECT_TRUE(trees::is_steiner_tree(t, {0, 1}));
  EXPECT_TRUE(caps->can_carry(g, t, 1.0));
}

TEST(QosAlgorithm, ZeroDemandIsUnconstrained) {
  const graph::Graph g = graph::ring(5);
  auto caps = std::make_shared<CapacityMap>(g.link_count(), 0.0);
  const auto qos =
      make_qos_algorithm(0.0, caps, make_from_scratch_algorithm());
  const auto plain = make_from_scratch_algorithm();
  const MemberList ml = make_members({0, 2});
  EXPECT_EQ(qos->compute(g, {McType::kSymmetric, &ml, nullptr}),
            plain->compute(g, {McType::kSymmetric, &ml, nullptr}));
}

TEST(QosAlgorithm, AdmissionFailureYieldsInvalidTopology) {
  // Every link saturated: no tree exists at this demand.
  const graph::Graph g = graph::line(4);
  auto caps = std::make_shared<CapacityMap>(g.link_count(), 1.0);
  const auto algo =
      make_qos_algorithm(2.0, caps, make_from_scratch_algorithm());
  const MemberList ml = make_members({0, 3});
  const Topology t = algo->compute(g, {McType::kSymmetric, &ml, nullptr});
  EXPECT_FALSE(is_valid_topology(g, McType::kSymmetric, ml, t));
}

TEST(QosAlgorithm, IncrementalInnerRebuildsWhenBranchSaturates) {
  const graph::Graph g = graph::ring(6);
  auto caps = std::make_shared<CapacityMap>(g.link_count(), 10.0);
  const auto algo =
      make_qos_algorithm(1.0, caps, make_incremental_algorithm());
  const MemberList ml = make_members({0, 2});
  const Topology before =
      algo->compute(g, {McType::kSymmetric, &ml, nullptr});
  ASSERT_TRUE(trees::is_steiner_tree(before, {0, 2}));
  // Saturate one of the edges the tree uses; the next computation must
  // abandon it even though `previous` contains it.
  const Edge used = before.edges().front();
  caps->set(g.find_link(used.a, used.b), 0.1);
  const Topology after =
      algo->compute(g, {McType::kSymmetric, &ml, &before});
  EXPECT_FALSE(after.contains(used));
  EXPECT_TRUE(trees::is_steiner_tree(after, {0, 2}));
}

TEST(QosAlgorithm, EndToEndInsideDgmcNetwork) {
  // The whole network computes QoS-constrained topologies from the
  // shared capacity view (the TE-LSA stand-in).
  graph::Graph g = graph::ring(6);
  g.set_uniform_delay(1e-6);
  auto caps = std::make_shared<CapacityMap>(g.link_count(), 10.0);
  caps->set(g.find_link(2, 3), 0.5);  // a congested trunk

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 1e-3;
  sim::DgmcNetwork net(
      std::move(g), params,
      make_qos_algorithm(1.0, caps, make_incremental_algorithm()));
  net.join(2, 0, McType::kSymmetric);
  net.run_to_quiescence();
  net.join(3, 0, McType::kSymmetric);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(0));
  const Topology agreed = net.agreed_topology(0);
  EXPECT_FALSE(agreed.contains(Edge(2, 3)));  // avoided the trunk
  EXPECT_EQ(agreed.edge_count(), 5u);         // the long way round
}

TEST(QosAlgorithm, NameReflectsInner) {
  auto caps = std::make_shared<CapacityMap>(1, 1.0);
  EXPECT_EQ(
      make_qos_algorithm(1.0, caps, make_incremental_algorithm())->name(),
      "qos(incremental)");
}

}  // namespace
}  // namespace dgmc::mc
