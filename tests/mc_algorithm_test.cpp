#include "mc/algorithm.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mc/validation.hpp"
#include "trees/steiner.hpp"
#include "util/rng.hpp"

namespace dgmc::mc {
namespace {

MemberList make_members(const std::vector<graph::NodeId>& nodes,
                        MemberRole role = MemberRole::kBoth) {
  MemberList ml;
  for (graph::NodeId n : nodes) ml.join(n, role);
  return ml;
}

TEST(FromScratch, SymmetricBuildsSteinerTree) {
  util::RngStream rng(1);
  const graph::Graph g = graph::random_connected(25, 3.0, rng);
  const MemberList ml = make_members({2, 9, 17, 23});
  const auto algo = make_from_scratch_algorithm();
  const trees::Topology t =
      algo->compute(g, {McType::kSymmetric, &ml, nullptr});
  EXPECT_TRUE(is_valid_topology(g, McType::kSymmetric, ml, t));
  EXPECT_EQ(t, trees::kmb_steiner(g, ml.all()));
}

TEST(FromScratch, ReceiverOnlySpansReceivers) {
  util::RngStream rng(2);
  const graph::Graph g = graph::random_connected(20, 3.0, rng);
  const MemberList ml = make_members({1, 8, 15}, MemberRole::kReceiver);
  const auto algo = make_from_scratch_algorithm();
  const trees::Topology t =
      algo->compute(g, {McType::kReceiverOnly, &ml, nullptr});
  EXPECT_TRUE(is_valid_topology(g, McType::kReceiverOnly, ml, t));
}

TEST(FromScratch, AsymmetricConnectsSendersToReceivers) {
  util::RngStream rng(3);
  const graph::Graph g = graph::random_connected(20, 3.0, rng);
  MemberList ml;
  ml.join(0, MemberRole::kSender);
  ml.join(7, MemberRole::kReceiver);
  ml.join(13, MemberRole::kReceiver);
  const auto algo = make_from_scratch_algorithm();
  const trees::Topology t =
      algo->compute(g, {McType::kAsymmetric, &ml, nullptr});
  EXPECT_TRUE(is_valid_topology(g, McType::kAsymmetric, ml, t));
}

TEST(FromScratch, SingleMemberYieldsEmpty) {
  const graph::Graph g = graph::line(4);
  const MemberList ml = make_members({2});
  const auto algo = make_from_scratch_algorithm();
  EXPECT_TRUE(algo->compute(g, {McType::kSymmetric, &ml, nullptr}).empty());
}

TEST(Incremental, NoPreviousFallsBackToFromScratch) {
  util::RngStream rng(4);
  const graph::Graph g = graph::random_connected(25, 3.0, rng);
  const MemberList ml = make_members({2, 9, 17});
  const auto inc = make_incremental_algorithm();
  const auto scratch = make_from_scratch_algorithm();
  EXPECT_EQ(inc->compute(g, {McType::kSymmetric, &ml, nullptr}),
            scratch->compute(g, {McType::kSymmetric, &ml, nullptr}));
}

TEST(Incremental, ExtendsPreviousTreeForJoin) {
  const graph::Graph g = graph::line(6);
  const MemberList before = make_members({0, 2});
  const auto inc = make_incremental_algorithm();
  const trees::Topology t0 =
      inc->compute(g, {McType::kSymmetric, &before, nullptr});
  const MemberList after = make_members({0, 2, 5});
  const trees::Topology t1 =
      inc->compute(g, {McType::kSymmetric, &after, &t0});
  // The old branch must be preserved and the new member attached.
  for (const trees::Edge& e : t0.edges()) EXPECT_TRUE(t1.contains(e));
  EXPECT_TRUE(is_valid_topology(g, McType::kSymmetric, after, t1));
}

TEST(Incremental, PrunesPreviousTreeForLeave) {
  const graph::Graph g = graph::line(6);
  const MemberList before = make_members({0, 2, 5});
  const auto inc = make_incremental_algorithm();
  const trees::Topology t0 =
      inc->compute(g, {McType::kSymmetric, &before, nullptr});
  const MemberList after = make_members({0, 2});
  const trees::Topology t1 =
      inc->compute(g, {McType::kSymmetric, &after, &t0});
  EXPECT_TRUE(is_valid_topology(g, McType::kSymmetric, after, t1));
  EXPECT_LT(t1.edge_count(), t0.edge_count());
}

TEST(Incremental, RebuildsWhenPreviousUsesDeadLink) {
  graph::Graph g = graph::ring(6);
  const MemberList ml = make_members({0, 3});
  const auto inc = make_incremental_algorithm();
  const trees::Topology t0 =
      inc->compute(g, {McType::kSymmetric, &ml, nullptr});
  // Kill a link the tree uses.
  const trees::Edge used = t0.edges().front();
  g.set_link_up(g.find_link(used.a, used.b), false);
  const trees::Topology t1 = inc->compute(g, {McType::kSymmetric, &ml, &t0});
  EXPECT_TRUE(is_valid_topology(g, McType::kSymmetric, ml, t1));
  EXPECT_FALSE(t1.contains(used));
}

TEST(Incremental, DriftGuardRebuildsBadTrees) {
  // A previous "tree" that wanders the whole ring is > 2x the optimal
  // two-member path; the drift guard must rebuild.
  const graph::Graph g = graph::ring(12);
  const MemberList ml = make_members({0, 1});
  // Wandering tree: the long way around (11 edges for neighbors 0-1).
  std::vector<trees::Edge> longway;
  for (int i = 1; i < 12; ++i) longway.emplace_back(i, (i + 1) % 12);
  const trees::Topology bad(std::move(longway));
  const auto inc = make_incremental_algorithm(2.0);
  const trees::Topology t = inc->compute(g, {McType::kSymmetric, &ml, &bad});
  EXPECT_EQ(t, trees::Topology({trees::Edge(0, 1)}));
}

TEST(Incremental, AsymmetricAlwaysFromScratch) {
  util::RngStream rng(5);
  const graph::Graph g = graph::random_connected(20, 3.0, rng);
  MemberList ml;
  ml.join(0, MemberRole::kSender);
  ml.join(5, MemberRole::kReceiver);
  ml.join(11, MemberRole::kReceiver);
  const auto inc = make_incremental_algorithm();
  const auto scratch = make_from_scratch_algorithm();
  const trees::Topology prev({trees::Edge(0, 1)});
  EXPECT_EQ(inc->compute(g, {McType::kAsymmetric, &ml, &prev}),
            scratch->compute(g, {McType::kAsymmetric, &ml, nullptr}));
}

TEST(Algorithms, PureAndDeterministic) {
  util::RngStream rng(6);
  const graph::Graph g = graph::random_connected(30, 3.0, rng);
  const MemberList ml = make_members({3, 12, 21, 28});
  for (const auto& algo :
       {make_from_scratch_algorithm(), make_incremental_algorithm()}) {
    const TopologyRequest req{McType::kSymmetric, &ml, nullptr};
    EXPECT_EQ(algo->compute(g, req), algo->compute(g, req));
  }
}

TEST(Algorithms, Names) {
  EXPECT_EQ(make_from_scratch_algorithm()->name(), "from-scratch");
  EXPECT_EQ(make_incremental_algorithm()->name(), "incremental");
}


TEST(ComputeWithInfo, ReportsIncrementalVsFromScratch) {
  const graph::Graph g = graph::line(6);
  const auto inc = make_incremental_algorithm();
  const MemberList two = make_members({0, 2});
  // No previous topology: from scratch.
  const auto fresh =
      inc->compute_with_info(g, {McType::kSymmetric, &two, nullptr});
  EXPECT_TRUE(fresh.from_scratch);
  // Extending the previous tree: incremental.
  const MemberList three = make_members({0, 2, 5});
  const auto extended = inc->compute_with_info(
      g, {McType::kSymmetric, &three, &fresh.topology});
  EXPECT_FALSE(extended.from_scratch);
  EXPECT_TRUE(is_valid_topology(g, McType::kSymmetric, three,
                                extended.topology));
  // Dead link in the previous tree: back to from scratch.
  graph::Graph broken = graph::ring(6);
  broken.set_link_up(broken.find_link(0, 1), false);
  const auto rebuilt = inc->compute_with_info(
      broken, {McType::kSymmetric, &two, &fresh.topology});
  EXPECT_TRUE(rebuilt.from_scratch);
  // From-scratch algorithm always reports from scratch.
  const auto scratch = make_from_scratch_algorithm()->compute_with_info(
      g, {McType::kSymmetric, &three, &fresh.topology});
  EXPECT_TRUE(scratch.from_scratch);
  // compute() and compute_with_info() agree.
  EXPECT_EQ(inc->compute(g, {McType::kSymmetric, &three, &fresh.topology}),
            extended.topology);
}

}  // namespace
}  // namespace dgmc::mc
